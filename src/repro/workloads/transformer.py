"""Transformer encoder block as a tensor dependency DAG (extension family).

Not a paper workload: this family extends the Table VI set with the
attention reuse signature the paper's four families lack — **two residual
skip connections at different hold distances** plus a **softmax-normalizer
broadcast**.  One encoder block is twelve einsum/element-wise operations:

====  ==============================  =========  ======================
step  einsum                          dominance  notes
====  ==============================  =========  ======================
q     Q  = X · Wq                     bal        query projection
k     K  = X · Wk                     bal        key projection
v     V  = X · Wv                     bal        value projection
s     S  = Q · Kᵀ                     bal        attention scores
n     Nrm = Σ_t exp(S)                bal        softmax normalizer
sm    P  = exp(S) / Nrm               bal        normalizer broadcast
av    O  = P · V                      bal        attention-weighted values
o     AttnOut = O · Wo                bal        output projection
add1  Y  = AttnOut + X                bal        residual skip #1
ff1   F  = Y · W1                     bal        feed-forward expand
ff2   Z  = F · W2                     bal        feed-forward contract
add2  OUT = Z + Y                     bal        residual skip #2
====  ==============================  =========  ======================

With the default shapes (sequence 512, model width 512, head width 64,
feed-forward width 2048) every node is *balanced*, so the whole main path
pipelines and Algorithm 2 classifies all three transitive edges as
**delayed-hold**:

* ``X → add1`` — skip #1, held across the entire eight-op attention path;
* ``Y → add2`` — skip #2, held across the two feed-forward GEMMs;
* ``S → sm`` — the scores are held while the normalizer reduction runs,
  then broadcast-consumed (the softmax re-read).

This is the multi-distance generalisation of the ResNet skip (Fig. 6):
SET-style single-distance hold support is exercised twice concurrently,
and the block-input multicast (``X`` feeds q, k, v *and* the residual)
stresses ``parallel_multicast`` handling.  A leading producer op makes
the skips classified edges rather than program inputs, exactly as
:mod:`repro.workloads.resnet` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind
from ..core.ranks import Rank
from ..core.tensor import dense_tensor


@dataclass(frozen=True)
class TransformerProblem:
    """Shapes of one (or ``blocks`` stacked) transformer encoder block(s).

    Extension semantics: the registry name grammar
    (``xformer/s=<seq>/d=<d_model>[@x<blocks>]``) encodes ``seq``,
    ``d_model`` and ``blocks``; ``d_head``/``d_ff`` are derived there as
    ``d_model // 8`` and ``4 * d_model`` (the standard 8-head, 4x-MLP
    transformer proportions) so names stay short and round-trippable.
    """

    seq: int = 512             # sequence length (tokens)
    d_model: int = 512         # model (residual stream) width
    d_head: int = 64           # per-head width (single-head equivalent)
    d_ff: int = 2048           # feed-forward hidden width
    word_bytes: int = 2        # inference workloads use 16-bit words
    blocks: int = 1            # number of stacked encoder blocks

    def __post_init__(self) -> None:
        if min(self.seq, self.d_model, self.d_head, self.d_ff, self.blocks) <= 0:
            raise ValueError("all transformer dimensions must be positive")


def build_transformer_dag(
    problem: TransformerProblem = TransformerProblem(),
) -> TensorDag:
    """Build ``problem.blocks`` stacked encoder blocks with a leading
    embedding-projection producer (so skip #1 has an in-DAG source)."""
    s = problem.seq
    d = problem.d_model
    h = problem.d_head
    f = problem.d_ff
    wb = problem.word_bytes

    r_s = Rank("s", s)       # query-side sequence positions
    r_t = Rank("t", s)       # key-side sequence positions
    r_d = Rank("d", d)       # model width (contracted by projections)
    r_e = Rank("e", d)       # model width (residual-stream binding)
    r_g = Rank("g", d)       # model width (FFN output binding)
    r_h = Rank("h", h)       # head width
    r_f = Rank("f", f)       # feed-forward hidden width
    r_kp = Rank("kp", d)     # producer contraction

    dag = TensorDag()
    # Leading producer: the embedding (or previous block's) projection.
    dag.add_op(EinsumOp(
        name="pre:embed",
        inputs=(
            dense_tensor("TOK", (r_s, r_kp), word_bytes=wb),
            dense_tensor("W_emb", (r_kp, r_d), word_bytes=wb),
        ),
        output=dense_tensor("X@0", (r_s, r_d), word_bytes=wb),
        contracted=("kp",),
        label="embedding projection (producer)",
    ))
    for blk in range(problem.blocks):
        x_in = f"X@{blk}"
        # Q/K/V projections: contract the model width.
        for tag, wname in (("q", "Wq"), ("k", "Wk"), ("v", "Wv")):
            first = r_s if tag == "q" else r_t
            dag.add_op(EinsumOp(
                name=f"{tag}:proj@{blk}",
                inputs=(
                    dense_tensor(x_in, (first, r_d), word_bytes=wb),
                    dense_tensor(f"{wname}@{blk}", (r_d, r_h), word_bytes=wb),
                ),
                output=dense_tensor(f"{tag.upper()}@{blk}", (first, r_h),
                                    word_bytes=wb),
                contracted=("d",),
                label=f"{tag.upper()} = X*{wname} (block {blk})",
            ))
        # Attention scores: S = Q * K^T, contracting the head width.
        dag.add_op(EinsumOp(
            name=f"s:scores@{blk}",
            inputs=(
                dense_tensor(f"Q@{blk}", (r_s, r_h), word_bytes=wb),
                dense_tensor(f"K@{blk}", (r_t, r_h), word_bytes=wb),
            ),
            output=dense_tensor(f"S@{blk}", (r_s, r_t), word_bytes=wb),
            contracted=("h",),
            label=f"S = Q*K^T (block {blk})",
        ))
        # Softmax normalizer: row-reduction over the key positions.
        dag.add_op(EinsumOp(
            name=f"n:normsum@{blk}",
            inputs=(dense_tensor(f"S@{blk}", (r_s, r_t), word_bytes=wb),),
            output=dense_tensor(f"Nrm@{blk}", (r_s,), word_bytes=wb),
            contracted=("t",),
            label=f"Nrm = sum_t exp(S) (block {blk})",
        ))
        # Softmax broadcast: P = exp(S) / Nrm — S is re-read (delayed hold).
        dag.add_op(EinsumOp(
            name=f"sm:softmax@{blk}",
            inputs=(
                dense_tensor(f"S@{blk}", (r_s, r_t), word_bytes=wb),
                dense_tensor(f"Nrm@{blk}", (r_s,), word_bytes=wb),
            ),
            output=dense_tensor(f"Prob@{blk}", (r_s, r_t), word_bytes=wb),
            kind=OpKind.ELEMENTWISE,
            label=f"P = exp(S)/Nrm (block {blk})",
        ))
        # Attention-weighted values: O = P * V, contracting key positions.
        dag.add_op(EinsumOp(
            name=f"av:attnv@{blk}",
            inputs=(
                dense_tensor(f"Prob@{blk}", (r_s, r_t), word_bytes=wb),
                dense_tensor(f"V@{blk}", (r_t, r_h), word_bytes=wb),
            ),
            output=dense_tensor(f"O@{blk}", (r_s, r_h), word_bytes=wb),
            contracted=("t",),
            label=f"O = P*V (block {blk})",
        ))
        # Output projection back to the model width.
        dag.add_op(EinsumOp(
            name=f"o:proj@{blk}",
            inputs=(
                dense_tensor(f"O@{blk}", (r_s, r_h), word_bytes=wb),
                dense_tensor(f"Wo@{blk}", (r_h, r_e), word_bytes=wb),
            ),
            output=dense_tensor(f"AttnOut@{blk}", (r_s, r_e), word_bytes=wb),
            contracted=("h",),
            label=f"AttnOut = O*Wo (block {blk})",
        ))
        # Residual skip #1: Y = AttnOut + X  (hold across the whole
        # attention path — eight operations).
        dag.add_op(EinsumOp(
            name=f"add:res1@{blk}",
            inputs=(
                dense_tensor(f"AttnOut@{blk}", (r_s, r_e), word_bytes=wb),
                dense_tensor(x_in, (r_s, r_e), word_bytes=wb),
            ),
            output=dense_tensor(f"Y@{blk}", (r_s, r_e), word_bytes=wb),
            kind=OpKind.ELEMENTWISE,
            label=f"Y = AttnOut + X (block {blk})",
        ))
        # Feed-forward expand / contract.
        dag.add_op(EinsumOp(
            name=f"ff1:proj@{blk}",
            inputs=(
                dense_tensor(f"Y@{blk}", (r_s, r_e), word_bytes=wb),
                dense_tensor(f"W1@{blk}", (r_e, r_f), word_bytes=wb),
            ),
            output=dense_tensor(f"F@{blk}", (r_s, r_f), word_bytes=wb),
            contracted=("e",),
            label=f"F = Y*W1 (block {blk})",
        ))
        dag.add_op(EinsumOp(
            name=f"ff2:proj@{blk}",
            inputs=(
                dense_tensor(f"F@{blk}", (r_s, r_f), word_bytes=wb),
                dense_tensor(f"W2@{blk}", (r_f, r_g), word_bytes=wb),
            ),
            output=dense_tensor(f"Z@{blk}", (r_s, r_g), word_bytes=wb),
            contracted=("f",),
            label=f"Z = F*W2 (block {blk})",
        ))
        # Residual skip #2: OUT = Z + Y  (hold across the two FFN GEMMs).
        dag.add_op(EinsumOp(
            name=f"add:res2@{blk}",
            inputs=(
                dense_tensor(f"Z@{blk}", (r_s, r_g), word_bytes=wb),
                dense_tensor(f"Y@{blk}", (r_s, r_g), word_bytes=wb),
            ),
            output=dense_tensor(f"X@{blk + 1}", (r_s, r_g), word_bytes=wb),
            kind=OpKind.ELEMENTWISE,
            label=f"X' = Z + Y (block {blk})",
        ))
    return dag


def transformer_ops_per_block() -> int:
    """Operations contributed by one encoder block (q/k/v, scores,
    normsum, softmax, attnv, out-proj, res1, ff1, ff2, res2)."""
    return 12
