"""Linear DNN chains (MLP / 1x1-conv stacks) — the negative control.

Earlier DNN accelerators thrived on exactly these DAGs: cubic-ish GEMMs in
a straight line, no transitive edges, no delayed dependencies.  On a chain,
FLAT's adjacent pipelining already captures every inter-op reuse
opportunity, so CELLO's extra machinery must win *nothing* — a property the
tests pin (it guards against the simulator inventing advantages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp
from ..core.ranks import Rank
from ..core.tensor import dense_tensor


@dataclass(frozen=True)
class MlpProblem:
    """A batch-M MLP: layer widths give the GEMM chain's K/N sizes."""

    batch: int = 1024
    widths: Tuple[int, ...] = (1024, 1024, 1024, 1024)
    word_bytes: int = 2

    def __post_init__(self) -> None:
        if self.batch <= 0 or len(self.widths) < 2:
            raise ValueError("need a positive batch and at least two widths")
        if any(w <= 0 for w in self.widths):
            raise ValueError("widths must be positive")

    @property
    def n_layers(self) -> int:
        """GEMMs in the chain (consecutive width pairs)."""
        return len(self.widths) - 1


def build_mlp_dag(problem: MlpProblem = MlpProblem()) -> TensorDag:
    """Chain of GEMMs: H_{l+1}[m, n] = H_l[m, k] · W_l[k, n]."""
    r_m = Rank("m", problem.batch)
    dag = TensorDag()
    for layer in range(problem.n_layers):
        k, n = problem.widths[layer], problem.widths[layer + 1]
        r_k = Rank(f"k{layer}", k)
        r_n = Rank(f"n{layer}", n)
        src = "H@0" if layer == 0 else f"H@{layer}"
        dag.add_op(EinsumOp(
            name=f"fc@{layer}",
            inputs=(
                dense_tensor(src, (r_m, r_k), word_bytes=problem.word_bytes),
                dense_tensor(f"W@{layer}", (r_k, r_n), word_bytes=problem.word_bytes),
            ),
            output=dense_tensor(f"H@{layer + 1}", (r_m, r_n),
                                word_bytes=problem.word_bytes),
            contracted=(f"k{layer}",),
            label=f"fully-connected layer {layer} ({k}->{n})",
        ))
    return dag
