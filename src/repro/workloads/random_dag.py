"""Seeded random einsum-DAG generator (property-test / tuner fuzzing).

The curated workload families exercise *specific* reuse signatures; the
property suites and the tuner's random-strategy tests need the opposite —
arbitrary-but-valid :class:`~repro.core.dag.TensorDag` programs whose
shape is controllable and exactly reproducible from a seed.  The
generator grows a DAG op by op:

* **matmul ops** contract a shared rank: ``O[a,c] += T[a,b] * W[b,c]``,
  where ``W`` is either a fresh program input or an existing tensor whose
  leading rank matches (creating re-reads at growing distances);
* **element-wise ops** combine one or two same-shape tensors (creating
  short-distance reuse and accumulation-style chains).

Three dials steer the topology:

``fanout``
    How strongly operand choice favours *older* tensors.  High fan-out
    re-reads early tensors from many later ops (delayed-reuse pressure —
    the GMRES signature); low fan-out chains recent outputs (depth).
``skew``
    Rank-extent spread: extents are ``4 * 2**U(0, skew)``, so ``skew=0``
    is square/uniform and larger values produce the skewed operands of
    Sec. III-A.
``n_ops``
    Program length (reuse distances scale with it).

Every rank extent is a multiple of 4 and every tensor is dense 2-D with
4-byte words, so tensor footprints are multiples of 64 bytes — in
particular line-aligned for the default 16-byte line, which the engine
property tests assert DRAM traffic against.

The family is registry-resolvable (``rand/s=<seed>/ops=<n>/f=<fanout>/
k=<skew>``) so random DAGs can ride the orchestrator's parallel workers
and the persistent result store like any curated workload, but it is
deliberately *not* enumerated by ``all_workloads()`` — the gallery in
``docs/workloads.md`` documents real families, not fuzz inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind
from ..core.ranks import Rank
from ..core.tensor import TensorSpec, dense_tensor


@dataclass(frozen=True)
class RandomDagProblem:
    """Parameters of one random einsum program (all encoded in the
    registry name, so equal problems ⇒ equal DAGs)."""

    seed: int = 0
    n_ops: int = 12
    fanout: int = 2     # 0 = pure chain; larger = more re-reads of old tensors
    skew: int = 2       # extents drawn from 4 * 2**U(0, skew)

    def __post_init__(self) -> None:
        if self.n_ops <= 0:
            raise ValueError("n_ops must be positive")
        if self.fanout < 0 or self.skew < 0:
            raise ValueError("fanout and skew must be non-negative")


def _extent(rng: random.Random, skew: int) -> int:
    """A rank extent: multiple of 4, spread controlled by ``skew``."""
    return 4 * 2 ** rng.randint(0, skew)


def build_random_dag(problem: RandomDagProblem) -> TensorDag:
    """Deterministically grow a valid random einsum DAG."""
    rng = random.Random(problem.seed)
    dag = TensorDag()
    n_ranks = 0
    n_inputs = 0

    def fresh_rank(size: int) -> Rank:
        nonlocal n_ranks
        n_ranks += 1
        return Rank(f"r{n_ranks}", size)

    def fresh_input(rank0: Optional[Rank] = None) -> TensorSpec:
        nonlocal n_inputs
        n_inputs += 1
        r0 = rank0 if rank0 is not None else fresh_rank(_extent(rng, problem.skew))
        return dense_tensor(f"in{n_inputs}",
                            (r0, fresh_rank(_extent(rng, problem.skew))))

    def pick(tensors: List[TensorSpec]) -> TensorSpec:
        """Operand choice: ``fanout`` biases toward older tensors."""
        if len(tensors) == 1 or problem.fanout == 0:
            return tensors[-1]
        if rng.random() < problem.fanout / (problem.fanout + 1):
            return tensors[rng.randrange(len(tensors))]
        return tensors[-1]

    live: List[TensorSpec] = [fresh_input()]
    for i in range(problem.n_ops):
        left = pick(live)
        if rng.random() < 0.3:
            # Element-wise: combine with a same-shape tensor when one
            # exists, else a unary map.
            mates = [t for t in live
                     if t.ranks == left.ranks and t.name != left.name]
            inputs: Tuple[TensorSpec, ...] = (left,)
            if mates:
                inputs = (left, pick(mates))
            out = dense_tensor(f"t{i}", left.ranks)
            op = EinsumOp(
                name=f"op{i}:ew", inputs=inputs, output=out,
                kind=OpKind.ELEMENTWISE,
            )
        else:
            # Matmul contracting ``left``'s trailing rank.  Reuse an
            # existing compatible tensor when possible (fan-out), else
            # pull in a fresh program input.
            contracted = left.ranks[-1]
            # A reusable right operand must lead with the contracted rank
            # and trail with a rank that is neither the contracted one nor
            # the output's row rank — otherwise the contraction would
            # re-mention a contracted/duplicate rank on the output.
            mates = [t for t in live
                     if t.ranks[0] == contracted and t.name != left.name
                     and t.ranks[-1] not in (contracted, left.ranks[0])]
            right = pick(mates) if mates and rng.random() < 0.5 else fresh_input(contracted)
            # Every tensor carries two distinct rank names by construction,
            # and ``right``'s trailing rank is always fresh, so the output
            # never re-mentions the contracted rank.
            out = dense_tensor(f"t{i}", (left.ranks[0], right.ranks[-1]))
            op = EinsumOp(
                name=f"op{i}:mm", inputs=(left, right), output=out,
                contracted=(contracted.name,),
            )
        dag.add_op(op)
        live.append(out)
    return dag
