"""Workload registry: the Table VI evaluation matrix in code.

Every benchmark pulls its DAGs from here so experiments stay consistent
with the paper's parameters (Table VII: 10 CG iterations, N ∈ {1, 16},
4-byte CG/GNN words, 2-byte ResNet words).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from ..core.dag import TensorDag
from .bicgstab import BiCgStabProblem, build_bicgstab_dag
from .cg import CgProblem, build_cg_dag
from .gnn import GnnProblem, build_gnn_dag, cora_problem, protein_problem
from .matrices import (
    DATASETS,
    FV1,
    G2_CIRCUIT,
    NASA4704,
    SHALLOW_WATER1,
    MatrixSpec,
)
from .resnet import ResNetBlockProblem, build_resnet_block_dag

#: Datasets evaluated with CG in Fig. 12.
CG_DATASETS: Tuple[MatrixSpec, ...] = (FV1, SHALLOW_WATER1, G2_CIRCUIT)
#: Datasets evaluated with BiCGStab in Fig. 13 (N = 1).
BICGSTAB_DATASETS: Tuple[MatrixSpec, ...] = (NASA4704, FV1, SHALLOW_WATER1)
#: N sweep for CG (Table VII).
CG_N_VALUES: Tuple[int, ...] = (1, 16)
#: CG-loop iterations (Table VII).
CG_ITERATIONS: int = 10


@dataclass(frozen=True)
class Workload:
    """A named, fully-parameterised DAG builder."""

    name: str
    family: str                      # "cg" | "bicgstab" | "gnn" | "resnet"
    build: Callable[[], TensorDag]
    description: str = ""


def cg_workload(matrix: MatrixSpec, n: int,
                iterations: int = CG_ITERATIONS) -> Workload:
    problem = CgProblem(matrix=matrix, n=n, iterations=iterations)
    # The iteration count is part of the name so the runner's memoisation
    # never conflates different-length runs.
    suffix = "" if iterations == CG_ITERATIONS else f"@it{iterations}"
    return Workload(
        name=f"cg/{matrix.name}/N={n}{suffix}",
        family="cg",
        build=lambda: build_cg_dag(problem),
        description=f"block CG on {matrix.name} (M={matrix.m}, nnz={matrix.nnz}, N={n})",
    )


def bicgstab_workload(matrix: MatrixSpec, n: int = 1,
                      iterations: int = CG_ITERATIONS) -> Workload:
    problem = BiCgStabProblem(matrix=matrix, n=n, iterations=iterations)
    suffix = "" if iterations == CG_ITERATIONS else f"@it{iterations}"
    return Workload(
        name=f"bicgstab/{matrix.name}/N={n}{suffix}",
        family="bicgstab",
        build=lambda: build_bicgstab_dag(problem),
        description=f"BiCGStab on {matrix.name} (M={matrix.m}, nnz={matrix.nnz}, N={n})",
    )


def gnn_workload(problem: GnnProblem) -> Workload:
    return Workload(
        name=f"gnn/{problem.graph.name}",
        family="gnn",
        build=lambda: build_gnn_dag(problem),
        description=(
            f"GCN layer on {problem.graph.name} "
            f"(M={problem.graph.m}, N={problem.in_features}, O={problem.out_features})"
        ),
    )


def resnet_workload(problem: ResNetBlockProblem = ResNetBlockProblem()) -> Workload:
    return Workload(
        name="resnet/conv3_x",
        family="resnet",
        build=lambda: build_resnet_block_dag(problem),
        description="ResNet-50 conv3_x residual block (ImageNet, 16-bit)",
    )


def all_cg_workloads() -> Tuple[Workload, ...]:
    """Fig. 12's grid: 3 datasets × N ∈ {1, 16}."""
    return tuple(
        cg_workload(ds, n) for ds in CG_DATASETS for n in CG_N_VALUES
    )


def all_bicgstab_workloads() -> Tuple[Workload, ...]:
    """Fig. 13's BiCGStab panels (N = 1)."""
    return tuple(bicgstab_workload(ds, n=1) for ds in BICGSTAB_DATASETS)


def all_gnn_workloads() -> Tuple[Workload, ...]:
    """Fig. 13's GNN panels: cora and protein."""
    return (gnn_workload(cora_problem()), gnn_workload(protein_problem()))


def all_workloads() -> Dict[str, Workload]:
    out: Dict[str, Workload] = {}
    for w in (
        *all_cg_workloads(),
        *all_bicgstab_workloads(),
        *all_gnn_workloads(),
        resnet_workload(),
    ):
        out[w.name] = w
    return out


_SOLVER_NAME = re.compile(r"(cg|bicgstab)/([^/]+)/N=(\d+)(?:@it(\d+))?\Z")


def resolve_workload(name: str) -> Workload:
    """Rebuild a workload from its canonical name.

    The builders above encode every parameter in the name
    (``cg/<matrix>/N=<n>[@it<k>]``, ``bicgstab/...``, ``gnn/<graph>``,
    ``resnet/conv3_x``); this is the inverse.  It exists so a sweep point
    can be shipped across a process boundary as a plain string — the
    orchestrator's parallel workers rebuild the DAG from the name rather
    than pickling a ``Workload`` (whose ``build`` closure is not
    picklable).

    Raises :class:`KeyError` for names not produced by the builders here
    (hand-rolled workloads must be simulated in-process).
    """
    if name == "resnet/conv3_x":
        return resnet_workload()
    if name == "gnn/cora":
        return gnn_workload(cora_problem())
    if name == "gnn/protein":
        return gnn_workload(protein_problem())
    m = _SOLVER_NAME.match(name)
    if m:
        family, matrix_name, n, it = m.groups()
        spec = DATASETS.get(matrix_name)
        if spec is None:
            raise KeyError(f"unknown dataset {matrix_name!r} in workload {name!r}")
        iterations = int(it) if it else CG_ITERATIONS
        if family == "cg":
            return cg_workload(spec, int(n), iterations=iterations)
        return bicgstab_workload(spec, int(n), iterations=iterations)
    raise KeyError(f"cannot resolve workload name {name!r}")


def is_resolvable(name: str) -> bool:
    """True when :func:`resolve_workload` can rebuild ``name``."""
    try:
        resolve_workload(name)
    except KeyError:
        return False
    return True
