"""Workload registry: the evaluation matrix in code.

Every benchmark pulls its DAGs from here so experiments stay consistent
with the paper's parameters (Table VII: 10 CG iterations, N ∈ {1, 16},
4-byte CG/GNN words, 2-byte ResNet words).  Beyond the paper's four
Table VI families (CG, BiCGStab, GNN, ResNet) the registry carries three
*extension* families — transformer encoder blocks, restarted GMRES(m),
and 2-level multigrid V-cycles — that stress reuse signatures outside
the paper's curated set (see ``docs/workloads.md``).

This module is the single extension point for new families: a family is
a ``<family>_workload(...) -> Workload`` factory whose *name* encodes
every DAG-shaping parameter, plus a :func:`resolve_workload` clause that
parses the name back.  The name is the memoisation key of the result
store and the payload the parallel workers rebuild DAGs from, so the
factory/resolver pair must round-trip exactly (``docs/extending.md``
walks through authoring one end-to-end).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from ..core.dag import TensorDag
from .bicgstab import BiCgStabProblem, build_bicgstab_dag
from .cg import CgProblem, build_cg_dag
from .gmres import GmresProblem, build_gmres_dag
from .gnn import GnnProblem, build_gnn_dag, cora_problem, protein_problem
from .matrices import (
    DATASETS,
    FV1,
    G2_CIRCUIT,
    NASA4704,
    SHALLOW_WATER1,
    MatrixSpec,
)
from .multigrid import MultigridProblem, build_multigrid_dag
from .random_dag import RandomDagProblem, build_random_dag
from .resnet import ResNetBlockProblem, build_resnet_block_dag
from .transformer import TransformerProblem, build_transformer_dag

#: Datasets evaluated with CG in Fig. 12.
CG_DATASETS: Tuple[MatrixSpec, ...] = (FV1, SHALLOW_WATER1, G2_CIRCUIT)
#: Datasets evaluated with BiCGStab in Fig. 13 (N = 1).
BICGSTAB_DATASETS: Tuple[MatrixSpec, ...] = (NASA4704, FV1, SHALLOW_WATER1)
#: N sweep for CG (Table VII).
CG_N_VALUES: Tuple[int, ...] = (1, 16)
#: CG-loop iterations (Table VII).
CG_ITERATIONS: int = 10
#: Default Krylov dimension per GMRES restart cycle (extension family).
GMRES_RESTART_DIM: int = 8
#: Default GMRES restart count (extension family).
GMRES_RESTARTS: int = 2
#: Default multigrid V-cycle count (extension family).
MG_CYCLES: int = 2
#: Datasets the extension solver families default to (one small, one
#: large, both with paper-exact occupancy).
EXT_DATASETS: Tuple[MatrixSpec, ...] = (FV1, SHALLOW_WATER1)


@dataclass(frozen=True)
class Workload:
    """A named, fully-parameterised DAG builder.

    ``name`` is canonical: equal name ⇒ equal DAG.  It is the key of the
    runner's memoisation and the persistent result store, and the string
    the orchestrator's parallel workers rebuild the DAG from — the
    ``build`` closure itself is never pickled.
    """

    name: str
    family: str    # "cg" | "bicgstab" | "gnn" | "resnet" | extension family
    build: Callable[[], TensorDag]
    description: str = ""


def cg_workload(matrix: MatrixSpec, n: int,
                iterations: int = CG_ITERATIONS) -> Workload:
    """Block CG on ``matrix`` (paper anchor: Table VI rows 1-3, Fig. 12)."""
    problem = CgProblem(matrix=matrix, n=n, iterations=iterations)
    # The iteration count is part of the name so the runner's memoisation
    # never conflates different-length runs.
    suffix = "" if iterations == CG_ITERATIONS else f"@it{iterations}"
    return Workload(
        name=f"cg/{matrix.name}/N={n}{suffix}",
        family="cg",
        build=lambda: build_cg_dag(problem),
        description=f"block CG on {matrix.name} (M={matrix.m}, nnz={matrix.nnz}, N={n})",
    )


def bicgstab_workload(matrix: MatrixSpec, n: int = 1,
                      iterations: int = CG_ITERATIONS) -> Workload:
    """BiCGStab on ``matrix`` (paper anchor: Table VI row 4, Fig. 13)."""
    problem = BiCgStabProblem(matrix=matrix, n=n, iterations=iterations)
    suffix = "" if iterations == CG_ITERATIONS else f"@it{iterations}"
    return Workload(
        name=f"bicgstab/{matrix.name}/N={n}{suffix}",
        family="bicgstab",
        build=lambda: build_bicgstab_dag(problem),
        description=f"BiCGStab on {matrix.name} (M={matrix.m}, nnz={matrix.nnz}, N={n})",
    )


def gnn_workload(problem: GnnProblem) -> Workload:
    """One GCN layer (paper anchor: Table VI GNN rows, Fig. 13)."""
    return Workload(
        name=f"gnn/{problem.graph.name}",
        family="gnn",
        build=lambda: build_gnn_dag(problem),
        description=(
            f"GCN layer on {problem.graph.name} "
            f"(M={problem.graph.m}, N={problem.in_features}, O={problem.out_features})"
        ),
    )


def resnet_workload(problem: ResNetBlockProblem = ResNetBlockProblem()) -> Workload:
    """ResNet-50 conv3_x block (paper anchor: Table VI row 7, Fig. 16a)."""
    return Workload(
        name="resnet/conv3_x",
        family="resnet",
        build=lambda: build_resnet_block_dag(problem),
        description="ResNet-50 conv3_x residual block (ImageNet, 16-bit)",
    )


def transformer_workload(seq: int = 512, d_model: int = 512,
                         blocks: int = 1) -> Workload:
    """Transformer encoder block(s) — extension family (not in the paper).

    Name grammar ``xformer/s=<seq>/d=<d_model>[@x<blocks>]``; the head
    width and feed-forward width are derived (``d_model // 8`` and
    ``4 * d_model``) so the name stays round-trippable.  Reuse signature:
    two delayed-hold residual skips at different distances plus the
    softmax-normalizer broadcast (see :mod:`repro.workloads.transformer`).
    """
    problem = TransformerProblem(
        seq=seq, d_model=d_model, d_head=max(1, d_model // 8),
        d_ff=4 * d_model, blocks=blocks,
    )
    suffix = "" if blocks == 1 else f"@x{blocks}"
    return Workload(
        name=f"xformer/s={seq}/d={d_model}{suffix}",
        family="xformer",
        build=lambda: build_transformer_dag(problem),
        description=(
            f"transformer encoder block (seq={seq}, d_model={d_model}, "
            f"d_head={problem.d_head}, d_ff={problem.d_ff}, 16-bit)"
        ),
    )


def gmres_workload(matrix: MatrixSpec, m: int = GMRES_RESTART_DIM,
                   n: int = 1, restarts: int = GMRES_RESTARTS) -> Workload:
    """Restarted GMRES(m) — extension family (not in the paper).

    Name grammar ``gmres/<matrix>/m=<m>/N=<n>[@rs<restarts>]``.  Reuse
    signature: a growing Krylov basis whose every vector is re-read each
    Arnoldi step — all delayed-writeback, adversarial for LRU and the
    best case for RIFF's frequency hints (see
    :mod:`repro.workloads.gmres`).
    """
    problem = GmresProblem(matrix=matrix, m=m, n=n, restarts=restarts)
    suffix = "" if restarts == GMRES_RESTARTS else f"@rs{restarts}"
    return Workload(
        name=f"gmres/{matrix.name}/m={m}/N={n}{suffix}",
        family="gmres",
        build=lambda: build_gmres_dag(problem),
        description=(
            f"restarted GMRES({m}) on {matrix.name} "
            f"(M={matrix.m}, nnz={matrix.nnz}, N={n}, {restarts} restarts)"
        ),
    )


def multigrid_workload(matrix: MatrixSpec, n: int = 1,
                       cycles: int = MG_CYCLES) -> Workload:
    """2-level multigrid V-cycle — extension family (not in the paper).

    Name grammar ``mg/<matrix>/N=<n>[@cyc<cycles>]``.  Reuse signature:
    grid transfers force sequential/delayed-writeback hand-offs, the
    restricted residual is held across every coarse smoother sweep, and
    the pre-smoothed solution rides across the whole coarse excursion
    (see :mod:`repro.workloads.multigrid`).
    """
    problem = MultigridProblem(matrix=matrix, n=n, cycles=cycles)
    suffix = "" if cycles == MG_CYCLES else f"@cyc{cycles}"
    return Workload(
        name=f"mg/{matrix.name}/N={n}{suffix}",
        family="mg",
        build=lambda: build_multigrid_dag(problem),
        description=(
            f"2-level V-cycle on {matrix.name} "
            f"(M={matrix.m}->{problem.coarse_m}, N={n}, {cycles} cycles)"
        ),
    )


def random_dag_workload(seed: int, n_ops: int = 12, fanout: int = 2,
                        skew: int = 2) -> Workload:
    """Seeded random einsum DAG — fuzzing family (not in the paper).

    Name grammar ``rand/s=<seed>/ops=<n_ops>/f=<fanout>/k=<skew>`` (every
    parameter always present, so the name round-trips exactly).  Resolvable
    so property/differential tests can push random DAGs through the
    orchestrator's parallel workers, but deliberately absent from
    ``all_workloads()`` — fuzz inputs do not belong in the documented
    evaluation matrix (see :mod:`repro.workloads.random_dag`).
    """
    problem = RandomDagProblem(seed=seed, n_ops=n_ops, fanout=fanout, skew=skew)
    return Workload(
        name=f"rand/s={seed}/ops={n_ops}/f={fanout}/k={skew}",
        family="rand",
        build=lambda: build_random_dag(problem),
        description=(
            f"random einsum DAG (seed={seed}, {n_ops} ops, "
            f"fanout={fanout}, skew={skew})"
        ),
    )


def all_cg_workloads() -> Tuple[Workload, ...]:
    """Fig. 12's grid: 3 datasets × N ∈ {1, 16}."""
    return tuple(
        cg_workload(ds, n) for ds in CG_DATASETS for n in CG_N_VALUES
    )


def all_bicgstab_workloads() -> Tuple[Workload, ...]:
    """Fig. 13's BiCGStab panels (N = 1)."""
    return tuple(bicgstab_workload(ds, n=1) for ds in BICGSTAB_DATASETS)


def all_gnn_workloads() -> Tuple[Workload, ...]:
    """Fig. 13's GNN panels: cora and protein."""
    return (gnn_workload(cora_problem()), gnn_workload(protein_problem()))


def all_ext_workloads() -> Tuple[Workload, ...]:
    """The extension families' default grid: one transformer block plus
    GMRES and multigrid on the small/large PDE datasets."""
    return (
        transformer_workload(),
        *(gmres_workload(ds) for ds in EXT_DATASETS),
        *(multigrid_workload(ds) for ds in EXT_DATASETS),
    )


def all_workloads() -> Dict[str, Workload]:
    """Every registered workload, paper families first, keyed by name."""
    out: Dict[str, Workload] = {}
    for w in (
        *all_cg_workloads(),
        *all_bicgstab_workloads(),
        *all_gnn_workloads(),
        resnet_workload(),
        *all_ext_workloads(),
    ):
        out[w.name] = w
    return out


_SOLVER_NAME = re.compile(r"(cg|bicgstab)/([^/]+)/N=(\d+)(?:@it(\d+))?\Z")
_RAND_NAME = re.compile(r"rand/s=(\d+)/ops=(\d+)/f=(\d+)/k=(\d+)\Z")
_XFORMER_NAME = re.compile(r"xformer/s=(\d+)/d=(\d+)(?:@x(\d+))?\Z")
_GMRES_NAME = re.compile(r"gmres/([^/]+)/m=(\d+)/N=(\d+)(?:@rs(\d+))?\Z")
_MG_NAME = re.compile(r"mg/([^/]+)/N=(\d+)(?:@cyc(\d+))?\Z")


def _dataset(matrix_name: str, workload_name: str) -> MatrixSpec:
    spec = DATASETS.get(matrix_name)
    if spec is None:
        raise KeyError(
            f"unknown dataset {matrix_name!r} in workload {workload_name!r}"
        )
    return spec


def resolve_workload(name: str) -> Workload:
    """Rebuild a workload from its canonical name.

    The builders above encode every parameter in the name
    (``cg/<matrix>/N=<n>[@it<k>]``, ``bicgstab/...``, ``gnn/<graph>``,
    ``resnet/conv3_x``, ``xformer/s=<s>/d=<d>[@x<b>]``,
    ``gmres/<matrix>/m=<m>/N=<n>[@rs<r>]``,
    ``mg/<matrix>/N=<n>[@cyc<c>]``); this is the inverse.  It exists so a
    sweep point
    can be shipped across a process boundary as a plain string — the
    orchestrator's parallel workers rebuild the DAG from the name rather
    than pickling a ``Workload`` (whose ``build`` closure is not
    picklable).

    Raises :class:`KeyError` for names not produced by the builders here
    (hand-rolled workloads must be simulated in-process).
    """
    if name == "resnet/conv3_x":
        return resnet_workload()
    if name == "gnn/cora":
        return gnn_workload(cora_problem())
    if name == "gnn/protein":
        return gnn_workload(protein_problem())
    m = _SOLVER_NAME.match(name)
    if m:
        family, matrix_name, n, it = m.groups()
        spec = _dataset(matrix_name, name)
        iterations = int(it) if it else CG_ITERATIONS
        if family == "cg":
            return cg_workload(spec, int(n), iterations=iterations)
        return bicgstab_workload(spec, int(n), iterations=iterations)
    m = _XFORMER_NAME.match(name)
    if m:
        seq, d_model, blocks = m.groups()
        return transformer_workload(
            int(seq), int(d_model), blocks=int(blocks) if blocks else 1
        )
    m = _GMRES_NAME.match(name)
    if m:
        matrix_name, dim, n, rs = m.groups()
        return gmres_workload(
            _dataset(matrix_name, name), m=int(dim), n=int(n),
            restarts=int(rs) if rs else GMRES_RESTARTS,
        )
    m = _MG_NAME.match(name)
    if m:
        matrix_name, n, cyc = m.groups()
        return multigrid_workload(
            _dataset(matrix_name, name), n=int(n),
            cycles=int(cyc) if cyc else MG_CYCLES,
        )
    m = _RAND_NAME.match(name)
    if m:
        seed, n_ops, fanout, skew = (int(g) for g in m.groups())
        return random_dag_workload(seed, n_ops=n_ops, fanout=fanout, skew=skew)
    raise KeyError(f"cannot resolve workload name {name!r}")


def is_resolvable(name: str) -> bool:
    """True when :func:`resolve_workload` can rebuild ``name``."""
    try:
        resolve_workload(name)
    except KeyError:
        return False
    return True
