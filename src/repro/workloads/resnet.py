"""ResNet conv3_x residual block as a tensor DAG (Sec. VII-C1, Fig. 7 right).

A ResNet-50 conv3_x bottleneck block on ImageNet operates on 28×28 feature
maps with 512 block channels and a 128-channel bottleneck; convolutions are
modelled as implicit GEMMs (M = H·W spatial positions, contraction over
input channels × kernel positions) with 16-bit words (Table VII).

The block is preceded by a producer op (the previous block's output conv)
so the skip connection is a *classified* edge: every hop of the main path
(conv1 → conv2 → conv3 → add) is a balanced, pipelineable MAC/element-wise
op, so the skip edge is **delayed-hold** — the tiles of the block input
ride the pipeline buffer until the residual add consumes them.  This is
the dependency SET [6] handles and FLAT does not (Fig. 16a).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind
from ..core.ranks import Rank
from ..core.tensor import dense_tensor


@dataclass(frozen=True)
class ResNetBlockProblem:
    """Shapes of the conv3_x bottleneck block (ResNet-50 / ImageNet)."""

    spatial: int = 28          # feature-map side (conv3_x stage)
    block_channels: int = 512  # block input/output channels
    bottleneck_channels: int = 128
    kernel: int = 3            # conv2's spatial kernel
    word_bytes: int = 2        # Table VII: 16-bit words for ResNet
    blocks: int = 1            # number of stacked residual blocks

    def __post_init__(self) -> None:
        if min(self.spatial, self.block_channels, self.bottleneck_channels,
               self.kernel, self.blocks) <= 0:
            raise ValueError("all block parameters must be positive")

    @property
    def m(self) -> int:
        """Implicit-GEMM M: spatial positions."""
        return self.spatial * self.spatial


def build_resnet_block_dag(problem: ResNetBlockProblem = ResNetBlockProblem()) -> TensorDag:
    """Build ``problem.blocks`` stacked bottleneck blocks with a leading
    producer conv (so skip edges have an in-DAG source)."""
    m = problem.m
    c = problem.block_channels
    b = problem.bottleneck_channels
    s2 = problem.kernel * problem.kernel
    wb = problem.word_bytes

    r_m = Rank("m", m)
    r_c = Rank("c", c)
    r_b1 = Rank("b1", b)
    r_b2 = Rank("b2", b)
    r_s = Rank("s", s2)
    r_kp = Rank("kp", c)

    dag = TensorDag()
    # Leading producer: the previous stage's output conv (1x1, C -> C).
    dag.add_op(EinsumOp(
        name="pre:conv",
        inputs=(
            dense_tensor("ACT_in", (r_m, r_kp), word_bytes=wb),
            dense_tensor("W_pre", (r_kp, r_c), word_bytes=wb),
        ),
        output=dense_tensor("T0@0", (r_m, r_c), word_bytes=wb),
        contracted=("kp",),
        label="producer conv (previous block)",
    ))
    for blk in range(problem.blocks):
        t_in = f"T0@{blk}"
        # conv1: 1x1, C -> B
        dag.add_op(EinsumOp(
            name=f"c1:conv@{blk}",
            inputs=(
                dense_tensor(t_in, (r_m, r_c), word_bytes=wb),
                dense_tensor(f"W1@{blk}", (r_c, r_b1), word_bytes=wb),
            ),
            output=dense_tensor(f"T1@{blk}", (r_m, r_b1), word_bytes=wb),
            contracted=("c",),
            label=f"conv1 1x1 {c}->{b} (block {blk})",
        ))
        # conv2: 3x3, B -> B (im2col contraction over kernel x channels)
        dag.add_op(EinsumOp(
            name=f"c2:conv@{blk}",
            inputs=(
                dense_tensor(f"T1@{blk}", (r_m, r_b1), word_bytes=wb),
                dense_tensor(f"W2@{blk}", (r_s, r_b1, r_b2), word_bytes=wb),
            ),
            output=dense_tensor(f"T2@{blk}", (r_m, r_b2), word_bytes=wb),
            contracted=("s", "b1"),
            label=f"conv2 3x3 {b}->{b} (block {blk})",
        ))
        # conv3: 1x1, B -> C
        dag.add_op(EinsumOp(
            name=f"c3:conv@{blk}",
            inputs=(
                dense_tensor(f"T2@{blk}", (r_m, r_b2), word_bytes=wb),
                dense_tensor(f"W3@{blk}", (r_b2, r_c), word_bytes=wb),
            ),
            output=dense_tensor(f"T3@{blk}", (r_m, r_c), word_bytes=wb),
            contracted=("b2",),
            label=f"conv3 1x1 {b}->{c} (block {blk})",
        ))
        # residual add: OUT = T3 + T0 (the skip connection, delayed hold)
        dag.add_op(EinsumOp(
            name=f"add:residual@{blk}",
            inputs=(
                dense_tensor(f"T3@{blk}", (r_m, r_c), word_bytes=wb),
                dense_tensor(t_in, (r_m, r_c), word_bytes=wb),
            ),
            output=dense_tensor(f"T0@{blk + 1}", (r_m, r_c), word_bytes=wb),
            kind=OpKind.ELEMENTWISE,
            label=f"residual add (block {blk})",
        ))
    return dag
