"""Block Conjugate Gradient as a tensor dependency DAG (Algorithm 1, Fig. 1).

Each CG iteration contributes seven operations (line numbers from the
paper's Algorithm 1):

====  =========================  =========  ===========================
line  einsum                     dominance  notes
====  =========================  =========  ===========================
1     S = A · P                  U          SpMM; contracted rank is
                                            compressed, so uncontracted-
                                            dominant (Fig. 7's ``U*``)
2a    Δ = Pᵀ · S                 C          contraction over M
2b    Λ = Δ⁻¹ · Γ                bal        small inverse (``inv``)
3     X' = X + P · Λ             U
4     R' = R − S · Λ             U
5     Γ' = R'ᵀ · R'              C          Gram; R read once
6     Φ = Γ_prev⁻¹ · Γ'          bal        small inverse
7     P' = R' + P · Φ            U
====  =========================  =========  ===========================

Tensors are SSA-versioned across iterations (``P@0 → P@1 → ...``): English-
letter tensors (P, R, S, X) are skewed M×N; Greek tensors (Δ, Λ, Γ, Φ) are
tiny N×N' and live in the register file.  The builder reproduces exactly
the dependency structure the paper exploits: S and R have pipelineable
adjacent consumers *and* delayed-writeback downstream consumers; X's only
consumer is one full iteration away; P feeds four ops of the next
iteration, starting with an unshared SpMM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind
from ..core.ranks import Rank
from ..core.tensor import TensorSpec, csr_tensor, dense_tensor
from .matrices import MatrixSpec


@dataclass(frozen=True)
class CgProblem:
    """Parameters of one block-CG run (Table VI/VII)."""

    matrix: MatrixSpec
    n: int = 16                # block width (paper sweeps 1 and 16)
    iterations: int = 10       # Table VII: 10 CG-loop iterations
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.n <= 0 or self.iterations <= 0:
            raise ValueError("n and iterations must be positive")


def _skewed(name: str, m_rank: Rank, n_rank: Rank, word_bytes: int) -> TensorSpec:
    return dense_tensor(name, (m_rank, n_rank), word_bytes=word_bytes)


def build_cg_dag(problem: CgProblem) -> TensorDag:
    """Construct the multi-iteration block-CG DAG for ``problem``."""
    m = problem.matrix.m
    n = problem.n
    nnz = problem.matrix.nnz
    wb = problem.word_bytes
    eff = max(1e-9, nnz / m)

    # Rank vocabulary (sizes; names are per-op bindings).
    r_m = Rank("m", m)
    r_n = Rank("n", n)
    r_np = Rank("np", n)          # N' (= N in block CG)
    r_j = Rank("j", n)
    r_kc = Rank("k", m, compressed=True, effective_size=eff)  # A's columns
    r_kd = Rank("k2", m)          # dense M-sized contraction (Gram ops)
    r_k5 = Rank("k5", m)

    def skewed(name: str, first: Rank = r_m, second: Rank = r_n) -> TensorSpec:
        return _skewed(name, first, second, wb)

    def small(name: str, first: Rank = r_np, second: Rank = r_n) -> TensorSpec:
        return dense_tensor(name, (first, second), word_bytes=wb)

    a_spec = csr_tensor("A", (r_m, r_kc), nnz=nnz, word_bytes=wb)

    dag = TensorDag()
    for i in range(problem.iterations):
        nxt = i + 1
        # line 1: S_i = A · P_i   (SpMM, uncontracted-dominant)
        dag.add_op(EinsumOp(
            name=f"1:spmm@{i}",
            inputs=(a_spec, skewed(f"P@{i}", r_kc, r_n)),
            output=skewed(f"S@{i}"),
            contracted=("k",),
            label=f"S = A*P (iter {i})",
        ))
        # line 2a: Δ_i = P_iᵀ · S_i   (contracted-dominant Gram pair)
        dag.add_op(EinsumOp(
            name=f"2a:gram@{i}",
            inputs=(skewed(f"P@{i}", r_kd, r_np), skewed(f"S@{i}", r_kd, r_n)),
            output=small(f"Delta@{i}"),
            contracted=("k2",),
            label=f"Delta = P^T*S (iter {i})",
        ))
        # line 2b: Λ_i = Δ_i⁻¹ · Γ_i   (small inverse + GEMM)
        dag.add_op(EinsumOp(
            name=f"2b:inv@{i}",
            inputs=(small(f"Delta@{i}", r_np, r_j), small(f"Gamma@{i}", r_j, r_n)),
            output=small(f"Lambda@{i}"),
            contracted=("j",),
            kind=OpKind.INVERSE,
            label=f"Lambda = inv(Delta)*Gamma (iter {i})",
        ))
        # line 3: X_{i+1} = X_i + P_i · Λ_i
        dag.add_op(EinsumOp(
            name=f"3:xupd@{i}",
            inputs=(
                skewed(f"X@{i}"),
                skewed(f"P@{i}", r_m, r_j),
                small(f"Lambda@{i}", r_j, r_n),
            ),
            output=skewed(f"X@{nxt}"),
            contracted=("j",),
            label=f"X += P*Lambda (iter {i})",
        ))
        # line 4: R_{i+1} = R_i − S_i · Λ_i
        dag.add_op(EinsumOp(
            name=f"4:rupd@{i}",
            inputs=(
                skewed(f"R@{i}"),
                skewed(f"S@{i}", r_m, r_j),
                small(f"Lambda@{i}", r_j, r_n),
            ),
            output=skewed(f"R@{nxt}"),
            contracted=("j",),
            label=f"R -= S*Lambda (iter {i})",
        ))
        # line 5: Γ_{i+1} = R_{i+1}ᵀ · R_{i+1}   (Gram over one stream of R)
        dag.add_op(EinsumOp(
            name=f"5:gram@{i}",
            inputs=(skewed(f"R@{nxt}", r_k5, r_n),),
            output=small(f"Gamma@{nxt}"),
            contracted=("k5",),
            label=f"Gamma = R^T*R (iter {i})",
        ))
        # line 6: Φ_i = Γ_i⁻¹ · Γ_{i+1}
        dag.add_op(EinsumOp(
            name=f"6:inv@{i}",
            inputs=(small(f"Gamma@{i}", r_np, r_j), small(f"Gamma@{nxt}", r_j, r_n)),
            output=small(f"Phi@{i}"),
            contracted=("j",),
            kind=OpKind.INVERSE,
            label=f"Phi = inv(Gamma_prev)*Gamma (iter {i})",
        ))
        # line 7: P_{i+1} = R_{i+1} + P_i · Φ_i
        dag.add_op(EinsumOp(
            name=f"7:pupd@{i}",
            inputs=(
                skewed(f"R@{nxt}"),
                skewed(f"P@{i}", r_m, r_j),
                small(f"Phi@{i}", r_j, r_n),
            ),
            output=skewed(f"P@{nxt}"),
            contracted=("j",),
            label=f"P = R + P*Phi (iter {i})",
        ))
    return dag


def cg_ops_per_iteration() -> int:
    """Operations contributed by one CG-loop iteration.

    Algorithm 1 has seven numbered lines but line 2 is two operations
    (the Gram ``Δ = PᵀS`` and the inverse ``Λ = Δ⁻¹Γ``), so the DAG holds
    eight nodes per iteration.
    """
    return 8


def total_macs(problem: CgProblem) -> int:
    """Closed-form MAC count of the whole run (validates the DAG)."""
    m, n, nnz, iters = problem.matrix.m, problem.n, problem.matrix.nnz, problem.iterations
    per_iter = (
        nnz * n              # line 1 SpMM
        + m * n * n          # line 2a
        + (n ** 3 + n * n * n)  # line 2b inverse + GEMM
        + m * n * n          # line 3
        + m * n * n          # line 4
        + m * n * n          # line 5
        + (n ** 3 + n * n * n)  # line 6
        + m * n * n          # line 7
    )
    return per_iter * iters
