"""Sparse-matrix datasets (Table VI) and synthetic generators.

The paper pulls fv1, shallow_water1, G2_circuit and NASA4704 from
SuiteSparse and the GNN graphs from OMEGA.  With no network access we keep
the *exact* (M, nnz) the paper reports — those are the only quantities the
cost model consumes — and provide synthetic SPD generators producing
matrices of matching shape/occupancy for the numeric solvers:

* ``poisson2d`` — 5-point stencil (classic SPD model problem);
* ``stencil9`` — 9-point stencil (≈9 nnz/row, fv1-like);
* ``banded_spd`` — diagonal + symmetric bands at configurable occupancy
  (shallow_water1 has exactly 4 nnz/row, NASA4704 ~22);
* ``random_symmetric_spd`` — random symmetric pattern + diagonal dominance
  (G2_circuit-like irregular occupancy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class MatrixSpec:
    """Shape/occupancy record for one dataset (what the cost model uses)."""

    name: str
    m: int
    nnz: int
    description: str = ""

    @property
    def nnz_per_row(self) -> float:
        """Mean stored entries per row — the SpMM's effective contracted
        extent (what makes the CG SpMM ``U``-dominant, Fig. 7)."""
        return self.nnz / self.m

    def csr_bytes(self, word_bytes: int = 4, index_bytes: int = 4) -> int:
        """CSR footprint: values + column indices + row offsets (the
        quantity every DRAM-traffic model streams for the operand A)."""
        return self.nnz * (word_bytes + index_bytes) + (self.m + 1) * index_bytes


#: Table VI datasets (paper-exact M and nnz).
FV1 = MatrixSpec("fv1", m=9604, nnz=85264, description="2D/3D problem")
SHALLOW_WATER1 = MatrixSpec(
    "shallow_water1", m=81920, nnz=327680, description="fluid dynamics"
)
G2_CIRCUIT = MatrixSpec("G2_circuit", m=150102, nnz=726674, description="circuit sim")
NASA4704 = MatrixSpec("NASA4704", m=4704, nnz=104756, description="structures (Fig. 13)")
CORA_GRAPH = MatrixSpec("cora", m=2708, nnz=9464, description="GCN citation graph")
PROTEIN_GRAPH = MatrixSpec("protein", m=3786, nnz=14456, description="GCN protein graph")

DATASETS: Dict[str, MatrixSpec] = {
    s.name: s
    for s in (FV1, SHALLOW_WATER1, G2_CIRCUIT, NASA4704, CORA_GRAPH, PROTEIN_GRAPH)
}


# -- generators -------------------------------------------------------------------


def poisson2d(side: int) -> sp.csr_matrix:
    """5-point Laplacian on a ``side`` × ``side`` grid (SPD)."""
    if side <= 0:
        raise ValueError("side must be positive")
    n = side * side
    main = 4.0 * np.ones(n)
    off1 = -np.ones(n - 1)
    # Remove couplings across grid-row boundaries.
    off1[np.arange(1, n) % side == 0] = 0.0
    offs = -np.ones(n - side)
    a = sp.diags(
        [main, off1, off1, offs, offs],
        [0, -1, 1, -side, side],
        format="csr",
    )
    return a.tocsr()


def stencil9(side: int) -> sp.csr_matrix:
    """9-point Laplacian on a ``side`` × ``side`` grid (SPD, ~9 nnz/row)."""
    if side <= 0:
        raise ValueError("side must be positive")
    n = side * side
    rows, cols, vals = [], [], []
    for i in range(side):
        for j in range(side):
            r = i * side + j
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    ii, jj = i + di, j + dj
                    if 0 <= ii < side and 0 <= jj < side:
                        c = ii * side + jj
                        rows.append(r)
                        cols.append(c)
                        vals.append(8.0 if c == r else -1.0)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def banded_spd(m: int, bands: int, band_offsets: Optional[Tuple[int, ...]] = None) -> sp.csr_matrix:
    """Diagonal + ``bands`` symmetric off-diagonal pairs, diagonally dominant.

    nnz ≈ m * (1 + 2*bands) minus boundary truncation; choose
    ``bands = (target_nnz/m - 1) / 2``.
    """
    if m <= 0 or bands < 0:
        raise ValueError("m must be positive, bands non-negative")
    if band_offsets is None:
        # Spread offsets: 1, ~sqrt(m), multiples thereof — keeps bandwidth
        # realistic for stencil-like problems.
        step = max(1, int(math.sqrt(m)))
        band_offsets = tuple(1 + k * step for k in range(bands))
    diags = [np.full(m, 2.0 * (1 + 2 * len(band_offsets)))]
    offsets = [0]
    for off in band_offsets:
        if off >= m:
            continue
        v = -np.ones(m - off)
        diags.extend([v, v])
        offsets.extend([-off, off])
    return sp.diags(diags, offsets, format="csr").tocsr()


def random_symmetric_spd(m: int, nnz_target: int, seed: int = 0) -> sp.csr_matrix:
    """Random symmetric pattern + dominant diagonal (SPD by Gershgorin).

    Total nnz lands within a few percent of ``nnz_target`` (diagonal
    included); entries are -1 with a dominant positive diagonal.
    """
    if nnz_target < m:
        raise ValueError("nnz_target must be at least m (the diagonal)")
    rng = np.random.default_rng(seed)
    off_pairs = max(0, (nnz_target - m) // 2)
    rows = rng.integers(0, m, size=off_pairs)
    cols = rng.integers(0, m, size=off_pairs)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    r = np.concatenate([rows, cols])
    c = np.concatenate([cols, rows])
    v = -np.ones(r.size)
    off = sp.csr_matrix((v, (r, c)), shape=(m, m))
    off.sum_duplicates()
    off.data[:] = -1.0
    degree = np.abs(off).sum(axis=1).A1
    a = off + sp.diags(degree + 1.0)
    return a.tocsr()


def graph_adjacency(m: int, nnz_target: int, seed: int = 0) -> sp.csr_matrix:
    """Symmetric 0/1 adjacency with self-loops (GCN-style Â), ~nnz_target."""
    a = random_symmetric_spd(m, max(nnz_target, m), seed=seed)
    a = a.tocsr()
    a.data[:] = 1.0
    return a


def _trim_to_nnz(a: sp.csr_matrix, target_nnz: int, seed: int = 0) -> sp.csr_matrix:
    """Remove random symmetric off-diagonal pairs until nnz ≈ target.

    Diagonal entries are never removed and the generators keep the diagonal
    dominant over the *untrimmed* rows, so SPD-ness survives trimming.
    """
    a = a.tocoo()
    excess = a.nnz - target_nnz
    if excess <= 0:
        return a.tocsr()
    upper = np.flatnonzero(a.row < a.col)
    rng = np.random.default_rng(seed)
    kill_pairs = min(len(upper), excess // 2)
    chosen = rng.choice(upper, size=kill_pairs, replace=False)
    pair_key = {(int(a.row[i]), int(a.col[i])) for i in chosen}
    keep = np.ones(a.nnz, dtype=bool)
    for i in range(a.nnz):
        r, c = int(a.row[i]), int(a.col[i])
        if (r, c) in pair_key or (c, r) in pair_key:
            keep[i] = False
    out = sp.csr_matrix(
        (a.data[keep], (a.row[keep], a.col[keep])), shape=a.shape
    )
    return out


def synthesize(spec: MatrixSpec, seed: int = 0) -> sp.csr_matrix:
    """Generate an SPD/graph matrix matching ``spec``'s shape and occupancy.

    The generator is chosen by occupancy pattern, then trimmed to within a
    few percent of the paper's nnz (tests pin ±20 %).
    """
    per_row = spec.nnz_per_row
    if spec.name in ("cora", "protein"):
        return graph_adjacency(spec.m, spec.nnz, seed=seed)
    side = int(round(math.sqrt(spec.m)))
    if side * side == spec.m and 8.0 <= per_row <= 10.0:
        return _trim_to_nnz(stencil9(side), spec.nnz, seed=seed)
    if side * side == spec.m and 4.0 <= per_row < 6.0:
        return _trim_to_nnz(poisson2d(side), spec.nnz, seed=seed)
    if per_row < 6.0 or per_row >= 15.0:
        bands = max(1, int(math.ceil((per_row - 1) / 2)))
        return _trim_to_nnz(banded_spd(spec.m, bands), spec.nnz, seed=seed)
    return random_symmetric_spd(spec.m, spec.nnz, seed=seed)


def spec_of(matrix: sp.spmatrix, name: str = "custom") -> MatrixSpec:
    """Measure a concrete matrix into a :class:`MatrixSpec`."""
    csr = matrix.tocsr()
    return MatrixSpec(name=name, m=csr.shape[0], nnz=int(csr.nnz))
