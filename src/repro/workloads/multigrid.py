"""Two-level multigrid V-cycle as a tensor dependency DAG (extension family).

Not a paper workload: this family extends the Table VI solver set with the
**grid-transfer** reuse signature — tensors produced on one grid are
consumed on another after a rank change, so their reuse can never pipeline
and must round-trip through the buffer (delayed writeback), while the
fine-grid solution is *held* across the entire coarse-grid excursion.

One V-cycle (``nu`` weighted-Jacobi sweeps pre/post, ``nu`` sweeps as the
coarse solve):

====  ==================================  =========  ===================
step  einsum                              dominance  notes
====  ==================================  =========  ===================
pre   AXs = A·X ; X' = X + w(B − AXs)     U, U       nu smoother sweeps
res   AXp = A·X ; R = B − AXp             U, U       fine residual
rst   RC = Pᵀ · R                         U          restriction (fine→coarse)
crs   ACE = Ac·E ; E' = E + w(RC − ACE)   U, U       coarse smoothing
prl   EF = P · E                          U          prolongation (coarse→fine)
cor   X' = X + EF                         U          correction
post  (as pre)                            U, U       nu smoother sweeps
====  ==================================  =========  ===================

Algorithm 2 consequences (pinned by ``tests/test_new_workloads.py``):

* grid transfers break pipelining: ``R → rst`` and ``E → prl`` bind the
  tensor on the *contracted* transfer rank, so the consumer's dominant
  rank (the destination grid) is unshared — both edges are **sequential**,
  and every reuse whose path crosses a transfer is **delayed-writeback**;
* ``RC`` (the restricted residual) is re-read by *every* coarse smoother
  sweep — the "coarse-grid tensor held across sweeps" signature, all
  delayed-writeback;
* the smoothed fine solution rides from the last pre-smoother sweep to
  the correction add across the whole coarse excursion —
  **delayed-writeback** at the longest distance in the program;
* within a sweep, ``AXs → jac`` pipelines (the SpMM streams its update
  straight into the element-wise Jacobi step), so explicit pipelining
  still pays — the family mixes all the classes except delayed-hold.

The coarse operator ``Ac`` and the transfer operators ``P``/``Pt`` are
program inputs whose footprints follow standard Galerkin coarsening:
``Mc = M/4`` (2-D full coarsening), ``nnz(Ac) = nnz/4``, and 4 transfer
weights per coarse point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind
from ..core.ranks import Rank
from ..core.tensor import TensorSpec, csr_tensor, dense_tensor
from .matrices import MatrixSpec

#: 2-D full coarsening: each coarse point aggregates a 2x2 fine patch.
COARSENING_FACTOR: int = 4
#: Transfer-operator occupancy: weights per coarse point (bilinear-ish).
TRANSFER_NNZ_PER_COARSE: int = 4


@dataclass(frozen=True)
class MultigridProblem:
    """Parameters of one 2-level V-cycle run on ``matrix``.

    Extension semantics: the registry name grammar
    (``mg/<matrix>/N=<n>[@cyc<cycles>]``) encodes the dataset, block
    width and cycle count; ``nu`` (sweeps per smoothing pass, default 2)
    and ``word_bytes`` stay at their defaults in registry-built problems.
    """

    matrix: MatrixSpec
    n: int = 1                 # right-hand-side block width
    cycles: int = 2            # number of V-cycles
    nu: int = 2                # smoother sweeps per pre/post/coarse pass
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.n <= 0 or self.cycles <= 0 or self.nu <= 0:
            raise ValueError("n, cycles and nu must be positive")
        if self.matrix.m < COARSENING_FACTOR:
            raise ValueError("matrix too small to coarsen")

    @property
    def coarse_m(self) -> int:
        """Coarse-grid size under 2-D full coarsening."""
        return max(1, self.matrix.m // COARSENING_FACTOR)

    @property
    def coarse_nnz(self) -> int:
        """Galerkin coarse-operator occupancy (same stencil density)."""
        return max(1, self.matrix.nnz // COARSENING_FACTOR)

    @property
    def transfer_nnz(self) -> int:
        """Stored weights of the restriction/prolongation operator."""
        return TRANSFER_NNZ_PER_COARSE * self.coarse_m


def build_multigrid_dag(problem: MultigridProblem) -> TensorDag:
    """Construct the multi-cycle 2-level V-cycle DAG for ``problem``."""
    mf = problem.matrix.m
    mc = problem.coarse_m
    n = problem.n
    wb = problem.word_bytes

    r_m = Rank("m", mf)
    r_mc = Rank("mc", mc)
    r_n = Rank("n", n)
    # Compressed contraction ranks (nominal extent, effective occupancy).
    r_kf = Rank("k", mf, compressed=True,
                effective_size=max(1e-9, problem.matrix.nnz / mf))
    r_kc = Rank("kc", mc, compressed=True,
                effective_size=max(1e-9, problem.coarse_nnz / mc))
    r_pk = Rank("pk", mf, compressed=True,           # restriction: over fine
                effective_size=max(1e-9, problem.transfer_nnz / mc))
    r_pc = Rank("pc", mc, compressed=True,           # prolongation: over coarse
                effective_size=max(1e-9, problem.transfer_nnz / mf))

    def fine(name: str, first: Rank = r_m, second: Rank = r_n) -> TensorSpec:
        return dense_tensor(name, (first, second), word_bytes=wb)

    def coarse(name: str, first: Rank = r_mc, second: Rank = r_n) -> TensorSpec:
        return dense_tensor(name, (first, second), word_bytes=wb)

    a_f = csr_tensor("A", (r_m, r_kf), nnz=problem.matrix.nnz, word_bytes=wb)
    a_c = csr_tensor("Ac", (r_mc, r_kc), nnz=problem.coarse_nnz, word_bytes=wb)
    p_t = csr_tensor("Pt", (r_mc, r_pk), nnz=problem.transfer_nnz, word_bytes=wb)
    p_f = csr_tensor("P", (r_m, r_pc), nnz=problem.transfer_nnz, word_bytes=wb)

    dag = TensorDag()

    def smooth_pass(tag: str, c: int, x_in: str, x_out: str) -> str:
        """Emit ``problem.nu`` weighted-Jacobi sweeps, return final X name."""
        cur = x_in
        for s in range(problem.nu):
            out = x_out if s == problem.nu - 1 else f"X@{c}.{tag}{s}"
            dag.add_op(EinsumOp(
                name=f"{tag}:spmm@{c}.{s}",
                inputs=(a_f, fine(cur, r_kf, r_n)),
                output=fine(f"AX@{c}.{tag}{s}"),
                contracted=("k",),
                label=f"AX = A*X ({tag}-smooth {s}, cycle {c})",
            ))
            dag.add_op(EinsumOp(
                name=f"{tag}:jac@{c}.{s}",
                inputs=(fine(cur), fine(f"AX@{c}.{tag}{s}"), fine("B")),
                output=fine(out),
                kind=OpKind.ELEMENTWISE,
                label=f"X += w*(B - AX) ({tag}-smooth {s}, cycle {c})",
            ))
            cur = out
        return cur

    for c in range(problem.cycles):
        # Pre-smoothing: nu weighted-Jacobi sweeps on the fine grid.
        x_pre = smooth_pass("pre", c, f"X@{c}", f"X@{c}.pre")
        # Fine-grid residual.
        dag.add_op(EinsumOp(
            name=f"res:spmm@{c}",
            inputs=(a_f, fine(x_pre, r_kf, r_n)),
            output=fine(f"AXp@{c}"),
            contracted=("k",),
            label=f"AXp = A*X_pre (cycle {c})",
        ))
        dag.add_op(EinsumOp(
            name=f"res:sub@{c}",
            inputs=(fine(f"AXp@{c}"), fine("B")),
            output=fine(f"R@{c}"),
            kind=OpKind.ELEMENTWISE,
            label=f"R = B - AXp (cycle {c})",
        ))
        # Restriction: fine residual -> coarse grid (rank change).
        dag.add_op(EinsumOp(
            name=f"rst:restrict@{c}",
            inputs=(p_t, fine(f"R@{c}", r_pk, r_n)),
            output=coarse(f"RC@{c}"),
            contracted=("pk",),
            label=f"RC = P^T*R (cycle {c})",
        ))
        # Coarse solve: nu Jacobi sweeps from a zero initial guess; RC is
        # re-read by every sweep (held across the whole coarse pass).
        dag.add_op(EinsumOp(
            name=f"crs:jac@{c}.0",
            inputs=(coarse(f"RC@{c}"),),
            output=coarse(f"E@{c}.1"),
            kind=OpKind.ELEMENTWISE,
            label=f"E = w*RC (coarse sweep 0, cycle {c})",
        ))
        for s in range(1, problem.nu):
            dag.add_op(EinsumOp(
                name=f"crs:spmm@{c}.{s}",
                inputs=(a_c, coarse(f"E@{c}.{s}", r_kc, r_n)),
                output=coarse(f"ACE@{c}.{s}"),
                contracted=("kc",),
                label=f"ACE = Ac*E (coarse sweep {s}, cycle {c})",
            ))
            dag.add_op(EinsumOp(
                name=f"crs:jac@{c}.{s}",
                inputs=(
                    coarse(f"E@{c}.{s}"),
                    coarse(f"ACE@{c}.{s}"),
                    coarse(f"RC@{c}"),
                ),
                output=coarse(f"E@{c}.{s + 1}"),
                kind=OpKind.ELEMENTWISE,
                label=f"E += w*(RC - ACE) (coarse sweep {s}, cycle {c})",
            ))
        # Prolongation: coarse correction -> fine grid (rank change back).
        dag.add_op(EinsumOp(
            name=f"prl:prolong@{c}",
            inputs=(p_f, coarse(f"E@{c}.{problem.nu}", r_pc, r_n)),
            output=fine(f"EF@{c}"),
            contracted=("pc",),
            label=f"EF = P*E (cycle {c})",
        ))
        # Correction: the pre-smoothed X re-surfaces after the whole
        # coarse excursion (longest delayed-writeback in the program).
        dag.add_op(EinsumOp(
            name=f"cor:add@{c}",
            inputs=(fine(x_pre), fine(f"EF@{c}")),
            output=fine(f"X@{c}.cor"),
            kind=OpKind.ELEMENTWISE,
            label=f"X = X_pre + EF (cycle {c})",
        ))
        # Post-smoothing.
        smooth_pass("post", c, f"X@{c}.cor", f"X@{c + 1}")
    return dag


def multigrid_ops_per_cycle(nu: int = 2) -> int:
    """Operations contributed by one V-cycle: ``2*nu`` pre-smoothing ops,
    residual pair, restriction, ``2*nu - 1`` coarse-solve ops,
    prolongation, correction, ``2*nu`` post-smoothing ops."""
    return 2 * nu + 2 + 1 + (2 * nu - 1) + 1 + 1 + 2 * nu
