"""BiCGStab as a tensor dependency DAG (Fig. 13's second PDE solver).

Van der Vorst's stabilised bi-conjugate gradient [38] solves the same
systems as CG without requiring symmetry.  One iteration, with scalar
recurrences folded into the vector operations they feed (they are
O(N²) work on N×N' tensors and irrelevant to traffic):

====  ==============================  =========  =====================
step  einsum                          dominance  notes
====  ==============================  =========  =====================
r     ρ  = R₀ᵀ · R_i                  C          Gram with fixed R₀
p     P' = R_i + β(P_i − ω V_i)       U          element-wise update
v     V' = A · P'                     U          SpMM
a     α  = R₀ᵀ · V'                   C          Gram
s     S  = R_i − α V'                 U          element-wise
t     T  = A · S                      U          SpMM
w     ω  = Tᵀ · S                     C          Gram
x     X' = X_i + α P' + ω S           U          element-wise
q     R' = S − ω T                    U          element-wise
====  ==============================  =========  =====================

Like CG, every skewed intermediate has delayed downstream consumers
(S feeds steps t, w, x and q; V' feeds a and s; ...), so pipelining-only
schedulers gain little and CHORD's writeback reuse dominates — the paper's
Fig. 13 BiCGStab panels show the same ordering as CG.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind
from ..core.ranks import Rank
from ..core.tensor import TensorSpec, csr_tensor, dense_tensor
from .matrices import MatrixSpec


@dataclass(frozen=True)
class BiCgStabProblem:
    """Parameters of one BiCGStab run (paper: N=1 on the PDE datasets)."""

    matrix: MatrixSpec
    n: int = 1
    iterations: int = 10
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.n <= 0 or self.iterations <= 0:
            raise ValueError("n and iterations must be positive")


def build_bicgstab_dag(problem: BiCgStabProblem) -> TensorDag:
    """Construct the multi-iteration BiCGStab DAG."""
    m, n, nnz, wb = problem.matrix.m, problem.n, problem.matrix.nnz, problem.word_bytes
    eff = max(1e-9, nnz / m)

    r_m = Rank("m", m)
    r_n = Rank("n", n)
    r_np = Rank("np", n)
    r_kc = Rank("k", m, compressed=True, effective_size=eff)
    r_kd = Rank("k2", m)

    def skewed(name: str, first: Rank = r_m, second: Rank = r_n) -> TensorSpec:
        return dense_tensor(name, (first, second), word_bytes=wb)

    def small(name: str, first: Rank = r_np, second: Rank = r_n) -> TensorSpec:
        return dense_tensor(name, (first, second), word_bytes=wb)

    a_spec = csr_tensor("A", (r_m, r_kc), nnz=nnz, word_bytes=wb)

    dag = TensorDag()
    for i in range(problem.iterations):
        nxt = i + 1
        # ρ_i = R₀ᵀ R_i
        dag.add_op(EinsumOp(
            name=f"r:rho@{i}",
            inputs=(skewed("R0", r_kd, r_np), skewed(f"R@{i}", r_kd, r_n)),
            output=small(f"rho@{i}"),
            contracted=("k2",),
            label=f"rho = R0^T*R (iter {i})",
        ))
        # P_{i+1} = R_i + β (P_i − ω V_i)
        dag.add_op(EinsumOp(
            name=f"p:pupd@{i}",
            inputs=(skewed(f"R@{i}"), skewed(f"P@{i}"), skewed(f"V@{i}"),
                    small(f"rho@{i}")),
            output=skewed(f"P@{nxt}"),
            kind=OpKind.ELEMENTWISE,
            label=f"P update (iter {i})",
        ))
        # V_{i+1} = A · P_{i+1}
        dag.add_op(EinsumOp(
            name=f"v:spmm@{i}",
            inputs=(a_spec, skewed(f"P@{nxt}", r_kc, r_n)),
            output=skewed(f"V@{nxt}"),
            contracted=("k",),
            label=f"V = A*P (iter {i})",
        ))
        # α_i = R₀ᵀ V_{i+1}
        dag.add_op(EinsumOp(
            name=f"a:alpha@{i}",
            inputs=(skewed("R0", r_kd, r_np), skewed(f"V@{nxt}", r_kd, r_n)),
            output=small(f"alpha@{i}"),
            contracted=("k2",),
            label=f"alpha = R0^T*V (iter {i})",
        ))
        # S_i = R_i − α V_{i+1}
        dag.add_op(EinsumOp(
            name=f"s:supd@{i}",
            inputs=(skewed(f"R@{i}"), skewed(f"V@{nxt}"), small(f"alpha@{i}")),
            output=skewed(f"S@{i}"),
            kind=OpKind.ELEMENTWISE,
            label=f"S = R - alpha*V (iter {i})",
        ))
        # T_i = A · S_i
        dag.add_op(EinsumOp(
            name=f"t:spmm@{i}",
            inputs=(a_spec, skewed(f"S@{i}", r_kc, r_n)),
            output=skewed(f"T@{i}"),
            contracted=("k",),
            label=f"T = A*S (iter {i})",
        ))
        # ω_i = T_iᵀ S_i
        dag.add_op(EinsumOp(
            name=f"w:omega@{i}",
            inputs=(skewed(f"T@{i}", r_kd, r_np), skewed(f"S@{i}", r_kd, r_n)),
            output=small(f"omega@{i}"),
            contracted=("k2",),
            label=f"omega = T^T*S (iter {i})",
        ))
        # X_{i+1} = X_i + α P_{i+1} + ω S_i
        dag.add_op(EinsumOp(
            name=f"x:xupd@{i}",
            inputs=(skewed(f"X@{i}"), skewed(f"P@{nxt}"), skewed(f"S@{i}"),
                    small(f"omega@{i}")),
            output=skewed(f"X@{nxt}"),
            kind=OpKind.ELEMENTWISE,
            label=f"X update (iter {i})",
        ))
        # R_{i+1} = S_i − ω T_i
        dag.add_op(EinsumOp(
            name=f"q:rupd@{i}",
            inputs=(skewed(f"S@{i}"), skewed(f"T@{i}"), small(f"omega@{i}")),
            output=skewed(f"R@{nxt}"),
            kind=OpKind.ELEMENTWISE,
            label=f"R = S - omega*T (iter {i})",
        ))
    return dag


def bicgstab_ops_per_iteration() -> int:
    """Operations contributed by one BiCGStab iteration (the nine steps
    of the module table: three Grams, two SpMMs, four vector updates)."""
    return 9
