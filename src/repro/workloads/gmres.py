"""Restarted GMRES(m) as a tensor dependency DAG (extension family).

Not a paper workload: this family extends the Table VI solver set with a
**growing Krylov basis** — the adversarial reuse pattern for recency-based
caches and the best case for RIFF's frequency hints.  Arnoldi step ``j``
of a restart cycle re-reads *every* prior basis vector twice:

====  =====================================  =========  ================
step  einsum                                 dominance  notes
====  =====================================  =========  ================
r0    AX = A · X ; V₀ = B − AX               U, U       restart residual
w     W_j = A · V_j                          U          SpMM
h     H_j = [V₀ … V_j]ᵀ · W_j                C          Gram vs basis
o     V_{j+1} = W_j − Σ_i H_ij V_i           U          orthogonalize
ls    Y = lstsq(H₀ … H_{m−1})                inv        small solve
x     X' = X + [V₀ … V_m] · Y                U          solution update
====  =====================================  =========  ================

Algorithm 2 consequences (pinned by ``tests/test_new_workloads.py``):

* ``W_j → h`` is **pipelineable** (the one adjacent stream, like CG's
  SpMM → Gram pair);
* every basis re-read ``V_i → {h, o}@j`` for ``j ≥ i`` and the final
  ``V_i → x`` are **delayed-writeback** — the path always crosses a
  contracted Gram node or the unshared SpMM hand-off;
* Gram/inverse out-edges are **sequential**.

The reuse *frequency* of ``V_i`` is ``2(m − i) + 2``: early basis vectors
are the most-reused tensors in the program yet are the *least recently
used* at every step — LRU evicts exactly the wrong lines, while RIFF's
remaining-frequency ranking keeps them resident (Sec. VI-B's hint
argument, pushed to its extreme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind
from ..core.ranks import Rank
from ..core.tensor import TensorSpec, csr_tensor, dense_tensor
from .matrices import MatrixSpec


@dataclass(frozen=True)
class GmresProblem:
    """Parameters of one restarted GMRES(m) run.

    Extension semantics: the registry name grammar
    (``gmres/<matrix>/m=<m>/N=<n>[@rs<restarts>]``) encodes every field
    except ``word_bytes`` (fixed at the solver default of 4, Table VII).
    """

    matrix: MatrixSpec
    m: int = 8                 # Krylov dimension per restart cycle
    n: int = 1                 # right-hand-side block width
    restarts: int = 2          # number of restart cycles
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.restarts <= 0:
            raise ValueError("m, n and restarts must be positive")


def build_gmres_dag(problem: GmresProblem) -> TensorDag:
    """Construct the multi-restart GMRES(m) DAG for ``problem``."""
    mm = problem.matrix.m
    n = problem.n
    nnz = problem.matrix.nnz
    wb = problem.word_bytes
    eff = max(1e-9, nnz / mm)

    r_m = Rank("m", mm)
    r_n = Rank("n", n)
    r_kc = Rank("k", mm, compressed=True, effective_size=eff)  # A's columns
    r_kd = Rank("k2", mm)       # dense M-sized contraction (Gram ops)
    r_y = Rank("y", problem.m + 1)

    def vec(name: str, first: Rank = r_m, second: Rank = r_n) -> TensorSpec:
        return dense_tensor(name, (first, second), word_bytes=wb)

    a_spec = csr_tensor("A", (r_m, r_kc), nnz=nnz, word_bytes=wb)

    dag = TensorDag()
    for c in range(problem.restarts):
        # Restart residual: AX = A·X, then V_0 = (B − AX) / ||·||.
        dag.add_op(EinsumOp(
            name=f"r0:spmm@{c}",
            inputs=(a_spec, vec(f"X@{c}", r_kc, r_n)),
            output=vec(f"AX@{c}"),
            contracted=("k",),
            label=f"AX = A*X (restart {c})",
        ))
        dag.add_op(EinsumOp(
            name=f"r0:res@{c}",
            inputs=(vec(f"AX@{c}"), vec("B")),
            output=vec(f"V@{c}.0"),
            kind=OpKind.ELEMENTWISE,
            label=f"V0 = normalize(B - AX) (restart {c})",
        ))
        for j in range(problem.m):
            basis: List[TensorSpec] = [
                vec(f"V@{c}.{i}", r_kd, r_n) for i in range(j + 1)
            ]
            r_b = Rank(f"b{j}", j + 1)
            # SpMM: expand the Krylov space by one vector.
            dag.add_op(EinsumOp(
                name=f"w:spmm@{c}.{j}",
                inputs=(a_spec, vec(f"V@{c}.{j}", r_kc, r_n)),
                output=vec(f"W@{c}.{j}"),
                contracted=("k",),
                label=f"W = A*V_{j} (restart {c})",
            ))
            # Gram against the WHOLE basis: every prior V is re-read.
            dag.add_op(EinsumOp(
                name=f"h:gram@{c}.{j}",
                inputs=(*basis, vec(f"W@{c}.{j}", r_kd, r_n)),
                output=dense_tensor(f"H@{c}.{j}", (r_b, r_n), word_bytes=wb),
                contracted=("k2",),
                label=f"H_j = basis^T*W (restart {c}, step {j})",
            ))
            # Orthogonalize: again reads every prior basis vector.
            dag.add_op(EinsumOp(
                name=f"o:orth@{c}.{j}",
                inputs=(
                    vec(f"W@{c}.{j}"),
                    *[vec(f"V@{c}.{i}") for i in range(j + 1)],
                    dense_tensor(f"H@{c}.{j}", (r_b, r_n), word_bytes=wb),
                ),
                output=vec(f"V@{c}.{j + 1}"),
                kind=OpKind.ELEMENTWISE,
                label=f"V_{j + 1} = W - sum_i H_ij V_i (restart {c})",
            ))
        # Small least-squares solve on the Hessenberg columns.
        dag.add_op(EinsumOp(
            name=f"ls:lstsq@{c}",
            inputs=tuple(
                dense_tensor(f"H@{c}.{j}", (Rank(f"b{j}", j + 1), r_n),
                             word_bytes=wb)
                for j in range(problem.m)
            ),
            output=dense_tensor(f"Yc@{c}", (r_y, r_n), word_bytes=wb),
            kind=OpKind.INVERSE,
            label=f"Y = lstsq(H) (restart {c})",
        ))
        # Solution update: X' = X + V·Y — the final full-basis re-read.
        dag.add_op(EinsumOp(
            name=f"x:upd@{c}",
            inputs=(
                vec(f"X@{c}"),
                *[vec(f"V@{c}.{i}") for i in range(problem.m + 1)],
                dense_tensor(f"Yc@{c}", (r_y, r_n), word_bytes=wb),
            ),
            output=vec(f"X@{c + 1}"),
            kind=OpKind.ELEMENTWISE,
            label=f"X' = X + V*Y (restart {c})",
        ))
    return dag


def gmres_ops_per_restart(m: int) -> int:
    """Operations contributed by one restart cycle: residual pair,
    ``m`` Arnoldi triples, least-squares solve, solution update."""
    return 2 + 3 * m + 2
