"""GCN layer as a tensor dependency DAG (Table VI's GNN rows).

A graph-convolution layer computes ``H = Â · X · W``.  SCORE orders it
aggregation-first — ``AX = Â·X`` (SpMM) then ``H = AX·W`` (GEMM) — so the
skewed intermediate ``AX`` streams straight into the combination GEMM:
its single consumer is adjacent and pipelineable, which is why CELLO and
FLAT tie on GNNs (Sec. VII-B1) while op-by-op baselines pay the full
round trip of AX.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp
from ..core.ranks import Rank
from ..core.tensor import csr_tensor, dense_tensor
from .matrices import MatrixSpec


@dataclass(frozen=True)
class GnnProblem:
    """One GCN layer: M vertices, N input features, O output features."""

    graph: MatrixSpec
    in_features: int
    out_features: int
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError("feature sizes must be positive")


def cora_problem() -> GnnProblem:
    """Table VI GNN row 1: the cora citation graph (1433 -> 7 features)."""
    from .matrices import CORA_GRAPH

    return GnnProblem(graph=CORA_GRAPH, in_features=1433, out_features=7)


def protein_problem() -> GnnProblem:
    """Table VI GNN row 2: the protein graph (29 -> 2 features)."""
    from .matrices import PROTEIN_GRAPH

    return GnnProblem(graph=PROTEIN_GRAPH, in_features=29, out_features=2)


def build_gnn_dag(problem: GnnProblem, layers: int = 1) -> TensorDag:
    """Build ``layers`` stacked GCN layers (aggregation-first order).

    For multi-layer stacks the hidden width stays at ``out_features``.
    """
    if layers <= 0:
        raise ValueError("layers must be positive")
    m = problem.graph.m
    nnz = problem.graph.nnz
    wb = problem.word_bytes
    eff = max(1e-9, nnz / m)

    r_m = Rank("m", m)
    r_kc = Rank("k", m, compressed=True, effective_size=eff)

    dag = TensorDag()
    feat_in = problem.in_features
    for layer in range(layers):
        feat_out = problem.out_features
        r_f = Rank("f", feat_in)
        r_o = Rank("o", feat_out)
        adj = csr_tensor("Adj", (r_m, r_kc), nnz=nnz, word_bytes=wb)
        x_name = "X@0" if layer == 0 else f"H@{layer - 1}"
        # Aggregation: AX = Â · X  (SpMM over the compressed rank)
        dag.add_op(EinsumOp(
            name=f"agg@{layer}",
            inputs=(adj, dense_tensor(x_name, (r_kc, r_f), word_bytes=wb)),
            output=dense_tensor(f"AX@{layer}", (r_m, r_f), word_bytes=wb),
            contracted=("k",),
            label=f"AX = A*X (layer {layer})",
        ))
        # Combination: H = AX · W  (dense GEMM, features contracted)
        dag.add_op(EinsumOp(
            name=f"comb@{layer}",
            inputs=(
                dense_tensor(f"AX@{layer}", (r_m, r_f), word_bytes=wb),
                dense_tensor(f"W@{layer}", (r_f, r_o), word_bytes=wb),
            ),
            output=dense_tensor(f"H@{layer}", (r_m, r_o), word_bytes=wb),
            contracted=("f",),
            label=f"H = AX*W (layer {layer})",
        ))
        feat_in = feat_out
    return dag
