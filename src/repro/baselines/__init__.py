"""Table IV baseline accelerator configurations and the batch runner."""

from .configs import (
    CACHE_POLICIES,
    EXTRA_CONFIGS,
    MAIN_CONFIGS,
    TABLE_IV,
    ConfigSpec,
    cello_variant_name,
    config_names,
    is_known_config,
    parse_cello_variant,
    run_config,
)
from .flexagon import oracle_traffic, run_flexagon
from .flat import covered_tensors, flat_schedule, run_flat
from .set_sched import run_set, set_schedule
from .cello import cello_schedule, run_cello, run_prelude_only
from .runner import (
    clear_cache,
    get_store,
    run_matrix,
    run_workload_config,
    set_store,
    simulation_count,
)

__all__ = [
    "CACHE_POLICIES",
    "EXTRA_CONFIGS",
    "MAIN_CONFIGS",
    "TABLE_IV",
    "ConfigSpec",
    "cello_variant_name",
    "config_names",
    "is_known_config",
    "parse_cello_variant",
    "run_config",
    "oracle_traffic",
    "run_flexagon",
    "covered_tensors",
    "flat_schedule",
    "run_flat",
    "run_set",
    "set_schedule",
    "cello_schedule",
    "run_cello",
    "run_prelude_only",
    "clear_cache",
    "get_store",
    "run_matrix",
    "run_workload_config",
    "set_store",
    "simulation_count",
]
