"""Table IV: the evaluated schedule × buffer configurations.

Beyond the paper's seven fixed rows this module understands two
*parameterised* config families used by the co-design autotuner
(``repro tune``, :mod:`repro.tuner`):

* ``CELLO[...]`` — SCORE + CHORD with individual schedule knobs toggled
  (:func:`cello_variant_name` / :func:`parse_cello_variant`), e.g.
  ``CELLO[riff=0,swz=0]``;
* ``Flex+SRRIP`` — the static-RRIP cache policy next to LRU and BRRIP.

Because a configuration is identified by *name* everywhere (runner
memoisation, persistent result store, parallel workers), encoding knobs
in the name makes tuned points first-class sweep citizens with no
orchestrator changes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..buffers.brrip import BrripPolicy
from ..buffers.lru import LruPolicy
from ..buffers.srrip import SrripPolicy
from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..sim.engine import CacheEngine, EngineOptions
from ..sim.results import SimResult
from .cello import run_cello, run_prelude_only
from .flat import run_flat
from .flexagon import run_flexagon
from .set_sched import run_set


@dataclass(frozen=True)
class ConfigSpec:
    """One Table IV row: a named schedule + buffer-hierarchy combination."""

    name: str
    schedule: str
    buffer: str
    description: str


TABLE_IV: Tuple[ConfigSpec, ...] = (
    ConfigSpec(
        "Flexagon", "best intra-layer", "explicit",
        "Oracle op-by-op dataflow; all ops begin and end in DRAM.",
    ),
    ConfigSpec(
        "Flex+LRU", "best intra-layer", "LRU cache",
        "All accesses through an implicitly-managed LRU cache.",
    ),
    ConfigSpec(
        "Flex+BRRIP", "best intra-layer", "BRRIP cache",
        "All accesses through an implicitly-managed BRRIP cache.",
    ),
    ConfigSpec(
        "FLAT", "pipelining", "explicit",
        "Oracle pipelined dataflow between adjacent ops (no delayed reuse).",
    ),
    ConfigSpec(
        "SET", "pipelining + delayed hold", "explicit",
        "Adds delayed-hold support (ResNet skip connections).",
    ),
    ConfigSpec(
        "PRELUDE-only", "best intra-layer", "PRELUDE SRAM",
        "PRELUDE fill/spill with no RIFF replacement (Sec. VII-C3).",
    ),
    ConfigSpec(
        "CELLO", "SCORE", "CHORD",
        "This work: SCORE schedule over PRELUDE + RIFF hybrid buffer.",
    ),
)

#: The configurations in the main comparison (Figs. 12-14).
MAIN_CONFIGS: Tuple[str, ...] = ("Flexagon", "Flex+LRU", "Flex+BRRIP", "FLAT", "CELLO")
#: Extra configurations for the additional studies (Fig. 16).
EXTRA_CONFIGS: Tuple[str, ...] = ("SET", "PRELUDE-only")


#: The cache replacement policies the implicit baselines can run with
#: (the ``Flex+<policy>`` family; LRU/BRRIP are Table IV, SRRIP extends it).
CACHE_POLICIES: Dict[str, Callable] = {
    "LRU": LruPolicy,
    "BRRIP": BrripPolicy,
    "SRRIP": SrripPolicy,
}

#: CELLO schedule-knob tokens, in canonical name order, mapped to the
#: :class:`~repro.sim.engine.EngineOptions` field each one toggles.
CELLO_KNOBS: Tuple[Tuple[str, str], ...] = (
    ("riff", "use_riff"),
    ("retire", "explicit_retire"),
    ("swz", "charge_swizzle"),
)

_CELLO_VARIANT = re.compile(r"CELLO\[([a-z01=,]+)\]\Z")


def cello_variant_name(options: EngineOptions) -> str:
    """Canonical config name of a CELLO schedule-knob combination.

    All knobs on (the paper's fixed point) is plain ``"CELLO"``; any
    ablation lists its *disabled* knobs in :data:`CELLO_KNOBS` order, e.g.
    ``CELLO[riff=0]`` or ``CELLO[retire=0,swz=0]``.  The name is the
    memoisation/store key component, so equal options ⇒ equal name.
    """
    off = [k for k, f in CELLO_KNOBS if not getattr(options, f)]
    if not off:
        return "CELLO"
    return "CELLO[" + ",".join(f"{k}=0" for k in off) + "]"


def parse_cello_variant(name: str) -> Optional[EngineOptions]:
    """Inverse of :func:`cello_variant_name`; ``None`` for non-CELLO names.

    Accepts ``knob=0``/``knob=1`` tokens in any order (the canonical form
    only lists disabled knobs); unknown or repeated knobs make the name
    unparseable (``None``), so typos fail loudly at config validation.
    """
    if name == "CELLO":
        return EngineOptions()
    m = _CELLO_VARIANT.match(name)
    if m is None:
        return None
    fields = {k: f for k, f in CELLO_KNOBS}
    overrides: Dict[str, bool] = {}
    for token in m.group(1).split(","):
        knob, sep, value = token.partition("=")
        if knob not in fields or fields[knob] in overrides or value not in ("0", "1"):
            return None
        overrides[fields[knob]] = value == "1"
    return EngineOptions(**overrides)


def config_names() -> Tuple[str, ...]:
    return tuple(c.name for c in TABLE_IV)


def is_known_config(name: str) -> bool:
    """True for every name :func:`run_config` can execute: the Table IV
    rows, the extra cache policies, and parseable ``CELLO[...]`` variants."""
    if name in config_names():
        return True
    if name.startswith("Flex+") and name[len("Flex+"):] in CACHE_POLICIES:
        return True
    return parse_cello_variant(name) is not None


def unknown_config_error(configs) -> "str | None":
    """The shared user-facing message for unrecognised config names, or
    ``None`` when every name is runnable (used verbatim by the sweep CLI,
    the submit CLI and the service protocol, so the three never drift)."""
    unknown = [c for c in configs if not is_known_config(c)]
    if not unknown:
        return None
    return (f"unknown config(s): {', '.join(unknown)}; "
            f"known: {', '.join(config_names())} plus Flex+SRRIP and "
            "CELLO[...] schedule variants")


def run_config(
    name: str,
    dag: TensorDag,
    cfg: AcceleratorConfig,
    workload_name: str = "workload",
    cache_granularity: int | None = None,
) -> SimResult:
    """Run one named configuration on ``dag`` (Table IV row, ``Flex+<policy>``
    cache baseline, or parameterised ``CELLO[...]`` schedule variant)."""
    if name == "Flexagon":
        return run_flexagon(dag, cfg, workload_name)
    if name.startswith("Flex+") and name[len("Flex+"):] in CACHE_POLICIES:
        policy = CACHE_POLICIES[name[len("Flex+"):]]()
        eng = CacheEngine(cfg, policy, granularity=cache_granularity)
        return eng.run(dag, config_name=name, workload_name=workload_name)
    if name == "FLAT":
        return run_flat(dag, cfg, workload_name)
    if name == "SET":
        return run_set(dag, cfg, workload_name)
    if name == "PRELUDE-only":
        return run_prelude_only(dag, cfg, workload_name)
    options = parse_cello_variant(name)
    if options is not None:
        return run_cello(dag, cfg, workload_name, options=options,
                         config_name=name)
    raise KeyError(f"unknown configuration {name!r}; known: {config_names()}")
