"""Table IV: the evaluated schedule × buffer configurations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..buffers.brrip import BrripPolicy
from ..buffers.lru import LruPolicy
from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..sim.engine import CacheEngine
from ..sim.results import SimResult
from .cello import run_cello, run_prelude_only
from .flat import run_flat
from .flexagon import run_flexagon
from .set_sched import run_set


@dataclass(frozen=True)
class ConfigSpec:
    """One Table IV row: a named schedule + buffer-hierarchy combination."""

    name: str
    schedule: str
    buffer: str
    description: str


TABLE_IV: Tuple[ConfigSpec, ...] = (
    ConfigSpec(
        "Flexagon", "best intra-layer", "explicit",
        "Oracle op-by-op dataflow; all ops begin and end in DRAM.",
    ),
    ConfigSpec(
        "Flex+LRU", "best intra-layer", "LRU cache",
        "All accesses through an implicitly-managed LRU cache.",
    ),
    ConfigSpec(
        "Flex+BRRIP", "best intra-layer", "BRRIP cache",
        "All accesses through an implicitly-managed BRRIP cache.",
    ),
    ConfigSpec(
        "FLAT", "pipelining", "explicit",
        "Oracle pipelined dataflow between adjacent ops (no delayed reuse).",
    ),
    ConfigSpec(
        "SET", "pipelining + delayed hold", "explicit",
        "Adds delayed-hold support (ResNet skip connections).",
    ),
    ConfigSpec(
        "PRELUDE-only", "best intra-layer", "PRELUDE SRAM",
        "PRELUDE fill/spill with no RIFF replacement (Sec. VII-C3).",
    ),
    ConfigSpec(
        "CELLO", "SCORE", "CHORD",
        "This work: SCORE schedule over PRELUDE + RIFF hybrid buffer.",
    ),
)

#: The configurations in the main comparison (Figs. 12-14).
MAIN_CONFIGS: Tuple[str, ...] = ("Flexagon", "Flex+LRU", "Flex+BRRIP", "FLAT", "CELLO")
#: Extra configurations for the additional studies (Fig. 16).
EXTRA_CONFIGS: Tuple[str, ...] = ("SET", "PRELUDE-only")


def config_names() -> Tuple[str, ...]:
    return tuple(c.name for c in TABLE_IV)


def run_config(
    name: str,
    dag: TensorDag,
    cfg: AcceleratorConfig,
    workload_name: str = "workload",
    cache_granularity: int | None = None,
) -> SimResult:
    """Run one named Table IV configuration on ``dag``."""
    if name == "Flexagon":
        return run_flexagon(dag, cfg, workload_name)
    if name == "Flex+LRU":
        eng = CacheEngine(cfg, LruPolicy(), granularity=cache_granularity)
        return eng.run(dag, config_name="Flex+LRU", workload_name=workload_name)
    if name == "Flex+BRRIP":
        eng = CacheEngine(cfg, BrripPolicy(), granularity=cache_granularity)
        return eng.run(dag, config_name="Flex+BRRIP", workload_name=workload_name)
    if name == "FLAT":
        return run_flat(dag, cfg, workload_name)
    if name == "SET":
        return run_set(dag, cfg, workload_name)
    if name == "PRELUDE-only":
        return run_prelude_only(dag, cfg, workload_name)
    if name == "CELLO":
        return run_cello(dag, cfg, workload_name)
    raise KeyError(f"unknown configuration {name!r}; known: {config_names()}")
