"""Batch runner with two-tier memoisation.

Experiments sweep (workload × config × bandwidth); DRAM traffic is
bandwidth-independent, so the runner simulates traffic once per
(workload, config, SRAM size) and re-times it per bandwidth point — the
same shortcut the roofline model licenses.

Memoisation is layered:

* a process-local dict (always on), and
* an optional persistent :class:`~repro.orchestrator.store.ResultStore`
  (install with :func:`set_store`) that survives across invocations —
  the CLI enables it by default so ``python -m repro all`` is
  near-instant once warm.

The orchestrator's parallel runner seeds both layers via
:func:`seed_cache` so experiment modules replay pre-warmed sweeps
without re-simulating.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from ..hw.config import AcceleratorConfig, default_config
from ..orchestrator.store import ResultStore, result_key
from ..sim.perf import make_result
from ..sim.results import SimResult
from ..workloads.registry import Workload
from .configs import MAIN_CONFIGS, run_config

_CACHE: Dict[Tuple, SimResult] = {}
_STORE: Optional[ResultStore] = None
_SIMULATIONS = 0
#: The service daemon simulates on worker threads; the counter update is
#: a read-modify-write, so it takes a lock (dict tiers are single-op
#: atomic under the GIL and need none).
_SIM_LOCK = threading.Lock()


def clear_cache() -> None:
    """Drop the process-local tier (the persistent store is untouched)."""
    _CACHE.clear()


def set_store(store: Optional[ResultStore]) -> None:
    """Install (or with ``None`` remove) the persistent result store."""
    global _STORE
    _STORE = store


def get_store() -> Optional[ResultStore]:
    return _STORE


def simulation_count() -> int:
    """Traffic simulations actually executed or dispatched this process."""
    return _SIMULATIONS


def reset_simulation_count() -> None:
    global _SIMULATIONS
    _SIMULATIONS = 0


def count_simulations(n: int = 1) -> None:
    """Attribute ``n`` simulations (used by parallel workers' parent)."""
    global _SIMULATIONS
    with _SIM_LOCK:
        _SIMULATIONS += n
        if _STORE is not None:
            _STORE.simulations += n


def _traffic_key(config: str, workload: Workload, cfg: AcceleratorConfig,
                 cache_granularity: Optional[int]) -> Tuple:
    return result_key(config, workload.name, cfg, cache_granularity)


def peek(key: Tuple) -> Optional[SimResult]:
    """Cached base result for ``key``, consulting both tiers; no simulation.

    A store hit is promoted into the process-local dict (and counted as a
    store hit exactly once per process).
    """
    base = _CACHE.get(key)
    if base is None and _STORE is not None:
        base = _STORE.get(key)
        if base is not None:
            _CACHE[key] = base
    return base


def seed_cache(key: Tuple, base: SimResult) -> None:
    """Insert a simulated base result into both cache tiers."""
    _CACHE[key] = base
    if _STORE is not None:
        _STORE.put(key, base)


def run_workload_config(
    workload: Workload,
    config: str,
    cfg: AcceleratorConfig,
    cache_granularity: Optional[int] = None,
) -> SimResult:
    """Run (memoised on traffic) and time under ``cfg``'s bandwidth."""
    key = _traffic_key(config, workload, cfg, cache_granularity)
    base = peek(key)
    if base is None:
        dag = workload.build()
        count_simulations()
        base = run_config(
            config, dag, cfg,
            workload_name=workload.name,
            cache_granularity=cache_granularity,
        )
        seed_cache(key, base)
    # Re-time for this bandwidth (traffic is bandwidth-independent).
    return make_result(
        config=base.config,
        workload=base.workload,
        total_macs=base.total_macs,
        dram_read_bytes=base.dram_read_bytes,
        dram_write_bytes=base.dram_write_bytes,
        cfg=cfg,
        onchip_accesses=base.onchip_accesses,
    )


def run_matrix(
    workloads: Sequence[Workload],
    configs: Sequence[str] = MAIN_CONFIGS,
    cfg: Optional[AcceleratorConfig] = None,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> Dict[str, Dict[str, SimResult]]:
    """Run every (workload, config) pair: result[workload][config].

    With ``jobs > 1`` (or ``jobs=None`` for one worker per core) the
    uncached pairs are simulated in parallel first (registry-resolvable
    workloads only — see
    :func:`repro.workloads.registry.resolve_workload`); assembly then
    replays from the warm cache, so the output is identical to ``jobs=1``.
    """
    cfg = default_config(cfg)
    if jobs is None or jobs > 1:
        from ..orchestrator.parallel import prewarm
        from ..orchestrator.spec import SweepPoint

        prewarm(
            [
                SweepPoint(w.name, c, cfg, cache_granularity)
                for w in workloads
                for c in configs
            ],
            jobs=jobs,
        )
    out: Dict[str, Dict[str, SimResult]] = {}
    for w in workloads:
        out[w.name] = {
            c: run_workload_config(w, c, cfg, cache_granularity=cache_granularity)
            for c in configs
        }
    return out
