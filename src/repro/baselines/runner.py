"""Batch runner with memoisation.

Experiments sweep (workload × config × bandwidth); DRAM traffic is
bandwidth-independent, so the runner simulates traffic once per
(workload, config, SRAM size) and re-times it per bandwidth point — the
same shortcut the roofline model licenses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..hw.config import AcceleratorConfig
from ..sim.perf import make_result
from ..sim.results import SimResult
from ..workloads.registry import Workload
from .configs import MAIN_CONFIGS, run_config

_CACHE: Dict[Tuple, SimResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def _traffic_key(config: str, workload: Workload, cfg: AcceleratorConfig,
                 cache_granularity: Optional[int]) -> Tuple:
    return (
        config,
        workload.name,
        cfg.sram_bytes,
        cfg.line_bytes,
        cfg.cache_associativity,
        cfg.chord_entries,
        cfg.pipeline_fraction,
        cfg.rf_bytes,
        cache_granularity,
    )


def run_workload_config(
    workload: Workload,
    config: str,
    cfg: AcceleratorConfig,
    cache_granularity: Optional[int] = None,
) -> SimResult:
    """Run (memoised on traffic) and time under ``cfg``'s bandwidth."""
    key = _traffic_key(config, workload, cfg, cache_granularity)
    base = _CACHE.get(key)
    if base is None:
        dag = workload.build()
        base = run_config(
            config, dag, cfg,
            workload_name=workload.name,
            cache_granularity=cache_granularity,
        )
        _CACHE[key] = base
    # Re-time for this bandwidth (traffic is bandwidth-independent).
    return make_result(
        config=base.config,
        workload=base.workload,
        total_macs=base.total_macs,
        dram_read_bytes=base.dram_read_bytes,
        dram_write_bytes=base.dram_write_bytes,
        cfg=cfg,
        onchip_accesses=base.onchip_accesses,
    )


def run_matrix(
    workloads: Sequence[Workload],
    configs: Sequence[str] = MAIN_CONFIGS,
    cfg: AcceleratorConfig = AcceleratorConfig(),
    cache_granularity: Optional[int] = None,
) -> Dict[str, Dict[str, SimResult]]:
    """Run every (workload, config) pair: result[workload][config]."""
    out: Dict[str, Dict[str, SimResult]] = {}
    for w in workloads:
        out[w.name] = {
            c: run_workload_config(w, c, cfg, cache_granularity=cache_granularity)
            for c in configs
        }
    return out
