"""FLAT-like oracle pipelined baseline (Table IV row 4).

FLAT pipelines between two adjacent operations *when possible*; a tensor
with delayed downstream consumers is not treated as a pipeline instance
("pipeline just consumes the tensor without writeback").  We realize
pipelines with SCORE's own machinery (holds disabled) — a tensor is fully
on-chip iff **every** consumer is a realized adjacent pipeline, which for
FLAT means single-consumer intermediates like the GNN's ``AX``.  On CG no
intermediate qualifies (each has a delayed consumer), so FLAT collapses to
the Flexagon oracle — exactly the paper's Fig. 12 observation.
"""

from __future__ import annotations

from typing import Set

from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..score.scheduler import Score, ScoreOptions
from ..score.schedule_ir import Route, Schedule
from ..sim.perf import make_result
from ..sim.results import SimResult
from .flexagon import onchip_accesses, oracle_traffic


def covered_tensors(schedule: Schedule) -> Set[str]:
    """Tensors that never touch DRAM: all consumers fed on-chip.

    With SCORE's placement semantics this is precisely ``write_route ==
    PIPELINE`` (all consumer routes are PIPELINE/HOLD and the tensor is not
    a program output).
    """
    return {
        name
        for name, p in schedule.placements.items()
        if p.write_route is Route.PIPELINE
    }


def flat_schedule(dag: TensorDag, cfg: AcceleratorConfig) -> Schedule:
    """SCORE restricted to FLAT's capability: adjacent pipelining only."""
    return Score(cfg, ScoreOptions(enable_pipelining=True, enable_holds=False)).schedule(dag)


def run_flat(dag: TensorDag, cfg: AcceleratorConfig,
             workload_name: str = "workload") -> SimResult:
    """Simulate the FLAT-like configuration (oracle pipelined dataflow)."""
    schedule = flat_schedule(dag, cfg)
    covered = covered_tensors(schedule)
    reads, writes = oracle_traffic(dag, covered=covered)
    return make_result(
        config="FLAT",
        workload=workload_name,
        total_macs=sum(op.macs for op in dag.ops),
        dram_read_bytes=reads,
        dram_write_bytes=writes,
        cfg=cfg,
        onchip_accesses={"buffet": onchip_accesses(dag, cfg)},
    )
