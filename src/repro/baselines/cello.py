"""CELLO (this work) and the PRELUDE-only additional study.

CELLO = SCORE schedule (pipelining + holds + swizzle minimization) executed
against CHORD (PRELUDE + RIFF) with explicit retirement — the full
co-design.  PRELUDE-only (Fig. 16c) keeps the best-intra-op schedule (no
pipelining) and an SRAM with PRELUDE as the only policy: no RIFF
replacement, so a squatting tensor can lock out sooner-reused ones.
"""

from __future__ import annotations

from typing import Optional

from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..score.scheduler import Score, ScoreOptions
from ..score.schedule_ir import Schedule
from ..sim.engine import EngineOptions, ScheduleEngine
from ..sim.results import SimResult


def cello_schedule(dag: TensorDag, cfg: AcceleratorConfig) -> Schedule:
    """The full SCORE schedule."""
    return Score(cfg, ScoreOptions()).schedule(dag)


def run_cello(
    dag: TensorDag,
    cfg: AcceleratorConfig,
    workload_name: str = "workload",
    options: Optional[EngineOptions] = None,
    config_name: str = "CELLO",
) -> SimResult:
    """Simulate CELLO (SCORE + CHORD).

    ``config_name`` labels the result — ablated schedule-knob variants
    pass their canonical ``CELLO[...]`` name (see
    :func:`repro.baselines.configs.cello_variant_name`).
    """
    schedule = cello_schedule(dag, cfg)
    engine = ScheduleEngine(cfg, options)
    return engine.run(schedule, config_name=config_name, workload_name=workload_name)


def run_prelude_only(
    dag: TensorDag,
    cfg: AcceleratorConfig,
    workload_name: str = "workload",
) -> SimResult:
    """Simulate the PRELUDE-only configuration (Sec. VII-C3).

    Best-intra-op schedule (pipelining and holds off — "we turn off all
    other optimizations") with a PRELUDE-managed SRAM (RIFF off).
    """
    schedule = Score(
        cfg, ScoreOptions(enable_pipelining=False, enable_holds=False)
    ).schedule(dag)
    engine = ScheduleEngine(cfg, EngineOptions(use_riff=False))
    result = engine.run(schedule, config_name="PRELUDE-only",
                        workload_name=workload_name)
    return result
