"""Best intra-layer explicit baseline — "Flexagon-like" (Table IV row 1).

The oracle operation-by-operation dataflow: every op achieves its best
possible intra-op reuse (MK + KN + MN cold accesses — the small tensor
parks in the RF, the large tensor streams once), and **all ops begin and
end in DRAM**.  This is the upper bound for op-by-op accelerators
(Flexagon's flexible loop orders reach it for every shape/sparsity mix),
and the reference every figure normalises against.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..sim.perf import make_result
from ..sim.results import SimResult


def oracle_traffic(dag: TensorDag,
                   covered: Optional[Set[str]] = None) -> Tuple[int, int]:
    """Op-by-op cold DRAM traffic, minus fully on-chip (*covered*) tensors.

    Reads: every input of every op is staged once per consuming op (the
    oracle's per-op cold accesses — A is re-read each CG iteration).
    Writes: every produced tensor drains once.  A covered tensor (realized
    pipeline/hold satisfies *all* its consumers) skips both its write and
    all its reads.
    """
    covered = covered or set()
    reads = 0
    writes = 0
    for op in dag.ops:
        for t in op.inputs:
            if t.name not in covered:
                reads += dag.tensor(t.name).bytes
        if op.output.name not in covered:
            writes += dag.tensor(op.output.name).bytes
    return reads, writes


def onchip_accesses(dag: TensorDag, cfg: AcceleratorConfig) -> int:
    """Buffet/scratchpad line accesses: every operand byte is staged and
    touched once per op."""
    total = 0
    for op in dag.ops:
        total += sum(dag.tensor(t.name).bytes for t in op.inputs)
        total += dag.tensor(op.output.name).bytes
    return total // cfg.line_bytes


def run_flexagon(dag: TensorDag, cfg: AcceleratorConfig,
                 workload_name: str = "workload") -> SimResult:
    """Simulate the best-intra-op explicit configuration."""
    reads, writes = oracle_traffic(dag)
    return make_result(
        config="Flexagon",
        workload=workload_name,
        total_macs=sum(op.macs for op in dag.ops),
        dram_read_bytes=reads,
        dram_write_bytes=writes,
        cfg=cfg,
        onchip_accesses={"buffet": onchip_accesses(dag, cfg)},
    )
