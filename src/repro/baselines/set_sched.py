"""SET-like baseline: pipelining + delayed hold (Table IV last row).

SET/TANGRAM-class schedulers additionally satisfy *delayed-hold*
dependencies by keeping tiles alive in on-chip buffers until the
downstream consumer runs — enough for ResNet's skip connections (where SET
matches CELLO, Fig. 16a) but not for CG's delayed-*writeback* tensors
(where SET collapses to FLAT/Flexagon).
"""

from __future__ import annotations

from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..score.scheduler import Score, ScoreOptions
from ..score.schedule_ir import Schedule
from ..sim.perf import make_result
from ..sim.results import SimResult
from .flat import covered_tensors
from .flexagon import onchip_accesses, oracle_traffic


def set_schedule(dag: TensorDag, cfg: AcceleratorConfig) -> Schedule:
    """SCORE restricted to SET's capability: pipelining + holds."""
    return Score(cfg, ScoreOptions(enable_pipelining=True, enable_holds=True)).schedule(dag)


def run_set(dag: TensorDag, cfg: AcceleratorConfig,
            workload_name: str = "workload") -> SimResult:
    """Simulate the SET-like configuration."""
    schedule = set_schedule(dag, cfg)
    covered = covered_tensors(schedule)
    reads, writes = oracle_traffic(dag, covered=covered)
    return make_result(
        config="SET",
        workload=workload_name,
        total_macs=sum(op.macs for op in dag.ops),
        dram_read_bytes=reads,
        dram_write_bytes=writes,
        cfg=cfg,
        onchip_accesses={"buffet": onchip_accesses(dag, cfg)},
    )
