"""Figs. 1 and 7: the CG tensor dependency graph and Algorithm 2's output.

Fig. 1 shows the two-iteration CG DAG; Fig. 7 annotates one iteration with
node dominance letters and colored dependency edges.  This module renders
both as text — the colored edges become dependency-class labels — and is
the quickest way to see the structure everything else exploits.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.classify import ClassifiedDag, DependencyType, classify_dependencies
from ..workloads.cg import CgProblem, build_cg_dag
from ..workloads.matrices import FV1
from ..workloads.resnet import build_resnet_block_dag

_EDGE_MARK = {
    DependencyType.PIPELINEABLE: "==>",        # Fig. 7 blue
    DependencyType.DELAYED_WRITEBACK: "~~>",   # Fig. 7 brick red
    DependencyType.DELAYED_HOLD: "-->(hold)",  # Fig. 7 cyan
    DependencyType.SEQUENTIAL: "->",
}


def run(iterations: int = 2) -> ClassifiedDag:
    dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=iterations))
    return classify_dependencies(dag)


def render(classified: ClassifiedDag, title: str) -> str:
    lines: List[str] = [title]
    lines.append("nodes (dominance letters, Fig. 7):")
    for name in classified.dag.op_names:
        cast = "  [multicast]" if classified.parallel_multicast.get(name) else ""
        lines.append(f"  {name:16s} {classified.node_letter(name):>3s}{cast}")
    lines.append("edges (dependency classes):")
    for e in classified.dag.edges():
        dep = classified.dep_of(e)
        mark = _EDGE_MARK[dep]
        lines.append(
            f"  {e.src:16s} {mark:10s} {e.dst:16s}  [{e.tensor}]  {dep.value}"
        )
    return "\n".join(lines)


def report(iterations: int = 2) -> str:
    cg = run(iterations=iterations)
    resnet = classify_dependencies(build_resnet_block_dag())
    out = [
        render(cg, f"Fig. 1/7: block-CG DAG over {iterations} iterations"),
        "",
        render(resnet, "Fig. 7 (right): ResNet residual block"),
        "",
        "legend: ==> pipelineable, ~~> delayed writeback, -->(hold) delayed hold, -> sequential",
    ]
    return "\n".join(out)


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
