"""Fig. 12: CG performance across datasets, block widths and bandwidths.

Grid: {fv1, shallow_water1, G2_circuit} × N ∈ {1, 16} × {250, 1000} GB/s,
all Table IV main configurations.  Reports GigaMACs/s (the paper's
GigaFPMuls/s) plus each configuration's position on the roofline
(achieved intensity), and the CELLO-vs-best-baseline speedup per panel
with the cross-panel geomean (paper headline: 4x geomean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..baselines.configs import MAIN_CONFIGS
from ..baselines.runner import run_workload_config
from ..hw.config import AcceleratorConfig, BANDWIDTH_POINTS, default_config
from ..sim.results import SimResult, geomean
from ..workloads.registry import CG_DATASETS, CG_N_VALUES, cg_workload
from .common import bandwidth_label, prewarm_grid


@dataclass(frozen=True)
class Fig12Panel:
    """One bar group of Fig. 12."""

    dataset: str
    n: int
    bandwidth: float
    results: Dict[str, SimResult]

    def speedup_of(self, config: str, baseline: str = "Flexagon") -> float:
        return self.results[config].speedup_over(self.results[baseline])


def run(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    bandwidths: Sequence[float] = BANDWIDTH_POINTS,
    datasets=CG_DATASETS,
    n_values: Sequence[int] = CG_N_VALUES,
    iterations: int = 10,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> Tuple[Fig12Panel, ...]:
    # Bandwidth variants share one simulation, so the prewarm grid only
    # spans (dataset × N) × config at the base cfg.
    cfg = default_config(cfg)
    prewarm_grid(
        [cg_workload(ds, n, iterations=iterations)
         for ds in datasets for n in n_values],
        configs, [cfg], cache_granularity=cache_granularity, jobs=jobs,
    )
    panels = []
    for ds in datasets:
        for n in n_values:
            w = cg_workload(ds, n, iterations=iterations)
            for bw in bandwidths:
                c = cfg.with_bandwidth(bw)
                results = {
                    name: run_workload_config(
                        w, name, c, cache_granularity=cache_granularity
                    )
                    for name in configs
                }
                panels.append(Fig12Panel(ds.name, n, bw, results))
    return tuple(panels)


def cello_geomean_speedup(panels: Sequence[Fig12Panel],
                          baseline: str = "Flexagon") -> float:
    return geomean(p.speedup_of("CELLO", baseline) for p in panels)


def report(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    cache_granularity: Optional[int] = None,
    iterations: int = 10,
    jobs: Optional[int] = 1,
) -> str:
    cfg = default_config(cfg)
    panels = run(cfg, configs=configs, iterations=iterations,
                 cache_granularity=cache_granularity, jobs=jobs)
    rows = []
    for p in panels:
        row = [p.dataset, p.n, bandwidth_label(p.bandwidth)]
        for c in configs:
            row.append(p.results[c].throughput_gmacs)
        row.append(p.speedup_of("CELLO"))
        rows.append(row)
    headers = ["dataset", "N", "BW"] + [f"{c} GMAC/s" for c in configs] + ["CELLO/Flex"]
    table = render_table(headers, rows, title="Fig. 12: CG performance (higher is better)")
    gm = cello_geomean_speedup(panels)
    return table + f"\nCELLO geomean speedup over Flexagon: {gm:.2f}x (paper: ~4x)"


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
