"""Fig. 2: arithmetic intensity and roofline, regular vs skewed GEMM.

Reproduces both panels: (a) the intensity of a 512³ GEMM (42.66 ops/byte)
vs a 524288×16×16 GEMM (2 ops/byte) with the same multiplication count;
(b) where they land on a 1 TB/s roofline (compute vs memory bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.report import render_table
from ..analysis.roofline import REGULAR_GEMM, SKEWED_GEMM, roofline_for
from ..hw.config import AcceleratorConfig, default_config


@dataclass(frozen=True)
class Fig2Row:
    label: str
    macs: int
    intensity_ops_per_byte: float
    attainable_gmacs: float
    memory_bound: bool


def run(cfg: Optional[AcceleratorConfig] = None) -> Tuple[Fig2Row, ...]:
    cfg = default_config(cfg)
    rl = roofline_for(cfg)
    rows = []
    for p in (REGULAR_GEMM, SKEWED_GEMM):
        ai = p.intensity
        rows.append(Fig2Row(
            label=p.label,
            macs=p.macs,
            intensity_ops_per_byte=ai,
            attainable_gmacs=rl.attainable(ai) / 1e9,
            memory_bound=rl.is_memory_bound(ai),
        ))
    return tuple(rows)


def report(cfg: Optional[AcceleratorConfig] = None) -> str:
    cfg = default_config(cfg)
    rows = run(cfg)
    table = render_table(
        ["GEMM", "MACs", "AI (ops/B)", "attainable GMAC/s", "memory bound"],
        [
            [r.label, r.macs, r.intensity_ops_per_byte,
             r.attainable_gmacs, r.memory_bound]
            for r in rows
        ],
        title=(
            f"Fig. 2: roofline @ {cfg.dram_bandwidth_bytes_per_s / 1e9:.0f} GB/s, "
            f"peak {cfg.peak_macs_per_s / 1e9:.0f} GMAC/s "
            f"(ridge {cfg.ridge_ops_per_byte:.2f} ops/B)"
        ),
    )
    paper = (
        "\nPaper values: regular 42.66 ops/byte (compute bound), "
        "skewed 2 ops/byte (memory bound)."
    )
    return table + paper


def main() -> None:  # pragma: no cover - CLI convenience
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
