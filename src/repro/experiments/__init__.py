"""One experiment module per paper table/figure.

Each module exposes ``run(...)`` (structured results) and ``report(...)``
(the text table matching the paper's rows/series).  The benchmark harness
under ``benchmarks/`` regenerates every one; EXPERIMENTS.md records
paper-vs-measured.
"""

from . import (
    common,
    ext_workloads,
    fig01_fig07_dag,
    fig02_roofline,
    fig08_multinode,
    fig12_cg_performance,
    fig13_gnn_bicgstab,
    fig14_energy,
    fig15_area_energy,
    fig16a_resnet,
    fig16b_sram_sweep,
    fig16c_prelude_only,
    sec6b_searchspace,
    table01_hpcg,
    table02_schedulers,
    table03_buffers,
)

__all__ = [
    "common",
    "ext_workloads",
    "fig01_fig07_dag",
    "fig02_roofline",
    "fig08_multinode",
    "fig12_cg_performance",
    "fig13_gnn_bicgstab",
    "fig14_energy",
    "fig15_area_energy",
    "fig16a_resnet",
    "fig16b_sram_sweep",
    "fig16c_prelude_only",
    "sec6b_searchspace",
    "table01_hpcg",
    "table02_schedulers",
    "table03_buffers",
]
