"""Fig. 14: off-chip energy, relative to BestIntra+Exp, geomeaned per
workload family.

Off-chip energy is proportional to DRAM traffic, so the figure reduces to
traffic ratios; the paper reports CELLO cutting 64-83 % (4x geomean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..baselines.configs import MAIN_CONFIGS
from ..baselines.runner import run_workload_config
from ..hw.config import AcceleratorConfig, default_config
from ..sim.results import geomean
from ..workloads.registry import (
    all_bicgstab_workloads,
    all_cg_workloads,
    all_gnn_workloads,
)
from .common import prewarm_grid


@dataclass(frozen=True)
class Fig14Row:
    """Relative off-chip energy of one family (geomean across datasets)."""

    family: str
    relative: Dict[str, float]   # config -> energy / Flexagon energy


def _family_workloads():
    return {
        "PDE solvers (CG)": all_cg_workloads(),
        "PDE solvers (BiCGStab)": all_bicgstab_workloads(),
        "GNN": all_gnn_workloads(),
    }


def run(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> Tuple[Fig14Row, ...]:
    cfg = default_config(cfg)
    prewarm_grid(
        [w for workloads in _family_workloads().values() for w in workloads],
        configs, [cfg], cache_granularity=cache_granularity, jobs=jobs,
    )
    rows = []
    for family, workloads in _family_workloads().items():
        ratios: Dict[str, list] = {c: [] for c in configs}
        for w in workloads:
            res = {
                c: run_workload_config(w, c, cfg, cache_granularity=cache_granularity)
                for c in configs
            }
            base = res["Flexagon"].dram_bytes
            for c in configs:
                ratios[c].append(res[c].dram_bytes / base)
        rows.append(Fig14Row(
            family=family,
            relative={c: geomean(v) for c, v in ratios.items()},
        ))
    return tuple(rows)


def cello_reduction_range(rows: Sequence[Fig14Row]) -> Tuple[float, float]:
    """(min, max) % reduction of CELLO vs Flexagon across families."""
    reductions = [100.0 * (1.0 - r.relative["CELLO"]) for r in rows]
    return min(reductions), max(reductions)


def report(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> str:
    cfg = default_config(cfg)
    rows = run(cfg, configs=configs, cache_granularity=cache_granularity,
               jobs=jobs)
    table_rows = [
        [r.family] + [r.relative[c] for c in configs] for r in rows
    ]
    table = render_table(
        ["workload family"] + list(configs),
        table_rows,
        title="Fig. 14: off-chip energy relative to Flexagon (lower is better)",
        precision=3,
    )
    lo, hi = cello_reduction_range(rows)
    return table + (
        f"\nCELLO off-chip energy reduction: {lo:.0f}% .. {hi:.0f}% "
        "(paper: 64% to 83%)"
    )


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
