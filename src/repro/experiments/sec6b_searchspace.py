"""Sec. VI-B: buffer-allocation search-space sizes.

Reproduces the paper's three headline orders of magnitude for a 4 MB
buffer (32-bit words) and the 7-operator CG iteration DAG:

* op-by-op allocation: ~7 × 10^15 choices;
* DAG-level scratchpad allocation (5 contending tensors, allocations
  re-decided as the program moves): ~10^80 choices;
* CHORD: O(nodes + edges) ≈ 10^2 design points.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import render_kv
from ..hw.config import AcceleratorConfig, default_config
from ..score.searchspace import (
    SearchSpaceReport,
    compare_search_spaces,
)
from ..workloads.matrices import SHALLOW_WATER1
from ..workloads.registry import cg_workload


def run(cfg: Optional[AcceleratorConfig] = None,
        iterations: int = 10,
        time_steps: int = 4) -> SearchSpaceReport:
    """Search-space comparison over the full CG problem (Table VII: 10
    iterations — CHORD's design points are counted on the whole DAG)."""
    cfg = default_config(cfg)
    dag = cg_workload(SHALLOW_WATER1, n=16, iterations=iterations).build()
    size_words = cfg.sram_bytes // 4
    return compare_search_spaces(dag, size_words=size_words, time_steps=time_steps)


def report(cfg: Optional[AcceleratorConfig] = None) -> str:
    cfg = default_config(cfg)
    rep = run(cfg)
    per_step = run(cfg, time_steps=1)
    pairs = [
        ("buffer size (words)", rep.size_words),
        ("contending tensors", rep.n_tensors),
        ("op-by-op choices (log10)",
         f"{rep.log10_op_by_op:.1f}  (paper: ~15.8, i.e. 7e15)"),
        ("DAG-level scratchpad, one allocation (log10)",
         f"{per_step.log10_scratchpad:.1f}"),
        ("DAG-level scratchpad, re-decided over time (log10)",
         f"{rep.log10_scratchpad:.1f}  (paper quotes ~80, inside this band)"),
        ("CHORD design points",
         f"{rep.chord_points}  (paper: ~1e2 — O(nodes + edges))"),
    ]
    note = (
        "\nThe load-bearing comparison survives exactly: explicit DAG-level"
        "\nallocation is dozens of orders of magnitude beyond op-by-op, while"
        "\nCHORD collapses the buffer-allocation step to DAG-sized metadata."
    )
    return render_kv(pairs, title="Sec. VI-B: buffer-allocation search spaces") + note


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
