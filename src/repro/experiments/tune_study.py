"""Co-design autotuning study: the searched optimum vs the paper's fixed
CELLO point, per workload, per SRAM size (the operational sequel to
Sec. VI-B's search-space counting).

``sec6b_searchspace`` shows CHORD collapses buffer allocation to
O(nodes + edges) design points; this experiment *searches* the space
that remains — the SCORE schedule knobs × the RIFF index-table size —
with the exhaustive grid strategy (the space is small enough precisely
because of the paper's argument), at each of the Fig. 16b SRAM
capacities, over one Table VI family (CG) and the three PR 3 extension
families (transformer, GMRES, multigrid).

Two readings of the output:

* **validation** — wherever the searched best equals plain ``CELLO``,
  the paper's fixed choice is confirmed Pareto-optimal for that
  workload/SRAM point;
* **headroom** — wherever a variant wins (e.g. a smaller index table at
  unchanged runtime, or ``swz=0`` when a layout transform never pays),
  the co-design has exploitable slack the fixed point leaves behind.

Every evaluation is a standard memoised sweep point, so a cache-warm
rerun performs zero re-simulations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..analysis.tuner_report import render_tune_result
from ..hw.config import MIB, AcceleratorConfig, default_config
from ..tuner import GridStrategy, TuneResult, TuneSpace, tune

#: SRAM capacities studied (the Fig. 16b points).
SRAM_POINTS_BYTES: Tuple[int, ...] = (1 * MIB, 4 * MIB, 16 * MIB)

#: Tuned workloads: one Table VI family + the PR 3 extension families.
TUNED_WORKLOADS: Tuple[str, ...] = (
    "cg/fv1/N=16",
    "xformer/s=512/d=512",
    "gmres/fv1/m=8/N=1",
    "mg/fv1/N=1",
)

#: Per-SRAM search space: all 8 schedule-knob combinations × two RIFF
#: index-table sizes.  16 CELLO-family points per (workload, SRAM).
CHORD_ENTRIES_AXIS: Tuple[int, ...] = (64, 16)

#: The study's trade-off axes; area makes the index-table knob visible.
STUDY_OBJECTIVES: Tuple[str, ...] = ("runtime", "dram", "area")


def study_space(sram_bytes: int) -> TuneSpace:
    """The per-SRAM-size co-design space this study enumerates."""
    return TuneSpace(
        chord_entries=CHORD_ENTRIES_AXIS,
        sram_bytes=(sram_bytes,),
    )


def run(
    cfg: Optional[AcceleratorConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    srams: Optional[Sequence[int]] = None,
    jobs: Optional[int] = 1,
) -> Dict[Tuple[str, int], TuneResult]:
    """Tune every (workload, SRAM size) pair; keys are (name, bytes)."""
    cfg = default_config(cfg)
    workloads = TUNED_WORKLOADS if workloads is None else workloads
    srams = SRAM_POINTS_BYTES if srams is None else srams
    out: Dict[Tuple[str, int], TuneResult] = {}
    for name in workloads:
        for sram in srams:
            out[(name, sram)] = tune(
                name,
                space=study_space(sram),
                strategy=GridStrategy(),
                objectives=STUDY_OBJECTIVES,
                base_cfg=cfg,
                jobs=jobs,
            )
    return out


def report(
    cfg: Optional[AcceleratorConfig] = None,
    jobs: Optional[int] = 1,
    workloads: Optional[Sequence[str]] = None,
    srams: Optional[Sequence[int]] = None,
) -> str:
    results = run(cfg, workloads=workloads, srams=srams, jobs=jobs)
    rows: List[List[object]] = []
    for (name, sram), tr in results.items():
        best = tr.best
        rows.append([
            name,
            sram // MIB,
            len(tr.evaluations),
            len(tr.front),
            best.config,
            best.point.chord_entries,
            tr.speedup_over_incumbent(),
            tr.incumbent.result.dram_bytes / max(1, best.result.dram_bytes),
        ])
    table = render_table(
        ["workload", "SRAM MB", "evals", "front", "best config", "entries",
         "speedup vs CELLO", "DRAM cut vs CELLO"],
        rows,
        title="Co-design autotuning: searched best vs the fixed CELLO point",
    )
    # One fully-rendered frontier as a worked example (the narrative
    # continuation of sec6b): the family whose searched headroom is
    # largest at the smallest capacity.
    example_key = max(
        results,
        key=lambda k: (results[k].speedup_over_incumbent(), k[0]),
    )
    example = render_tune_result(results[example_key])
    note = (
        "\nEvery evaluated point is a standard memoised sweep point: a"
        "\ncache-warm rerun of this study performs zero re-simulations."
        "\nWhere 'best config' is plain CELLO the paper's fixed co-design"
        "\npoint is search-optimal; elsewhere the named knobs are free wins."
    )
    return table + "\n\n" + example + note


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
