"""Fig. 16(c): the PRELUDE-only configuration vs Flexagon / FLAT / CELLO,
CG on shallow_water1, N ∈ {1, 16}.

Expected shape: PRELUDE-only beats Flexagon and FLAT (writeback support
matters more than pipelining on CG), but trails CELLO (RIFF keeps the
frequently-reused tensors resident); it sits closer to CELLO at N=1 and
closer to the baselines at N=16 (PRELUDE benefits from tensors that are
small relative to the SRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..baselines.runner import run_workload_config
from ..hw.config import AcceleratorConfig, default_config
from ..sim.results import SimResult
from ..workloads.registry import cg_workload
from ..workloads.matrices import SHALLOW_WATER1
from .common import prewarm_grid

CONFIGS: Tuple[str, ...] = ("Flexagon", "FLAT", "PRELUDE-only", "CELLO")
N_VALUES: Tuple[int, ...] = (1, 16)


@dataclass(frozen=True)
class Fig16cPanel:
    n: int
    results: Dict[str, SimResult]

    def gap_position(self) -> float:
        """Where PRELUDE-only sits between Flexagon (0) and CELLO (1),
        in log-traffic space."""
        import math

        flex = self.results["Flexagon"].dram_bytes
        cello = self.results["CELLO"].dram_bytes
        pre = self.results["PRELUDE-only"].dram_bytes
        if flex == cello:
            return 1.0
        return (math.log(flex) - math.log(pre)) / (math.log(flex) - math.log(cello))


def run(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = CONFIGS,
    n_values: Sequence[int] = N_VALUES,
    iterations: int = 10,
    jobs: Optional[int] = 1,
) -> Tuple[Fig16cPanel, ...]:
    cfg = default_config(cfg)
    prewarm_grid(
        [cg_workload(SHALLOW_WATER1, n, iterations=iterations) for n in n_values],
        configs, [cfg], jobs=jobs,
    )
    panels = []
    for n in n_values:
        w = cg_workload(SHALLOW_WATER1, n, iterations=iterations)
        results = {c: run_workload_config(w, c, cfg) for c in configs}
        panels.append(Fig16cPanel(n=n, results=results))
    return tuple(panels)


def report(cfg: Optional[AcceleratorConfig] = None,
           iterations: int = 10, jobs: Optional[int] = 1) -> str:
    cfg = default_config(cfg)
    panels = run(cfg, iterations=iterations, jobs=jobs)
    rows = []
    for p in panels:
        rows.append(
            [p.n]
            + [p.results[c].throughput_gmacs for c in CONFIGS]
            + [p.gap_position()]
        )
    table = render_table(
        ["N"] + [f"{c} GMAC/s" for c in CONFIGS] + ["PRELUDE position (0=Flex,1=CELLO)"],
        rows,
        title="Fig. 16(c): PRELUDE-only study (CG, shallow_water1)",
    )
    return table + (
        "\nPaper: PRELUDE-only closer to CELLO at N=1, closer to baselines at N=16."
    )


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
