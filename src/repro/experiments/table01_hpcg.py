"""Table I: HPCG vs HPL on top supercomputers + our model's prediction.

The paper motivates with literature data: CG (HPCG) reaches only ~0.3-3 %
of HPL peak.  We reproduce the table and add the column our roofline model
*predicts* for a CG-class workload (best-case skewed intensity, Eq. 4) on a
balanced machine — demonstrating the observed fractions are exactly what
memory-bound skewed tensor algebra must deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.report import render_table
from ..core.intensity import skewed_limit_words


@dataclass(frozen=True)
class SupercomputerEntry:
    """One Table I row (literature data, HPCG Nov 2023 [1])."""

    name: str
    hpl_pflops: float
    hpcg_pflops: Optional[float]
    hpcg_pct_of_hpl: Optional[float]
    hpcg_pct_of_peak: Optional[float]


TABLE_I: Tuple[SupercomputerEntry, ...] = (
    SupercomputerEntry("Frontier", 1206.0, 14.05, 1.16, 0.8),
    SupercomputerEntry("Aurora", 1012.0, 5.61, 0.55, 0.3),
    SupercomputerEntry("Eagle", 561.2, None, None, None),
    SupercomputerEntry("Fugaku", 442.01, 16.0, 3.62, 3.0),
    SupercomputerEntry("Lumi", 379.7, 4.587, 1.2, 0.87),
)


def predicted_peak_fraction(
    n: int = 1,
    word_bytes: int = 8,
    machine_balance_ops_per_byte: float = 100.0,
) -> float:
    """Fraction of peak a CG-class solver can reach on a machine whose
    balance (peak flops / bandwidth) is ``machine_balance``.

    Best-case CG intensity is N/2 ops/word (Eq. 4); attainable/peak =
    AI / balance when memory bound.  HPC systems run double precision and
    N = 1, and sit near 100 flops/byte of balance — predicting ~0.1-1 % of
    peak, exactly the Table I range.
    """
    ai = skewed_limit_words(n) / word_bytes
    return min(1.0, ai / machine_balance_ops_per_byte)


def report() -> str:
    rows = []
    for e in TABLE_I:
        rows.append([
            e.name,
            e.hpl_pflops,
            e.hpcg_pflops if e.hpcg_pflops is not None else "n/a",
            f"{e.hpcg_pct_of_hpl:.2f}%" if e.hpcg_pct_of_hpl is not None else "n/a",
            f"{e.hpcg_pct_of_peak:.2f}%" if e.hpcg_pct_of_peak is not None else "n/a",
        ])
    table = render_table(
        ["System", "HPL PF/s", "HPCG PF/s", "HPCG %HPL", "HPCG %peak"],
        rows,
        title="Table I: CG vs LINPACK on top supercomputers (HPCG Nov 2023)",
    )
    gpu_like = predicted_peak_fraction(machine_balance_ops_per_byte=100.0)
    cpu_like = predicted_peak_fraction(machine_balance_ops_per_byte=3.4)
    extra = (
        "\nModel prediction for CG-class AI (N=1, fp64, Eq. 4):"
        f"\n  GPU-class balance (100 F/B, Frontier/Aurora-like): {gpu_like * 100:.2f}% of peak"
        f"\n  bandwidth-rich balance (3.4 F/B, Fugaku A64FX-like): {cpu_like * 100:.2f}% of peak"
        "\nThe observed 0.3-3% band sits between these memory-bound limits."
    )
    return table + extra


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
