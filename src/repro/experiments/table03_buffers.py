"""Table III: buffer-mechanism matrix, cross-checked against the models.

``verify()`` ties each table claim to behaviour of the implemented buffer
classes: the cache replaces at line granularity with no workload knowledge,
buffets refuse to overflow (explicit), CHORD replaces at operand
granularity using only coarse DAG metadata.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import buffer_capability_table
from ..buffers.buffet import Buffet, BuffetError
from ..buffers.cache import SetAssociativeCache
from ..buffers.lru import LruPolicy
from ..chord.buffer import ChordBuffer
from ..chord.hints import ReuseHints, TensorHints
from ..hw.config import AcceleratorConfig
from ..hw.sram_model import chord_metadata_ratio


def verify() -> Dict[str, bool]:
    checks: Dict[str, bool] = {}

    # Cache: implicit line-level replacement, fully workload-agnostic.
    cache = SetAssociativeCache(1024, 16, 2, LruPolicy())
    for b in range(100):
        cache.access_line(b, is_write=False)
    checks["cache replaces implicitly at line level"] = cache.stats.evictions > 0

    # Buffet: explicit — refuses to overflow instead of spilling.
    buf = Buffet(8)
    buf.fill(8)
    try:
        buf.fill(1)
        overflowed = False
    except BuffetError:
        overflowed = True
    checks["buffet is explicit (no implicit overflow)"] = overflowed

    # CHORD: operand-granularity replacement from coarse hints only.
    hints = ReuseHints({
        "X": TensorHints("X", 1000, 0, (7,), False),
        "R": TensorHints("R", 1000, 1, (2, 3), False),
    })
    chord = ChordBuffer(1200, hints)
    chord.write("X", 0)          # X fills first
    chord.write("R", 1)          # R (sooner, more frequent) displaces X's tail
    checks["chord replaces at operand granularity (RIFF)"] = (
        chord.resident_bytes("R") > 200 and chord.resident_bytes("X") < 1000
    )

    # CHORD metadata is ~0.01x of cache tags.
    ratio = chord_metadata_ratio(AcceleratorConfig())
    checks["chord metadata ~0.01x cache tags"] = ratio < 0.02
    return checks


def report() -> str:
    table = buffer_capability_table()
    checks = verify()
    lines = [table, "", "Live mechanism demonstrations:"]
    for name, ok in checks.items():
        lines.append(f"  [{'x' if ok else ' '}] {name}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
