"""Fig. 15: area and per-access energy of 4 MB buffet, cache and CHORD.

Paper endpoints: buffet 6.72 mm², cache 9.87 mm² (6.59 data + 1.85 tag),
CHORD 6.74 mm²; the RIFF index table is ~0.01x the cache tag array; cache
per-access energy far above buffet/CHORD (tag probes).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.report import render_table
from ..hw.config import AcceleratorConfig, default_config
from ..hw.sram_model import (
    StructureCost,
    all_structure_costs,
    chord_metadata_ratio,
)


def run(cfg: Optional[AcceleratorConfig] = None) -> Dict[str, StructureCost]:
    cfg = default_config(cfg)
    return all_structure_costs(cfg)


def report(cfg: Optional[AcceleratorConfig] = None) -> str:
    cfg = default_config(cfg)
    costs = run(cfg)
    order = ("buffet", "cache", "chord")
    rows = [
        [
            costs[n].name,
            costs[n].data_mm2,
            costs[n].metadata_mm2,
            costs[n].control_mm2,
            costs[n].total_mm2,
            costs[n].energy_pj_per_access,
        ]
        for n in order
    ]
    table = render_table(
        ["structure", "data mm2", "meta mm2", "ctrl mm2", "total mm2", "pJ/access"],
        rows,
        title=f"Fig. 15: 4MB structure costs ({cfg.describe()})",
        precision=3,
    )
    ratio = chord_metadata_ratio(cfg)
    return table + (
        f"\nRIFF-index-table / cache-tag area ratio: {ratio:.4f} (paper: ~0.01x)"
        "\nPaper endpoints: buffet 6.72, cache 9.87 (tag 1.85), CHORD 6.74 mm2."
    )


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
