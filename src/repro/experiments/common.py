"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..baselines.runner import run_workload_config
from ..hw.config import GB, AcceleratorConfig
from ..sim.results import SimResult
from ..workloads.registry import Workload


def bandwidth_label(bytes_per_s: float) -> str:
    return f"{bytes_per_s / GB:.0f}GB/s"


def run_configs(
    workload: Workload,
    configs: Sequence[str],
    cfg: AcceleratorConfig,
    cache_granularity: Optional[int] = None,
) -> Dict[str, SimResult]:
    """Run several Table IV configurations on one workload."""
    return {
        c: run_workload_config(
            workload, c, cfg, cache_granularity=cache_granularity
        )
        for c in configs
    }


#: Cache-simulation coarsening used by the heavyweight experiments: keeps
#: line-exactness where affordable and bounds trace length elsewhere (see
#: ``repro.sim.trace.auto_granularity``).  ``None`` = choose automatically.
DEFAULT_CACHE_GRANULARITY: Optional[int] = None
