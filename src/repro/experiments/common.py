"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..baselines.runner import run_workload_config
from ..hw.config import GB, AcceleratorConfig
from ..sim.results import SimResult
from ..workloads.registry import Workload


def bandwidth_label(bytes_per_s: float) -> str:
    return f"{bytes_per_s / GB:.0f}GB/s"


def prewarm_grid(
    workloads: Iterable[Workload],
    configs: Sequence[str],
    cfgs: Iterable[AcceleratorConfig],
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> int:
    """Pre-simulate workloads × configs × cfgs across processes.

    No-op for ``jobs=1`` (the serial path simulates lazily); ``jobs=None``
    means one worker per core.  Outputs are unaffected either way — the
    experiment loops below replay from the warm cache — so every ``run()``
    stays byte-identical to its serial result.
    """
    if jobs is not None and jobs <= 1:
        return 0
    from ..orchestrator.parallel import prewarm
    from ..orchestrator.spec import SweepPoint

    return prewarm(
        [
            SweepPoint(w.name, c, cfg, cache_granularity)
            for w in workloads
            for c in configs
            for cfg in cfgs
        ],
        jobs=jobs,
    )


def run_configs(
    workload: Workload,
    configs: Sequence[str],
    cfg: AcceleratorConfig,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> Dict[str, SimResult]:
    """Run several Table IV configurations on one workload."""
    prewarm_grid([workload], configs, [cfg],
                 cache_granularity=cache_granularity, jobs=jobs)
    return {
        c: run_workload_config(
            workload, c, cfg, cache_granularity=cache_granularity
        )
        for c in configs
    }


#: Cache-simulation coarsening used by the heavyweight experiments: keeps
#: line-exactness where affordable and bounds trace length elsewhere (see
#: ``repro.sim.trace.auto_granularity``).  ``None`` = choose automatically.
DEFAULT_CACHE_GRANULARITY: Optional[int] = None
