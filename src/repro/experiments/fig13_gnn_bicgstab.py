"""Fig. 13: GNN (cora, protein) and BiCGStab (NASA4704, fv1, shallow_water1).

GNN panels: CELLO should match FLAT (the only reusable tensor is the
pipelineable AX) and both beat the op-by-op baselines; for cora the cache
policies fall below Flexagon (large feature map).  BiCGStab panels (N=1):
same ordering as CG — CELLO on top via delayed-writeback reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..baselines.configs import MAIN_CONFIGS
from ..baselines.runner import run_workload_config
from ..hw.config import AcceleratorConfig, default_config
from ..sim.results import SimResult
from ..workloads.registry import (
    all_bicgstab_workloads,
    all_gnn_workloads,
)
from .common import prewarm_grid


@dataclass(frozen=True)
class Fig13Panel:
    workload: str
    family: str
    results: Dict[str, SimResult]


def run(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> Tuple[Fig13Panel, ...]:
    cfg = default_config(cfg)
    workloads = (*all_gnn_workloads(), *all_bicgstab_workloads())
    prewarm_grid(workloads, configs, [cfg],
                 cache_granularity=cache_granularity, jobs=jobs)
    panels = []
    for w in workloads:
        results = {
            c: run_workload_config(w, c, cfg, cache_granularity=cache_granularity)
            for c in configs
        }
        panels.append(Fig13Panel(w.name, w.family, results))
    return tuple(panels)


def report(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> str:
    cfg = default_config(cfg)
    panels = run(cfg, configs=configs, cache_granularity=cache_granularity,
                 jobs=jobs)
    rows = []
    for p in panels:
        row = [p.workload]
        for c in configs:
            row.append(p.results[c].throughput_gmacs)
        rows.append(row)
    headers = ["workload"] + [f"{c} GMAC/s" for c in configs]
    table = render_table(
        headers, rows,
        title="Fig. 13: GNN and BiCGStab performance (higher is better)",
    )
    gnn = [p for p in panels if p.family == "gnn"]
    checks = []
    for p in gnn:
        flat = p.results["FLAT"].throughput_gmacs
        cello = p.results["CELLO"].throughput_gmacs
        checks.append(f"{p.workload}: CELLO/FLAT = {cello / flat:.2f}")
    return table + "\nGNN parity check (paper: CELLO == FLAT): " + "; ".join(checks)


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
