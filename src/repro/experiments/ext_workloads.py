"""Extension-workload comparison: CELLO vs the main baselines on the
three non-paper DAG families (transformer encoder, restarted GMRES(m),
2-level multigrid V-cycle) across SRAM capacities.

This is the stress test the paper's curated Table VI set cannot provide
(see ``docs/workloads.md`` for each family's reuse signature):

* **transformer** — two delayed-hold residual skips at different
  distances; pipelining schedulers (FLAT) should close most of the gap
  to CELLO, caches should trail (streaming GEMMs thrash them);
* **gmres** — a growing Krylov basis re-read every Arnoldi step: the
  adversarial case for the explicit baselines (every re-read round-trips
  through DRAM) and the best case for CHORD's frequency-aware retention;
* **mg** — grid transfers break pipelining entirely, so FLAT gains
  little over Flexagon and the win must come from buffering
  (delayed-writeback reuse of the smoothed solution and the restricted
  residual).

Every (workload, config, SRAM) traffic point is memoised through the
standard runner, so a cache-warm rerun of ``repro ext`` performs zero
re-simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..baselines.configs import MAIN_CONFIGS
from ..baselines.runner import run_workload_config
from ..hw.config import AcceleratorConfig, default_config, MIB
from ..sim.results import SimResult
from ..workloads.matrices import FV1
from ..workloads.registry import (
    Workload,
    gmres_workload,
    multigrid_workload,
    transformer_workload,
)
from .common import prewarm_grid

#: SRAM capacities swept (the Fig. 16b points).
SRAM_SWEEP_BYTES: Tuple[int, ...] = (1 * MIB, 4 * MIB, 16 * MIB)


def default_workloads() -> Tuple[Workload, ...]:
    """One representative per extension family (kept small so a cold
    ``repro ext`` stays interactive; the full grid is
    :func:`repro.workloads.registry.all_ext_workloads`)."""
    return (
        transformer_workload(),
        gmres_workload(FV1),
        multigrid_workload(FV1),
    )


@dataclass(frozen=True)
class ExtPanel:
    """All configs for one (workload, SRAM size) point."""

    workload: str
    family: str
    sram_bytes: int
    results: Dict[str, SimResult]

    def speedup_of(self, config: str, baseline: str = "Flexagon") -> float:
        """Throughput of ``config`` relative to ``baseline``."""
        return self.results[config].speedup_over(self.results[baseline])


def run(
    cfg: Optional[AcceleratorConfig] = None,
    workloads: Optional[Sequence[Workload]] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    srams: Sequence[int] = SRAM_SWEEP_BYTES,
    jobs: Optional[int] = 1,
) -> Tuple[ExtPanel, ...]:
    """Simulate workloads × configs × SRAM sizes (memoised)."""
    cfg = default_config(cfg)
    workloads = tuple(default_workloads() if workloads is None else workloads)
    cfgs = [cfg.with_sram(s) for s in srams]
    prewarm_grid(workloads, configs, cfgs, jobs=jobs)
    panels = []
    for w in workloads:
        for c, sram in zip(cfgs, srams):
            results = {
                name: run_workload_config(w, name, c) for name in configs
            }
            panels.append(ExtPanel(w.name, w.family, sram, results))
    return tuple(panels)


def cello_speedups(panels: Sequence[ExtPanel]) -> Dict[str, float]:
    """Best CELLO-vs-Flexagon speedup per family (any SRAM size).

    Panels simulated without both configs are skipped."""
    out: Dict[str, float] = {}
    for p in panels:
        if not {"CELLO", "Flexagon"} <= set(p.results):
            continue
        s = p.speedup_of("CELLO")
        if s > out.get(p.family, 0.0):
            out[p.family] = s
    return out


def cello_traffic_cuts(panels: Sequence[ExtPanel]) -> Dict[str, float]:
    """Best CELLO DRAM-traffic reduction factor per family.

    Traffic stays meaningful when a workload is compute-bound (the
    transformer at 1 TB/s ties every config on time, like the paper's
    ResNet panel at high bandwidth — Fig. 16a).  Panels simulated without
    both configs are skipped."""
    out: Dict[str, float] = {}
    for p in panels:
        if not {"CELLO", "Flexagon"} <= set(p.results):
            continue
        cut = p.results["Flexagon"].dram_bytes / max(1, p.results["CELLO"].dram_bytes)
        if cut > out.get(p.family, 0.0):
            out[p.family] = cut
    return out


def report(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = MAIN_CONFIGS,
    jobs: Optional[int] = 1,
) -> str:
    cfg = default_config(cfg)
    panels = run(cfg, configs=configs, jobs=jobs)
    # The CELLO-vs-Flexagon columns only make sense when both were run.
    with_summary = {"CELLO", "Flexagon"} <= set(configs)
    rows = []
    for p in panels:
        row = [p.workload, p.sram_bytes // MIB]
        for c in configs:
            row.append(p.results[c].dram_bytes / 1e6)
        if with_summary:
            row.append(p.speedup_of("CELLO"))
        rows.append(row)
    headers = ["workload", "SRAM MB"] + [f"{c} MB" for c in configs]
    if with_summary:
        headers.append("CELLO speedup")
    title = "Extension workloads: DRAM traffic by config"
    if with_summary:
        title += " (CELLO speedup vs Flexagon)"
    table = render_table(headers, rows, title=title)
    if not with_summary:
        return table
    best = cello_speedups(panels)
    cuts = cello_traffic_cuts(panels)
    summary = "; ".join(
        f"{fam}: {best[fam]:.1f}x speedup, {cuts[fam]:.1f}x less traffic"
        for fam in sorted(best)
    )
    return table + "\nBest CELLO result per family: " + summary


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
