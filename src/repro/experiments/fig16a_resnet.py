"""Fig. 16(a): ResNet conv3_x block — performance and off-chip energy,
including the SET baseline.

Expected shape: at 1 TB/s every configuration is compute bound (equal
performance); at 250 GB/s the op-by-op baseline drops while pipelined
configs stay compute bound.  Energy: SET == CELLO < FLAT < Flexagon
(SET handles the delayed-hold skip connection; FLAT does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..baselines.runner import run_workload_config
from ..hw.config import AcceleratorConfig, BANDWIDTH_POINTS, default_config
from ..sim.results import SimResult
from ..workloads.registry import resnet_workload
from .common import bandwidth_label, prewarm_grid

CONFIGS: Tuple[str, ...] = ("Flexagon", "Flex+LRU", "Flex+BRRIP", "FLAT", "SET", "CELLO")


@dataclass(frozen=True)
class Fig16aPanel:
    bandwidth: float
    results: Dict[str, SimResult]


def run(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = CONFIGS,
    bandwidths: Sequence[float] = BANDWIDTH_POINTS,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> Tuple[Fig16aPanel, ...]:
    cfg = default_config(cfg)
    w = resnet_workload()
    prewarm_grid([w], configs, [cfg],
                 cache_granularity=cache_granularity, jobs=jobs)
    panels = []
    for bw in bandwidths:
        c = cfg.with_bandwidth(bw)
        results = {
            name: run_workload_config(w, name, c, cache_granularity=cache_granularity)
            for name in configs
        }
        panels.append(Fig16aPanel(bw, results))
    return tuple(panels)


def report(
    cfg: Optional[AcceleratorConfig] = None,
    configs: Sequence[str] = CONFIGS,
    cache_granularity: Optional[int] = None,
    jobs: Optional[int] = 1,
) -> str:
    cfg = default_config(cfg)
    panels = run(cfg, configs=configs, cache_granularity=cache_granularity,
                 jobs=jobs)
    perf_rows = []
    for p in panels:
        perf_rows.append(
            [bandwidth_label(p.bandwidth)]
            + [p.results[c].throughput_gmacs for c in configs]
        )
    perf = render_table(
        ["BW"] + [f"{c} GMAC/s" for c in configs],
        perf_rows,
        title="Fig. 16(a) performance (higher is better)",
    )
    base = panels[0].results["Flexagon"].dram_bytes
    energy_rows = [[
        "relative off-chip energy",
        *[p_res.dram_bytes / base for p_res in
          (panels[0].results[c] for c in configs)],
    ]]
    energy = render_table(
        ["metric"] + list(configs),
        energy_rows,
        title="Fig. 16(a) energy relative to Flexagon (lower is better)",
        precision=3,
    )
    set_vs_cello = (
        panels[0].results["SET"].dram_bytes
        / panels[0].results["CELLO"].dram_bytes
    )
    return (
        perf + "\n\n" + energy
        + f"\nSET/CELLO traffic ratio: {set_vs_cello:.3f} (paper: SET == CELLO on ResNet)"
    )


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
