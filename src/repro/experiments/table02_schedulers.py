"""Table II: scheduler capability matrix, cross-checked against Algorithm 2.

Besides printing the matrix, ``verify()`` demonstrates each capability on a
live DAG: the CG DAG must contain pipelineable + delayed-writeback edges,
the ResNet DAG a delayed-hold edge and a multicast node — the claims in the
table correspond to dependency classes this library actually detects and
exploits.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import scheduler_capability_table
from ..core.classify import DependencyType, classify_dependencies
from ..workloads.matrices import FV1
from ..workloads.registry import cg_workload, resnet_workload


def verify() -> Dict[str, bool]:
    """Live demonstrations backing each SCORE tick in Table II."""
    cg = classify_dependencies(cg_workload(FV1, n=16, iterations=2).build())
    resnet = classify_dependencies(resnet_workload().build())
    cg_summary = cg.summary()
    resnet_summary = resnet.summary()
    return {
        "inter_op_pipelining (CG has pipelineable edges)":
            cg_summary[DependencyType.PIPELINEABLE.value] > 0,
        "delayed_writeback (CG has writeback edges)":
            cg_summary[DependencyType.DELAYED_WRITEBACK.value] > 0,
        "delayed_hold (ResNet skip is a hold edge)":
            resnet_summary[DependencyType.DELAYED_HOLD.value] > 0,
        "parallel_multicast (some node multicasts)":
            any(cg.parallel_multicast.values()) or any(resnet.parallel_multicast.values()),
    }


def report() -> str:
    table = scheduler_capability_table()
    checks = verify()
    lines = [table, "", "Live capability demonstrations:"]
    for name, ok in checks.items():
        lines.append(f"  [{'x' if ok else ' '}] {name}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
