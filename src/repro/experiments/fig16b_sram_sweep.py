"""Fig. 16(b): CELLO performance vs CHORD capacity (1/4/16 MB),
CG on shallow_water1, N ∈ {1, 16}.

Expected shape: monotone improvement with SRAM; at N=1 the working set
fits by 4 MB so 4 MB == 16 MB; at N=16 capacity keeps paying through
16 MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.report import render_table
from ..baselines.runner import run_workload_config
from ..hw.config import AcceleratorConfig, default_config, MIB
from ..sim.results import SimResult
from ..workloads.registry import cg_workload
from ..workloads.matrices import SHALLOW_WATER1
from .common import prewarm_grid

SRAM_SWEEP_BYTES: Tuple[int, ...] = (1 * MIB, 4 * MIB, 16 * MIB)
N_VALUES: Tuple[int, ...] = (1, 16)


@dataclass(frozen=True)
class Fig16bPoint:
    n: int
    sram_bytes: int
    result: SimResult


def run(
    cfg: Optional[AcceleratorConfig] = None,
    srams: Sequence[int] = SRAM_SWEEP_BYTES,
    n_values: Sequence[int] = N_VALUES,
    iterations: int = 10,
    jobs: Optional[int] = 1,
) -> Tuple[Fig16bPoint, ...]:
    cfg = default_config(cfg)
    prewarm_grid(
        [cg_workload(SHALLOW_WATER1, n, iterations=iterations) for n in n_values],
        ("CELLO",), [cfg.with_sram(s) for s in srams], jobs=jobs,
    )
    points = []
    for n in n_values:
        w = cg_workload(SHALLOW_WATER1, n, iterations=iterations)
        for sram in srams:
            c = cfg.with_sram(sram)
            r = run_workload_config(w, "CELLO", c)
            points.append(Fig16bPoint(n=n, sram_bytes=sram, result=r))
    return tuple(points)


def report(cfg: Optional[AcceleratorConfig] = None,
           iterations: int = 10, jobs: Optional[int] = 1) -> str:
    cfg = default_config(cfg)
    points = run(cfg, iterations=iterations, jobs=jobs)
    rows = [
        [
            p.n,
            p.sram_bytes // MIB,
            p.result.dram_bytes / 1e6,
            p.result.throughput_gmacs,
        ]
        for p in points
    ]
    return render_table(
        ["N", "SRAM MB", "DRAM MB", "GMAC/s"],
        rows,
        title="Fig. 16(b): CELLO vs CHORD capacity (CG, shallow_water1)",
    )


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
