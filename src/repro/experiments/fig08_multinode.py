"""Fig. 8: multi-node dataflow — NoC traffic of the two split strategies.

The top of Fig. 8 splits the DAG operator-by-operator across nodes (the
skewed M×N intermediate crosses the NoC); the bottom splits the dominant
rank (only the N×N' tensor is broadcast/reduced).  For CG's shapes the
rank split moves orders of magnitude fewer words.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..analysis.report import render_table
from ..hw.noc import NocConfig
from ..score.multinode import NocTrafficComparison, compare_noc_traffic
from ..workloads.registry import CG_DATASETS


def run(
    n: int = 16,
    n_nodes: int = 16,
) -> Tuple[NocTrafficComparison, ...]:
    noc = NocConfig(n_nodes=n_nodes)
    return tuple(
        compare_noc_traffic(ds.m, n, n, noc) for ds in CG_DATASETS
    )


def report(n: int = 16, n_nodes: int = 16) -> str:
    comps = run(n=n, n_nodes=n_nodes)
    rows = [
        [
            f"M={c.m}",
            c.op_split_words,
            c.rank_split_words,
            c.advantage,
        ]
        for c in comps
    ]
    return render_table(
        ["problem", "op-split words", "rank-split words", "advantage (x)"],
        rows,
        title=f"Fig. 8: NoC traffic per pipelined pair (N={n}, {n_nodes} nodes)",
    )


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
