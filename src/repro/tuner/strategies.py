"""Search strategies over a :class:`~repro.tuner.space.TuneSpace`.

A strategy decides *which* points to evaluate and in what batches; the
tuner owns *how* a batch is evaluated (through the orchestrator, warm
cache first — see :mod:`repro.tuner.tuner`).  The contract:

* ``run(space, evaluate)`` calls ``evaluate(points)`` one batch at a
  time and returns every evaluation it collected;
* the incumbent (``space.default_point()``) is always part of the first
  batch, so the searched best can never lose to the paper's fixed
  configuration;
* strategies are deterministic given their seed — the evaluator memoises
  repeated points, so re-proposing is merely wasteful, never wrong.

Three built-ins cover the sizes that occur in practice: exhaustive
:class:`GridStrategy` for the small spaces CHORD's co-design argument
produces, seeded :class:`RandomStrategy` for quick probes of bigger
products, and :class:`HalvingStrategy` — a greedy successive-halving
refinement that spends half its budget exploring and the rest walking
single-knob neighbourhoods of the current Pareto survivors.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, List, Sequence, Tuple

from .pareto import dominates
from .space import TunePoint, TuneSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .tuner import TuneEval

#: Batch evaluator provided by the tuner: points -> evaluations (memoised,
#: order-preserving, one orchestrator dispatch per batch).
Evaluator = Callable[[Sequence[TunePoint]], List["TuneEval"]]

#: Refuse to enumerate absurd grids — the whole point of CHORD is that
#: real co-design spaces are small (Sec. VI-B).
MAX_GRID_POINTS = 4096


class SearchStrategy(ABC):
    """Interface every search strategy implements."""

    #: CLI / report identifier (``repro tune --strategy <name>``).
    name: str = "abstract"

    @abstractmethod
    def run(self, space: TuneSpace, evaluate: Evaluator) -> List["TuneEval"]:
        """Search ``space``, returning every evaluation performed."""


def _first_batch(space: TuneSpace, points: Sequence[TunePoint]) -> List[TunePoint]:
    """The incumbent first, then ``points`` (deduplicated, order kept)."""
    out = [space.default_point()]
    for p in points:
        if p not in out:
            out.append(p)
    return out


class GridStrategy(SearchStrategy):
    """Exhaustive enumeration — exact Pareto ground truth."""

    name = "grid"

    def run(self, space: TuneSpace, evaluate: Evaluator) -> List["TuneEval"]:
        n = len(space)
        if n > MAX_GRID_POINTS:
            raise ValueError(
                f"grid of {n} points exceeds the {MAX_GRID_POINTS}-point cap; "
                "use the random or halving strategy for spaces this large"
            )
        return evaluate(_first_batch(space, space.points()))


class RandomStrategy(SearchStrategy):
    """Seeded uniform sampling without replacement.

    With ``budget`` at least the space size this degenerates to the grid
    (sampling without replacement exhausts the space) — the property the
    grid-vs-random agreement tests pin down.
    """

    name = "random"

    def __init__(self, budget: int = 32, seed: int = 0) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.budget = budget
        self.seed = seed

    def run(self, space: TuneSpace, evaluate: Evaluator) -> List["TuneEval"]:
        rng = random.Random(self.seed)
        sampled = space.sample(rng, self.budget)
        return evaluate(_first_batch(space, sampled)[: max(self.budget, 1)])


class HalvingStrategy(SearchStrategy):
    """Greedy successive-halving refinement.

    Round 0 samples half the budget at random (incumbent included).
    Every later round halves attention: the non-dominated survivors of
    everything seen so far (padded by best-primary-objective entries up
    to ``survivors``) propose their unevaluated single-knob neighbours,
    and the best-ranked candidates consume the remaining budget.  Stops
    when the budget is spent or no survivor has unseen neighbours.
    """

    name = "halving"

    def __init__(self, budget: int = 32, seed: int = 0,
                 survivors: int = 4) -> None:
        if budget <= 0 or survivors <= 0:
            raise ValueError("budget and survivors must be positive")
        self.budget = budget
        self.seed = seed
        self.survivors = survivors

    def _select(self, evals: List["TuneEval"],
                objectives: Tuple[str, ...]) -> List["TuneEval"]:
        """Pareto survivors first, then pad by the primary objective."""
        vectors = {
            id(e): tuple(e.objectives[n] for n in objectives) for e in evals
        }
        front = [
            e for e in evals
            if not any(dominates(vectors[id(o)], vectors[id(e)]) for o in evals)
        ]
        front.sort(key=lambda e: vectors[id(e)])
        if len(front) >= self.survivors:
            return front[: self.survivors]
        rest = sorted((e for e in evals if e not in front),
                      key=lambda e: vectors[id(e)])
        return front + rest[: self.survivors - len(front)]

    def run(self, space: TuneSpace, evaluate: Evaluator) -> List["TuneEval"]:
        rng = random.Random(self.seed)
        explore = max(1, self.budget // 2)
        batch = _first_batch(space, space.sample(rng, explore))[: max(explore, 1)]
        evals = evaluate(batch)
        seen: Dict[TunePoint, None] = {e.point: None for e in evals}
        remaining = self.budget - len(seen)
        while remaining > 0 and evals:
            objectives = tuple(evals[0].objectives)
            survivors = self._select(evals, objectives)
            candidates: List[TunePoint] = []
            for s in survivors:
                for n in space.neighbors(s.point):
                    if n not in seen and n not in candidates:
                        candidates.append(n)
            if not candidates:
                break
            batch = candidates[:remaining]
            evals = evals + evaluate(batch)
            for p in batch:
                seen[p] = None
            remaining = self.budget - len(seen)
        return evals


#: Registry for the CLI (`repro tune --strategy <name>`).
STRATEGIES: Dict[str, Callable[..., SearchStrategy]] = {
    GridStrategy.name: GridStrategy,
    RandomStrategy.name: RandomStrategy,
    HalvingStrategy.name: HalvingStrategy,
}


def make_strategy(name: str, budget: int = 32, seed: int = 0) -> SearchStrategy:
    """Instantiate a strategy by CLI name (budget/seed where applicable)."""
    if name == GridStrategy.name:
        return GridStrategy()
    if name == RandomStrategy.name:
        return RandomStrategy(budget=budget, seed=seed)
    if name == HalvingStrategy.name:
        return HalvingStrategy(budget=budget, seed=seed)
    raise KeyError(
        f"unknown strategy {name!r}; known: {', '.join(STRATEGIES)}"
    )
