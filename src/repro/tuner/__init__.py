"""Co-design autotuner: Pareto search over schedule × CHORD configurations.

Sec. VI-B argues CHORD collapses buffer allocation from ~10^80 choices
to O(nodes + edges) design points; this package *searches* what remains
— the joint space of SCORE schedule knobs, CHORD/hardware geometry, and
cache policy for the implicit baselines — and reports the Pareto
frontier over runtime, DRAM traffic, energy, and buffer area, next to
the paper's fixed CELLO point.

Quickstart::

    from repro.tuner import GridStrategy, TuneSpace, tune
    from repro.hw.config import MIB

    result = tune(
        "gmres/fv1/m=8/N=1",
        space=TuneSpace(sram_bytes=(4 * MIB, 1 * MIB),
                        chord_entries=(64, 16),
                        cache_policies=("LRU", "SRRIP")),
        strategy=GridStrategy(),
        objectives=("runtime", "dram", "area"),
        jobs=4,
    )
    print(result.front.describe())

CLI: ``python -m repro tune <workload> [--strategy grid|random|halving]
[--budget N] [--objectives runtime,dram,…]`` (see ``docs/tuner.md``).
"""

from .pareto import (
    DEFAULT_OBJECTIVES,
    OBJECTIVES,
    FrontEntry,
    ParetoFront,
    dominates,
    objective_values,
    validate_objectives,
)
from .space import TunePoint, TuneSpace
from .strategies import (
    STRATEGIES,
    GridStrategy,
    HalvingStrategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
)
from .tuner import FIDELITIES, TUNE_SCHEMA_VERSION, TuneEval, TuneResult, tune

__all__ = [
    "FIDELITIES",
    "DEFAULT_OBJECTIVES",
    "OBJECTIVES",
    "FrontEntry",
    "ParetoFront",
    "dominates",
    "objective_values",
    "validate_objectives",
    "TunePoint",
    "TuneSpace",
    "STRATEGIES",
    "GridStrategy",
    "HalvingStrategy",
    "RandomStrategy",
    "SearchStrategy",
    "make_strategy",
    "TUNE_SCHEMA_VERSION",
    "TuneEval",
    "TuneResult",
    "tune",
]
