"""The co-design search space: schedule knobs × CHORD/hardware knobs.

Sec. VI-B's argument is that CHORD collapses the *buffer-allocation*
search from ~10^80 choices to O(nodes + edges) metadata.  What remains
searchable is the small joint space this module enumerates:

* **schedule knobs** — the SCORE/engine ablation axes (`use_riff`,
  `explicit_retire`, `charge_swizzle`), encoded into the config *name*
  (``CELLO[...]``, see :mod:`repro.baselines.configs`) so tuned points
  flow through the runner's memoisation and the persistent store
  unchanged;
* **CHORD/hardware knobs** — RIFF index-table entries, SRAM capacity and
  line size, all carried by :class:`~repro.hw.config.AcceleratorConfig`
  (already part of every traffic key);
* **cache policy** — for the implicit baselines, the ``Flex+<policy>``
  family (LRU / BRRIP / SRRIP) competes in the same space.

A :class:`TunePoint` is one joint choice; a :class:`TuneSpace` is the
axis-product strategies search over.  Spaces are tiny by design — that
is the paper's point — so exhaustive enumeration is always available as
the ground truth the sampling strategies are tested against.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..baselines.configs import CACHE_POLICIES, cello_variant_name
from ..hw.config import MIB, AcceleratorConfig
from ..sim.engine import EngineOptions


@dataclass(frozen=True)
class TunePoint:
    """One joint (schedule × buffer × hardware) design choice.

    ``cache_policy`` is ``None`` for the CELLO family (schedule knobs
    apply); a policy name selects the implicit-cache baseline instead, in
    which case the schedule knobs are meaningless and are normalised to
    their defaults so equal designs compare (and memoise) equal.
    """

    use_riff: bool = True
    explicit_retire: bool = True
    charge_swizzle: bool = True
    chord_entries: int = 64
    sram_bytes: int = 4 * MIB
    line_bytes: int = 16
    cache_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cache_policy is not None:
            if self.cache_policy not in CACHE_POLICIES:
                raise ValueError(
                    f"unknown cache policy {self.cache_policy!r}; "
                    f"known: {sorted(CACHE_POLICIES)}"
                )
            for knob in ("use_riff", "explicit_retire", "charge_swizzle"):
                object.__setattr__(self, knob, True)
        if self.chord_entries <= 0 or self.sram_bytes <= 0:
            raise ValueError("chord_entries and sram_bytes must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")

    @property
    def is_cello(self) -> bool:
        return self.cache_policy is None

    def engine_options(self) -> Optional[EngineOptions]:
        """The engine ablation switches (None for cache-family points)."""
        if not self.is_cello:
            return None
        return EngineOptions(
            use_riff=self.use_riff,
            explicit_retire=self.explicit_retire,
            charge_swizzle=self.charge_swizzle,
        )

    def config_name(self) -> str:
        """The canonical runner/store config name of this point."""
        if self.cache_policy is not None:
            return f"Flex+{self.cache_policy}"
        options = self.engine_options()
        assert options is not None
        return cello_variant_name(options)

    def accel_cfg(self, base: AcceleratorConfig) -> AcceleratorConfig:
        """``base`` with this point's hardware knobs substituted in."""
        return replace(
            base,
            sram_bytes=self.sram_bytes,
            line_bytes=self.line_bytes,
            chord_entries=self.chord_entries,
        )

    def knobs(self) -> Dict[str, object]:
        """Flat knob dict (reports and serialisation)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_knobs(cls, data: Dict[str, object]) -> "TunePoint":
        kwargs = dict(data)
        policy = kwargs.get("cache_policy")
        kwargs["cache_policy"] = None if policy is None else str(policy)
        return cls(
            use_riff=bool(kwargs["use_riff"]),
            explicit_retire=bool(kwargs["explicit_retire"]),
            charge_swizzle=bool(kwargs["charge_swizzle"]),
            chord_entries=int(kwargs["chord_entries"]),  # type: ignore[arg-type]
            sram_bytes=int(kwargs["sram_bytes"]),  # type: ignore[arg-type]
            line_bytes=int(kwargs["line_bytes"]),  # type: ignore[arg-type]
            cache_policy=kwargs["cache_policy"],
        )


@dataclass(frozen=True)
class TuneSpace:
    """Axis-product search space.

    Each axis lists its candidate values with the paper's fixed point
    *first* — :meth:`default_point` (the incumbent every strategy must
    evaluate) is the head of every axis.  ``cache_policies`` is empty by
    default: the co-design question is about CELLO's knobs, and the cache
    baselines join only when explicitly requested.
    """

    use_riff: Tuple[bool, ...] = (True, False)
    explicit_retire: Tuple[bool, ...] = (True, False)
    charge_swizzle: Tuple[bool, ...] = (True, False)
    chord_entries: Tuple[int, ...] = (64,)
    sram_bytes: Tuple[int, ...] = (4 * MIB,)
    line_bytes: Tuple[int, ...] = (16,)
    cache_policies: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for axis in ("use_riff", "explicit_retire", "charge_swizzle",
                     "chord_entries", "sram_bytes", "line_bytes"):
            values = getattr(self, axis)
            if not values:
                raise ValueError(f"axis {axis!r} must list at least one value")
            if len(set(values)) != len(values):
                raise ValueError(f"axis {axis!r} has duplicate values")
        for p in self.cache_policies:
            if p not in CACHE_POLICIES:
                raise ValueError(
                    f"unknown cache policy {p!r}; known: {sorted(CACHE_POLICIES)}"
                )

    # -- enumeration ---------------------------------------------------------

    def points(self) -> Tuple[TunePoint, ...]:
        """Every design point, deterministic order, CELLO family first.

        Cache-policy points vary only over the hardware axes that matter
        to a cache (SRAM, line size) — schedule knobs and the RIFF table
        are CHORD concepts and stay at their defaults.
        """
        out: List[TunePoint] = []
        for riff, retire, swz, entries, sram, line in itertools.product(
            self.use_riff, self.explicit_retire, self.charge_swizzle,
            self.chord_entries, self.sram_bytes, self.line_bytes,
        ):
            out.append(TunePoint(
                use_riff=riff, explicit_retire=retire, charge_swizzle=swz,
                chord_entries=entries, sram_bytes=sram, line_bytes=line,
            ))
        for policy, sram, line in itertools.product(
            self.cache_policies, self.sram_bytes, self.line_bytes,
        ):
            out.append(TunePoint(
                sram_bytes=sram, line_bytes=line, cache_policy=policy,
            ))
        return tuple(out)

    def __len__(self) -> int:
        cello = (len(self.use_riff) * len(self.explicit_retire)
                 * len(self.charge_swizzle) * len(self.chord_entries)
                 * len(self.sram_bytes) * len(self.line_bytes))
        cache = (len(self.cache_policies) * len(self.sram_bytes)
                 * len(self.line_bytes))
        return cello + cache

    def __iter__(self) -> Iterator[TunePoint]:
        return iter(self.points())

    def __contains__(self, point: TunePoint) -> bool:
        return point in set(self.points())

    def default_point(self) -> TunePoint:
        """The incumbent: the paper's fixed CELLO configuration (all
        schedule knobs on, head value of every hardware axis)."""
        return TunePoint(
            chord_entries=self.chord_entries[0],
            sram_bytes=self.sram_bytes[0],
            line_bytes=self.line_bytes[0],
        )

    # -- strategy support ----------------------------------------------------

    def sample(self, rng: random.Random, k: int) -> Tuple[TunePoint, ...]:
        """``k`` distinct points, uniformly without replacement (the whole
        space when ``k`` ≥ its size — so a big enough random budget *is*
        the grid)."""
        pts = self.points()
        if k >= len(pts):
            return pts
        return tuple(rng.sample(pts, k))

    def neighbors(self, point: TunePoint) -> Tuple[TunePoint, ...]:
        """Points differing from ``point`` in exactly one axis value
        (the greedy/halving refinement moves)."""
        out: List[TunePoint] = []
        if point.is_cello:
            axes = {
                "use_riff": self.use_riff,
                "explicit_retire": self.explicit_retire,
                "charge_swizzle": self.charge_swizzle,
                "chord_entries": self.chord_entries,
                "sram_bytes": self.sram_bytes,
                "line_bytes": self.line_bytes,
            }
        else:
            axes = {
                "cache_policy": self.cache_policies,
                "sram_bytes": self.sram_bytes,
                "line_bytes": self.line_bytes,
            }
        for axis, values in axes.items():
            for v in values:
                if v == getattr(point, axis):
                    continue
                out.append(replace(point, **{axis: v}))
        # Family switch: a CELLO point neighbours the cache points (and
        # vice versa) at the same SRAM/line geometry.
        if point.is_cello:
            for policy in self.cache_policies:
                out.append(TunePoint(
                    sram_bytes=point.sram_bytes, line_bytes=point.line_bytes,
                    cache_policy=policy,
                ))
        else:
            out.append(TunePoint(
                chord_entries=self.chord_entries[0],
                sram_bytes=point.sram_bytes, line_bytes=point.line_bytes,
            ))
        return tuple(out)
