"""The co-design search space: schedule knobs × CHORD/hardware knobs.

Sec. VI-B's argument is that CHORD collapses the *buffer-allocation*
search from ~10^80 choices to O(nodes + edges) metadata.  What remains
searchable is the small joint space this module enumerates:

* **schedule knobs** — the SCORE/engine ablation axes (`use_riff`,
  `explicit_retire`, `charge_swizzle`), encoded into the config *name*
  (``CELLO[...]``, see :mod:`repro.baselines.configs`) so tuned points
  flow through the runner's memoisation and the persistent store
  unchanged;
* **CHORD/hardware knobs** — RIFF index-table entries, SRAM capacity and
  line size, all carried by :class:`~repro.hw.config.AcceleratorConfig`
  (already part of every traffic key);
* **cache policy** — for the implicit baselines, the ``Flex+<policy>``
  family (LRU / BRRIP / SRRIP) competes in the same space.

A :class:`TunePoint` is one joint choice; a :class:`TuneSpace` is the
axis-product strategies search over.  Spaces are tiny by design — that
is the paper's point — so exhaustive enumeration is always available as
the ground truth the sampling strategies are tested against.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..baselines.configs import CACHE_POLICIES, cello_variant_name
from ..hw.config import MIB, AcceleratorConfig
from ..sim.engine import EngineOptions


@dataclass(frozen=True)
class TunePoint:
    """One joint (schedule × buffer × hardware) design choice.

    ``cache_policy`` is ``None`` for the CELLO family (schedule knobs
    apply); a policy name selects the implicit-cache baseline instead, in
    which case the schedule knobs are meaningless and are normalised to
    their defaults so equal designs compare (and memoise) equal.
    """

    use_riff: bool = True
    explicit_retire: bool = True
    charge_swizzle: bool = True
    chord_entries: int = 64
    sram_bytes: int = 4 * MIB
    line_bytes: int = 16
    cache_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cache_policy is not None:
            if self.cache_policy not in CACHE_POLICIES:
                raise ValueError(
                    f"unknown cache policy {self.cache_policy!r}; "
                    f"known: {sorted(CACHE_POLICIES)}"
                )
            for knob in ("use_riff", "explicit_retire", "charge_swizzle"):
                object.__setattr__(self, knob, True)
        if self.chord_entries <= 0 or self.sram_bytes <= 0:
            raise ValueError("chord_entries and sram_bytes must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")

    @property
    def is_cello(self) -> bool:
        return self.cache_policy is None

    def engine_options(self) -> Optional[EngineOptions]:
        """The engine ablation switches (None for cache-family points)."""
        if not self.is_cello:
            return None
        return EngineOptions(
            use_riff=self.use_riff,
            explicit_retire=self.explicit_retire,
            charge_swizzle=self.charge_swizzle,
        )

    def config_name(self) -> str:
        """The canonical runner/store config name of this point."""
        if self.cache_policy is not None:
            return f"Flex+{self.cache_policy}"
        options = self.engine_options()
        assert options is not None
        return cello_variant_name(options)

    def accel_cfg(self, base: AcceleratorConfig) -> AcceleratorConfig:
        """``base`` with this point's hardware knobs substituted in."""
        return replace(
            base,
            sram_bytes=self.sram_bytes,
            line_bytes=self.line_bytes,
            chord_entries=self.chord_entries,
        )

    def knobs(self) -> Dict[str, object]:
        """Flat knob dict (reports and serialisation)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_knobs(cls, data: Dict[str, object]) -> "TunePoint":
        kwargs = dict(data)
        policy = kwargs.get("cache_policy")
        kwargs["cache_policy"] = None if policy is None else str(policy)
        return cls(
            use_riff=bool(kwargs["use_riff"]),
            explicit_retire=bool(kwargs["explicit_retire"]),
            charge_swizzle=bool(kwargs["charge_swizzle"]),
            chord_entries=int(kwargs["chord_entries"]),  # type: ignore[arg-type]
            sram_bytes=int(kwargs["sram_bytes"]),  # type: ignore[arg-type]
            line_bytes=int(kwargs["line_bytes"]),  # type: ignore[arg-type]
            cache_policy=kwargs["cache_policy"],
        )


@dataclass(frozen=True)
class ColumnarGrid:
    """The CELLO block of a :class:`TuneSpace` as knob *columns*.

    Row ``i`` of every array is design point ``i`` in exactly the order
    :meth:`TuneSpace.points` enumerates (cache-policy points follow in
    :attr:`cache_points`).  The batch analytic evaluator consumes the
    columns directly; :class:`TunePoint` objects are only instantiated
    for the rows that survive pruning — at 10^5–10^6 points the object
    churn, not the model, is what used to dominate enumeration.
    """

    use_riff: np.ndarray        # bool, (n_cello,)
    explicit_retire: np.ndarray
    charge_swizzle: np.ndarray
    chord_entries: np.ndarray   # int64, (n_cello,)
    sram_bytes: np.ndarray
    line_bytes: np.ndarray
    #: The (small) implicit-cache block, already materialised.
    cache_points: Tuple[TunePoint, ...]

    @property
    def n_cello(self) -> int:
        return int(self.use_riff.shape[0])

    def __len__(self) -> int:
        return self.n_cello + len(self.cache_points)

    def point_at(self, i: int) -> TunePoint:
        """``TuneSpace.points()[i]`` without materialising the grid."""
        n = len(self)
        if i < 0 or i >= n:
            raise IndexError(f"point index {i} out of range for {n} points")
        if i >= self.n_cello:
            return self.cache_points[i - self.n_cello]
        return TunePoint(
            use_riff=bool(self.use_riff[i]),
            explicit_retire=bool(self.explicit_retire[i]),
            charge_swizzle=bool(self.charge_swizzle[i]),
            chord_entries=int(self.chord_entries[i]),
            sram_bytes=int(self.sram_bytes[i]),
            line_bytes=int(self.line_bytes[i]),
        )

    def cello_index_of(self, point: TunePoint) -> Optional[int]:
        """Row index of a CELLO ``point``, or None when absent."""
        if not point.is_cello:
            return None
        hit = np.flatnonzero(
            (self.use_riff == point.use_riff)
            & (self.explicit_retire == point.explicit_retire)
            & (self.charge_swizzle == point.charge_swizzle)
            & (self.chord_entries == point.chord_entries)
            & (self.sram_bytes == point.sram_bytes)
            & (self.line_bytes == point.line_bytes)
        )
        return int(hit[0]) if hit.size else None


@dataclass(frozen=True)
class TuneSpace:
    """Axis-product search space.

    Each axis lists its candidate values with the paper's fixed point
    *first* — :meth:`default_point` (the incumbent every strategy must
    evaluate) is the head of every axis.  ``cache_policies`` is empty by
    default: the co-design question is about CELLO's knobs, and the cache
    baselines join only when explicitly requested.
    """

    use_riff: Tuple[bool, ...] = (True, False)
    explicit_retire: Tuple[bool, ...] = (True, False)
    charge_swizzle: Tuple[bool, ...] = (True, False)
    chord_entries: Tuple[int, ...] = (64,)
    sram_bytes: Tuple[int, ...] = (4 * MIB,)
    line_bytes: Tuple[int, ...] = (16,)
    cache_policies: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for axis in ("use_riff", "explicit_retire", "charge_swizzle",
                     "chord_entries", "sram_bytes", "line_bytes"):
            values = getattr(self, axis)
            if not values:
                raise ValueError(f"axis {axis!r} must list at least one value")
            if len(set(values)) != len(values):
                raise ValueError(f"axis {axis!r} has duplicate values")
        for p in self.cache_policies:
            if p not in CACHE_POLICIES:
                raise ValueError(
                    f"unknown cache policy {p!r}; known: {sorted(CACHE_POLICIES)}"
                )

    # -- enumeration ---------------------------------------------------------

    def points(self) -> Tuple[TunePoint, ...]:
        """Every design point, deterministic order, CELLO family first.

        Cache-policy points vary only over the hardware axes that matter
        to a cache (SRAM, line size) — schedule knobs and the RIFF table
        are CHORD concepts and stay at their defaults.
        """
        out: List[TunePoint] = []
        for riff, retire, swz, entries, sram, line in itertools.product(
            self.use_riff, self.explicit_retire, self.charge_swizzle,
            self.chord_entries, self.sram_bytes, self.line_bytes,
        ):
            out.append(TunePoint(
                use_riff=riff, explicit_retire=retire, charge_swizzle=swz,
                chord_entries=entries, sram_bytes=sram, line_bytes=line,
            ))
        for policy, sram, line in itertools.product(
            self.cache_policies, self.sram_bytes, self.line_bytes,
        ):
            out.append(TunePoint(
                sram_bytes=sram, line_bytes=line, cache_policy=policy,
            ))
        return tuple(out)

    def __len__(self) -> int:
        cello = (len(self.use_riff) * len(self.explicit_retire)
                 * len(self.charge_swizzle) * len(self.chord_entries)
                 * len(self.sram_bytes) * len(self.line_bytes))
        cache = (len(self.cache_policies) * len(self.sram_bytes)
                 * len(self.line_bytes))
        return cello + cache

    def __iter__(self) -> Iterator[TunePoint]:
        return iter(self.points())

    def __contains__(self, point: TunePoint) -> bool:
        # Arithmetic membership — equivalent to `point in set(points())`
        # without materialising the grid (spaces can be 10^6 points now).
        if not isinstance(point, TunePoint):
            return False
        if point.is_cello:
            return (point.use_riff in self.use_riff
                    and point.explicit_retire in self.explicit_retire
                    and point.charge_swizzle in self.charge_swizzle
                    and point.chord_entries in self.chord_entries
                    and point.sram_bytes in self.sram_bytes
                    and point.line_bytes in self.line_bytes)
        # Cache points are enumerated at default CHORD knobs; a point
        # carrying a non-default RIFF table is not on the grid.
        if point.cache_policy not in self.cache_policies:
            return False
        if (point.sram_bytes not in self.sram_bytes
                or point.line_bytes not in self.line_bytes):
            return False
        return point == TunePoint(
            sram_bytes=point.sram_bytes, line_bytes=point.line_bytes,
            cache_policy=point.cache_policy,
        )

    def columnar(self) -> ColumnarGrid:
        """The space as knob columns (cached; see :class:`ColumnarGrid`).

        Row order is identical to :meth:`points`: the CELLO block is the
        axis product with the last axis fastest, cache-policy points
        follow as materialised :class:`TunePoint` objects.
        """
        cached = getattr(self, "_columnar", None)
        if cached is not None:
            return cached
        axes = (
            np.asarray(self.use_riff, dtype=bool),
            np.asarray(self.explicit_retire, dtype=bool),
            np.asarray(self.charge_swizzle, dtype=bool),
            np.asarray(self.chord_entries, dtype=np.int64),
            np.asarray(self.sram_bytes, dtype=np.int64),
            np.asarray(self.line_bytes, dtype=np.int64),
        )
        mesh = np.meshgrid(*axes, indexing="ij")
        cache_points = tuple(
            TunePoint(sram_bytes=sram, line_bytes=line, cache_policy=policy)
            for policy, sram, line in itertools.product(
                self.cache_policies, self.sram_bytes, self.line_bytes)
        )
        grid = ColumnarGrid(
            use_riff=mesh[0].ravel(),
            explicit_retire=mesh[1].ravel(),
            charge_swizzle=mesh[2].ravel(),
            chord_entries=mesh[3].ravel(),
            sram_bytes=mesh[4].ravel(),
            line_bytes=mesh[5].ravel(),
            cache_points=cache_points,
        )
        object.__setattr__(self, "_columnar", grid)
        return grid

    def default_point(self) -> TunePoint:
        """The incumbent: the paper's fixed CELLO configuration (all
        schedule knobs on, head value of every hardware axis)."""
        return TunePoint(
            chord_entries=self.chord_entries[0],
            sram_bytes=self.sram_bytes[0],
            line_bytes=self.line_bytes[0],
        )

    # -- strategy support ----------------------------------------------------

    def sample(self, rng: random.Random, k: int) -> Tuple[TunePoint, ...]:
        """``k`` distinct points, uniformly without replacement (the whole
        space when ``k`` ≥ its size — so a big enough random budget *is*
        the grid).

        Samples *indices* and materialises only the chosen points —
        ``random.sample`` draws the same index sequence for any sequence
        of the same length, so seeded draws are identical to the old
        materialise-everything implementation.
        """
        n = len(self)
        if k >= n:
            return self.points()
        grid = self.columnar()
        return tuple(grid.point_at(i) for i in rng.sample(range(n), k))

    def neighbors(self, point: TunePoint) -> Tuple[TunePoint, ...]:
        """Points differing from ``point`` in exactly one axis value
        (the greedy/halving refinement moves)."""
        out: List[TunePoint] = []
        if point.is_cello:
            axes = {
                "use_riff": self.use_riff,
                "explicit_retire": self.explicit_retire,
                "charge_swizzle": self.charge_swizzle,
                "chord_entries": self.chord_entries,
                "sram_bytes": self.sram_bytes,
                "line_bytes": self.line_bytes,
            }
        else:
            axes = {
                "cache_policy": self.cache_policies,
                "sram_bytes": self.sram_bytes,
                "line_bytes": self.line_bytes,
            }
        for axis, values in axes.items():
            for v in values:
                if v == getattr(point, axis):
                    continue
                out.append(replace(point, **{axis: v}))
        # Family switch: a CELLO point neighbours the cache points (and
        # vice versa) at the same SRAM/line geometry.
        if point.is_cello:
            for policy in self.cache_policies:
                out.append(TunePoint(
                    sram_bytes=point.sram_bytes, line_bytes=point.line_bytes,
                    cache_policy=policy,
                ))
        else:
            out.append(TunePoint(
                chord_entries=self.chord_entries[0],
                sram_bytes=point.sram_bytes, line_bytes=point.line_bytes,
            ))
        return tuple(out)
