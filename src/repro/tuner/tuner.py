"""The co-design autotuner: search (schedule × CHORD/hardware) per workload.

``tune()`` is the paper's Sec. VI-B made operational: instead of only
*counting* the design space CHORD leaves open, it searches that space and
returns the Pareto frontier over (runtime, DRAM traffic, energy, buffer
area) next to the paper's fixed CELLO point.

Evaluation plumbing is the PR 1 orchestrator end to end: every batch a
strategy proposes becomes sweep points (workload name × config name ×
:class:`AcceleratorConfig`), is pre-warmed across worker processes when
``jobs`` allows, and is then replayed serially from the warm cache — so
tuner results are byte-identical to direct serial engine runs, repeat
invocations against a persistent :class:`ResultStore` perform **zero**
re-simulations, and a tuned point is indistinguishable from any other
sweep point on disk.

Three fidelities select how a batch is priced (``docs/analytic.md``):

* ``exact`` — every point simulates (the default, and the behaviour of
  every earlier revision);
* ``analytic`` — every analytically supported point is priced by the
  closed-form model (:mod:`repro.analytic`); unsupported cache-policy
  points, and the incumbent, still simulate;
* ``hybrid`` — the batch is *ranked* analytically, and only the
  analytically non-dominated survivors (plus unsupported points and the
  incumbent) are re-priced by the exact simulator.  Pruned points keep
  their analytic evaluation (``TuneEval.fidelity == "analytic"``), and
  the observed |analytic − exact| relative DRAM error over re-simulated
  survivors is reported on the :class:`TuneResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..baselines import runner
from ..hw.config import AcceleratorConfig, default_config
from ..orchestrator.spec import SweepPoint
from ..sim.results import SimResult
from ..workloads.registry import Workload, resolve_workload
from .pareto import (
    DEFAULT_OBJECTIVES,
    ParetoFront,
    objective_values,
    validate_objectives,
)
from .space import TunePoint, TuneSpace
from .strategies import RandomStrategy, SearchStrategy

#: Schema tag for serialised tune results (independent of the result
#: store's traffic schema; bump when the encoding below changes shape).
#: v2 added the fidelity fields; v1 payloads still load (exact fidelity).
TUNE_SCHEMA_VERSION = 2

#: Accepted values of ``tune(..., fidelity=...)``.
FIDELITIES = ("exact", "analytic", "hybrid")


@dataclass(frozen=True)
class TuneEval:
    """One evaluated design point: knobs, canonical config, objectives,
    and the underlying simulation result."""

    point: TunePoint
    config: str
    objectives: Mapping[str, float]
    result: SimResult
    #: "exact" when the result came from the simulator, "analytic" when
    #: it is a closed-form prediction (hybrid-pruned or analytic runs).
    fidelity: str = "exact"

    def to_dict(self) -> Dict[str, object]:
        return {
            "point": self.point.knobs(),
            "config": self.config,
            "objectives": dict(self.objectives),
            "result": self.result.to_dict(),
            "fidelity": self.fidelity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuneEval":
        return cls(
            point=TunePoint.from_knobs(dict(data["point"])),  # type: ignore[arg-type]
            config=str(data["config"]),
            objectives={str(k): float(v)
                        for k, v in dict(data["objectives"]).items()},  # type: ignore[arg-type]
            result=SimResult.from_dict(data["result"]),  # type: ignore[arg-type]
            fidelity=str(data.get("fidelity", "exact")),
        )


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one autotuning run (JSON round-trippable)."""

    workload: str
    strategy: str
    objectives: Tuple[str, ...]
    evaluations: Tuple[TuneEval, ...]
    incumbent: TuneEval
    n_simulations: int
    #: Fidelity the run was asked for ("exact" / "analytic" / "hybrid").
    fidelity: str = "exact"
    #: Evaluations priced by the analytic model instead of the simulator.
    n_analytic: int = 0
    #: max |analytic − exact| / exact over DRAM bytes of every point that
    #: was both predicted and re-simulated; None when nothing was both.
    analytic_max_rel_error: Optional[float] = None

    @property
    def best(self) -> TuneEval:
        """Best evaluation by the objective vector (lexicographic,
        primary first); exact ties keep the first-seen evaluation — the
        same tie rule :class:`ParetoFront` uses, so ``best`` is always a
        frontier entry."""
        best_e: Optional[TuneEval] = None
        best_v: Optional[Tuple[float, ...]] = None
        for e in self.evaluations:
            v = tuple(e.objectives[n] for n in self.objectives)
            if best_v is None or v < best_v:
                best_e, best_v = e, v
        assert best_e is not None
        return best_e

    @property
    def front(self) -> ParetoFront:
        """Pareto frontier of every evaluation (dominance-pruned)."""
        front = ParetoFront(self.objectives)
        for e in self.evaluations:
            front.add(e.point, e.config, e.objectives)
        return front

    def speedup_over_incumbent(self) -> float:
        """Fixed-CELLO runtime / searched-best runtime (≥ 1 by
        construction — the incumbent is always evaluated)."""
        best_t = min(e.result.time_s for e in self.evaluations)
        if best_t <= 0:
            return float("inf")
        return self.incumbent.result.time_s / best_t

    def to_dict(self) -> Dict[str, object]:
        return {
            "v": TUNE_SCHEMA_VERSION,
            "workload": self.workload,
            "strategy": self.strategy,
            "objectives": list(self.objectives),
            "evaluations": [e.to_dict() for e in self.evaluations],
            "incumbent": self.incumbent.to_dict(),
            "n_simulations": self.n_simulations,
            "fidelity": self.fidelity,
            "n_analytic": self.n_analytic,
            "analytic_max_rel_error": self.analytic_max_rel_error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuneResult":
        if data.get("v") not in (1, TUNE_SCHEMA_VERSION):
            raise ValueError(
                f"tune-result schema {data.get('v')!r} != {TUNE_SCHEMA_VERSION}"
            )
        err = data.get("analytic_max_rel_error")
        return cls(
            workload=str(data["workload"]),
            strategy=str(data["strategy"]),
            objectives=tuple(str(n) for n in data["objectives"]),  # type: ignore[union-attr]
            evaluations=tuple(TuneEval.from_dict(e)
                              for e in data["evaluations"]),  # type: ignore[union-attr]
            incumbent=TuneEval.from_dict(data["incumbent"]),  # type: ignore[arg-type]
            n_simulations=int(data["n_simulations"]),  # type: ignore[arg-type]
            fidelity=str(data.get("fidelity", "exact")),
            n_analytic=int(data.get("n_analytic", 0)),  # type: ignore[arg-type]
            analytic_max_rel_error=None if err is None else float(err),  # type: ignore[arg-type]
        )


class _BatchEvaluator:
    """Memoising batch evaluator dispatching through the orchestrator.

    Each batch is pre-warmed ``jobs``-wide (uncached points simulate in
    parallel worker processes; cached points replay from the runner's
    tiers / the persistent store), then assembled serially — the same
    two-phase discipline every experiment module uses, so results are
    byte-identical to plain serial engine runs.

    Under ``hybrid`` fidelity a batch is first priced by the analytic
    model; only the analytically non-dominated survivors (plus points
    the model cannot price, and the incumbent) reach the simulator.
    Under ``analytic`` fidelity supported points keep their predictions
    outright.  In both modes every analytic/exact DRAM pair observed is
    folded into ``analytic_max_rel_error``.
    """

    def __init__(self, workload: Workload, objectives: Tuple[str, ...],
                 base_cfg: AcceleratorConfig, jobs: Optional[int],
                 fidelity: str = "exact") -> None:
        self.workload = workload
        self.objectives = objectives
        self.base_cfg = base_cfg
        self.jobs = jobs
        self.fidelity = fidelity
        self.cache: Dict[TunePoint, TuneEval] = {}
        #: Points that must always be simulated (the incumbent: reported
        #: speedups stay grounded in the exact simulator).
        self.always_exact: set = set()
        self.n_analytic = 0
        self.analytic_max_rel_error: Optional[float] = None

    def _predict(self, p: TunePoint) -> Optional[TuneEval]:
        """Analytic evaluation of one point, or None when unsupported."""
        from ..analytic import AnalyticUnsupported, predict_workload_config

        cfg = p.accel_cfg(self.base_cfg)
        try:
            evaluation = predict_workload_config(
                self.workload, p.config_name(), cfg)
        except AnalyticUnsupported:
            return None
        return TuneEval(
            point=p,
            config=p.config_name(),
            objectives=objective_values(
                self.objectives, evaluation.result, cfg, p),
            result=evaluation.result,
            fidelity="analytic",
        )

    def _batch_predict(
        self, points: Sequence[TunePoint]
    ) -> Dict[TunePoint, TuneEval]:
        """Analytic evaluations for the CELLO points of ``points`` via the
        columnar batch evaluator (:mod:`repro.analytic.batch`).

        Points are grouped by (SRAM, line) so each group shares one
        compiled model and one :func:`evaluate_batch` call; groups whose
        event stream does not fit the packed batch encoding fall back to
        per-point :meth:`_predict`.  Cache-policy points (no analytic
        model) are simply absent from the returned mapping.
        """
        import numpy as np

        from ..analytic import AnalyticUnsupported, model_for
        from ..analytic.batch import (
            BatchKnobs,
            BatchUnsupported,
            batch_objective_arrays,
            evaluate_batch,
            onchip_accesses_of,
        )
        from ..sim.perf import compute_seconds, memory_seconds

        groups: Dict[Tuple[int, int], List[TunePoint]] = {}
        for p in points:
            if p.is_cello:
                groups.setdefault((p.sram_bytes, p.line_bytes), []).append(p)
        out: Dict[TunePoint, TuneEval] = {}
        for ps in groups.values():
            cfg = ps[0].accel_cfg(self.base_cfg)
            try:
                model = model_for(self.workload, ps[0].config_name(), cfg)
            except AnalyticUnsupported:  # pragma: no cover - CELLO compiles
                continue
            entries = np.asarray([p.chord_entries for p in ps], dtype=np.int64)
            knobs = BatchKnobs.from_columns(
                len(ps),
                use_riff=[p.use_riff for p in ps],
                explicit_retire=[p.explicit_retire for p in ps],
                charge_swizzle=[p.charge_swizzle for p in ps],
                chord_entries=entries,
                capacity_bytes=cfg.chord_data_bytes,
            )
            try:
                ev = evaluate_batch(model, knobs)
            except BatchUnsupported:
                for p in ps:
                    e = self._predict(p)
                    if e is not None:
                        out[p] = e
                continue
            arrs = batch_objective_arrays(
                self.objectives, model, ev, cfg, chord_entries=entries)
            compute_s = compute_seconds(model.program.total_macs, cfg)
            onchip = onchip_accesses_of(model, cfg)
            for i, p in enumerate(ps):
                read = int(ev.dram_read_bytes[i])
                write = int(ev.dram_write_bytes[i])
                result = SimResult(
                    config=p.config_name(),
                    workload=self.workload.name,
                    total_macs=model.program.total_macs,
                    dram_read_bytes=read,
                    dram_write_bytes=write,
                    compute_s=compute_s,
                    memory_s=memory_seconds(read + write, cfg),
                    onchip_accesses=dict(onchip),
                )
                out[p] = TuneEval(
                    point=p,
                    config=p.config_name(),
                    objectives={n: float(arrs[n][i])
                                for n in self.objectives},
                    result=result,
                    fidelity="analytic",
                )
        return out

    def _note_error(self, predicted: SimResult, exact: SimResult) -> None:
        err = (abs(predicted.dram_bytes - exact.dram_bytes)
               / max(exact.dram_bytes, 1))
        if self.analytic_max_rel_error is None or err > self.analytic_max_rel_error:
            self.analytic_max_rel_error = err

    def _analytic_pass(self, todo: List[TunePoint]) -> List[TunePoint]:
        """Price ``todo`` analytically; return the points that still need
        the simulator (their predictions are kept for error tracking)."""
        batch = self._batch_predict(
            [p for p in todo if p not in self.always_exact])
        predicted: Dict[TunePoint, TuneEval] = {}
        survivors: List[TunePoint] = []
        for p in todo:
            if p in self.always_exact:
                survivors.append(p)
                continue
            e = batch.get(p)
            if e is None:
                survivors.append(p)      # no model: oracle fallback
            else:
                predicted[p] = e
        if self.fidelity == "analytic":
            for p, e in predicted.items():
                self.cache[p] = e
                self.n_analytic += 1
            self._predictions = {}
            return survivors
        # Hybrid: simulate only the analytically non-dominated subset.
        front = ParetoFront(self.objectives)
        keep: List[TunePoint] = []
        for p, e in predicted.items():
            if front.add(p, e.config, e.objectives):
                keep.append(p)
        kept = set(keep)
        for p, e in predicted.items():
            if p in kept:
                survivors.append(p)
            else:
                self.cache[p] = e
                self.n_analytic += 1
        self._predictions = {p: predicted[p] for p in kept}
        return survivors

    def __call__(self, points: Sequence[TunePoint]) -> List[TuneEval]:
        todo = [p for p in points if p not in self.cache]
        self._predictions: Dict[TunePoint, TuneEval] = {}
        if todo and self.fidelity != "exact":
            todo = self._analytic_pass(todo)
        if todo:
            if self.jobs is None or self.jobs > 1:
                from ..orchestrator.parallel import prewarm

                prewarm(
                    [
                        SweepPoint(self.workload.name, p.config_name(),
                                   p.accel_cfg(self.base_cfg))
                        for p in todo
                    ],
                    jobs=self.jobs,
                )
            for p in todo:
                cfg = p.accel_cfg(self.base_cfg)
                result = runner.run_workload_config(
                    self.workload, p.config_name(), cfg
                )
                prediction = self._predictions.get(p)
                if prediction is not None:
                    self._note_error(prediction.result, result)
                self.cache[p] = TuneEval(
                    point=p,
                    config=p.config_name(),
                    objectives=objective_values(self.objectives, result, cfg, p),
                    result=result,
                )
        return [self.cache[p] for p in points]


def _columnar_grid_tune(
    workload: Workload,
    space: TuneSpace,
    strategy: SearchStrategy,
    names: Tuple[str, ...],
    base_cfg: AcceleratorConfig,
    jobs: Optional[int],
    fidelity: str,
) -> Optional[TuneResult]:
    """Exhaustive grid search at analytic/hybrid fidelity without ever
    materialising the grid.

    Every CELLO row of :meth:`TuneSpace.columnar` is priced by the batch
    evaluator (one :func:`evaluate_batch` call per SRAM×line geometry),
    pruned with one vectorised dominance pass, and only the survivors —
    plus the incumbent and the cache-policy block, which always simulate
    — become :class:`TunePoint` objects.  Row order matches the
    point-wise enumeration, so the first-seen tie rule (and therefore the
    final frontier and ``best``) is identical to pricing every point
    individually; dominated rows can never re-enter a frontier, so
    dropping them from ``evaluations`` leaves the front unchanged.

    Under hybrid fidelity the vectorised prune keeps exactly the *final*
    analytic frontier — a subset of the insertion-order survivors the
    incremental point-wise pass re-simulates (that pass also keeps points
    that joined the running front and were evicted later).  Fewer exact
    simulations, identical frontier.

    Returns None when the program does not fit the packed batch encoding
    (:class:`BatchUnsupported`); the caller falls back to the point-wise
    strategy path.
    """
    import numpy as np

    from ..analytic import AnalyticUnsupported, model_for
    from ..analytic.batch import (
        BatchKnobs,
        BatchUnsupported,
        batch_objective_arrays,
        evaluate_batch,
        onchip_accesses_of,
    )
    from ..sim.perf import compute_seconds, memory_seconds
    from .pareto import nondominated_mask

    grid = space.columnar()
    n_cello = grid.n_cello
    incumbent_pt = space.default_point()
    inc_row = grid.cello_index_of(incumbent_pt)

    # One compiled model + one batch call per (SRAM, line) geometry; the
    # objective matrix is filled column-block by column-block.
    geom = np.stack([grid.sram_bytes, grid.line_bytes], axis=1)
    uniq, group_of = np.unique(geom, axis=0, return_inverse=True)
    obj_matrix = np.empty((n_cello, len(names)), dtype=np.float64)
    pos_in_group = np.empty(n_cello, dtype=np.int64)
    group_data: List[tuple] = []
    for g in range(uniq.shape[0]):
        rows = np.flatnonzero(group_of == g)
        pos_in_group[rows] = np.arange(rows.size)
        first = grid.point_at(int(rows[0]))
        cfg = first.accel_cfg(base_cfg)
        try:
            model = model_for(workload, first.config_name(), cfg)
        except AnalyticUnsupported:  # pragma: no cover - CELLO compiles
            return None
        entries = grid.chord_entries[rows]
        knobs = BatchKnobs.from_columns(
            rows.size,
            use_riff=grid.use_riff[rows],
            explicit_retire=grid.explicit_retire[rows],
            charge_swizzle=grid.charge_swizzle[rows],
            chord_entries=entries,
            capacity_bytes=cfg.chord_data_bytes,
        )
        try:
            ev = evaluate_batch(model, knobs)
        except BatchUnsupported:
            return None
        arrs = batch_objective_arrays(names, model, ev, cfg,
                                      chord_entries=entries)
        for j, name in enumerate(names):
            obj_matrix[rows, j] = arrs[name]
        group_data.append((model, cfg, ev))

    def analytic_eval(row: int) -> TuneEval:
        model, cfg, ev = group_data[int(group_of[row])]
        i = int(pos_in_group[row])
        p = grid.point_at(row)
        read = int(ev.dram_read_bytes[i])
        write = int(ev.dram_write_bytes[i])
        result = SimResult(
            config=p.config_name(),
            workload=workload.name,
            total_macs=model.program.total_macs,
            dram_read_bytes=read,
            dram_write_bytes=write,
            compute_s=compute_seconds(model.program.total_macs, cfg),
            memory_s=memory_seconds(read + write, cfg),
            onchip_accesses=onchip_accesses_of(model, cfg),
        )
        return TuneEval(
            point=p,
            config=p.config_name(),
            objectives={name: float(obj_matrix[row, j])
                        for j, name in enumerate(names)},
            result=result,
            fidelity="analytic",
        )

    # Vectorised dominance pass over the CELLO block, in enumeration
    # order (minus the incumbent, which is pinned to exact fidelity and
    # never enters the analytic prune — same as the point-wise pass).
    cello_rows = np.arange(n_cello)
    if inc_row is not None:
        cello_rows = cello_rows[cello_rows != inc_row]
    survivor_rows = [int(r) for r in
                     cello_rows[nondominated_mask(obj_matrix[cello_rows])]]

    evaluator = _BatchEvaluator(workload, names, base_cfg, jobs, "exact")
    sims_before = runner.simulation_count()
    cache_pts = list(grid.cache_points)
    if fidelity == "hybrid":
        survivor_pts = [grid.point_at(r) for r in survivor_rows]
        predictions = [analytic_eval(r) for r in survivor_rows]
        exact = evaluator([incumbent_pt] + survivor_pts + cache_pts)
        incumbent = exact[0]
        cello_evals = exact[1:1 + len(survivor_pts)]
        cache_evals = exact[1 + len(survivor_pts):]
        for pred, got in zip(predictions, cello_evals):
            evaluator._note_error(pred.result, got.result)
        n_analytic = len(cello_rows) - len(survivor_rows)
    else:  # analytic: survivors keep their predictions outright
        exact = evaluator([incumbent_pt] + cache_pts)
        incumbent = exact[0]
        cache_evals = exact[1:]
        cello_evals = [analytic_eval(r) for r in survivor_rows]
        n_analytic = int(cello_rows.size)
    return TuneResult(
        workload=workload.name,
        strategy=strategy.name,
        objectives=names,
        evaluations=tuple([incumbent] + list(cello_evals)
                          + list(cache_evals)),
        incumbent=incumbent,
        n_simulations=runner.simulation_count() - sims_before,
        fidelity=fidelity,
        n_analytic=n_analytic,
        analytic_max_rel_error=evaluator.analytic_max_rel_error,
    )


def tune(
    workload: Union[str, Workload],
    space: Optional[TuneSpace] = None,
    strategy: Optional[SearchStrategy] = None,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    base_cfg: Optional[AcceleratorConfig] = None,
    jobs: Optional[int] = 1,
    fidelity: str = "exact",
) -> TuneResult:
    """Search the co-design space of ``workload``.

    Parameters
    ----------
    workload:
        A registry name (resolved, parallel-capable) or a
        :class:`Workload` object (simulated in-process).
    space:
        The joint knob space; default: the three SCORE ablation axes at
        the paper's fixed hardware point.
    strategy:
        A :class:`SearchStrategy`; default: seeded random sampling with
        a 32-point budget.
    objectives:
        Ordered objective names from
        :data:`repro.tuner.pareto.OBJECTIVES` (first = primary).
    base_cfg:
        Hardware baseline the points perturb (bandwidth, MACs, …).
    jobs:
        Worker processes per batch (``None`` = one per core, 1 = serial).
    fidelity:
        ``"exact"`` simulates every point; ``"analytic"`` prices
        supported points by the closed-form model; ``"hybrid"`` ranks
        each batch analytically and simulates only the non-dominated
        survivors.  The incumbent always simulates.
    """
    if isinstance(workload, str):
        workload = resolve_workload(workload)
    space = space if space is not None else TuneSpace()
    strategy = strategy if strategy is not None else RandomStrategy()
    names = validate_objectives(objectives)
    base_cfg = default_config(base_cfg)
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; known: {', '.join(FIDELITIES)}"
        )

    if strategy.name == "grid" and fidelity != "exact":
        # Exhaustive analytic/hybrid grids take the columnar fast path:
        # no per-point objects, no per-insert Pareto loop, no
        # MAX_GRID_POINTS cap — 10^5+-point spaces price in seconds.
        columnar = _columnar_grid_tune(
            workload, space, strategy, names, base_cfg, jobs, fidelity)
        if columnar is not None:
            return columnar

    evaluator = _BatchEvaluator(workload, names, base_cfg, jobs, fidelity)
    evaluator.always_exact.add(space.default_point())
    sims_before = runner.simulation_count()
    evals = strategy.run(space, evaluator)
    incumbent = evaluator([space.default_point()])[0]

    # Deterministic evaluation order: first-seen, one entry per point.
    ordered: List[TuneEval] = []
    seen: Dict[TunePoint, None] = {}
    for e in evals + [incumbent]:
        if e.point not in seen:
            seen[e.point] = None
            ordered.append(e)
    return TuneResult(
        workload=workload.name,
        strategy=strategy.name,
        objectives=names,
        evaluations=tuple(ordered),
        incumbent=incumbent,
        n_simulations=runner.simulation_count() - sims_before,
        fidelity=fidelity,
        n_analytic=evaluator.n_analytic,
        analytic_max_rel_error=evaluator.analytic_max_rel_error,
    )
