"""Objectives and the Pareto frontier container.

Every objective is *minimised*.  The four axes mirror what the paper
trades off across its evaluation sections:

* ``runtime`` — roofline execution time (Figs. 12/13/16);
* ``dram`` — off-chip traffic in bytes (the Fig. 14 energy proxy);
* ``energy`` — absolute joules, off-chip + per-structure on-chip
  (:mod:`repro.sim.energy`);
* ``area`` — the buffer structure's silicon cost in mm²
  (:mod:`repro.hw.sram_model`, Fig. 15) — CHORD's data array + RIFF
  table for CELLO points, data + tag + controller for cache points.

:class:`ParetoFront` keeps the non-dominated subset under insertion
(dominance pruning): an entry is dropped when an existing entry is at
least as good on every objective and strictly better on one; inserting a
dominating entry evicts everything it dominates.  Ties on the full
objective vector keep the first-seen entry, so fronts are deterministic
in evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..hw.config import AcceleratorConfig
from ..hw.sram_model import cache_cost, chord_cost
from ..sim.energy import energy_of
from ..sim.results import SimResult
from .space import TunePoint


def _runtime(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    return result.time_s


def _dram(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    return float(result.dram_bytes)


def _energy(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    return energy_of(result, cfg).total_j


def _area(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    cost = cache_cost(cfg) if point.cache_policy is not None else chord_cost(cfg)
    return cost.total_mm2


#: name -> (result, point-cfg, point) -> objective value (minimise).
OBJECTIVES: Dict[str, Callable[[SimResult, AcceleratorConfig, TunePoint], float]] = {
    "runtime": _runtime,
    "dram": _dram,
    "energy": _energy,
    "area": _area,
}

#: The default trade-off: performance vs off-chip traffic.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("runtime", "dram")


def validate_objectives(names: Sequence[str]) -> Tuple[str, ...]:
    """Normalise an objective list: known names, non-empty, no repeats."""
    out: List[str] = []
    for n in names:
        if n not in OBJECTIVES:
            raise KeyError(
                f"unknown objective {n!r}; known: {', '.join(OBJECTIVES)}"
            )
        if n not in out:
            out.append(n)
    if not out:
        raise ValueError("at least one objective is required")
    return tuple(out)


def objective_values(
    names: Sequence[str],
    result: SimResult,
    cfg: AcceleratorConfig,
    point: TunePoint,
) -> Dict[str, float]:
    """Evaluate every named objective for one simulated design point."""
    return {n: OBJECTIVES[n](result, cfg, point) for n in names}


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


@dataclass(frozen=True)
class FrontEntry:
    """One non-dominated design point on the frontier."""

    point: TunePoint
    config: str
    vector: Tuple[float, ...]


class ParetoFront:
    """Non-dominated set under insertion, with dominance pruning."""

    def __init__(self, objectives: Sequence[str]) -> None:
        self.objectives = validate_objectives(objectives)
        self._entries: List[FrontEntry] = []

    def add(self, point: TunePoint, config: str,
            values: Mapping[str, float]) -> bool:
        """Offer a point; returns True when it joins the frontier.

        Dominated offers are rejected; accepted offers evict every entry
        they dominate.  An exact objective-vector tie keeps the incumbent
        entry (first seen wins) and rejects the offer.
        """
        vector = tuple(float(values[n]) for n in self.objectives)
        for e in self._entries:
            if dominates(e.vector, vector) or e.vector == vector:
                return False
        self._entries = [e for e in self._entries
                         if not dominates(vector, e.vector)]
        self._entries.append(FrontEntry(point=point, config=config, vector=vector))
        return True

    @property
    def entries(self) -> Tuple[FrontEntry, ...]:
        """Frontier sorted by the first objective (then the rest)."""
        return tuple(sorted(self._entries, key=lambda e: e.vector))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.entries)

    def dominated(self, values: Mapping[str, float]) -> bool:
        """Would this objective mapping be rejected as dominated/tied?"""
        vector = tuple(float(values[n]) for n in self.objectives)
        return any(dominates(e.vector, vector) or e.vector == vector
                   for e in self._entries)

    def describe(self) -> str:
        parts = [f"ParetoFront({len(self)} points over {'/'.join(self.objectives)})"]
        for e in self.entries:
            vals = ", ".join(f"{n}={v:.4g}"
                             for n, v in zip(self.objectives, e.vector))
            parts.append(f"  {e.config}: {vals}")
        return "\n".join(parts)
