"""Objectives and the Pareto frontier container.

Every objective is *minimised*.  The four axes mirror what the paper
trades off across its evaluation sections:

* ``runtime`` — roofline execution time (Figs. 12/13/16);
* ``dram`` — off-chip traffic in bytes (the Fig. 14 energy proxy);
* ``energy`` — absolute joules, off-chip + per-structure on-chip
  (:mod:`repro.sim.energy`);
* ``area`` — the buffer structure's silicon cost in mm²
  (:mod:`repro.hw.sram_model`, Fig. 15) — CHORD's data array + RIFF
  table for CELLO points, data + tag + controller for cache points.

:class:`ParetoFront` keeps the non-dominated subset under insertion
(dominance pruning): an entry is dropped when an existing entry is at
least as good on every objective and strictly better on one; inserting a
dominating entry evicts everything it dominates.  Ties on the full
objective vector keep the first-seen entry, so fronts are deterministic
in evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.sram_model import cache_cost, chord_cost
from ..sim.energy import energy_of
from ..sim.results import SimResult
from .space import TunePoint


def _runtime(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    return result.time_s


def _dram(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    return float(result.dram_bytes)


def _energy(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    return energy_of(result, cfg).total_j


def _area(result: SimResult, cfg: AcceleratorConfig, point: TunePoint) -> float:
    cost = cache_cost(cfg) if point.cache_policy is not None else chord_cost(cfg)
    return cost.total_mm2


#: name -> (result, point-cfg, point) -> objective value (minimise).
OBJECTIVES: Dict[str, Callable[[SimResult, AcceleratorConfig, TunePoint], float]] = {
    "runtime": _runtime,
    "dram": _dram,
    "energy": _energy,
    "area": _area,
}

#: The default trade-off: performance vs off-chip traffic.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("runtime", "dram")


def validate_objectives(names: Sequence[str]) -> Tuple[str, ...]:
    """Normalise an objective list: known names, non-empty, no repeats."""
    out: List[str] = []
    for n in names:
        if n not in OBJECTIVES:
            raise KeyError(
                f"unknown objective {n!r}; known: {', '.join(OBJECTIVES)}"
            )
        if n not in out:
            out.append(n)
    if not out:
        raise ValueError("at least one objective is required")
    return tuple(out)


def objective_values(
    names: Sequence[str],
    result: SimResult,
    cfg: AcceleratorConfig,
    point: TunePoint,
) -> Dict[str, float]:
    """Evaluate every named objective for one simulated design point."""
    return {n: OBJECTIVES[n](result, cfg, point) for n in names}


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have equal length")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def nondominated_mask(vectors: "np.ndarray", block: int = 512) -> "np.ndarray":
    """Vectorised dominance pass over an ``(n, k)`` objective matrix.

    ``mask[i]`` is True exactly when offering row ``i`` to a fresh
    :class:`ParetoFront` **in row order** would leave it on the final
    frontier: rows dominated by any other row are dropped, and of rows
    with identical vectors only the first survives (the front's
    first-seen tie rule).

    The pass sorts lexicographically (any dominator or earlier-tied
    duplicate of a row sorts strictly before it), then walks the sorted
    rows in blocks: each block is tested against the accumulated front
    with one broadcast ``<=`` and against its own earlier rows with a
    lower-triangular mask — no Python-level per-pair loop.  This is what
    lets the columnar tuner prune 10^5+ analytic points in milliseconds
    where the per-insert loop was quadratic.
    """
    vecs = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
    if vecs.ndim != 2:
        raise ValueError("vectors must be a 2-D (points, objectives) array")
    n, k = vecs.shape
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Sort by objectives (first objective primary), original index last:
    # every dominator, and every tied duplicate that was seen earlier,
    # lands strictly before the row it beats.
    idx = np.arange(n)
    order = np.lexsort((idx,) + tuple(vecs[:, c] for c in range(k - 1, -1, -1)))
    sorted_v = vecs[order]
    keep_sorted = np.zeros(n, dtype=bool)
    front = np.empty((0, k), dtype=np.float64)
    for start in range(0, n, block):
        blk = sorted_v[start:start + block]
        m = blk.shape[0]
        if front.shape[0]:
            beaten = (front[None, :, :] <= blk[:, None, :]
                      ).all(axis=2).any(axis=1)
        else:
            beaten = np.zeros(m, dtype=bool)
        # Within the block, an earlier sorted row that is <= everywhere
        # either dominates this row or ties it first — reject either way.
        le = (blk[None, :, :] <= blk[:, None, :]).all(axis=2)
        beaten |= np.tril(le, k=-1).any(axis=1)
        survivors = ~beaten
        keep_sorted[start:start + m] = survivors
        if survivors.any():
            front = np.concatenate([front, blk[survivors]])
    mask = np.zeros(n, dtype=bool)
    mask[order] = keep_sorted
    return mask


@dataclass(frozen=True)
class FrontEntry:
    """One non-dominated design point on the frontier."""

    point: TunePoint
    config: str
    vector: Tuple[float, ...]


class ParetoFront:
    """Non-dominated set under insertion, with dominance pruning.

    Membership tests run against a cached ``(entries, objectives)``
    matrix — one broadcast compare per offer instead of a Python loop
    over entries, so batch-sized fronts stay cheap to build.
    """

    def __init__(self, objectives: Sequence[str]) -> None:
        self.objectives = validate_objectives(objectives)
        self._entries: List[FrontEntry] = []
        self._matrix: Optional[np.ndarray] = None

    def add(self, point: TunePoint, config: str,
            values: Mapping[str, float]) -> bool:
        """Offer a point; returns True when it joins the frontier.

        Dominated offers are rejected; accepted offers evict every entry
        they dominate.  An exact objective-vector tie keeps the incumbent
        entry (first seen wins) and rejects the offer.
        """
        vector = tuple(float(values[n]) for n in self.objectives)
        v = np.asarray(vector, dtype=np.float64)
        if self._entries:
            assert self._matrix is not None
            # all(e <= v) covers both "e dominates v" and "e == v": either
            # way the offer is rejected.
            if bool(np.any(np.all(self._matrix <= v, axis=1))):
                return False
            # No entry ties v (that was a rejection), so all(v <= e) is a
            # strict domination of e by v.
            evicted = np.all(v <= self._matrix, axis=1)
            if evicted.any():
                keep = ~evicted
                self._entries = [e for e, k in zip(self._entries, keep) if k]
                self._matrix = self._matrix[keep]
        self._entries.append(FrontEntry(point=point, config=config, vector=vector))
        self._matrix = (v[None, :] if self._matrix is None or not self._matrix.size
                        else np.concatenate([self._matrix, v[None, :]]))
        return True

    @property
    def entries(self) -> Tuple[FrontEntry, ...]:
        """Frontier sorted by the first objective (then the rest)."""
        return tuple(sorted(self._entries, key=lambda e: e.vector))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.entries)

    def dominated(self, values: Mapping[str, float]) -> bool:
        """Would this objective mapping be rejected as dominated/tied?"""
        if not self._entries:
            return False
        assert self._matrix is not None
        v = np.asarray([float(values[n]) for n in self.objectives])
        return bool(np.any(np.all(self._matrix <= v, axis=1)))

    def describe(self) -> str:
        parts = [f"ParetoFront({len(self)} points over {'/'.join(self.objectives)})"]
        for e in self.entries:
            vals = ", ".join(f"{n}={v:.4g}"
                             for n, v in zip(self.objectives, e.vector))
            parts.append(f"  {e.config}: {vals}")
        return "\n".join(parts)
