"""``python -m repro`` — regenerate paper tables/figures from the CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
