"""Least-recently-used replacement policy.

The classic implicit policy the paper contrasts CHORD against (Fig. 11
leftmost column): every hit promotes a line to most-recently-used, every
fill victimises the least-recently-used way.  For tensor streaming this
keeps the *tail* of a scanned tensor — exactly the part re-referenced last —
which is the pathology PRELUDE inverts.
"""

from __future__ import annotations

from typing import List


class LruPolicy:
    """Per-set LRU recency stack over way indices."""

    name = "lru"

    def make_set_state(self, assoc: int) -> List[int]:
        # Recency stack: index 0 = LRU, last = MRU.  Starts in way order so
        # cold fills walk the ways deterministically.
        return list(range(assoc))

    def on_hit(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.append(way)

    def choose_victim(self, state: List[int]) -> int:
        return state[0]

    def on_fill(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.append(way)
