"""Least-recently-used replacement policy.

The classic implicit policy the paper contrasts CHORD against (Fig. 11
leftmost column): every hit promotes a line to most-recently-used, every
fill victimises the least-recently-used way.  For tensor streaming this
keeps the *tail* of a scanned tensor — exactly the part re-referenced last —
which is the pathology PRELUDE inverts.

Two equivalent implementations live here:

* the scalar per-set recency stack (``make_set_state``/``on_hit``/...),
  kept as the *reference* backend for parity testing, and
* an array-state form (``make_vector_state``/``vec_*``) where recency is a
  per-(set, way) timestamp matrix, so whole batches of accesses update in
  a handful of numpy ops (the cache's vectorized kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class _LruMatrix:
    """Array state: ``last_use[s, w]`` is the timestamp of way ``w``'s most
    recent touch.  The LRU way of a set is simply the row argmin."""

    last_use: np.ndarray        # (n_sets, assoc) int64


class LruPolicy:
    """Per-set LRU recency over way indices (scalar stack + array form)."""

    name = "lru"

    # -- scalar reference backend ------------------------------------------------

    def make_set_state(self, assoc: int) -> List[int]:
        # Recency stack: index 0 = LRU, last = MRU.  Starts in way order so
        # cold fills walk the ways deterministically.
        return list(range(assoc))

    def on_hit(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.append(way)

    def choose_victim(self, state: List[int]) -> int:
        return state[0]

    def on_fill(self, state: List[int], way: int) -> None:
        state.remove(way)
        state.append(way)

    # -- vectorized backend --------------------------------------------------------

    def make_vector_state(self, n_sets: int, assoc: int) -> _LruMatrix:
        # Seed timestamps below any real access time (times start at 0) in
        # way order, so cold victims walk ways 0, 1, ... exactly like the
        # scalar stack's initial ordering.
        init = np.broadcast_to(
            np.arange(assoc, dtype=np.int64) - assoc, (n_sets, assoc)
        ).copy()
        return _LruMatrix(last_use=init)

    def vec_on_hit(self, state: _LruMatrix, rows: np.ndarray,
                   ways: np.ndarray, times: np.ndarray) -> None:
        state.last_use[rows, ways] = times

    def vec_choose_victims(self, state: _LruMatrix, rows: np.ndarray) -> np.ndarray:
        """LRU way per set row; ``rows`` must be unique within the batch."""
        return np.argmin(state.last_use[rows], axis=1)

    def vec_on_fill(self, state: _LruMatrix, rows: np.ndarray,
                    ways: np.ndarray, times: np.ndarray) -> None:
        state.last_use[rows, ways] = times
