"""Tailors-like overbooking buffer (Xue et al., MICRO 2023 [41]).

Table III's fourth row: a buffet whose capacity may be *overbooked* —
irregular (sparse) tiles larger than the reserved space spill their tail
implicitly, word by word, instead of stalling the fill.  This is the other
hybrid design point the paper positions CHORD against: Tailors manages
overbooking at tile/word granularity inside one operation, while CHORD
manages whole tensors across operations.

The model: a fixed window reserved per tile; fills beyond the window are
counted as overbooked words that round-trip DRAM (the implicit part), while
everything inside the window behaves like an explicit buffet.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import BufferStats


class TailorsBuffer:
    """Buffet with implicit word-level overbooking."""

    def __init__(self, capacity_words: int, overbook_fraction: float = 0.1) -> None:
        """``overbook_fraction`` is the planned spill headroom: capacity is
        provisioned for the *average* tile, accepting that large tiles
        overflow (the paper's "irregular tile sizes that spill over")."""
        if capacity_words <= 0:
            raise ValueError("capacity must be positive")
        if not (0.0 <= overbook_fraction < 1.0):
            raise ValueError("overbook_fraction must be in [0, 1)")
        self.capacity = capacity_words
        self.overbook_fraction = overbook_fraction
        self.stats = BufferStats()
        self._tile_words = 0

    @property
    def booked_capacity(self) -> int:
        """Words the allocation plan *booked* (capacity shrunk by the
        planned overbooking headroom)."""
        return int(self.capacity * (1.0 - self.overbook_fraction))

    def begin_tile(self) -> None:
        """Start staging a new (variable-size) tile."""
        self._tile_words = 0

    def fill(self, n_words: int = 1) -> int:
        """Stage ``n_words`` of the current tile.

        Words within the booked window stay on-chip; overbooked words are
        implicitly replaced from the tail — they must be re-fetched when
        read, which the model charges immediately.  Returns the number of
        overbooked words in this fill.
        """
        if n_words < 0:
            raise ValueError("fill count must be non-negative")
        start = self._tile_words
        self._tile_words += n_words
        kept = max(0, min(self._tile_words, self.booked_capacity) - min(start, self.booked_capacity))
        overbooked = n_words - kept
        self.stats.accesses += n_words
        self.stats.dram_read_bytes += n_words          # initial staging
        if overbooked > 0:
            self.stats.misses += overbooked
            self.stats.dram_read_bytes += overbooked   # re-fetch on use
            self.stats.evictions += overbooked
        self.stats.hits += kept
        return overbooked

    def tile_overflowed(self) -> bool:
        return self._tile_words > self.booked_capacity

    @property
    def overbooked_words(self) -> int:
        return max(0, self._tile_words - self.booked_capacity)
