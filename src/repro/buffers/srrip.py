"""Static Re-Reference Interval Prediction (SRRIP).

The non-bimodal member of the RRIP family [19]: every fill inserts at
RRPV = max-1 ("long re-reference interval").  Included as an extra implicit
baseline beyond the paper's LRU/BRRIP pair — SRRIP is the common middle
ground (scan-resistant on first touch, thrash-prone on repeated scans)
and makes the policy-sweep bench a three-way comparison.
"""

from __future__ import annotations

import numpy as np

from .brrip import BrripPolicy, _BrripSet, _RrpvMatrix


class SrripPolicy(BrripPolicy):
    """SRRIP: deterministic long-interval insertion."""

    name = "srrip"

    def __init__(self, bits: int = 2) -> None:
        super().__init__(bits=bits, bimodal_throttle=1)

    def on_fill(self, state: _BrripSet, way: int) -> None:
        state.rrpv[way] = self.max_rrpv - 1

    def vec_on_fill(self, state: _RrpvMatrix, rows: np.ndarray,
                    ways: np.ndarray, times: np.ndarray) -> None:
        state.rrpv[rows, ways] = self.max_rrpv - 1
