"""Register file model (Sec. V-B "Tiling").

Skewed GEMMs have one small tensor (all-N×N' Greek tensors in CG).  SCORE
fixes the mapping: the small tensor lives entirely in the register file and
streams from there while a tile of the large tensor is stationary — "even
though the register files are explicit, they do not require scheduling
search".  The model checks the fits-entirely precondition and counts
accesses for the energy model.
"""

from __future__ import annotations

from typing import Dict

from .base import BufferStats


class RegisterFileError(RuntimeError):
    pass


class RegisterFile:
    """Small explicit storage holding whole small tensors."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.stats = BufferStats()
        self._resident: Dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._resident.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def load(self, tensor: str, nbytes: int) -> None:
        """Place a whole small tensor in the RF (evicting it is explicit)."""
        if tensor in self._resident:
            return
        if not self.fits(nbytes):
            raise RegisterFileError(
                f"{tensor!r} ({nbytes}B) does not fit in RF "
                f"({self.free_bytes}B free of {self.capacity_bytes}B)"
            )
        self._resident[tensor] = nbytes
        self.stats.accesses += 1

    def evict(self, tensor: str) -> None:
        self._resident.pop(tensor, None)

    def is_resident(self, tensor: str) -> bool:
        return tensor in self._resident

    def stream(self, tensor: str, times: int = 1) -> None:
        """Stream a resident tensor to the datapath ``times`` times."""
        if tensor not in self._resident:
            raise RegisterFileError(f"{tensor!r} not resident in RF")
        self.stats.accesses += times
        self.stats.hits += times
