"""Set-associative cache simulator with pluggable replacement policies.

This models the paper's Flex+LRU and Flex+BRRIP baselines: *every* access of
the best-intra-op schedule goes through an implicitly managed cache
(write-allocate, write-back).  The simulator is exact at line granularity; a
``granularity`` knob in the trace layer lets multi-gigabyte streaming traces
coarsen g lines into one block while scaling the set count by 1/g, which
preserves streaming/capacity behaviour (validated in tests).

Replacement policies implement per-set state: :class:`LruPolicy` and
:class:`BrripPolicy` live in sibling modules.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .base import BufferStats


class ReplacementPolicy(Protocol):
    """Per-set replacement state machine.

    The cache owns the tag/dirty arrays; a policy only maintains per-set
    recency state over way indices: ``on_hit`` records a re-reference,
    ``choose_victim`` picks the way to replace, ``on_fill`` records an
    insertion.
    """

    def make_set_state(self, assoc: int) -> object: ...

    def on_hit(self, state: object, way: int) -> None: ...

    def choose_victim(self, state: object) -> int: ...

    def on_fill(self, state: object, way: int) -> None: ...


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache.

    Parameters
    ----------
    capacity_bytes / line_bytes / associativity:
        Geometry; ``capacity = sets * associativity * line_bytes``.
    policy:
        A :class:`ReplacementPolicy` instance (LRU, BRRIP, ...).
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int,
        associativity: int,
        policy: ReplacementPolicy,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines == 0 or n_lines % associativity:
            raise ValueError(
                f"capacity {capacity_bytes}B / line {line_bytes}B must be a "
                f"multiple of associativity {associativity}"
            )
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.assoc = associativity
        self.n_sets = n_lines // associativity
        self.policy = policy
        self.stats = BufferStats()
        # Per-set parallel arrays: tags, valid, dirty.
        self._tags = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        self._dirty = np.zeros((self.n_sets, self.assoc), dtype=bool)
        self._pol_state: List[object] = [policy.make_set_state(self.assoc) for _ in range(self.n_sets)]

    # -- single access ----------------------------------------------------------

    def access_line(self, block: int, is_write: bool) -> bool:
        """Access one line-aligned block address; returns hit/miss.

        ``block`` is the address divided by ``line_bytes``.
        """
        set_idx = block % self.n_sets
        tag = block // self.n_sets
        tags = self._tags[set_idx]
        state = self._pol_state[set_idx]
        self.stats.accesses += 1
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self.stats.hits += 1
            self.policy.on_hit(state, way)
            if is_write:
                self._dirty[set_idx, way] = True
            return True
        # Miss: allocate (write-allocate for writes too).  Invalid ways are
        # filled before the replacement policy is consulted.
        self.stats.misses += 1
        self.stats.dram_read_bytes += self.line_bytes
        invalid = np.nonzero(tags == -1)[0]
        if invalid.size:
            victim = int(invalid[0])
        else:
            victim = self.policy.choose_victim(state)
            self.stats.evictions += 1
            if self._dirty[set_idx, victim]:
                self.stats.writebacks += 1
                self.stats.dram_write_bytes += self.line_bytes
        tags[victim] = tag
        self._dirty[set_idx, victim] = is_write
        self.policy.on_fill(state, victim)
        return False

    # -- streams ------------------------------------------------------------------

    def access_stream(self, blocks: Sequence[int], is_write: bool) -> None:
        """Access a sequence of block addresses with one read/write flavour."""
        for b in blocks:
            self.access_line(int(b), is_write)

    def access_range(self, start_byte: int, n_bytes: int, is_write: bool) -> None:
        """Stream all lines overlapping byte range [start, start+n)."""
        if n_bytes <= 0:
            return
        first = start_byte // self.line_bytes
        last = (start_byte + n_bytes - 1) // self.line_bytes
        for b in range(first, last + 1):
            self.access_line(b, is_write)

    def flush(self) -> None:
        """Write back all dirty lines (end-of-program drain)."""
        dirty_count = int(self._dirty.sum())
        self.stats.writebacks += dirty_count
        self.stats.dram_write_bytes += dirty_count * self.line_bytes
        self._dirty[:] = False

    def resident_lines(self) -> int:
        return int((self._tags != -1).sum())
