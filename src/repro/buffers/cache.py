"""Set-associative cache simulator with pluggable replacement policies.

This models the paper's Flex+LRU and Flex+BRRIP baselines: *every* access of
the best-intra-op schedule goes through an implicitly managed cache
(write-allocate, write-back).  The simulator is exact at line granularity; a
``granularity`` knob in the trace layer lets multi-gigabyte streaming traces
coarsen g lines into one block while scaling the set count by 1/g, which
preserves streaming/capacity behaviour (validated in tests).

Two backends produce byte-identical :class:`BufferStats`:

``vector`` (default when the policy supports it)
    Array-state simulation.  Accesses are resolved in *conflict-free
    batches* — maximal contiguous runs of the trace in which every set
    index appears at most once — so hit detection, victim choice, fills
    and writeback accounting are whole-batch numpy ops instead of a
    Python loop with an ``np.nonzero`` per access.  Within a batch the
    per-set states cannot interact, and batches are processed in trace
    order, so the result is exactly the sequential simulation.

``reference``
    The original scalar per-access loop over per-set policy objects, kept
    as the golden model for the parity suite and as the fallback for
    custom policies that only implement the scalar protocol.

Replacement policies implement per-set state: :class:`LruPolicy` and
:class:`BrripPolicy` live in sibling modules and provide both the scalar
and the array-state (``vec_*``) protocol.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .base import BufferStats

#: Hard ceiling on blocks expanded into memory at once by
#: :meth:`SetAssociativeCache.access_segments` — keeps multi-GB streaming
#: traces in bounded memory (a chunk of 2^20 int64 blocks is ~8 MB).
DEFAULT_CHUNK_ACCESSES = 1 << 20

_VECTOR_METHODS = ("make_vector_state", "vec_on_hit",
                   "vec_choose_victims", "vec_on_fill")


class ReplacementPolicy(Protocol):
    """Per-set replacement state machine (scalar reference protocol).

    The cache owns the tag/dirty arrays; a policy only maintains per-set
    recency state over way indices: ``on_hit`` records a re-reference,
    ``choose_victim`` picks the way to replace, ``on_fill`` records an
    insertion.  Policies that additionally implement the ``vec_*`` family
    (see :class:`VectorReplacementPolicy`) unlock the vectorized backend.
    """

    def make_set_state(self, assoc: int) -> object: ...

    def on_hit(self, state: object, way: int) -> None: ...

    def choose_victim(self, state: object) -> int: ...

    def on_fill(self, state: object, way: int) -> None: ...


class VectorReplacementPolicy(Protocol):
    """Array-state replacement protocol for the vectorized backend.

    ``rows`` are set indices (unique within one call), ``ways`` the
    matching way indices, ``times`` the global access order positions
    (strictly increasing).  ``vec_on_fill`` receives fills in trace order —
    policies with global counters (BRRIP's bimodal throttle) rely on it.
    """

    def make_vector_state(self, n_sets: int, assoc: int) -> object: ...

    def vec_on_hit(self, state: object, rows: np.ndarray,
                   ways: np.ndarray, times: np.ndarray) -> None: ...

    def vec_choose_victims(self, state: object, rows: np.ndarray) -> np.ndarray: ...

    def vec_on_fill(self, state: object, rows: np.ndarray,
                    ways: np.ndarray, times: np.ndarray) -> None: ...


def supports_vector(policy: object) -> bool:
    """Whether ``policy`` implements the array-state protocol."""
    return all(callable(getattr(policy, m, None)) for m in _VECTOR_METHODS)


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache.

    Parameters
    ----------
    capacity_bytes / line_bytes / associativity:
        Geometry; ``capacity = sets * associativity * line_bytes``.
    policy:
        A :class:`ReplacementPolicy` instance (LRU, BRRIP, ...).
    backend:
        ``"vector"``, ``"reference"``, or ``"auto"`` (vector when the
        policy supports it).  Both backends produce identical stats; the
        vector backend is an order of magnitude faster on streams.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int,
        associativity: int,
        policy: ReplacementPolicy,
        backend: str = "auto",
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines == 0 or n_lines % associativity:
            raise ValueError(
                f"capacity {capacity_bytes}B / line {line_bytes}B must be a "
                f"multiple of associativity {associativity}"
            )
        if backend == "auto":
            backend = "vector" if supports_vector(policy) else "reference"
        if backend not in ("vector", "reference"):
            raise ValueError(f"unknown cache backend {backend!r}")
        if backend == "vector" and not supports_vector(policy):
            raise ValueError(
                f"policy {type(policy).__name__} lacks the vec_* protocol "
                "required by the vector backend"
            )
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.assoc = associativity
        self.n_sets = n_lines // associativity
        self.policy = policy
        self.backend = backend
        self.stats = BufferStats()
        # Per-set parallel arrays: tags, valid (tag != -1), dirty.
        self._tags = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        self._dirty = np.zeros((self.n_sets, self.assoc), dtype=bool)
        if backend == "vector":
            self._vstate = policy.make_vector_state(self.n_sets, self.assoc)
            self._tick = 0  # global access-order clock (LRU timestamps)
            # Reusable singleton argument arrays for the access_line fast
            # path (policy hooks only read them).
            self._one_row = np.empty(1, dtype=np.int64)
            self._one_way = np.empty(1, dtype=np.int64)
            self._one_time = np.empty(1, dtype=np.int64)
        else:
            self._pol_state: List[object] = [
                policy.make_set_state(self.assoc) for _ in range(self.n_sets)
            ]

    # -- single access ----------------------------------------------------------

    def access_line(self, block: int, is_write: bool) -> bool:
        """Access one line-aligned block address; returns hit/miss.

        ``block`` is the address divided by ``line_bytes``.
        """
        if self.backend == "vector":
            return self._access_line_vector(block, is_write)
        return self._access_line_reference(block, is_write)

    def _access_line_vector(self, block: int, is_write: bool) -> bool:
        """Scalar access against the array state (no batch machinery) —
        the same transitions as a one-element ``_run_batch``."""
        set_idx = int(block % self.n_sets)
        tag = int(block // self.n_sets)
        rows, ways, times = self._one_row, self._one_way, self._one_time
        rows[0] = set_idx
        times[0] = self._tick
        self._tick += 1
        self.stats.accesses += 1
        row = self._tags[set_idx]
        hit_ways = np.nonzero(row == tag)[0]
        if hit_ways.size:
            ways[0] = hit_ways[0]
            self.stats.hits += 1
            self.policy.vec_on_hit(self._vstate, rows, ways, times)
            if is_write:
                self._dirty[set_idx, ways[0]] = True
            return True
        self.stats.misses += 1
        self.stats.dram_read_bytes += self.line_bytes
        invalid = np.nonzero(row == -1)[0]
        if invalid.size:
            ways[0] = invalid[0]
        else:
            ways[0] = self.policy.vec_choose_victims(self._vstate, rows)[0]
            self.stats.evictions += 1
            if self._dirty[set_idx, ways[0]]:
                self.stats.writebacks += 1
                self.stats.dram_write_bytes += self.line_bytes
        row[ways[0]] = tag
        self._dirty[set_idx, ways[0]] = is_write
        self.policy.vec_on_fill(self._vstate, rows, ways, times)
        return False

    def _access_line_reference(self, block: int, is_write: bool) -> bool:
        set_idx = block % self.n_sets
        tag = block // self.n_sets
        tags = self._tags[set_idx]
        state = self._pol_state[set_idx]
        self.stats.accesses += 1
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self.stats.hits += 1
            self.policy.on_hit(state, way)
            if is_write:
                self._dirty[set_idx, way] = True
            return True
        # Miss: allocate (write-allocate for writes too).  Invalid ways are
        # filled before the replacement policy is consulted.
        self.stats.misses += 1
        self.stats.dram_read_bytes += self.line_bytes
        invalid = np.nonzero(tags == -1)[0]
        if invalid.size:
            victim = int(invalid[0])
        else:
            victim = self.policy.choose_victim(state)
            self.stats.evictions += 1
            if self._dirty[set_idx, victim]:
                self.stats.writebacks += 1
                self.stats.dram_write_bytes += self.line_bytes
        tags[victim] = tag
        self._dirty[set_idx, victim] = is_write
        self.policy.on_fill(state, victim)
        return False

    # -- vectorized kernel --------------------------------------------------------

    def _run_batch(self, blocks: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Resolve one conflict-free batch (unique set index per access).

        Returns the per-access hit mask.  Because no set appears twice, the
        per-set states are independent within the batch; the only cross-set
        coupling — BRRIP's global fill counter — is preserved by handing
        fills to ``vec_on_fill`` in trace order.
        """
        n = blocks.shape[0]
        sets = blocks % self.n_sets
        tags = blocks // self.n_sets
        times = self._tick + np.arange(n, dtype=np.int64)
        self._tick += n
        rows = self._tags[sets]                         # (n, assoc) snapshot
        hit_mat = rows == tags[:, None]
        hit_mask = hit_mat.any(axis=1)
        n_hits = int(hit_mask.sum())
        self.stats.accesses += n
        self.stats.hits += n_hits
        self.stats.misses += n - n_hits

        if n_hits:
            h_sets = sets[hit_mask]
            h_ways = hit_mat[hit_mask].argmax(axis=1)
            self.policy.vec_on_hit(self._vstate, h_sets, h_ways, times[hit_mask])
            hw = writes[hit_mask]
            self._dirty[h_sets[hw], h_ways[hw]] = True

        n_miss = n - n_hits
        if n_miss:
            miss_mask = ~hit_mask
            m_sets = sets[miss_mask]
            m_tags = tags[miss_mask]
            m_writes = writes[miss_mask]
            invalid_mat = rows[miss_mask] == -1
            has_inv = invalid_mat.any(axis=1)
            victims = invalid_mat.argmax(axis=1)   # first invalid way, if any
            full = ~has_inv
            n_evict = int(full.sum())
            if n_evict:
                chosen = self.policy.vec_choose_victims(self._vstate, m_sets[full])
                victims[full] = chosen
                self.stats.evictions += n_evict
                n_wb = int(self._dirty[m_sets[full], chosen].sum())
                self.stats.writebacks += n_wb
                self.stats.dram_write_bytes += n_wb * self.line_bytes
            self.stats.dram_read_bytes += n_miss * self.line_bytes
            self._tags[m_sets, victims] = m_tags
            self._dirty[m_sets, victims] = m_writes
            self.policy.vec_on_fill(self._vstate, m_sets, victims,
                                    times[miss_mask])
        return hit_mask

    def _simulate_blocks(self, blocks: np.ndarray, writes: np.ndarray) -> None:
        """Simulate an in-order block stream, splitting it into conflict-free
        batches.

        Batch boundaries come from a suffix-minimum over the next-occurrence
        index of each access's set: for a batch starting at ``s``, the first
        position that re-uses a set already in the batch is exactly
        ``min(next_occurrence[i] for i >= s)`` — O(trace) to precompute and
        O(1) per batch, so conflict-heavy traces degrade gracefully instead
        of quadratically.
        """
        n = blocks.shape[0]
        if n == 0:
            return
        sets = blocks % self.n_sets
        order = np.argsort(sets, kind="stable")
        next_occ = np.full(n, n, dtype=np.int64)
        sorted_sets = sets[order]
        same = sorted_sets[1:] == sorted_sets[:-1]
        next_occ[order[:-1][same]] = order[1:][same]
        sufmin = np.minimum.accumulate(next_occ[::-1])[::-1]
        s = 0
        while s < n:
            e = int(sufmin[s])       # next_occ[i] > i, so e > s always
            self._run_batch(blocks[s:e], writes[s:e])
            s = e

    # -- streams ------------------------------------------------------------------

    def access_stream(self, blocks: Sequence[int], is_write: bool) -> None:
        """Access a sequence of block addresses with one read/write flavour."""
        if self.backend == "vector":
            arr = np.asarray(blocks, dtype=np.int64)
            for s in range(0, arr.shape[0], DEFAULT_CHUNK_ACCESSES):
                chunk = arr[s: s + DEFAULT_CHUNK_ACCESSES]
                self._simulate_blocks(
                    chunk, np.full(chunk.shape[0], is_write, dtype=bool)
                )
            return
        for b in blocks:
            self.access_line(int(b), is_write)

    def access_range(self, start_byte: int, n_bytes: int, is_write: bool) -> None:
        """Stream all lines overlapping byte range [start, start+n)."""
        if n_bytes <= 0:
            return
        first = start_byte // self.line_bytes
        last = (start_byte + n_bytes - 1) // self.line_bytes
        if self.backend == "vector":
            # Expand in bounded chunks: one huge range must not allocate
            # block arrays proportional to its full length.
            for s in range(first, last + 1, DEFAULT_CHUNK_ACCESSES):
                e = min(s + DEFAULT_CHUNK_ACCESSES, last + 1)
                blocks = np.arange(s, e, dtype=np.int64)
                self._simulate_blocks(
                    blocks, np.full(blocks.shape[0], is_write, dtype=bool)
                )
            return
        for b in range(first, last + 1):
            self.access_line(b, is_write)

    def access_segments(
        self,
        segments: Iterable,
        chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
    ) -> None:
        """Replay an iterable of :class:`~repro.sim.trace.StreamSegment`.

        The segments are expanded to block-address arrays in numpy and
        simulated through the batched kernel, at most ``chunk_accesses``
        expanded accesses in memory at a time — a lazy segment iterator
        (``iter_program_trace``) therefore streams in bounded memory.
        """
        if chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        if self.backend == "reference":
            for seg in segments:
                self.access_range(seg.start, seg.nbytes, seg.is_write)
            return
        firsts: List[int] = []
        counts: List[int] = []
        writes: List[bool] = []
        pending = 0
        for seg in segments:
            if seg.nbytes <= 0:
                continue
            first = seg.start // self.line_bytes
            count = (seg.start + seg.nbytes - 1) // self.line_bytes - first + 1
            while count > 0:
                # Split oversized segments too: no flush ever expands more
                # than ``chunk_accesses`` blocks.
                take = min(count, chunk_accesses - pending)
                firsts.append(first)
                counts.append(take)
                writes.append(seg.is_write)
                first += take
                count -= take
                pending += take
                if pending >= chunk_accesses:
                    self._expand_and_run(firsts, counts, writes)
                    firsts, counts, writes = [], [], []
                    pending = 0
        if firsts:
            self._expand_and_run(firsts, counts, writes)

    def _expand_and_run(self, firsts: List[int], counts: List[int],
                        writes: List[bool]) -> None:
        f = np.asarray(firsts, dtype=np.int64)
        c = np.asarray(counts, dtype=np.int64)
        w = np.asarray(writes, dtype=bool)
        total = int(c.sum())
        seg_starts = np.cumsum(c) - c
        offsets = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, c)
        blocks = np.repeat(f, c) + offsets
        self._simulate_blocks(blocks, np.repeat(w, c))

    def flush(self) -> None:
        """Write back all dirty lines (end-of-program drain)."""
        dirty_count = int(self._dirty.sum())
        self.stats.writebacks += dirty_count
        self.stats.dram_write_bytes += dirty_count * self.line_bytes
        self._dirty[:] = False

    def resident_lines(self) -> int:
        return int((self._tags != -1).sum())
