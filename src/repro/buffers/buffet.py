"""Buffet: explicit-decoupled data orchestration (Pellauer et al. [33]).

A buffet is a credit-managed FIFO window over a scratchpad: a *filler* pushes
values in order, a *consumer* reads relative to the window head and issues
``shrink`` to retire the oldest values, freeing credits for the filler.
This gives scratchpad-level area/energy with hardware-managed
synchronisation (Table III row 3) — but placement is still fully explicit,
which is why arbitrary-DAG allocation stays intractable (Sec. VI-B).

The model tracks credits and window indices exactly; fills beyond capacity
block (reported via ``can_fill``) rather than silently spilling — buffets
have no implicit overflow path (that's what Tailors adds).
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import BufferStats


class BuffetError(RuntimeError):
    pass


class Buffet:
    """Credit-based sliding-window buffer.

    Indices are element positions in the logical stream pushed by the
    filler.  ``read(i)`` requires ``head <= i < head + occupancy``.
    """

    def __init__(self, capacity_elems: int) -> None:
        if capacity_elems <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_elems
        self.head = 0          # stream index of oldest resident element
        self.tail = 0          # stream index one past newest resident element
        self.stats = BufferStats()

    @property
    def occupancy(self) -> int:
        return self.tail - self.head

    @property
    def credits(self) -> int:
        """Free slots available to the filler."""
        return self.capacity - self.occupancy

    def can_fill(self, n: int = 1) -> bool:
        return n <= self.credits

    def fill(self, n: int = 1) -> None:
        """Filler pushes ``n`` elements (staged from upstream storage)."""
        if n < 0:
            raise ValueError("fill count must be non-negative")
        if n > self.credits:
            raise BuffetError(
                f"fill of {n} exceeds credits {self.credits} "
                "(buffets block, they do not spill)"
            )
        self.tail += n
        self.stats.dram_read_bytes += n
        self.stats.accesses += n

    def read(self, index: int) -> None:
        """Consumer reads stream position ``index`` (must be resident)."""
        if not (self.head <= index < self.tail):
            raise BuffetError(
                f"read of index {index} outside resident window "
                f"[{self.head}, {self.tail})"
            )
        self.stats.accesses += 1
        self.stats.hits += 1

    def update(self, index: int) -> None:
        """Consumer updates a resident position in place (partial sums)."""
        self.read(index)

    def shrink(self, n: int = 1) -> None:
        """Retire the ``n`` oldest elements, freeing credits."""
        if n < 0:
            raise ValueError("shrink count must be non-negative")
        if n > self.occupancy:
            raise BuffetError(f"shrink of {n} exceeds occupancy {self.occupancy}")
        self.head += n
        self.stats.evictions += n
