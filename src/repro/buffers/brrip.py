"""Bimodal Re-Reference Interval Prediction (BRRIP) replacement.

Jaleel et al., ISCA 2010 [19].  Each way holds an RRPV (re-reference
prediction value) in [0, 2^bits - 1]:

* fill: RRPV = max (distant) with high probability, max-1 (long) with low
  probability ``1/bimodal_throttle`` — this is the *bimodal* insertion that
  resists scanning;
* hit: RRPV = 0 (near-immediate re-reference, hit promotion);
* victim: first way with RRPV == max, ageing all ways (+1) until one
  appears.

The throttle uses a deterministic counter rather than an RNG so simulations
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class _BrripSet:
    rrpv: List[int]


class BrripPolicy:
    """BRRIP with ``bits``-wide RRPVs and 1/``bimodal_throttle`` long-RRPV
    insertions."""

    name = "brrip"

    def __init__(self, bits: int = 2, bimodal_throttle: int = 32) -> None:
        if bits < 1:
            raise ValueError("rrpv bits must be >= 1")
        if bimodal_throttle < 1:
            raise ValueError("bimodal_throttle must be >= 1")
        self.max_rrpv = (1 << bits) - 1
        self.throttle = bimodal_throttle
        self._fill_counter = 0

    def make_set_state(self, assoc: int) -> _BrripSet:
        return _BrripSet(rrpv=[self.max_rrpv] * assoc)

    def on_hit(self, state: _BrripSet, way: int) -> None:
        state.rrpv[way] = 0

    def choose_victim(self, state: _BrripSet) -> int:
        rrpv = state.rrpv
        while True:
            for w, v in enumerate(rrpv):
                if v >= self.max_rrpv:
                    return w
            for w in range(len(rrpv)):
                rrpv[w] += 1

    def on_fill(self, state: _BrripSet, way: int) -> None:
        self._fill_counter += 1
        if self._fill_counter % self.throttle == 0:
            state.rrpv[way] = self.max_rrpv - 1  # rare "long" insertion
        else:
            state.rrpv[way] = self.max_rrpv      # common "distant" insertion
