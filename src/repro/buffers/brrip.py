"""Bimodal Re-Reference Interval Prediction (BRRIP) replacement.

Jaleel et al., ISCA 2010 [19].  Each way holds an RRPV (re-reference
prediction value) in [0, 2^bits - 1]:

* fill: RRPV = max (distant) with high probability, max-1 (long) with low
  probability ``1/bimodal_throttle`` — this is the *bimodal* insertion that
  resists scanning;
* hit: RRPV = 0 (near-immediate re-reference, hit promotion);
* victim: first way with RRPV == max, ageing all ways (+1) until one
  appears.

The throttle uses a deterministic counter rather than an RNG so simulations
are reproducible.  The counter is global across sets and shared by both the
scalar (reference) and vectorized backends: the vectorized fill hook is
handed fills in trace order precisely so the c-th fill overall gets the
same long/distant decision either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class _BrripSet:
    rrpv: List[int]


@dataclass
class _RrpvMatrix:
    """Array state: one RRPV per (set, way)."""

    rrpv: np.ndarray            # (n_sets, assoc) int16


class BrripPolicy:
    """BRRIP with ``bits``-wide RRPVs and 1/``bimodal_throttle`` long-RRPV
    insertions."""

    name = "brrip"

    def __init__(self, bits: int = 2, bimodal_throttle: int = 32) -> None:
        if bits < 1:
            raise ValueError("rrpv bits must be >= 1")
        if bimodal_throttle < 1:
            raise ValueError("bimodal_throttle must be >= 1")
        self.max_rrpv = (1 << bits) - 1
        self.throttle = bimodal_throttle
        self._fill_counter = 0

    # -- scalar reference backend ------------------------------------------------

    def make_set_state(self, assoc: int) -> _BrripSet:
        return _BrripSet(rrpv=[self.max_rrpv] * assoc)

    def on_hit(self, state: _BrripSet, way: int) -> None:
        state.rrpv[way] = 0

    def choose_victim(self, state: _BrripSet) -> int:
        rrpv = state.rrpv
        while True:
            for w, v in enumerate(rrpv):
                if v >= self.max_rrpv:
                    return w
            for w in range(len(rrpv)):
                rrpv[w] += 1

    def on_fill(self, state: _BrripSet, way: int) -> None:
        self._fill_counter += 1
        if self._fill_counter % self.throttle == 0:
            state.rrpv[way] = self.max_rrpv - 1  # rare "long" insertion
        else:
            state.rrpv[way] = self.max_rrpv      # common "distant" insertion

    # -- vectorized backend --------------------------------------------------------

    def make_vector_state(self, n_sets: int, assoc: int) -> _RrpvMatrix:
        return _RrpvMatrix(
            rrpv=np.full((n_sets, assoc), self.max_rrpv, dtype=np.int16)
        )

    def vec_on_hit(self, state: _RrpvMatrix, rows: np.ndarray,
                   ways: np.ndarray, times: np.ndarray) -> None:
        state.rrpv[rows, ways] = 0

    def vec_choose_victims(self, state: _RrpvMatrix, rows: np.ndarray) -> np.ndarray:
        """Victim way per set row; ``rows`` must be unique within the batch.

        The scalar loop ages every way until one reaches max RRPV and picks
        the first such way.  Uniform ageing preserves the row's ordering, so
        the victim is the first row maximum (``argmax``) and the aged state
        is the row shifted up to put that maximum at max RRPV.
        """
        sub = state.rrpv[rows]                        # (k, assoc) copy
        rowmax = sub.max(axis=1)
        victims = np.argmax(sub, axis=1)
        state.rrpv[rows] = sub + (self.max_rrpv - rowmax)[:, None].astype(np.int16)
        return victims

    def vec_on_fill(self, state: _RrpvMatrix, rows: np.ndarray,
                    ways: np.ndarray, times: np.ndarray) -> None:
        """Fill a batch of (set, way) slots; fills MUST be in trace order so
        the global bimodal counter assigns the same rare "long" insertions
        as the scalar backend."""
        k = len(ways)
        if k == 0:
            return
        vals = self._fill_counter + 1 + np.arange(k, dtype=np.int64)
        long_ins = (vals % self.throttle) == 0
        state.rrpv[rows, ways] = np.where(
            long_ins, self.max_rrpv - 1, self.max_rrpv
        ).astype(np.int16)
        self._fill_counter += k
