"""Common buffer-model types.

All on-chip storage models expose access statistics in the same shape so the
simulation engine and energy model can treat them uniformly (Table III rows
are different mechanisms, same interface).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class AccessType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class BufferStats:
    """Access counters accumulated by a buffer model.

    ``dram_read_bytes``/``dram_write_bytes`` are the bytes the buffer had to
    move to/from DRAM on behalf of its accesses — the quantity every
    performance and energy figure in the paper is built from.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "BufferStats") -> "BufferStats":
        return BufferStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
            dram_read_bytes=self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes=self.dram_write_bytes + other.dram_write_bytes,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "hit_rate": self.hit_rate,
        }
