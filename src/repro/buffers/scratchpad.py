"""Explicitly-managed scratchpad and the oracle explicit traffic model.

A scratchpad has no implicit behaviour: software decides what resides where
(Table III row 2 — "fully controlled", lowest hardware overhead, highest
software burden).  The paper's explicit baselines use the *oracle* op-by-op
allocation: every operand of the running operation is staged once, so DRAM
traffic equals the cold footprint of each op.  We model that directly; the
class below additionally provides a checked explicit allocation API used by
tests and by the pipeline buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .base import BufferStats


class AllocationError(RuntimeError):
    """Raised when an explicit allocation does not fit."""


@dataclass
class _Allocation:
    offset: int
    nbytes: int


class Scratchpad:
    """Explicit allocate/free/read/write storage with exact accounting.

    Every byte staged from DRAM or drained to DRAM must be requested
    explicitly (``fill``/``drain``); reads and writes of resident
    allocations are on-chip and free of DRAM traffic.  There is no implicit
    replacement — ``allocate`` raises when space is exhausted, which is
    precisely the programming burden Sec. VI-B quantifies.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.stats = BufferStats()
        self._allocs: Dict[str, _Allocation] = {}
        self._used = 0

    # -- explicit management ------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def allocate(self, name: str, nbytes: int) -> None:
        if name in self._allocs:
            raise AllocationError(f"{name!r} already allocated")
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.free_bytes:
            raise AllocationError(
                f"cannot allocate {nbytes}B for {name!r}: only "
                f"{self.free_bytes}B free of {self.capacity_bytes}B"
            )
        self._allocs[name] = _Allocation(offset=self._used, nbytes=nbytes)
        self._used += nbytes

    def free(self, name: str) -> None:
        alloc = self._allocs.pop(name, None)
        if alloc is None:
            raise AllocationError(f"{name!r} not allocated")
        self._used -= alloc.nbytes

    def is_allocated(self, name: str) -> bool:
        return name in self._allocs

    def allocation_bytes(self, name: str) -> int:
        return self._allocs[name].nbytes

    # -- data movement ----------------------------------------------------------

    def fill(self, name: str, nbytes: Optional[int] = None) -> None:
        """Stage bytes from DRAM into an existing allocation."""
        alloc = self._allocs.get(name)
        if alloc is None:
            raise AllocationError(f"{name!r} not allocated")
        n = alloc.nbytes if nbytes is None else nbytes
        if n > alloc.nbytes:
            raise AllocationError(f"fill of {n}B exceeds allocation {alloc.nbytes}B")
        self.stats.dram_read_bytes += n
        self.stats.accesses += 1

    def drain(self, name: str, nbytes: Optional[int] = None) -> None:
        """Write bytes of an allocation back to DRAM."""
        alloc = self._allocs.get(name)
        if alloc is None:
            raise AllocationError(f"{name!r} not allocated")
        n = alloc.nbytes if nbytes is None else nbytes
        if n > alloc.nbytes:
            raise AllocationError(f"drain of {n}B exceeds allocation {alloc.nbytes}B")
        self.stats.dram_write_bytes += n
        self.stats.accesses += 1

    def touch(self, name: str) -> None:
        """On-chip access to a resident allocation (no DRAM traffic)."""
        if name not in self._allocs:
            raise AllocationError(f"{name!r} not allocated")
        self.stats.accesses += 1
        self.stats.hits += 1
