"""On-chip buffer mechanisms — Table III's comparison set, executable:
set-associative cache (LRU/SRRIP/BRRIP policies), explicit scratchpad,
credit-based buffet, Tailors-style overbooking buffer, pipeline buffer
with hold slots, and register file."""

from .base import AccessType, BufferStats
from .cache import (
    ReplacementPolicy,
    SetAssociativeCache,
    VectorReplacementPolicy,
    supports_vector,
)
from .lru import LruPolicy
from .brrip import BrripPolicy
from .srrip import SrripPolicy
from .tailors import TailorsBuffer
from .scratchpad import AllocationError, Scratchpad
from .buffet import Buffet, BuffetError
from .pipeline_buffer import PipelineBuffer, PipelineBufferError
from .register_file import RegisterFile, RegisterFileError

__all__ = [
    "AccessType",
    "BufferStats",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "VectorReplacementPolicy",
    "supports_vector",
    "LruPolicy",
    "BrripPolicy",
    "SrripPolicy",
    "TailorsBuffer",
    "AllocationError",
    "Scratchpad",
    "Buffet",
    "BuffetError",
    "PipelineBuffer",
    "PipelineBufferError",
    "RegisterFile",
    "RegisterFileError",
]
