"""Explicit pipeline buffer with hold slots (Sec. IV, Fig. 6).

The pipeline buffer stages producer tiles for an adjacent consumer
(double-buffered: produce into one half while the consumer drains the
other).  For *delayed-hold* dependencies it additionally keeps tiles alive
past the immediate consumer until the downstream consumer takes them — "the
number of tiles held essentially depends on the reuse distance of the
downstream dependency (in terms of the number of operations)".

The model verifies occupancy: a hold chain of depth ``d`` with tile size
``t`` needs ``(d + 1) * t`` bytes resident; ``can_hold`` is the feasibility
check SCORE's binding step uses to *realize* a hold (otherwise the edge
degrades to a writeback through CHORD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .base import BufferStats


class PipelineBufferError(RuntimeError):
    pass


@dataclass
class _HeldTile:
    tensor: str
    nbytes: int
    release_stage: int  # pipeline stage index at which the tile is consumed


class PipelineBuffer:
    """Tile staging for realized pipeline and hold dependencies."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.stats = BufferStats()
        self._stage_bytes = 0           # double-buffered stage occupancy
        self._held: List[_HeldTile] = []

    # -- occupancy ------------------------------------------------------------

    @property
    def held_bytes(self) -> int:
        return sum(t.nbytes for t in self._held)

    @property
    def used_bytes(self) -> int:
        return self._stage_bytes + self.held_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    # -- feasibility checks (used by SCORE's binding) ----------------------------

    def can_stage(self, tile_bytes: int) -> bool:
        """Double-buffered stage: producer + consumer tile concurrently."""
        return 2 * tile_bytes <= self.free_bytes

    def can_hold(self, tile_bytes: int, depth: int) -> bool:
        """Hold ``depth`` stages of tiles plus the double-buffered stage."""
        return (depth + 2) * tile_bytes <= self.free_bytes

    # -- operations -----------------------------------------------------------------

    def stage(self, tile_bytes: int) -> None:
        """Producer deposits a tile; adjacent consumer will drain it."""
        if not self.can_stage(tile_bytes):
            raise PipelineBufferError(
                f"cannot stage {tile_bytes}B tile: {self.free_bytes}B free"
            )
        self._stage_bytes = max(self._stage_bytes, 2 * tile_bytes)
        self.stats.accesses += 2  # producer write + consumer read
        self.stats.hits += 1

    def release_stage(self) -> None:
        """Consumer drained the staged tile (double-buffer swap)."""
        self._stage_bytes = 0

    def hold(self, tensor: str, nbytes: int, release_stage: int) -> None:
        """Keep a tile resident for a delayed-hold consumer."""
        if nbytes > self.free_bytes:
            raise PipelineBufferError(
                f"cannot hold {nbytes}B for {tensor!r}: {self.free_bytes}B free"
            )
        self._held.append(_HeldTile(tensor, nbytes, release_stage))
        self.stats.accesses += 1

    def release_holds(self, stage: int) -> int:
        """Release all tiles whose delayed consumer ran at ``stage``.

        Returns the number of bytes freed.
        """
        keep: List[_HeldTile] = []
        freed = 0
        for t in self._held:
            if t.release_stage <= stage:
                freed += t.nbytes
                self.stats.hits += 1   # delayed consumer read on-chip
                self.stats.accesses += 1
            else:
                keep.append(t)
        self._held = keep
        return freed
