"""Node dominance classification (Fig. 7 node letters).

A node's *dominant rank* is the rank whose traversed extent dwarfs the
others.  Algorithm 2 cares about three node classes:

* ``U`` (uncontracted-dominant) — the large rank is uncontracted; output is
  large and streams out as it is produced, so the node can feed a pipeline.
* ``C`` (contracted-dominant) — the large rank is contracted (lines 2/5 of
  Algorithm 1); the bulk of compute just produces a small output, so the node
  cannot pipeline with its consumer (Challenge 2).
* ``bal`` (balanced) — all ranks comparable (the ResNet convs in Fig. 7).

Compressed ranks count their *effective* extent: the CG SpMM contracts the
nominal M-sized rank but visits only nnz/M entries per row, so the node is
``U`` ("the first operation is 'U' because the contracted rank is
compressed").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .einsum import EinsumOp
from .tensor import TensorSpec

#: A rank must exceed every other rank by this factor to dominate; below it
#: the node is balanced.  The paper's shapes are far from the boundary
#: (M/N >= 600 in CG, ~1 in ResNet convs), so any moderate value reproduces
#: Fig. 7; 8x keeps near-square ops balanced.
DOMINANCE_RATIO: float = 8.0


class Dominance(enum.Enum):
    UNCONTRACTED = "U"
    CONTRACTED = "C"
    BALANCED = "bal"


@dataclass(frozen=True)
class NodeDominance:
    """Dominance verdict for one op."""

    kind: Dominance
    dominant_rank: Optional[str]  # None for balanced nodes

    @property
    def letter(self) -> str:
        return self.kind.value


def classify_dominance(op: EinsumOp, ratio: float = DOMINANCE_RATIO) -> NodeDominance:
    """Classify ``op``'s dominance using traversal extents.

    The dominant rank is the one with the maximum effective extent, provided
    it beats every other rank by ``ratio``; otherwise the node is balanced.
    """
    ranks = op.all_ranks
    if len(ranks) == 1:
        r = ranks[0]
        kind = Dominance.CONTRACTED if r.name in op.contracted else Dominance.UNCONTRACTED
        return NodeDominance(kind, r.name)
    ordered = sorted(ranks, key=lambda r: r.traversal_size, reverse=True)
    top, second = ordered[0], ordered[1]
    if top.traversal_size < ratio * second.traversal_size:
        return NodeDominance(Dominance.BALANCED, None)
    if top.name in op.contracted:
        return NodeDominance(Dominance.CONTRACTED, top.name)
    return NodeDominance(Dominance.UNCONTRACTED, top.name)


def shares_dominant_rank(
    consumer_dom: NodeDominance, tensor: TensorSpec
) -> bool:
    """Does the consumer's dominant rank appear on ``tensor``?

    Algorithm 2's *unshared* test: a consumer whose dominant (outermost) rank
    is not a rank of the communicated tensor would traverse it in an order
    unrelated to production (swizzle), so the edge cannot pipeline and is
    sequential.  Balanced consumers share by convention — any of their ranks
    can be scheduled outermost, so the scheduler can always align one with
    the tensor (the ResNet chain pipelines, Fig. 7).
    """
    if consumer_dom.kind is Dominance.BALANCED:
        return True
    assert consumer_dom.dominant_rank is not None
    return tensor.has_rank(consumer_dom.dominant_rank)
