"""Tensor dependency DAG.

The DAG's nodes are :class:`~repro.core.einsum.EinsumOp` operations and its
edges carry tensors from producer to consumer (Fig. 1).  This module provides
the graph machinery Algorithm 2 needs:

* *transitive edges* — an edge is transitive when it is **not** on the longest
  path between its endpoints (footnote 5), i.e. a longer route exists;
* *longest paths* — the node sequence Algorithm 2 walks to decide
  delayed-hold vs delayed-writeback;
* per-tensor consumer lists, liveness, and reuse distance/frequency metadata
  consumed by CHORD's RIFF policy.

Program order is the topological order in which operations were appended;
builders construct DAGs in execution order so reuse distances measured in
"number of operations" are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .einsum import EinsumOp
from .tensor import TensorSpec


@dataclass(frozen=True)
class Edge:
    """A producer→consumer tensor flow.

    ``src`` produced ``tensor``; ``dst`` consumes it.  ``src`` is ``None``
    for program inputs (tensors with no producer inside the DAG, e.g. the
    sparse matrix A) — those edges are not classified by Algorithm 2 but do
    feed CHORD's reuse metadata.
    """

    src: Optional[str]
    dst: str
    tensor: str

    def key(self) -> Tuple[Optional[str], str, str]:
        return (self.src, self.dst, self.tensor)


class TensorDag:
    """A DAG of einsum operations linked by tensor flows."""

    def __init__(self) -> None:
        self._ops: Dict[str, EinsumOp] = {}
        self._order: List[str] = []
        self._producer: Dict[str, str] = {}
        self._tensors: Dict[str, TensorSpec] = {}
        self._consumers: Dict[str, List[str]] = {}
        self._longest_cache: Dict[Tuple[str, str], Optional[Tuple[str, ...]]] = {}

    # -- construction -------------------------------------------------------

    def add_op(self, op: EinsumOp) -> EinsumOp:
        """Append ``op`` in program order, linking its tensors.

        Inputs must either be program inputs (never produced) or have been
        produced by an earlier op; this enforces topological construction.
        The operation is atomic: a validation failure leaves the DAG
        untouched (no phantom consumer entries).
        """
        if op.name in self._ops:
            raise ValueError(f"duplicate op name {op.name!r}")
        # Validate everything before mutating any structure.
        for t in op.inputs:
            self._check_tensor(t)
        out = op.output
        if out.name in self._producer:
            raise ValueError(
                f"tensor {out.name!r} produced twice ({self._producer[out.name]!r} "
                f"and {op.name!r}); use versioned names (e.g. 'X@1')"
            )
        self._check_tensor(out)
        # Commit.
        for t in op.inputs:
            self._tensors.setdefault(t.name, t)
            self._consumers.setdefault(t.name, []).append(op.name)
        self._tensors.setdefault(out.name, out)
        self._producer[out.name] = op.name
        self._consumers.setdefault(out.name, [])
        self._ops[op.name] = op
        self._order.append(op.name)
        self._longest_cache.clear()
        return op

    def _check_tensor(self, t: TensorSpec) -> None:
        existing = self._tensors.get(t.name)
        if existing is None:
            return
        if existing.shape != t.shape or existing.word_bytes != t.word_bytes:
            raise ValueError(
                f"tensor {t.name!r} redefined with conflicting spec: "
                f"{existing.shape} vs {t.shape}"
            )

    # -- lookups --------------------------------------------------------------

    def op(self, name: str) -> EinsumOp:
        try:
            return self._ops[name]
        except KeyError:
            raise KeyError(f"unknown op {name!r}") from None

    def tensor(self, name: str) -> TensorSpec:
        try:
            return self._tensors[name]
        except KeyError:
            raise KeyError(f"unknown tensor {name!r}") from None

    @property
    def ops(self) -> Tuple[EinsumOp, ...]:
        return tuple(self._ops[n] for n in self._order)

    @property
    def op_names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    @property
    def tensors(self) -> Tuple[TensorSpec, ...]:
        return tuple(self._tensors.values())

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, op_name: str) -> bool:
        return op_name in self._ops

    def op_index(self, name: str) -> int:
        """Program-order position of op ``name``."""
        try:
            return self._order.index(name)
        except ValueError:
            raise KeyError(f"unknown op {name!r}") from None

    def producer_of(self, tensor: str) -> Optional[str]:
        """Name of the op producing ``tensor``; None for program inputs."""
        self.tensor(tensor)
        return self._producer.get(tensor)

    def consumers_of(self, tensor: str) -> Tuple[str, ...]:
        """Ops consuming ``tensor``, in program order."""
        self.tensor(tensor)
        return tuple(self._consumers.get(tensor, ()))

    def program_inputs(self) -> Tuple[str, ...]:
        """Tensors consumed but never produced inside the DAG."""
        return tuple(t for t in self._tensors if t not in self._producer)

    def program_outputs(self) -> Tuple[str, ...]:
        """Tensors produced but never consumed inside the DAG."""
        return tuple(
            t for t in self._tensors
            if t in self._producer and not self._consumers.get(t)
        )

    # -- edges -----------------------------------------------------------------

    def edges(self, include_inputs: bool = False) -> Tuple[Edge, ...]:
        """All producer→consumer edges, in consumer program order.

        ``include_inputs`` adds edges whose source is a program input
        (``src=None``).
        """
        out: List[Edge] = []
        for dst_name in self._order:
            op = self._ops[dst_name]
            for t in op.inputs:
                src = self._producer.get(t.name)
                if src is None and not include_inputs:
                    continue
                out.append(Edge(src=src, dst=dst_name, tensor=t.name))
        return tuple(out)

    def out_edges(self, op_name: str) -> Tuple[Edge, ...]:
        """Edges carrying ``op_name``'s output tensor to its consumers."""
        op = self.op(op_name)
        return tuple(
            Edge(src=op_name, dst=c, tensor=op.output.name)
            for c in self.consumers_of(op.output.name)
        )

    # -- graph structure --------------------------------------------------------

    def successors(self, op_name: str) -> Tuple[str, ...]:
        """Ops consuming any tensor produced by ``op_name`` (dedup, ordered)."""
        op = self.op(op_name)
        seen: List[str] = []
        for c in self.consumers_of(op.output.name):
            if c not in seen:
                seen.append(c)
        return tuple(seen)

    def predecessors(self, op_name: str) -> Tuple[str, ...]:
        op = self.op(op_name)
        seen: List[str] = []
        for t in op.inputs:
            p = self._producer.get(t.name)
            if p is not None and p not in seen:
                seen.append(p)
        return tuple(seen)

    def longest_path(self, src: str, dst: str) -> Optional[Tuple[str, ...]]:
        """Longest node sequence from ``src`` to ``dst`` (inclusive).

        Returns ``None`` when ``dst`` is unreachable from ``src``.  Distance
        is counted in edges; ties are broken toward the path discovered first
        in program order (deterministic).
        """
        key = (src, dst)
        if key in self._longest_cache:
            return self._longest_cache[key]
        self.op(src)
        self.op(dst)
        # DP over program order restricted to positions in (src, dst].
        start = self.op_index(src)
        end = self.op_index(dst)
        best_len: Dict[str, int] = {src: 0}
        best_prev: Dict[str, Optional[str]] = {src: None}
        if end >= start:
            for name in self._order[start: end + 1]:
                if name == src:
                    continue
                for p in self.predecessors(name):
                    if p in best_len:
                        cand = best_len[p] + 1
                        if cand > best_len.get(name, -1):
                            best_len[name] = cand
                            best_prev[name] = p
        if dst not in best_len:
            self._longest_cache[key] = None
            return None
        path: List[str] = [dst]
        while best_prev[path[-1]] is not None:
            path.append(best_prev[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        result = tuple(path)
        self._longest_cache[key] = result
        return result

    def is_transitive_edge(self, edge: Edge) -> bool:
        """True when ``edge`` is not on the longest src→dst path (fn. 5).

        Equivalently: a path of length > 1 exists from src to dst.
        """
        if edge.src is None:
            raise ValueError("input edges have no transitivity")
        path = self.longest_path(edge.src, edge.dst)
        assert path is not None, "edge endpoints must be connected"
        return len(path) > 2

    def path_edge_tensor(self, src: str, dst: str) -> Optional[str]:
        """Tensor flowing on the direct edge src→dst (None if no edge)."""
        dst_op = self.op(dst)
        for t in dst_op.inputs:
            if self._producer.get(t.name) == src:
                return t.name
        return None

    # -- reuse metadata (feeds CHORD) ---------------------------------------------

    def reuse_frequency(self, tensor: str) -> int:
        """Total number of consuming operations (RIFF's ``Freq``)."""
        return len(self.consumers_of(tensor))

    def reuse_distances(self, tensor: str) -> Tuple[int, ...]:
        """Op-count gaps between birth and each use (RIFF's ``Dist``).

        Distance of a use = (consumer index) − (producer index); program
        inputs measure from op 0.
        """
        p = self.producer_of(tensor)
        born = self.op_index(p) if p is not None else 0
        return tuple(self.op_index(c) - born for c in self.consumers_of(tensor))

    def last_use_index(self, tensor: str) -> Optional[int]:
        """Program index of the final consumer (None when never consumed)."""
        cs = self.consumers_of(tensor)
        if not cs:
            return None
        return max(self.op_index(c) for c in cs)

    def next_use_after(self, tensor: str, op_index: int) -> Optional[int]:
        """Program index of the first use strictly after ``op_index``."""
        nxt = [self.op_index(c) for c in self.consumers_of(tensor) if self.op_index(c) > op_index]
        return min(nxt) if nxt else None

    # -- export -----------------------------------------------------------------

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` (for analysis/visualisation)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        for name in self._order:
            g.add_node(name, op=self._ops[name])
        for e in self.edges():
            g.add_edge(e.src, e.dst, tensor=e.tensor)
        return g

    def describe(self) -> str:
        lines = [f"TensorDag: {len(self)} ops, {len(self._tensors)} tensors"]
        for op in self.ops:
            lines.append("  " + op.describe())
        return "\n".join(lines)
