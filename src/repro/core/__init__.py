"""Core IR: ranks, tensors, einsum ops, the dependency DAG and Algorithm 2."""

from .ranks import Rank, RankSpace, make_ranks, volume
from .tensor import (
    DENSE,
    Layout,
    SparseFormat,
    Sparsity,
    TensorSpec,
    csr_tensor,
    dense_tensor,
)
from .einsum import EinsumOp, OpKind
from .dag import Edge, TensorDag
from .dominance import (
    DOMINANCE_RATIO,
    Dominance,
    NodeDominance,
    classify_dominance,
    shares_dominant_rank,
)
from .classify import ClassifiedDag, DependencyType, classify_dependencies
from .intensity import (
    Roofline,
    best_arithmetic_intensity,
    best_arithmetic_intensity_words,
    effective_intensity,
    gemm_macs,
    gemm_min_dram_words,
    op_arithmetic_intensity,
    skewed_limit_words,
)

__all__ = [
    "Rank",
    "RankSpace",
    "make_ranks",
    "volume",
    "DENSE",
    "Layout",
    "SparseFormat",
    "Sparsity",
    "TensorSpec",
    "csr_tensor",
    "dense_tensor",
    "EinsumOp",
    "OpKind",
    "Edge",
    "TensorDag",
    "DOMINANCE_RATIO",
    "Dominance",
    "NodeDominance",
    "classify_dominance",
    "shares_dominant_rank",
    "ClassifiedDag",
    "DependencyType",
    "classify_dependencies",
    "Roofline",
    "best_arithmetic_intensity",
    "best_arithmetic_intensity_words",
    "effective_intensity",
    "gemm_macs",
    "gemm_min_dram_words",
    "op_arithmetic_intensity",
    "skewed_limit_words",
]
