"""Arithmetic intensity and roofline arithmetic (Sec. III-A, Fig. 2).

Implements Eq. (3)/(4): the best possible arithmetic intensity of a GEMM
whose operands begin and end in DRAM, its limit N/2 ops/word for skewed
shapes, and the roofline throughput ``min(peak, AI × BW)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from .einsum import EinsumOp


def gemm_macs(m: int, k: int, n: int) -> int:
    """MAC count of a dense GEMM Z[m,n] += A[m,k] B[k,n]."""
    return m * k * n


def gemm_min_dram_words(m: int, k: int, n: int) -> int:
    """Minimum DRAM word traffic: each operand touched once (MK+KN+MN)."""
    return m * k + k * n + m * n


def best_arithmetic_intensity_words(m: int, k: int, n: int) -> float:
    """Eq. (3): best-case ops per *word* moved for an isolated GEMM."""
    return gemm_macs(m, k, n) / gemm_min_dram_words(m, k, n)


def best_arithmetic_intensity(m: int, k: int, n: int, word_bytes: int = 4) -> float:
    """Best-case ops per *byte* moved for an isolated GEMM."""
    return best_arithmetic_intensity_words(m, k, n) / word_bytes


def skewed_limit_words(n: int) -> float:
    """Eq. (4): lim_{K/M→0, K=N} AI = N/2 ops/word.

    For CG's N ≤ 16 and 4-byte words this is ≤ 2 ops/byte — memory bound on
    any realistic machine (Fig. 2).
    """
    return n / 2.0


def op_arithmetic_intensity(op: EinsumOp) -> float:
    """Best-case ops/byte of an arbitrary einsum op (cold operands)."""
    return op.macs / op.io_bytes_cold


@dataclass(frozen=True)
class Roofline:
    """A classic roofline: compute peak + memory bandwidth.

    ``peak_ops_per_s`` counts MACs/s (the paper plots GigaMuls/s);
    ``bandwidth_bytes_per_s`` is DRAM bandwidth.
    """

    peak_ops_per_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.peak_ops_per_s <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise ValueError("roofline parameters must be positive")

    @property
    def ridge_intensity(self) -> float:
        """AI (ops/byte) above which the machine is compute bound."""
        return self.peak_ops_per_s / self.bandwidth_bytes_per_s

    def attainable(self, ai_ops_per_byte: float) -> float:
        """Attainable throughput (ops/s) at arithmetic intensity ``ai``."""
        if ai_ops_per_byte <= 0:
            raise ValueError("arithmetic intensity must be positive")
        return min(self.peak_ops_per_s, ai_ops_per_byte * self.bandwidth_bytes_per_s)

    def is_memory_bound(self, ai_ops_per_byte: float) -> bool:
        return ai_ops_per_byte < self.ridge_intensity

    def series(self, ai_points: Sequence[float]) -> Tuple[Tuple[float, float], ...]:
        """(AI, attainable ops/s) pairs — the data behind Fig. 2(b)."""
        return tuple((ai, self.attainable(ai)) for ai in ai_points)


def effective_intensity(total_macs: float, dram_bytes: float) -> float:
    """Achieved ops/byte of a whole program run (inter-op reuse included)."""
    if dram_bytes <= 0:
        return float("inf")
    return total_macs / dram_bytes
