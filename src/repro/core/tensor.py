"""Tensor specifications: shape, layout, dtype and sparsity.

``TensorSpec`` is the unit the whole system reasons about — SCORE classifies
reuse per tensor, CHORD allocates/replaces per tensor, and the address map
assigns each tensor one contiguous global range (a property CHORD exploits to
avoid per-line tags, Sec. VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .ranks import Rank


class Layout(enum.Enum):
    """Storage layout of a (dense) tensor in the global address map.

    The layout is identified by the rank that varies fastest; for the
    two-dimensional tensors in the paper's workloads this is row-major vs
    column-major.  SCORE's swizzle minimization tries to give every consumer
    of a tensor the same layout the producer wrote (Challenge 4).
    """

    ROW_MAJOR = "row_major"
    COL_MAJOR = "col_major"

    def flipped(self) -> "Layout":
        return Layout.COL_MAJOR if self is Layout.ROW_MAJOR else Layout.ROW_MAJOR


class SparseFormat(enum.Enum):
    """Compressed formats supported for sparse operands (Sec. V-B)."""

    DENSE = "dense"
    CSR = "csr"
    CSC = "csc"


@dataclass(frozen=True)
class Sparsity:
    """Sparsity descriptor for a tensor.

    ``nnz`` is the number of stored values.  The footprint model charges
    ``nnz`` values + ``nnz`` coordinate indices + (rows+1) offsets, matching
    CSR/CSC storage; metadata words use ``index_bytes`` each.
    """

    format: SparseFormat = SparseFormat.DENSE
    nnz: Optional[int] = None
    index_bytes: int = 4

    def __post_init__(self) -> None:
        if self.format is not SparseFormat.DENSE and self.nnz is None:
            raise ValueError("sparse tensors must declare nnz")
        if self.nnz is not None and self.nnz < 0:
            raise ValueError("nnz must be non-negative")

    @property
    def is_sparse(self) -> bool:
        return self.format is not SparseFormat.DENSE


DENSE = Sparsity()


@dataclass(frozen=True)
class TensorSpec:
    """A tensor operand/result in the dependency DAG.

    Parameters
    ----------
    name:
        Unique identifier within one program (e.g. ``"S"``, ``"P@2"``).
    ranks:
        Ordered tuple of :class:`Rank` giving the logical shape.
    word_bytes:
        Bytes per element (4 for CG/GNN, 2 for ResNet — Table VII).
    sparsity:
        Sparse storage descriptor; dense by default.
    layout:
        Row-/column-major placement in the global address map.
    """

    name: str
    ranks: Tuple[Rank, ...]
    word_bytes: int = 4
    sparsity: Sparsity = DENSE
    layout: Layout = Layout.ROW_MAJOR

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor must be named")
        if self.word_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported word size {self.word_bytes}")
        if len(self.ranks) == 0:
            raise ValueError(f"tensor {self.name!r} needs at least one rank")

    # -- shape ------------------------------------------------------------

    @property
    def rank_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.ranks)

    def has_rank(self, name: str) -> bool:
        return any(r.name == name for r in self.ranks)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(r.size for r in self.ranks)

    @property
    def n_elements(self) -> int:
        out = 1
        for r in self.ranks:
            out *= r.size
        return out

    # -- storage footprint -------------------------------------------------

    @property
    def stored_elements(self) -> int:
        """Number of stored values (nnz for sparse, dense volume otherwise)."""
        if self.sparsity.is_sparse:
            assert self.sparsity.nnz is not None
            return self.sparsity.nnz
        return self.n_elements

    @property
    def bytes(self) -> int:
        """Total footprint in bytes, including sparse metadata.

        CSR/CSC storage = nnz values + nnz column/row indices + (major+1)
        offsets.  This is the quantity every DRAM-traffic model streams.
        """
        if not self.sparsity.is_sparse:
            return self.n_elements * self.word_bytes
        nnz = self.stored_elements
        major = self.ranks[0].size if self.sparsity.format is SparseFormat.CSR else self.ranks[-1].size
        values = nnz * self.word_bytes
        coords = nnz * self.sparsity.index_bytes
        offsets = (major + 1) * self.sparsity.index_bytes
        return values + coords + offsets

    def lines(self, line_bytes: int) -> int:
        """Footprint in cache lines of ``line_bytes`` (ceil)."""
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        return -(-self.bytes // line_bytes)

    # -- classification helpers ---------------------------------------------

    @property
    def aspect_ratio(self) -> float:
        """max extent / min extent — skew measure (Sec. III-A)."""
        sizes = [r.size for r in self.ranks]
        return max(sizes) / min(sizes)

    @property
    def is_skewed(self) -> bool:
        """True when one dimension dwarfs another (paper's M×N operands)."""
        return self.aspect_ratio >= 64.0

    def describe(self) -> str:
        dims = "x".join(str(r.size) for r in self.ranks)
        tag = f"[{self.sparsity.format.value} nnz={self.sparsity.nnz}]" if self.sparsity.is_sparse else ""
        return f"{self.name}({dims}){tag}"


def dense_tensor(
    name: str,
    ranks: Tuple[Rank, ...],
    word_bytes: int = 4,
    layout: Layout = Layout.ROW_MAJOR,
) -> TensorSpec:
    """Shorthand for a dense tensor spec."""
    return TensorSpec(name=name, ranks=ranks, word_bytes=word_bytes, layout=layout)


def csr_tensor(
    name: str,
    ranks: Tuple[Rank, ...],
    nnz: int,
    word_bytes: int = 4,
    index_bytes: int = 4,
) -> TensorSpec:
    """Shorthand for a CSR sparse tensor spec."""
    return TensorSpec(
        name=name,
        ranks=ranks,
        word_bytes=word_bytes,
        sparsity=Sparsity(SparseFormat.CSR, nnz=nnz, index_bytes=index_bytes),
    )
