"""Einsum operation nodes.

Each node of the tensor dependency DAG is one einsum-style operation
(``Z[m,n] += A[m,k] * B[k,n]``) plus optional element-wise accumulation
(``X = X + P*Lambda``) and non-MAC ops (the small matrix inverses on lines
2b/6 of Algorithm 1, drawn ``inv`` in Fig. 7).  Algorithm 2 keys off the op
kind: non-``tensor_mac`` nodes force sequential out-edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .ranks import Rank
from .tensor import TensorSpec


class OpKind(enum.Enum):
    """Operation kinds distinguished by the scheduler."""

    TENSOR_MAC = "tensor_mac"   # GEMM / SpMM / batched MAC einsum
    INVERSE = "inverse"         # small dense matrix inverse (+ optional GEMM)
    ELEMENTWISE = "elementwise" # pure element-wise map (ReLU, bias, ...)


@dataclass(frozen=True)
class EinsumOp:
    """One tensor operation in the DAG.

    Parameters
    ----------
    name:
        Unique node id.  CG nodes are named after Algorithm 1 line numbers,
        e.g. ``"1:spmm@0"`` for line 1 in iteration 0.
    inputs:
        Input tensor specs, in operand order.
    output:
        Produced tensor spec.
    contracted:
        Names of contracted (summed) ranks.  Empty for element-wise ops.
    kind:
        :class:`OpKind`.
    accumulate_input:
        Name of an input tensor that is element-wise accumulated into the
        output (e.g. ``X`` in ``X = X + P*Lambda``), or ``None``.
    label:
        Human-readable description used by reports.
    """

    name: str
    inputs: Tuple[TensorSpec, ...]
    output: TensorSpec
    contracted: Tuple[str, ...] = ()
    kind: OpKind = OpKind.TENSOR_MAC
    accumulate_input: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("op must be named")
        if len(self.inputs) == 0:
            raise ValueError(f"op {self.name!r} needs at least one input")
        names = [t.name for t in self.inputs]
        if len(set(names)) != len(names):
            raise ValueError(f"op {self.name!r} has duplicate input tensors {names}")
        if self.output.name in names and self.accumulate_input != self.output.name:
            raise ValueError(
                f"op {self.name!r}: output {self.output.name!r} aliases an input; "
                "declare accumulate_input for read-modify-write semantics"
            )
        if self.accumulate_input is not None and self.accumulate_input not in names:
            raise ValueError(
                f"op {self.name!r}: accumulate input {self.accumulate_input!r} "
                f"not among inputs {names}"
            )
        for c in self.contracted:
            if not any(t.has_rank(c) for t in self.inputs):
                raise ValueError(f"op {self.name!r}: contracted rank {c!r} not on any input")
            if self.output.has_rank(c):
                raise ValueError(f"op {self.name!r}: contracted rank {c!r} appears on output")

    # -- rank views ----------------------------------------------------------

    @property
    def all_ranks(self) -> Tuple[Rank, ...]:
        """All distinct ranks touched by the op, input order then output."""
        seen: Dict[str, Rank] = {}
        for t in self.inputs + (self.output,):
            for r in t.ranks:
                seen.setdefault(r.name, r)
        return tuple(seen.values())

    @property
    def uncontracted(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.all_ranks if r.name not in self.contracted)

    def rank(self, name: str) -> Rank:
        for r in self.all_ranks:
            if r.name == name:
                return r
        raise KeyError(f"op {self.name!r} has no rank {name!r}")

    # -- work metrics ----------------------------------------------------------

    @property
    def macs(self) -> int:
        """Number of multiply-accumulates (compression-aware).

        For a dense GEMM this is the product of all rank extents.  For a
        sparse contraction the compressed rank contributes its traversal
        extent, so an SpMM with A(M×M, nnz) by P(M×N) costs ``nnz*N`` MACs.
        Element-wise ops cost one op per output element; inverses cost
        ``n^3`` on their (small) square operand plus the chained GEMM.
        """
        if self.kind is OpKind.ELEMENTWISE:
            return self.output.n_elements
        if self.kind is OpKind.INVERSE:
            n = self.output.ranks[0].size
            gemm: float = 1
            for r in self.all_ranks:
                gemm *= r.traversal_size
            return int(round(n ** 3 + gemm))
        out: float = 1
        for r in self.all_ranks:
            out *= r.traversal_size
        return int(round(out))

    @property
    def io_bytes_cold(self) -> int:
        """Bytes moved when every operand begins and ends in DRAM (Eq. 3).

        An accumulated operand (``X = X + ...``) is read and written, which
        double-charges its footprint exactly as the oracle op-by-op model
        requires.
        """
        total = sum(t.bytes for t in self.inputs) + self.output.bytes
        return total

    @property
    def arithmetic_intensity_best(self) -> float:
        """Best-case ops/byte with no inter-operation reuse (Sec. III-A)."""
        return self.macs / self.io_bytes_cold

    def input_named(self, name: str) -> TensorSpec:
        for t in self.inputs:
            if t.name == name:
                return t
        raise KeyError(f"op {self.name!r} has no input {name!r}")

    def describe(self) -> str:
        ins = ", ".join(t.describe() for t in self.inputs)
        c = "".join(self.contracted)
        return f"{self.name}: {self.output.describe()} <- {self.kind.value}({ins}; contract={c or '-'})"
