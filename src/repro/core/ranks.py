"""Rank (index variable) abstractions for einsum operations.

A *rank* is a named loop dimension of an einsum (``m``, ``n``, ``k`` in
``Z[m,n] += A[m,k] * B[k,n]``).  Ranks carry a concrete extent (size) plus an
optional *effective* extent: the paper's Algorithm 2 classifies node
dominance using the traversed extent, which differs from the nominal extent
for compressed (sparse) ranks — e.g. the contracted rank of the CG SpMM has
nominal extent M but effective extent ``nnz/M`` ("the first operation is 'U'
because the contracted rank is compressed", Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Rank:
    """A named loop dimension with a concrete extent.

    Parameters
    ----------
    name:
        The rank's identifier (``"m"``, ``"k"``, ...).  Rank identity is by
        name: two operations that share a rank name share that dimension.
    size:
        Nominal extent (number of index values).
    compressed:
        True when the rank is traversed in a compressed (sparse) format so
        that only ``effective_size`` positions are visited per traversal.
    effective_size:
        Traversed extent.  Defaults to ``size`` for dense ranks; for
        compressed ranks it should be set to the mean number of stored
        entries (e.g. nnz/rows for a CSR row traversal).
    """

    name: str
    size: int
    compressed: bool = False
    effective_size: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"rank {self.name!r} must have positive size, got {self.size}")
        if self.effective_size is None:
            object.__setattr__(self, "effective_size", float(self.size))
        if self.effective_size <= 0:
            raise ValueError(
                f"rank {self.name!r} must have positive effective size, "
                f"got {self.effective_size}"
            )
        if self.compressed and self.effective_size > self.size:
            raise ValueError(
                f"compressed rank {self.name!r} cannot have effective size "
                f"{self.effective_size} larger than nominal size {self.size}"
            )

    @property
    def traversal_size(self) -> float:
        """Extent actually visited by a traversal (compression-aware).

        Fractional for compressed ranks (mean stored entries per position,
        e.g. nnz/rows), exact for dense ranks.
        """
        assert self.effective_size is not None
        return self.effective_size

    def with_size(self, size: int) -> "Rank":
        """Return a copy with a different nominal (and effective) size."""
        return replace(self, size=size, effective_size=None if not self.compressed else min(size, self.traversal_size))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = ""
        if self.compressed:
            extra = f", compressed->{self.effective_size}"
        return f"Rank({self.name}={self.size}{extra})"


class RankSpace:
    """A registry of the ranks appearing in one tensor-operation DAG.

    Rank names are global to a DAG: ``m`` in two different operations refers
    to the same dimension.  ``RankSpace`` enforces consistent sizes and
    provides lookups used by the dominance classifier and schedulers.
    """

    def __init__(self, ranks: Iterable[Rank] = ()) -> None:
        self._ranks: Dict[str, Rank] = {}
        for r in ranks:
            self.add(r)

    def add(self, rank: Rank) -> Rank:
        """Register ``rank``; error when re-registering with a new size."""
        existing = self._ranks.get(rank.name)
        if existing is not None:
            if existing.size != rank.size or existing.compressed != rank.compressed:
                raise ValueError(
                    f"rank {rank.name!r} registered twice with conflicting "
                    f"definitions: {existing} vs {rank}"
                )
            return existing
        self._ranks[rank.name] = rank
        return rank

    def get(self, name: str) -> Rank:
        try:
            return self._ranks[name]
        except KeyError:
            raise KeyError(f"unknown rank {name!r}; known: {sorted(self._ranks)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._ranks

    def __iter__(self):
        return iter(self._ranks.values())

    def __len__(self) -> int:
        return len(self._ranks)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._ranks)

    def sizes(self) -> Mapping[str, int]:
        return {name: r.size for name, r in self._ranks.items()}


def make_ranks(sizes: Mapping[str, int], compressed: Mapping[str, float] | None = None) -> RankSpace:
    """Convenience constructor.

    Parameters
    ----------
    sizes:
        Mapping of rank name to nominal extent.
    compressed:
        Optional mapping of rank name to *effective* extent for compressed
        ranks.
    """
    compressed = dict(compressed or {})
    space = RankSpace()
    for name, size in sizes.items():
        if name in compressed:
            space.add(Rank(name, size, compressed=True, effective_size=compressed[name]))
        else:
            space.add(Rank(name, size))
    return space


def volume(ranks: Iterable[Rank], effective: bool = False) -> float:
    """Product of rank extents.

    With ``effective=True`` compressed ranks contribute their traversal
    extent — this is the MAC count of a sparse contraction (fractional
    extents make it a float; callers round at the edge).
    """
    out: float = 1
    for r in ranks:
        out *= r.traversal_size if effective else r.size
    return out
