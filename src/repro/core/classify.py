"""Tensor-level dependency classification — Algorithm 2 of the paper.

For every producer→consumer edge of the DAG, decide one of:

* ``SEQUENTIAL`` — source cannot pipeline (contracted-dominant or non-MAC
  source, or the destination traverses the tensor in an unshared order);
  operand round-trips through memory (on- or off-chip).
* ``PIPELINEABLE`` — adjacent (non-transitive) edge whose producer streams
  tiles the consumer can eat immediately; tiles are overwritten once consumed.
* ``DELAYED_HOLD`` — transitive edge whose whole longest path pipelines:
  tiles stay *held* in the pipeline buffer until the downstream consumer
  takes them (ResNet skip connections, Fig. 6).
* ``DELAYED_WRITEBACK`` — transitive edge whose path breaks pipelining
  somewhere (a contracted node or an unshared hand-off): the tensor must be
  written back and reused later — the case only CHORD can exploit.

Plus the node attribute ``parallel_multicast`` when a node feeds more than
one non-transitive consumer.

The *shared/unshared* test uses the consumer's own rank binding of the
tensor (the CG tensor ``S`` is produced over ranks ``(m,n)`` and consumed by
line 2a over ``(k,n)``) — binding-awareness is what lets a contraction-heavy
consumer still receive a pipelined stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .dag import Edge, TensorDag
from .dominance import (
    DOMINANCE_RATIO,
    Dominance,
    NodeDominance,
    classify_dominance,
    shares_dominant_rank,
)
from .einsum import OpKind


class DependencyType(enum.Enum):
    SEQUENTIAL = "sequential"
    PIPELINEABLE = "pipelineable"
    DELAYED_HOLD = "delayed_hold"
    DELAYED_WRITEBACK = "delayed_writeback"

    @property
    def is_delayed(self) -> bool:
        return self in (DependencyType.DELAYED_HOLD, DependencyType.DELAYED_WRITEBACK)


EdgeKey = Tuple[Optional[str], str, str]


@dataclass
class ClassifiedDag:
    """Output of Algorithm 2 over one :class:`TensorDag`."""

    dag: TensorDag
    dominance: Dict[str, NodeDominance]
    dependency: Dict[EdgeKey, DependencyType]
    numcast: Dict[str, int]
    parallel_multicast: Dict[str, bool]

    def dep_of(self, edge: Edge) -> DependencyType:
        return self.dependency[edge.key()]

    def edges_of_type(self, dep: DependencyType) -> Tuple[Edge, ...]:
        return tuple(e for e in self.dag.edges() if self.dependency[e.key()] is dep)

    def consumer_dep(self, tensor: str, consumer: str) -> Optional[DependencyType]:
        """Dependency type of the edge carrying ``tensor`` into ``consumer``.

        ``None`` for program-input tensors (no producer ⇒ no classified edge).
        """
        src = self.dag.producer_of(tensor)
        if src is None:
            return None
        return self.dependency[(src, consumer, tensor)]

    def node_letter(self, op_name: str) -> str:
        """Fig. 7 node annotation (``U``/``C``/``bal``)."""
        return self.dominance[op_name].letter

    def summary(self) -> Dict[str, int]:
        """Count of edges per dependency type."""
        out: Dict[str, int] = {d.value: 0 for d in DependencyType}
        for dep in self.dependency.values():
            out[dep.value] += 1
        return out

    def describe(self) -> str:
        lines = ["Classified DAG (Algorithm 2):"]
        for name in self.dag.op_names:
            cast = " multicast" if self.parallel_multicast.get(name) else ""
            lines.append(f"  node {name} [{self.node_letter(name)}]{cast}")
        for e in self.dag.edges():
            lines.append(
                f"  edge {e.src} --{e.tensor}--> {e.dst}: "
                f"{self.dependency[e.key()].value}"
            )
        return "\n".join(lines)


def _consumer_shares(dag: TensorDag, dst: str, tensor: str,
                     dominance: Mapping[str, NodeDominance]) -> bool:
    """Does ``dst``'s dominant rank appear on its own binding of ``tensor``?"""
    bound = dag.op(dst).input_named(tensor)
    return shares_dominant_rank(dominance[dst], bound)


def classify_dependencies(
    dag: TensorDag,
    ratio: float = DOMINANCE_RATIO,
) -> ClassifiedDag:
    """Run Algorithm 2 over ``dag``.

    Rules are applied in the paper's order, with later assignments
    overriding earlier ones, and an explicit default of SEQUENTIAL (the
    unconstrained dependency, Sec. V-A).
    """
    dominance: Dict[str, NodeDominance] = {
        op.name: classify_dominance(op, ratio=ratio) for op in dag.ops
    }
    dependency: Dict[EdgeKey, DependencyType] = {}
    numcast: Dict[str, int] = {}
    multicast: Dict[str, bool] = {}

    for op in dag.ops:
        node = op.name
        numcast[node] = 0
        multicast[node] = False
        node_dom = dominance[node]
        # Algorithm 2 tests "node.op != tensor_mac"; element-wise ops
        # (ResNet's residual add, BiCGStab's vector updates) stream in
        # production order exactly like a MAC einsum, so only order-breaking
        # ops (the matrix inverse) disqualify a node from pipelining.
        src_streams = op.kind is not OpKind.INVERSE

        for edge in dag.out_edges(node):
            transitive = dag.is_transitive_edge(edge)
            if not transitive:
                numcast[node] += 1
                if numcast[node] > 1:
                    multicast[node] = True

            dep = DependencyType.SEQUENTIAL
            dst_shares = _consumer_shares(dag, edge.dst, edge.tensor, dominance)
            dst_streams = dag.op(edge.dst).kind is not OpKind.INVERSE

            if (
                node_dom.kind is not Dominance.CONTRACTED
                and not transitive
                and dst_shares
            ):
                dep = DependencyType.PIPELINEABLE
            if node_dom.kind is Dominance.CONTRACTED or not src_streams:
                dep = DependencyType.SEQUENTIAL
            if not dst_shares:
                dep = DependencyType.SEQUENTIAL
            if not dst_streams:
                # Extension of Algorithm 2: an inverse consumer needs its
                # whole operand before starting, so the edge cannot pipeline
                # regardless of rank sharing.
                dep = DependencyType.SEQUENTIAL
            if (
                node_dom.kind is not Dominance.CONTRACTED
                and src_streams
                and transitive
                and dst_shares
                and dst_streams
            ):
                dep = _classify_transitive(dag, edge, dominance)

            dependency[edge.key()] = dep

    return ClassifiedDag(
        dag=dag,
        dominance=dominance,
        dependency=dependency,
        numcast=numcast,
        parallel_multicast=multicast,
    )


def _classify_transitive(
    dag: TensorDag,
    edge: Edge,
    dominance: Mapping[str, NodeDominance],
) -> DependencyType:
    """Walk the longest src→dst path: hold iff every hop pipelines.

    A hop breaks pipelining when its source is contracted-dominant, is an
    inverse, or hands its tensor to a consumer that does not share the
    dominant rank (Algorithm 2's inner loop).
    """
    assert edge.src is not None
    path = dag.longest_path(edge.src, edge.dst)
    assert path is not None and len(path) > 2
    for i in range(len(path) - 1):
        pathnode, pathnext = path[i], path[i + 1]
        if dominance[pathnode].kind is Dominance.CONTRACTED:
            return DependencyType.DELAYED_WRITEBACK
        if dag.op(pathnode).kind is OpKind.INVERSE:
            return DependencyType.DELAYED_WRITEBACK
        hop_tensor = dag.path_edge_tensor(pathnode, pathnext)
        if hop_tensor is None:
            return DependencyType.DELAYED_WRITEBACK
        if not _consumer_shares(dag, pathnext, hop_tensor, dominance):
            return DependencyType.DELAYED_WRITEBACK
    return DependencyType.DELAYED_HOLD
