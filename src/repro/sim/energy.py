"""Energy accounting (Fig. 14 off-chip, Fig. 15 per-access on-chip).

Off-chip energy is proportional to DRAM traffic; on-chip energy charges
each structure's per-access cost from the CACTI-style model.  Fig. 14 plots
*relative off-chip* energy, so the DRAM constant cancels; it is still
applied so absolute joules are available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..hw.config import AcceleratorConfig
from ..hw.sram_model import DRAM_PJ_PER_BYTE, all_structure_costs
from .results import SimResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules by component for one run."""

    offchip_j: float
    onchip_j: float
    per_structure_j: Mapping[str, float]

    @property
    def total_j(self) -> float:
        return self.offchip_j + self.onchip_j


def offchip_energy_j(dram_bytes: int) -> float:
    return dram_bytes * DRAM_PJ_PER_BYTE * 1e-12


def onchip_energy_j(
    accesses_by_structure: Mapping[str, int],
    cfg: AcceleratorConfig,
) -> Dict[str, float]:
    """Per-structure on-chip energy.

    ``accesses_by_structure`` maps a structure name (``cache``, ``chord``,
    ``buffet``, ``scratchpad``) to its access count *in line-sized units*
    (byte-counting models divide by ``cfg.line_bytes`` before calling).
    Unknown structures (``rf``, ``pipeline``) are charged at a nominal
    small-buffer cost.
    """
    costs = all_structure_costs(cfg)
    small_structure_pj = 0.5  # RF / pipeline stage: small, banked, cheap
    out: Dict[str, float] = {}
    for name, n in accesses_by_structure.items():
        if n < 0:
            raise ValueError(f"negative access count for {name!r}")
        if name in costs:
            pj = costs[name].energy_pj_per_access
        else:
            pj = small_structure_pj
        out[name] = n * pj * 1e-12
    return out


def energy_of(result: SimResult, cfg: AcceleratorConfig) -> EnergyBreakdown:
    """Full energy breakdown of a simulation result.

    Engines normalise ``onchip_accesses`` to line-sized units before
    storing them, so counts are charged directly.
    """
    per = onchip_energy_j(result.onchip_accesses, cfg)
    return EnergyBreakdown(
        offchip_j=offchip_energy_j(result.dram_bytes),
        onchip_j=sum(per.values()),
        per_structure_j=per,
    )
