"""DRAM channel: the traffic ledger every engine writes into.

All figures reduce to DRAM bytes (performance via the roofline, energy via
pJ/byte), so engines funnel every off-chip transfer through one
:class:`DramChannel` for auditable totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class DramChannel:
    """Byte-exact read/write ledger with per-reason attribution."""

    read_bytes: int = 0
    write_bytes: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)

    def read(self, nbytes: int, reason: str = "read") -> None:
        if nbytes < 0:
            raise ValueError("read bytes must be non-negative")
        self.read_bytes += nbytes
        self.by_reason[reason] = self.by_reason.get(reason, 0) + nbytes

    def write(self, nbytes: int, reason: str = "write") -> None:
        if nbytes < 0:
            raise ValueError("write bytes must be non-negative")
        self.write_bytes += nbytes
        self.by_reason[reason] = self.by_reason.get(reason, 0) + nbytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def merge_stats(self, read_bytes: int, write_bytes: int, reason: str) -> None:
        """Fold a buffer model's accumulated DRAM traffic into the ledger."""
        self.read(read_bytes, reason=f"{reason}:read")
        self.write(write_bytes, reason=f"{reason}:write")
