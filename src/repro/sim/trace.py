"""Stream-segment traces for the cache baselines (Flex+LRU / Flex+BRRIP).

The best-intra-op schedule streams every operand once per op: large
operands tile-interleaved (a tile of each input is read while a tile of the
output is written), small operands read up front.  The cache baselines push
exactly this access stream through an implicitly-managed cache; whatever
inter-op reuse the cache captures is whatever survives its replacement
policy — the comparison Fig. 12 makes.

Traces are sequences of :class:`StreamSegment` (byte ranges + R/W flavour).
``interleave_chunk`` controls how finely concurrent operand streams are
woven together (real engines fetch tiles round-robin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp
from .address_map import AddressMap


@dataclass(frozen=True)
class StreamSegment:
    """A contiguous byte range accessed with one flavour."""

    tensor: str
    start: int      # global byte address
    nbytes: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("segment size must be non-negative")


def _chunks(base: int, nbytes: int, chunk: int) -> Iterator[Tuple[int, int]]:
    off = 0
    while off < nbytes:
        n = min(chunk, nbytes - off)
        yield base + off, n
        off += n


def op_trace(
    op: EinsumOp,
    dag: TensorDag,
    amap: AddressMap,
    interleave_chunk: int = 4096,
    rf_bytes: int = 32 * 1024,
) -> List[StreamSegment]:
    """The access stream of one op under the best-intra-op schedule.

    Small operands (≤ ``rf_bytes``) are read whole up front (they park in
    the RF); large operands and the output stream in ``interleave_chunk``
    slices, round-robin, modelling tile-synchronous dataflow.
    """
    if interleave_chunk <= 0:
        raise ValueError("interleave_chunk must be positive")
    segments: List[StreamSegment] = []
    small: List[StreamSegment] = []
    streams: List[Iterator[Tuple[int, int]]] = []
    stream_meta: List[Tuple[str, bool]] = []

    for t in op.inputs:
        ext = amap.get(t.name)
        if t.bytes <= rf_bytes:
            small.append(StreamSegment(t.name, ext.base, ext.nbytes, is_write=False))
        else:
            streams.append(_chunks(ext.base, ext.nbytes, interleave_chunk))
            stream_meta.append((t.name, False))
    out_ext = amap.get(op.output.name)
    if op.output.bytes <= rf_bytes:
        small.append(StreamSegment(op.output.name, out_ext.base, out_ext.nbytes, is_write=True))
    else:
        streams.append(_chunks(out_ext.base, out_ext.nbytes, interleave_chunk))
        stream_meta.append((op.output.name, True))

    segments.extend(small)
    live = list(range(len(streams)))
    while live:
        nxt: List[int] = []
        for i in live:
            try:
                base, n = next(streams[i])
            except StopIteration:
                continue
            name, is_write = stream_meta[i]
            segments.append(StreamSegment(name, base, n, is_write=is_write))
            nxt.append(i)
        live = nxt
    return segments


def iter_program_trace(
    dag: TensorDag,
    amap: AddressMap,
    interleave_chunk: int = 4096,
    rf_bytes: int = 32 * 1024,
) -> Iterator[StreamSegment]:
    """Whole-program trace as a generator: ops in program order.

    Only one op's segments are materialized at a time, so multi-GB traces
    stream through :meth:`SetAssociativeCache.access_segments` in bounded
    memory instead of being built as one giant list.  ``program_trace`` is
    the eager form (small traces, tests).
    """
    for op in dag.ops:
        yield from op_trace(
            op, dag, amap, interleave_chunk=interleave_chunk, rf_bytes=rf_bytes
        )


def program_trace(
    dag: TensorDag,
    amap: AddressMap,
    interleave_chunk: int = 4096,
    rf_bytes: int = 32 * 1024,
) -> List[StreamSegment]:
    """Whole-program trace: ops in program order (eager list form)."""
    return list(
        iter_program_trace(
            dag, amap, interleave_chunk=interleave_chunk, rf_bytes=rf_bytes
        )
    )


def trace_bytes(segments: Iterable[StreamSegment]) -> int:
    """Total bytes touched by a trace (sanity metric)."""
    return sum(s.nbytes for s in segments)


def program_trace_bytes(dag: TensorDag) -> int:
    """Total bytes a program trace will touch, without materializing it.

    Every op streams each input once and its output once, so the total is
    pure operand arithmetic — this is what sizes ``auto_granularity`` for
    the streaming path (equality with ``trace_bytes(program_trace(...))``
    is pinned in tests).
    """
    return sum(
        sum(t.bytes for t in op.inputs) + op.output.bytes for op in dag.ops
    )


#: Default access budget for ``auto_granularity``.  Sized for the
#: vectorized cache backend (tens of millions of accesses per second);
#: the pre-vectorization scalar loop forced this down to 2M, coarsening
#: multi-GB traces 10x more than necessary.
DEFAULT_TARGET_ACCESSES = 20_000_000


def auto_granularity(
    total_bytes: int,
    line_bytes: int,
    target_accesses: int = DEFAULT_TARGET_ACCESSES,
) -> int:
    """Coarsening factor g so a trace simulates in ~``target_accesses``.

    g consecutive lines form one block; the cache scales its set count by
    1/g at equal capacity, preserving streaming/capacity behaviour (tests
    pin shape preservation).  Always a power of two.
    """
    if total_bytes <= 0:
        return 1
    g = 1
    while total_bytes // (line_bytes * g) > target_accesses:
        g *= 2
    return g
