"""Trace/schedule-driven memory-system simulation and cost models."""

from .address_map import AddressMap, Extent
from .dram import DramChannel
from .results import (
    SimResult,
    geomean,
    geomean_speedup,
    relative_energy,
)
from .perf import compute_seconds, make_result, memory_seconds
from .energy import EnergyBreakdown, energy_of, offchip_energy_j, onchip_energy_j
from .trace import (
    StreamSegment,
    auto_granularity,
    iter_program_trace,
    op_trace,
    program_trace,
    program_trace_bytes,
    trace_bytes,
)
from .engine import CacheEngine, EngineOptions, ScheduleEngine
from .cluster_timing import (
    Cluster,
    cluster_seconds,
    describe_clusters,
    form_clusters,
    pipeline_aware_time,
)

__all__ = [
    "AddressMap",
    "Extent",
    "DramChannel",
    "SimResult",
    "geomean",
    "geomean_speedup",
    "relative_energy",
    "compute_seconds",
    "make_result",
    "memory_seconds",
    "EnergyBreakdown",
    "energy_of",
    "offchip_energy_j",
    "onchip_energy_j",
    "StreamSegment",
    "auto_granularity",
    "iter_program_trace",
    "op_trace",
    "program_trace",
    "program_trace_bytes",
    "trace_bytes",
    "CacheEngine",
    "EngineOptions",
    "ScheduleEngine",
    "Cluster",
    "cluster_seconds",
    "describe_clusters",
    "form_clusters",
    "pipeline_aware_time",
]
