"""Roofline performance model (Sec. VII-A2).

The paper's performance numbers are roofline-bound: "the efficiency within
the compute array does not matter significantly in this work since stalls
due to memory bandwidth dominate the delay".  Execution time is therefore
``max(compute stream, DRAM stream)``:

* compute: total MACs at one MAC/unit/cycle across ``n_macs`` units;
* memory: total DRAM bytes at the configured bandwidth.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..hw.config import AcceleratorConfig
from .results import SimResult


def compute_seconds(total_macs: int, cfg: AcceleratorConfig) -> float:
    """Ideal datapath time for ``total_macs``."""
    if total_macs < 0:
        raise ValueError("MAC count must be non-negative")
    return total_macs / cfg.peak_macs_per_s


def memory_seconds(dram_bytes: int, cfg: AcceleratorConfig) -> float:
    """DRAM streaming time for ``dram_bytes``."""
    if dram_bytes < 0:
        raise ValueError("byte count must be non-negative")
    return dram_bytes / cfg.dram_bandwidth_bytes_per_s


def make_result(
    config: str,
    workload: str,
    total_macs: int,
    dram_read_bytes: int,
    dram_write_bytes: int,
    cfg: AcceleratorConfig,
    onchip_accesses: Optional[Mapping[str, int]] = None,
) -> SimResult:
    """Assemble a :class:`SimResult` from traffic + the roofline model."""
    return SimResult(
        config=config,
        workload=workload,
        total_macs=total_macs,
        dram_read_bytes=dram_read_bytes,
        dram_write_bytes=dram_write_bytes,
        compute_s=compute_seconds(total_macs, cfg),
        memory_s=memory_seconds(dram_read_bytes + dram_write_bytes, cfg),
        onchip_accesses=dict(onchip_accesses or {}),
    )
