"""Execution engines: schedule-driven (CELLO-class) and trace-driven
(cache-class).

``ScheduleEngine`` walks the program in order, routing every tensor event
through the buffer its SCORE placement names: register file, pipeline
buffer, hold slots, or CHORD.  ``CacheEngine`` replays the best-intra-op
stream trace through a set-associative cache.  Both emit a
:class:`~repro.sim.results.SimResult` built on the roofline performance
model, so every Table IV configuration is directly comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set

from ..buffers.cache import ReplacementPolicy, SetAssociativeCache
from ..chord.buffer import ChordBuffer
from ..chord.metadata import RiffIndexTable
from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..score.schedule_ir import Route, Schedule
from .address_map import AddressMap
from .dram import DramChannel
from .perf import make_result
from .results import SimResult
from .trace import auto_granularity, iter_program_trace, program_trace_bytes

#: Optional phase-profiling hook: ``hook(phase, seconds)`` per engine
#: run, with phases ``"trace-gen"`` (lazy trace production),
#: ``"cache-kernel"`` (set-associative replay) and ``"chord-accounting"``
#: (the schedule-driven op walk).  ``None`` (the default) keeps the hot
#: paths timer-free; the service daemon installs a histogram-feeding
#: hook under ``--phase-profile`` so "simulation is slow" decomposes
#: into which phase regressed.  Pool workers install a local collector
#: and ship the timings back with the result
#: (:mod:`repro.orchestrator.parallel`).
_PHASE_HOOK: Optional[Callable[[str, float], None]] = None


def set_phase_hook(hook: Optional[Callable[[str, float], None]]) -> None:
    """Install (or with ``None`` remove) the process-wide phase hook."""
    global _PHASE_HOOK
    _PHASE_HOOK = hook


def get_phase_hook() -> Optional[Callable[[str, float], None]]:
    return _PHASE_HOOK


def _timed_trace(segments: Iterable, sink: Dict[str, float]) -> Iterable:
    """Wrap a lazy trace so time spent *producing* segments accumulates
    in ``sink["trace-gen"]``, separable from the cache kernel consuming
    them (generator and kernel interleave on one thread)."""
    it = iter(segments)
    while True:
        t0 = time.perf_counter()
        try:
            segment = next(it)
        except StopIteration:
            return
        finally:
            sink["trace-gen"] = (sink.get("trace-gen", 0.0)
                                 + time.perf_counter() - t0)
        yield segment


@dataclass(frozen=True)
class EngineOptions:
    """Behavioural switches of the schedule-driven engine (ablation axes)."""

    use_riff: bool = True           # RIFF replacement (off = PRELUDE-only)
    explicit_retire: bool = True    # free dead tensors at last use
    charge_swizzle: bool = True     # charge a DRAM round trip per swizzle
    chord_entries: Optional[int] = None  # override index-table capacity
    #: Record the CHORD occupancy timeline (bounded; feeds the timeline
    #: renderer).  The recorder is opt-in at the buffer level — the engine
    #: opts in by default because post-mortem observability is its job.
    record_history: bool = True


class ScheduleEngine:
    """Runs a SCORE :class:`Schedule` against CHORD + pipeline buffer + RF."""

    def __init__(self, cfg: AcceleratorConfig,
                 options: Optional[EngineOptions] = None) -> None:
        self.cfg = cfg
        # None-sentinel: each engine owns a fresh options instance, so no
        # two engines ever alias a shared module-level default.
        self.options = EngineOptions() if options is None else options
        #: The CHORD instance of the most recent ``run`` — kept for
        #: post-mortem auditing (per-tensor traffic, occupancy timeline).
        self.last_chord: Optional[ChordBuffer] = None
        self.last_dram: Optional[DramChannel] = None

    def run(self, schedule: Schedule, config_name: str = "cello",
            workload_name: str = "workload") -> SimResult:
        cfg = self.cfg
        dag = schedule.dag
        hints = schedule.hints
        amap = AddressMap.for_dag(dag, line_bytes=cfg.line_bytes)
        entries = self.options.chord_entries or cfg.chord_entries
        chord = ChordBuffer(
            capacity_bytes=cfg.chord_data_bytes,
            hints=hints,
            use_riff=self.options.use_riff,
            table=RiffIndexTable(entries, cfg.chord_entry_bits),
            base_addrs=amap.base_addrs(),
            record_history=self.options.record_history,
        )
        dram = DramChannel()
        rf_bytes_touched = 0
        pipe_bytes_touched = 0
        touched: Set[str] = set()

        # Per-tensor lookups are loop-invariant: placement, size, cold-input
        # status and last use never change mid-program, so resolve them once
        # instead of per (op, operand) event in the inner loops.
        placement_of: Dict[str, object] = {}
        nbytes_of: Dict[str, int] = {}
        is_cold_input: Dict[str, bool] = {}
        last_use_of: Dict[str, Optional[int]] = {}
        for t in dag.tensors:
            name = t.name
            placement_of[name] = schedule.placement(name)
            nbytes_of[name] = t.bytes
            is_cold_input[name] = dag.producer_of(name) is None
            last_use_of[name] = hints.get(name).last_use()

        hook = _PHASE_HOOK
        t_account = time.perf_counter() if hook is not None else 0.0
        for i, op in enumerate(dag.ops):
            for t in op.inputs:
                name = t.name
                placement = placement_of[name]
                route = placement.route_for(op.name)
                nbytes = nbytes_of[name]
                if (
                    self.options.charge_swizzle
                    and op.name in placement.swizzled_consumers
                    and route is not Route.REGISTER_FILE
                ):
                    # Layout transform: stream the tensor out and back in
                    # its new order before this consumer can run.
                    dram.read(nbytes, reason="swizzle")
                    dram.write(nbytes, reason="swizzle")
                if route is Route.REGISTER_FILE:
                    if is_cold_input[name] and name not in touched:
                        dram.read(nbytes, reason="cold-input")
                    rf_bytes_touched += nbytes
                elif route in (Route.PIPELINE, Route.HOLD):
                    pipe_bytes_touched += nbytes
                elif route is Route.CHORD:
                    chord.read(name, i)
                elif route is Route.DRAM:
                    dram.read(nbytes, reason="direct")
                touched.add(name)

            out_name = op.output.name
            wr = placement_of[out_name].write_route
            nbytes = nbytes_of[out_name]
            if wr is Route.REGISTER_FILE:
                rf_bytes_touched += nbytes
            elif wr is Route.PIPELINE:
                pipe_bytes_touched += nbytes
            elif wr is Route.CHORD:
                chord.write(out_name, i)
            elif wr is Route.DRAM:
                dram.write(nbytes, reason="direct")
            touched.add(out_name)

            if self.options.explicit_retire:
                for t in op.inputs:
                    if last_use_of[t.name] == i:
                        chord.retire(t.name)

        chord.finalize()
        if hook is not None:
            hook("chord-accounting", time.perf_counter() - t_account)
        # Program outputs that never routed through CHORD (small RF-resident
        # results like a GNN's logits) still drain to DRAM exactly once.
        for name in dag.program_outputs():
            if placement_of[name].write_route in (
                Route.REGISTER_FILE, Route.PIPELINE
            ):
                dram.write(nbytes_of[name], reason="output-drain")
        dram.merge_stats(
            chord.stats.dram_read_bytes, chord.stats.dram_write_bytes, "chord"
        )
        self.last_chord = chord
        self.last_dram = dram
        total_macs = sum(op.macs for op in dag.ops)
        onchip = {
            "chord": chord.stats.accesses // cfg.line_bytes,
            "rf": rf_bytes_touched // cfg.line_bytes,
            "pipeline": pipe_bytes_touched // cfg.line_bytes,
        }
        return make_result(
            config=config_name,
            workload=workload_name,
            total_macs=total_macs,
            dram_read_bytes=dram.read_bytes,
            dram_write_bytes=dram.write_bytes,
            cfg=cfg,
            onchip_accesses=onchip,
        )


class CacheEngine:
    """Replays the best-intra-op trace through an implicit cache
    (the Flex+LRU / Flex+BRRIP baselines).

    The trace is generated lazily (one op's segments at a time) and pushed
    through :meth:`SetAssociativeCache.access_segments`, which expands and
    resolves it as batched array kernels — multi-GB streams simulate in
    bounded memory at tens of millions of accesses per second.  ``backend``
    selects the cache implementation (``"reference"`` replays the scalar
    per-access loop, for parity tests and benchmarking).
    """

    def __init__(
        self,
        cfg: AcceleratorConfig,
        policy: ReplacementPolicy,
        granularity: Optional[int] = None,
        interleave_chunk: int = 4096,
        backend: str = "auto",
    ) -> None:
        self.cfg = cfg
        self.policy = policy
        self.granularity = granularity
        self.interleave_chunk = interleave_chunk
        self.backend = backend

    def run(self, dag: TensorDag, config_name: str = "cache",
            workload_name: str = "workload") -> SimResult:
        cfg = self.cfg
        amap = AddressMap.for_dag(dag, line_bytes=cfg.line_bytes)
        total = program_trace_bytes(dag)
        g = self.granularity or auto_granularity(total, cfg.line_bytes)
        block_bytes = cfg.line_bytes * g
        cache = SetAssociativeCache(
            capacity_bytes=cfg.sram_bytes,
            line_bytes=block_bytes,
            associativity=cfg.cache_associativity,
            policy=self.policy,
            backend=self.backend,
        )
        trace = iter_program_trace(
            dag, amap,
            interleave_chunk=self.interleave_chunk,
            rf_bytes=cfg.rf_bytes,
        )
        hook = _PHASE_HOOK
        if hook is None:
            cache.access_segments(trace)
            cache.flush()
        else:
            sink: Dict[str, float] = {}
            t_total = time.perf_counter()
            cache.access_segments(_timed_trace(trace, sink))
            cache.flush()
            elapsed = time.perf_counter() - t_total
            gen = sink.get("trace-gen", 0.0)
            hook("trace-gen", gen)
            hook("cache-kernel", max(0.0, elapsed - gen))
        total_macs = sum(op.macs for op in dag.ops)
        return make_result(
            config=config_name,
            workload=workload_name,
            total_macs=total_macs,
            dram_read_bytes=cache.stats.dram_read_bytes,
            dram_write_bytes=cache.stats.dram_write_bytes,
            cfg=cfg,
            onchip_accesses={"cache": cache.stats.accesses * g},
        )
