"""Execution engines: schedule-driven (CELLO-class) and trace-driven
(cache-class).

``ScheduleEngine`` walks the program in order, routing every tensor event
through the buffer its SCORE placement names: register file, pipeline
buffer, hold slots, or CHORD.  ``CacheEngine`` replays the best-intra-op
stream trace through a set-associative cache.  Both emit a
:class:`~repro.sim.results.SimResult` built on the roofline performance
model, so every Table IV configuration is directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..buffers.cache import ReplacementPolicy, SetAssociativeCache
from ..chord.buffer import ChordBuffer
from ..chord.metadata import RiffIndexTable
from ..core.dag import TensorDag
from ..hw.config import AcceleratorConfig
from ..score.schedule_ir import Route, Schedule
from .address_map import AddressMap
from .dram import DramChannel
from .perf import make_result
from .results import SimResult
from .trace import auto_granularity, program_trace, trace_bytes


@dataclass(frozen=True)
class EngineOptions:
    """Behavioural switches of the schedule-driven engine (ablation axes)."""

    use_riff: bool = True           # RIFF replacement (off = PRELUDE-only)
    explicit_retire: bool = True    # free dead tensors at last use
    charge_swizzle: bool = True     # charge a DRAM round trip per swizzle
    chord_entries: Optional[int] = None  # override index-table capacity


class ScheduleEngine:
    """Runs a SCORE :class:`Schedule` against CHORD + pipeline buffer + RF."""

    def __init__(self, cfg: AcceleratorConfig,
                 options: EngineOptions = EngineOptions()) -> None:
        self.cfg = cfg
        self.options = options
        #: The CHORD instance of the most recent ``run`` — kept for
        #: post-mortem auditing (per-tensor traffic, occupancy timeline).
        self.last_chord: Optional[ChordBuffer] = None
        self.last_dram: Optional[DramChannel] = None

    def run(self, schedule: Schedule, config_name: str = "cello",
            workload_name: str = "workload") -> SimResult:
        cfg = self.cfg
        dag = schedule.dag
        hints = schedule.hints
        amap = AddressMap.for_dag(dag, line_bytes=cfg.line_bytes)
        entries = self.options.chord_entries or cfg.chord_entries
        chord = ChordBuffer(
            capacity_bytes=cfg.chord_data_bytes,
            hints=hints,
            use_riff=self.options.use_riff,
            table=RiffIndexTable(entries, cfg.chord_entry_bits),
            base_addrs=amap.base_addrs(),
        )
        dram = DramChannel()
        rf_bytes_touched = 0
        pipe_bytes_touched = 0
        touched: Set[str] = set()

        for i, op in enumerate(dag.ops):
            for t in op.inputs:
                name = t.name
                placement = schedule.placement(name)
                route = placement.route_for(op.name)
                nbytes = dag.tensor(name).bytes
                if (
                    self.options.charge_swizzle
                    and op.name in placement.swizzled_consumers
                    and route is not Route.REGISTER_FILE
                ):
                    # Layout transform: stream the tensor out and back in
                    # its new order before this consumer can run.
                    dram.read(nbytes, reason="swizzle")
                    dram.write(nbytes, reason="swizzle")
                if route is Route.REGISTER_FILE:
                    if dag.producer_of(name) is None and name not in touched:
                        dram.read(nbytes, reason="cold-input")
                    rf_bytes_touched += nbytes
                elif route in (Route.PIPELINE, Route.HOLD):
                    pipe_bytes_touched += nbytes
                elif route is Route.CHORD:
                    chord.read(name, i)
                elif route is Route.DRAM:
                    dram.read(nbytes, reason="direct")
                touched.add(name)

            out = op.output
            placement = schedule.placement(out.name)
            wr = placement.write_route
            nbytes = dag.tensor(out.name).bytes
            if wr is Route.REGISTER_FILE:
                rf_bytes_touched += nbytes
            elif wr is Route.PIPELINE:
                pipe_bytes_touched += nbytes
            elif wr is Route.CHORD:
                chord.write(out.name, i)
            elif wr is Route.DRAM:
                dram.write(nbytes, reason="direct")
            touched.add(out.name)

            if self.options.explicit_retire:
                for t in op.inputs:
                    h = hints.get(t.name)
                    if h.last_use() == i:
                        chord.retire(t.name)

        chord.finalize()
        # Program outputs that never routed through CHORD (small RF-resident
        # results like a GNN's logits) still drain to DRAM exactly once.
        for name in dag.program_outputs():
            if schedule.placement(name).write_route in (
                Route.REGISTER_FILE, Route.PIPELINE
            ):
                dram.write(dag.tensor(name).bytes, reason="output-drain")
        dram.merge_stats(
            chord.stats.dram_read_bytes, chord.stats.dram_write_bytes, "chord"
        )
        self.last_chord = chord
        self.last_dram = dram
        total_macs = sum(op.macs for op in dag.ops)
        onchip = {
            "chord": chord.stats.accesses // cfg.line_bytes,
            "rf": rf_bytes_touched // cfg.line_bytes,
            "pipeline": pipe_bytes_touched // cfg.line_bytes,
        }
        return make_result(
            config=config_name,
            workload=workload_name,
            total_macs=total_macs,
            dram_read_bytes=dram.read_bytes,
            dram_write_bytes=dram.write_bytes,
            cfg=cfg,
            onchip_accesses=onchip,
        )


class CacheEngine:
    """Replays the best-intra-op trace through an implicit cache
    (the Flex+LRU / Flex+BRRIP baselines)."""

    def __init__(
        self,
        cfg: AcceleratorConfig,
        policy: ReplacementPolicy,
        granularity: Optional[int] = None,
        interleave_chunk: int = 4096,
    ) -> None:
        self.cfg = cfg
        self.policy = policy
        self.granularity = granularity
        self.interleave_chunk = interleave_chunk

    def run(self, dag: TensorDag, config_name: str = "cache",
            workload_name: str = "workload") -> SimResult:
        cfg = self.cfg
        amap = AddressMap.for_dag(dag, line_bytes=cfg.line_bytes)
        segments = program_trace(
            dag, amap,
            interleave_chunk=self.interleave_chunk,
            rf_bytes=cfg.rf_bytes,
        )
        total = trace_bytes(segments)
        g = self.granularity or auto_granularity(total, cfg.line_bytes)
        block_bytes = cfg.line_bytes * g
        cache = SetAssociativeCache(
            capacity_bytes=cfg.sram_bytes,
            line_bytes=block_bytes,
            associativity=cfg.cache_associativity,
            policy=self.policy,
        )
        for seg in segments:
            cache.access_range(seg.start, seg.nbytes, seg.is_write)
        cache.flush()
        total_macs = sum(op.macs for op in dag.ops)
        return make_result(
            config=config_name,
            workload=workload_name,
            total_macs=total_macs,
            dram_read_bytes=cache.stats.dram_read_bytes,
            dram_write_bytes=cache.stats.dram_write_bytes,
            cfg=cfg,
            onchip_accesses={"cache": cache.stats.accesses * g},
        )
