"""Pipeline-aware cluster timing (the Fig. 8 space-time schedule).

The headline results use the roofline bound (time = max(compute, DRAM)),
which the paper justifies by memory-boundedness.  This module provides the
finer model for compute-bound regimes: SCORE's binding partitions the
program into *clusters* — maximal chains of realized pipelines plus the
sequential ops between them.  Within a cluster, stages run concurrently on
partitions of the PE array and the cluster's latency is governed by its
slowest stage (rate-limiting step) plus the pipeline fill/drain:

    t_cluster = (n_tiles + depth − 1) × t_stage_max

Sequential ops serialise.  The global DRAM stream still overlaps with
compute, so total time = max(Σ cluster compute, DRAM time) — a refinement
that equals the roofline bound whenever one op dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hw.config import AcceleratorConfig
from ..score.schedule_ir import Schedule


@dataclass(frozen=True)
class Cluster:
    """A chain of ops bound to concurrent pipeline stages."""

    ops: Tuple[str, ...]

    @property
    def depth(self) -> int:
        return len(self.ops)


def form_clusters(schedule: Schedule) -> List[Cluster]:
    """Partition program order into pipeline clusters.

    Consecutive ops joined by a realized pipeline edge share a cluster;
    everything else forms singleton clusters.
    """
    dag = schedule.dag
    names = list(dag.op_names)
    clusters: List[Cluster] = []
    current: List[str] = []
    for i, name in enumerate(names):
        if not current:
            current = [name]
            continue
        prev = current[-1]
        tensor = dag.op(prev).output.name
        if (prev, name, tensor) in schedule.pipelines:
            current.append(name)
        else:
            clusters.append(Cluster(tuple(current)))
            current = [name]
    if current:
        clusters.append(Cluster(tuple(current)))
    return clusters


def stage_seconds(op_name: str, schedule: Schedule, cfg: AcceleratorConfig,
                  pe_share: float) -> float:
    """Datapath time of one op on a ``pe_share`` fraction of the PE array."""
    macs = schedule.dag.op(op_name).macs
    return macs / (cfg.peak_macs_per_s * pe_share)


def cluster_seconds(cluster: Cluster, schedule: Schedule,
                    cfg: AcceleratorConfig) -> float:
    """Latency of one cluster under stage-concurrent execution.

    Stages split the PE array proportionally to their MAC counts (the
    work-balanced binding of Fig. 8's bottom schedule), so every stage
    would ideally take the same time; the fill/drain term charges the
    pipeline depth against the tile count.
    """
    if cluster.depth == 1:
        return stage_seconds(cluster.ops[0], schedule, cfg, pe_share=1.0)
    total_macs = sum(schedule.dag.op(o).macs for o in cluster.ops)
    if total_macs == 0:
        return 0.0
    shares = {
        o: max(schedule.dag.op(o).macs / total_macs, 1e-9) for o in cluster.ops
    }
    t_stage = max(
        stage_seconds(o, schedule, cfg, pe_share=shares[o]) for o in cluster.ops
    )
    n_tiles = max(
        schedule.op_schedule(o).n_tiles for o in cluster.ops
    )
    # t_stage already covers all tiles of the slowest stage; fill/drain adds
    # (depth - 1) single-tile steps.
    per_tile = t_stage / n_tiles
    return t_stage + (cluster.depth - 1) * per_tile


def pipeline_aware_time(schedule: Schedule, cfg: AcceleratorConfig,
                        dram_bytes: int) -> float:
    """Total execution time under the cluster model, overlapped with DRAM."""
    compute = sum(
        cluster_seconds(c, schedule, cfg) for c in form_clusters(schedule)
    )
    memory = dram_bytes / cfg.dram_bandwidth_bytes_per_s
    return max(compute, memory)


def describe_clusters(schedule: Schedule, cfg: AcceleratorConfig) -> str:
    """Human-readable space-time binding (the Fig. 8 bottom row)."""
    lines = ["Pipeline clusters (space-time binding):"]
    for c in form_clusters(schedule):
        t = cluster_seconds(c, schedule, cfg) * 1e6
        arrow = " -> ".join(c.ops)
        lines.append(f"  [{t:9.3f} us] {arrow}")
    return "\n".join(lines)
