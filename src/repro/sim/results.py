"""Simulation result records and cross-config aggregation helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence


@dataclass(frozen=True)
class SimResult:
    """Outcome of running one (workload, configuration) pair.

    All downstream figures derive from three primitives: MAC count, DRAM
    traffic, and per-structure on-chip access counts.
    """

    config: str
    workload: str
    total_macs: int
    dram_read_bytes: int
    dram_write_bytes: int
    compute_s: float
    memory_s: float
    onchip_accesses: Mapping[str, int] = field(default_factory=dict)

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def time_s(self) -> float:
        """Roofline execution time: max of compute and memory streams."""
        return max(self.compute_s, self.memory_s)

    @property
    def throughput_gmacs(self) -> float:
        """GigaMACs/s — the paper's GigaFPMuls/second axis."""
        if self.time_s <= 0:
            return float("inf")
        return self.total_macs / self.time_s / 1e9

    @property
    def effective_intensity(self) -> float:
        """Achieved ops/byte over the whole run."""
        if self.dram_bytes <= 0:
            return float("inf")
        return self.total_macs / self.dram_bytes

    @property
    def memory_bound(self) -> bool:
        return self.memory_s >= self.compute_s

    def speedup_over(self, baseline: "SimResult") -> float:
        if self.time_s <= 0:
            return float("inf")
        return baseline.time_s / self.time_s

    def dram_reduction_vs(self, baseline: "SimResult") -> float:
        """Fraction of baseline DRAM traffic eliminated (0..1)."""
        if baseline.dram_bytes <= 0:
            return 0.0
        return 1.0 - self.dram_bytes / baseline.dram_bytes

    def as_dict(self) -> Dict[str, float]:
        return {
            "config": self.config,
            "workload": self.workload,
            "total_macs": self.total_macs,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "dram_bytes": self.dram_bytes,
            "time_s": self.time_s,
            "throughput_gmacs": self.throughput_gmacs,
            "effective_intensity": self.effective_intensity,
        }

    # -- serialisation (orchestrator result store / worker transport) ----------

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-safe encoding; inverse of :meth:`from_dict`.

        Unlike :meth:`as_dict` (derived metrics for reports), this carries
        exactly the constructor fields so a result can cross a process
        boundary or live in the on-disk result store.
        """
        return {
            "config": self.config,
            "workload": self.workload,
            "total_macs": self.total_macs,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "compute_s": self.compute_s,
            "memory_s": self.memory_s,
            "onchip_accesses": dict(self.onchip_accesses),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimResult":
        """Rebuild a result encoded by :meth:`to_dict`."""
        return cls(
            config=str(data["config"]),
            workload=str(data["workload"]),
            total_macs=int(data["total_macs"]),
            dram_read_bytes=int(data["dram_read_bytes"]),
            dram_write_bytes=int(data["dram_write_bytes"]),
            compute_s=float(data["compute_s"]),
            memory_s=float(data["memory_s"]),
            onchip_accesses={
                str(k): int(v)
                for k, v in dict(data.get("onchip_accesses") or {}).items()
            },
        )


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregation)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def geomean_speedup(results: Sequence[SimResult],
                    baselines: Sequence[SimResult]) -> float:
    """Geomean of pairwise speedups (paired by position)."""
    if len(results) != len(baselines):
        raise ValueError("results and baselines must pair up")
    return geomean(r.speedup_over(b) for r, b in zip(results, baselines))


def relative_energy(results: Mapping[str, SimResult],
                    reference: str) -> Dict[str, float]:
    """Off-chip energy of each config relative to ``reference`` (Fig. 14's
    y-axis — energy is proportional to DRAM traffic)."""
    ref = results[reference]
    if ref.dram_bytes <= 0:
        raise ValueError("reference moved no DRAM bytes")
    return {
        name: r.dram_bytes / ref.dram_bytes for name, r in results.items()
    }
