"""Global address map: one contiguous, line-aligned range per tensor.

CHORD's whole metadata story rests on tensors being contiguous and ordered
in the global address map (Fig. 10: hit = compare against ``end_chord``,
index = offset arithmetic).  The cache baselines consume the same map so
set-index behaviour reflects real tensor placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..core.dag import TensorDag
from ..core.tensor import TensorSpec


@dataclass(frozen=True)
class Extent:
    """A tensor's byte range in the global address space."""

    base: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressMap:
    """Bump allocator assigning line-aligned extents in registration order."""

    def __init__(self, line_bytes: int = 16, base: int = 0x1000_0000) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.line_bytes = line_bytes
        self._next = self._align(base)
        self._extents: Dict[str, Extent] = {}

    def _align(self, addr: int) -> int:
        rem = addr % self.line_bytes
        return addr if rem == 0 else addr + (self.line_bytes - rem)

    def add(self, name: str, nbytes: int) -> Extent:
        if name in self._extents:
            raise ValueError(f"tensor {name!r} already mapped")
        if nbytes < 0:
            raise ValueError("size must be non-negative")
        ext = Extent(base=self._next, nbytes=nbytes)
        self._extents[name] = ext
        self._next = self._align(ext.end)
        return ext

    def get(self, name: str) -> Extent:
        try:
            return self._extents[name]
        except KeyError:
            raise KeyError(f"tensor {name!r} not mapped") from None

    def __contains__(self, name: str) -> bool:
        return name in self._extents

    def __len__(self) -> int:
        return len(self._extents)

    def base_addrs(self) -> Dict[str, int]:
        return {n: e.base for n, e in self._extents.items()}

    @classmethod
    def for_dag(cls, dag: TensorDag, line_bytes: int = 16) -> "AddressMap":
        """Map every tensor of ``dag`` in first-appearance order."""
        amap = cls(line_bytes=line_bytes)
        for t in dag.tensors:
            amap.add(t.name, t.bytes)
        return amap
