"""Rendering for the service CLI verbs: job tables, server stats,
sweep-outcome summaries.

The service streams JSON; these helpers turn the client-side views into
the same aligned plain-text tables every other ``repro`` report uses.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..hw.config import GB, MIB
from ..service.metrics import HistogramFamily
from .report import render_table


def render_jobs(jobs: Sequence[Mapping[str, object]]) -> str:
    """The ``repro jobs`` table: one row per tracked job."""
    if not jobs:
        return "no jobs tracked (submit one with 'repro submit')"
    rows = []
    for j in jobs:
        rows.append([
            str(j.get("id", "?")),
            str(j.get("kind", "?")),
            str(j.get("state", "?")),
            f"{j.get('done', 0)}/{j.get('total', 0)}",
            int(j.get("simulations", 0)),  # type: ignore[arg-type]
            int(j.get("hits", 0)),  # type: ignore[arg-type]
            int(j.get("coalesced", 0)),  # type: ignore[arg-type]
            float(j.get("elapsed_s", 0.0)),  # type: ignore[arg-type]
            str(j.get("error") or j.get("summary", "")),
        ])
    return render_table(
        ["job", "kind", "state", "points", "sims", "hits", "coal",
         "elapsed s", "summary"],
        rows,
        title=f"Jobs: {len(rows)}",
    )


def render_service_stats(stats: Mapping[str, object]) -> str:
    """The ``repro jobs --stats`` report: throughput + store contents.

    Dispatches on the endpoint's role — a gateway reports routing
    counters instead of pool/store internals it does not have.
    """
    if stats.get("role") == "gateway":
        return _render_gateway_stats(stats)
    uptime = float(stats.get("uptime_s", 0.0))  # type: ignore[arg-type]
    points = int(stats.get("points_streamed", 0))  # type: ignore[arg-type]
    sims = int(stats.get("simulations", 0))  # type: ignore[arg-type]
    pool = dict(stats.get("pool") or {})  # type: ignore[arg-type]
    jobs = dict(stats.get("jobs") or {})  # type: ignore[arg-type]
    per_s = points / uptime if uptime > 0 else 0.0
    lines = [
        "Service stats",
        f"  uptime:          {uptime:.1f} s",
        f"  jobs:            "
        + (", ".join(f"{n} {state}" for state, n in sorted(jobs.items()))
           or "none"),
        f"  points streamed: {points} ({per_s:.2f} points/s)",
        f"  simulations:     {sims}",
    ]
    if "hits_total" in stats or "coalesced_total" in stats:
        # v5 daemons split the dedup sources: a warm store hit and a
        # coalesced in-flight wait are different operational signals.
        lines.append(
            f"  dedup:           {stats.get('hits_total', 0)} warm hit(s), "
            f"{stats.get('coalesced_total', 0)} coalesced, "
            f"{stats.get('shed_total', 0)} shed")
    else:
        # Pre-v5 daemons only expose the aggregate ratio.  `sims` is the
        # server-wide counter and includes tune evaluations, which
        # stream no points — clamp so the ratio stays meaningful.
        dedup = max(0.0, 1.0 - sims / points) if points > 0 else 0.0
        lines.append(
            f"  dedup:           {dedup:.0%} answered without simulating")
    lines += [
        f"  queue depth:     {stats.get('queue_depth', 0)} "
        f"(+{stats.get('in_flight', 0)} in flight)",
        f"  pool:            {pool.get('jobs', 1)} worker(s), "
        f"{pool.get('batches', 0)} batches / "
        f"{pool.get('payloads', 0)} payloads"
        + (" [broken: serial fallback]" if pool.get("broken") else ""),
    ]
    store = stats.get("store")
    if store is None:
        lines.append("  store:           disabled")
    else:
        store = dict(store)  # type: ignore[arg-type]
        lines.append(
            f"  store:           {store.get('entries', 0)} entries "
            f"(schema v{store.get('schema_version', '?')}) "
            f"at {store.get('directory', '?')}")
        workloads: Dict[str, int] = dict(store.get("workloads") or {})
        for name, count in workloads.items():
            lines.append(f"    {name:30s} {count}")
    return "\n".join(lines)


def _render_gateway_stats(stats: Mapping[str, object]) -> str:
    uptime = float(stats.get("uptime_s", 0.0))  # type: ignore[arg-type]
    points = int(stats.get("points_streamed", 0))  # type: ignore[arg-type]
    jobs = dict(stats.get("jobs") or {})  # type: ignore[arg-type]
    per_s = points / uptime if uptime > 0 else 0.0
    return "\n".join([
        "Gateway stats",
        f"  uptime:          {uptime:.1f} s",
        f"  jobs:            "
        + (", ".join(f"{n} {state}" for state, n in sorted(jobs.items()))
           or "none"),
        f"  points streamed: {points} ({per_s:.2f} points/s)",
        f"  requeued:        {stats.get('requeued_total', 0)} point(s) "
        "re-hashed off dead shards",
        f"  shards:          {stats.get('shards_healthy', 0)}/"
        f"{stats.get('shards_total', 0)} healthy",
    ])


def _histogram_percentile_lines(snapshot: object, label: str,
                                header: str) -> List[str]:
    """p50/p90/p99 lines for one dimension of a histogram snapshot;
    empty when the endpoint is pre-v6 or nothing has been observed."""
    if not isinstance(snapshot, Mapping) or not snapshot.get("series"):
        return []
    try:
        merged = HistogramFamily.merged_by(snapshot, label)
    except (ValueError, KeyError):
        return []
    lines = [header]
    for name in sorted(merged):
        hist = merged[name]
        lines.append(
            f"    {name:16s} p50 {hist.quantile(0.5):.4f}  "
            f"p90 {hist.quantile(0.9):.4f}  "
            f"p99 {hist.quantile(0.99):.4f}  ({hist.count} observed)")
    return lines


def render_metrics(msg: Mapping[str, object]) -> str:
    """The ``repro metrics`` report for either endpoint role.

    Every counter line is grep-friendly (``label: value``) so smoke
    tests and shell dashboards can scrape it without JSON tooling; the
    raw message is one ``--json`` flag away.
    """
    rates = dict(msg.get("rates") or {})  # type: ignore[arg-type]
    jobs = dict(msg.get("jobs") or {})  # type: ignore[arg-type]
    window = float(rates.get("window_s", 60.0))  # type: ignore[arg-type]
    role = str(msg.get("role", "shard"))
    lines = [
        f"Metrics: {role} (protocol v{msg.get('protocol', '?')}, "
        f"uptime {float(msg.get('uptime_s', 0.0)):.1f} s)",  # type: ignore[arg-type]
        f"  jobs:            "
        + (", ".join(f"{n} {state}" for state, n in sorted(jobs.items()))
           or "none"),
        f"  points streamed: {msg.get('points_streamed', 0)}",
    ]
    if role == "gateway":
        lines += [
            f"  points/s:        {rates.get('points_per_s', 0.0)} "
            f"(over {window:.0f} s)",
            f"  requeued total:  {msg.get('requeued_total', 0)}",
            f"  shards healthy:  {msg.get('shards_healthy', 0)}/"
            f"{msg.get('shards_total', 0)}",
        ]
        lines += _histogram_percentile_lines(
            msg.get("latency"), "op", "  latency by op (seconds):")
        shards = [dict(s) for s in msg.get("shards", [])]  # type: ignore[union-attr]
        rows = [[
            str(s.get("id", "?")),
            "up" if s.get("healthy") else "DOWN",
            int(s.get("deaths", 0)),
            int(s.get("requeued", 0)),
            str(s.get("error") or ""),
        ] for s in shards]
        if rows:
            lines.append(render_table(
                ["shard", "health", "deaths", "requeued", "last error"],
                rows,
                title="Shards",
            ))
        return "\n".join(lines)
    store = msg.get("store")
    queue_clients = dict(msg.get("queue_clients") or {})  # type: ignore[arg-type]
    lines += [
        f"  simulations:     {msg.get('simulations', 0)}",
        f"  sims/s:          {rates.get('sims_per_s', 0.0)} "
        f"(over {window:.0f} s)",
        f"  analytic/s:      {rates.get('analytic_evals_per_s', 0.0)}",
        f"  warm hits:       {msg.get('hits_total', 0)}",
        f"  coalesced:       {msg.get('coalesced_total', 0)}",
        f"  shed:            {msg.get('shed_total', 0)}",
        f"  queue depth:     {msg.get('queue_depth', 0)}/"
        f"{msg.get('max_pending', '?')} "
        f"(+{msg.get('in_flight', 0)} in flight)",
    ]
    for client, depth in queue_clients.items():
        lines.append(f"    {client:30s} {depth} queued")
    lines += _histogram_percentile_lines(
        msg.get("latency"), "op", "  latency by op (seconds):")
    lines += _histogram_percentile_lines(
        msg.get("phases"), "phase", "  phase timings (seconds):")
    if store is None:
        lines.append("  store:           disabled")
    else:
        store = dict(store)  # type: ignore[arg-type]
        lines.append(
            f"  store entries:   {store.get('entries', 0)}")
        lines.append(
            f"  store hit rate:  {float(store.get('hit_rate', 0.0)):.2%} "  # type: ignore[arg-type]
            f"({store.get('hits', 0)} hits / "
            f"{store.get('misses', 0)} misses)")
        skipped = []
        for name in ("stale", "duplicates", "corrupt"):
            if store.get(name):
                skipped.append(f"{store[name]} {name}")
        if skipped:
            lines.append(f"  store skipped:   {', '.join(skipped)}"
                         + ("  <-- corrupt records growing; check disk"
                            if store.get("corrupt") else ""))
    return "\n".join(lines)


def render_topology(topo: Mapping[str, object]) -> str:
    """The ``repro jobs --topology`` report for either endpoint role.

    A lone daemon describes itself as one shard; a gateway renders its
    ring parameters and a health row per backend shard.
    """
    role = str(topo.get("role", "?"))
    if role != "gateway":
        store = topo.get("store")
        return "\n".join([
            f"Topology: single {role} (protocol "
            f"v{topo.get('protocol', '?')})",
            f"  address:     {topo.get('host', '?')}:{topo.get('port', '?')}",
            f"  workers:     {topo.get('workers', '?')}",
            f"  in flight:   {topo.get('in_flight', 0)} "
            f"(+{topo.get('queue_depth', 0)} queued)",
            f"  store:       {store if store is not None else 'disabled'}",
        ])
    shards = [dict(s) for s in topo.get("shards", [])]  # type: ignore[union-attr]
    healthy = sum(1 for s in shards if s.get("healthy"))
    lines = [
        f"Topology: gateway over {len(shards)} shard(s), {healthy} healthy "
        f"(protocol v{topo.get('protocol', '?')})",
        f"  address:     {topo.get('host', '?')}:{topo.get('port', '?')}",
        f"  hash ring:   {topo.get('replicas', '?')} virtual node(s) per "
        "shard",
        f"  requeued:    {topo.get('requeued_total', 0)} point(s) re-hashed "
        "off dead shards",
    ]
    rows = [[
        str(s.get("id", "?")),
        "up" if s.get("healthy") else "DOWN",
        f"v{s.get('protocol')}" if s.get("protocol") is not None else "?",
        int(s.get("deaths", 0)),
        str(s.get("error") or ""),
    ] for s in shards]
    if rows:
        lines.append(render_table(
            ["shard", "health", "proto", "deaths", "last error"],
            rows,
            title="Shards",
        ))
    return "\n".join(lines)


def sweep_outcome_rows(points: Sequence[object]) -> List[List[object]]:
    """Table rows for streamed sweep points (mirrors ``repro sweep``)."""
    rows: List[List[object]] = []
    for p in points:
        r = p.result  # type: ignore[attr-defined]
        rows.append([
            p.workload,  # type: ignore[attr-defined]
            p.config,  # type: ignore[attr-defined]
            p.sram_bytes / MIB,  # type: ignore[attr-defined]
            p.bandwidth_bytes_per_s / GB,  # type: ignore[attr-defined]
            r.dram_bytes / 1e6,
            r.throughput_gmacs,
            "mem" if r.memory_bound else "compute",
        ])
    return rows


def summarize_sweep_outcome(outcome: object) -> str:
    """Grep-friendly summary of a finished sweep job.

    The first line keeps its historical ``simulations: N`` shape (CI
    smoke jobs grep it); the second line exists for the fabric smoke
    test — ``simulations re-run: 0`` on a warm resubmit is the "requeue
    duplicated nothing" assertion, and ``requeued: N`` says how many
    points were re-hashed off dead shards (always 0 on a lone daemon).
    """
    requeued = int(getattr(outcome, "requeued", 0))
    return (f"job {outcome.job_id}: "  # type: ignore[attr-defined]
            f"{len(outcome.points)} points  "  # type: ignore[attr-defined]
            f"simulations: {outcome.simulations}  "  # type: ignore[attr-defined]
            f"warm hits: {outcome.hits}  "  # type: ignore[attr-defined]
            f"coalesced: {outcome.coalesced}  "  # type: ignore[attr-defined]
            f"requeued: {requeued}  "
            f"elapsed: {outcome.elapsed_s:.3f}s"  # type: ignore[attr-defined]
            "\n"
            f"simulations re-run: {outcome.simulations}")  # type: ignore[attr-defined]
