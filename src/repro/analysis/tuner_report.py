"""Rendering of autotuner results (text tables and JSON).

The text report shows the Pareto frontier with every knob spelled out,
then the searched-best-vs-fixed-CELLO comparison that extends the
Sec. VI-B narrative: how much the *searchable remainder* of the design
space is worth on top of the paper's fixed co-design point.  The JSON
form is :meth:`TuneResult.to_dict` verbatim — loadable back with
:meth:`TuneResult.from_dict` for downstream analysis.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from ..hw.config import MIB
from ..tuner.space import TunePoint
from ..tuner.tuner import TuneEval, TuneResult
from .report import render_table

#: Objective display units: name -> (header suffix, scale divisor).
_UNITS = {
    "runtime": ("us", 1e-6),
    "dram": ("MB", 1e6),
    "energy": ("uJ", 1e-6),
    "area": ("mm2", 1.0),
}


def _knob_cells(point: TunePoint) -> List[object]:
    return [
        point.config_name(),
        point.sram_bytes / MIB,
        point.line_bytes,
        point.chord_entries if point.is_cello else "-",
    ]


def _objective_cells(e: TuneEval, objectives: Sequence[str]) -> List[object]:
    return [e.objectives[n] / _UNITS.get(n, ("", 1.0))[1] for n in objectives]


def render_tune_result(tr: TuneResult) -> str:
    """Human-readable summary of one tuning run."""
    front = tr.front
    front_points = {e.point for e in front}
    headers = ["config", "SRAM MB", "line B", "entries"] + [
        f"{n} {_UNITS.get(n, ('', 1.0))[0]}".rstrip() for n in tr.objectives
    ] + ["note"]
    rows = []
    listed = []
    for e in tr.evaluations:
        if e.point in front_points:
            listed.append((e, "pareto"))
    best = tr.best
    for e, note in listed:
        tags = [note]
        if e.point == best.point:
            tags.append("best")
        if e.point == tr.incumbent.point:
            tags.append("fixed CELLO")
        if e.fidelity != "exact":
            tags.append(e.fidelity)
        rows.append(_knob_cells(e.point) + _objective_cells(e, tr.objectives)
                    + ["+".join(tags)])
    if tr.incumbent.point not in front_points:
        rows.append(
            _knob_cells(tr.incumbent.point)
            + _objective_cells(tr.incumbent, tr.objectives)
            + ["fixed CELLO (dominated)"]
        )
    table = render_table(
        headers, rows, precision=3,
        title=(
            f"Tuned {tr.workload} [{tr.strategy}]: "
            f"{len(front)} Pareto point(s) from {len(tr.evaluations)} "
            f"evaluation(s), {tr.n_simulations} new simulation(s)"
        ),
    )
    speedup = tr.speedup_over_incumbent()
    dram_cut = (tr.incumbent.result.dram_bytes
                / max(1, min(e.result.dram_bytes for e in tr.evaluations)))
    summary = (
        f"searched best vs fixed CELLO: {speedup:.2f}x runtime, "
        f"{dram_cut:.2f}x DRAM traffic headroom"
    )
    lines = [table, summary]
    if tr.fidelity != "exact":
        lines.append(render_fidelity_line(tr))
    return "\n".join(lines)


#: Error bound the differential harness pins the analytic model to; a
#: hybrid run whose observed error exceeds it is flagged (and the CI
#: fidelity-smoke job greps for the "within" wording).
ANALYTIC_ERROR_BOUND = 0.02


def render_fidelity_line(tr: TuneResult) -> str:
    """One greppable line summarising a reduced-fidelity run."""
    err = tr.analytic_max_rel_error
    if err is None:
        err_txt = "max analytic error n/a (no prediction re-simulated)"
    elif err <= ANALYTIC_ERROR_BOUND:
        err_txt = (f"max analytic error {err:.4%} "
                   f"(within {ANALYTIC_ERROR_BOUND:.0%} bound)")
    else:
        err_txt = (f"max analytic error {err:.4%} "
                   f"(EXCEEDS {ANALYTIC_ERROR_BOUND:.0%} bound)")
    return (
        f"fidelity: {tr.fidelity} — {tr.n_analytic} analytic-priced "
        f"evaluation(s), {tr.n_simulations} new simulation(s); {err_txt}"
    )


def tune_results_json(results: Sequence[TuneResult]) -> str:
    """JSON encoding of one or more tuning runs (round-trippable)."""
    return json.dumps([tr.to_dict() for tr in results], indent=2,
                      sort_keys=True) + "\n"
