"""Predicted-vs-simulated fidelity audit of the analytic traffic model.

Runs every (workload family representative × analytically supported
config × SRAM capacity) cell through both the closed-form model
(:mod:`repro.analytic`) and the exact schedule engine, and reports DRAM
traffic side by side with the relative error and the evaluation regime
the model used (streaming / closed-form / recurrence).

This is the human-readable companion of
``tests/test_analytic_differential.py``: the test suite *asserts* the
agreement, this report *shows* it — including the max observed error
against the 2% bound the hybrid tuner advertises (``docs/analytic.md``).
The CI fidelity-smoke job greps the summary line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analytic import AnalyticUnsupported, predict_workload_config
from ..baselines import runner
from ..hw.config import MIB, AcceleratorConfig, default_config
from ..orchestrator.spec import SweepPoint
from ..workloads.registry import resolve_workload
from .report import render_table
from .tuner_report import ANALYTIC_ERROR_BOUND

#: One representative workload per registered family (kept small: the
#: differential test sweeps far wider; this is the showable audit).
FIDELITY_WORKLOADS: Tuple[str, ...] = (
    "cg/fv1/N=1",
    "bicgstab/fv1/N=1",
    "gnn/cora",
    "resnet/conv3_x",
    "xformer/s=512/d=512",
    "gmres/fv1/m=8/N=1",
    "mg/fv1/N=1",
)

#: Every analytically supported Table IV family (cache policies are the
#: documented oracle fallback and have no prediction to audit).
FIDELITY_CONFIGS: Tuple[str, ...] = (
    "Flexagon", "FLAT", "SET", "PRELUDE-only", "CELLO",
)

#: Capacity points: the paper's default and a pressured buffer, so both
#: the closed-form and the recurrence regimes appear in the table.
FIDELITY_SRAM_BYTES: Tuple[int, ...] = (4 * MIB, 1 * MIB)


@dataclass(frozen=True)
class FidelityCell:
    """One (workload, config, SRAM) predicted-vs-simulated comparison."""

    workload: str
    config: str
    sram_bytes: int
    regime: str
    predicted_dram: int
    simulated_dram: int

    @property
    def rel_error(self) -> float:
        return (abs(self.predicted_dram - self.simulated_dram)
                / max(self.simulated_dram, 1))


def run(
    cfg: Optional[AcceleratorConfig] = None,
    workloads: Sequence[str] = FIDELITY_WORKLOADS,
    configs: Sequence[str] = FIDELITY_CONFIGS,
    srams: Sequence[int] = FIDELITY_SRAM_BYTES,
    jobs: Optional[int] = 1,
) -> Tuple[FidelityCell, ...]:
    """Evaluate the fidelity grid (simulations memoised as usual)."""
    cfg = default_config(cfg)
    if jobs is None or jobs > 1:
        from ..orchestrator.parallel import prewarm

        prewarm(
            [
                SweepPoint(w, c, cfg.with_sram(s))
                for w in workloads for c in configs for s in srams
            ],
            jobs=jobs,
        )
    cells: List[FidelityCell] = []
    for name in workloads:
        workload = resolve_workload(name)
        for config in configs:
            for sram in srams:
                point_cfg = cfg.with_sram(sram)
                try:
                    evaluation = predict_workload_config(
                        workload, config, point_cfg)
                except AnalyticUnsupported:
                    continue
                simulated = runner.run_workload_config(
                    workload, config, point_cfg)
                cells.append(FidelityCell(
                    workload=name,
                    config=config,
                    sram_bytes=sram,
                    regime=evaluation.regime,
                    predicted_dram=evaluation.result.dram_bytes,
                    simulated_dram=simulated.dram_bytes,
                ))
    return tuple(cells)


def max_rel_error(cells: Sequence[FidelityCell]) -> float:
    return max((c.rel_error for c in cells), default=0.0)


def report(cfg: Optional[AcceleratorConfig] = None,
           jobs: Optional[int] = 1) -> str:
    """Render the fidelity audit table plus the greppable summary."""
    cells = run(cfg, jobs=jobs)
    rows = [
        [
            c.workload,
            c.config,
            c.sram_bytes / MIB,
            c.regime,
            c.predicted_dram / 1e6,
            c.simulated_dram / 1e6,
            f"{c.rel_error:.4%}",
        ]
        for c in cells
    ]
    table = render_table(
        ["workload", "config", "SRAM MB", "regime",
         "predicted MB", "simulated MB", "rel error"],
        rows,
        title=(f"Analytic fidelity: {len(cells)} predicted-vs-simulated "
               "cells"),
    )
    worst = max_rel_error(cells)
    verdict = ("within" if worst <= ANALYTIC_ERROR_BOUND else "EXCEEDS")
    summary = (
        f"max analytic error {worst:.4%} ({verdict} "
        f"{ANALYTIC_ERROR_BOUND:.0%} bound) over {len(cells)} cells"
    )
    return table + "\n" + summary


def main() -> None:  # pragma: no cover
    print(report())


if __name__ == "__main__":  # pragma: no cover
    main()
