"""Multi-node scaling simulation (extends Fig. 8's analytical argument).

SCORE's scalable dataflow splits the dominant rank across nodes: each node
owns an M/nodes slab of every skewed tensor (and its rows of A), runs the
whole CG iteration locally, and exchanges only the small N×N' tensors —
partial Grams reduce, Λ/Φ broadcast.  This module simulates that plan
end-to-end: per-node CELLO execution on the slab + NoC transfer time, and
reports strong-scaling efficiency, which stays high precisely because the
NoC payload is independent of M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..baselines.cello import run_cello
from ..hw.config import AcceleratorConfig, default_config
from ..hw.noc import NocConfig
from ..workloads.cg import CgProblem, build_cg_dag
from ..workloads.matrices import MatrixSpec

#: Per-hop NoC bandwidth relative to DRAM bandwidth (links are typically
#: provisioned at a fraction of the memory system).
NOC_LINK_FRACTION = 0.5

#: Gram reductions (lines 2a, 5) and small-tensor broadcasts (Λ, Φ) per CG
#: iteration — the tensors that actually cross the NoC.
GRAMS_PER_ITER = 2
BROADCASTS_PER_ITER = 2


@dataclass(frozen=True)
class ScalingPoint:
    """One node count of the strong-scaling sweep."""

    n_nodes: int
    per_node_time_s: float
    noc_time_s: float
    total_time_s: float
    speedup: float
    efficiency: float


def _slab_spec(matrix: MatrixSpec, n_nodes: int) -> MatrixSpec:
    """One node's row slab of the sparse matrix (rows and nnz split)."""
    return MatrixSpec(
        name=f"{matrix.name}/slab{n_nodes}",
        m=max(1, matrix.m // n_nodes),
        nnz=max(1, matrix.nnz // n_nodes),
        description=f"1/{n_nodes} row slab of {matrix.name}",
    )


def noc_seconds_per_run(n: int, iterations: int, noc: NocConfig,
                        cfg: AcceleratorConfig, word_bytes: int = 4) -> float:
    """Time spent moving small tensors across the mesh for a whole run."""
    words_per_iter = (
        GRAMS_PER_ITER * n * n * noc.reduce_hops
        + BROADCASTS_PER_ITER * n * n * noc.broadcast_hops
    )
    bytes_total = words_per_iter * word_bytes * iterations
    link_bw = cfg.dram_bandwidth_bytes_per_s * NOC_LINK_FRACTION
    return bytes_total / link_bw


def simulate_cg_scaling(
    matrix: MatrixSpec,
    n: int,
    iterations: int,
    node_counts: Sequence[int],
    cfg: Optional[AcceleratorConfig] = None,
) -> Tuple[ScalingPoint, ...]:
    """Strong-scale one CG problem across ``node_counts`` nodes."""
    cfg = default_config(cfg)
    if 1 not in node_counts:
        node_counts = (1, *node_counts)
    baseline_time = None
    points = []
    for nodes in sorted(set(node_counts)):
        noc = NocConfig(n_nodes=nodes)
        slab = _slab_spec(matrix, nodes)
        dag = build_cg_dag(CgProblem(matrix=slab, n=n, iterations=iterations))
        local = run_cello(dag, cfg, workload_name=f"cg/{slab.name}")
        noc_t = 0.0 if nodes == 1 else noc_seconds_per_run(
            n, iterations, noc, cfg
        )
        total = local.time_s + noc_t
        if baseline_time is None:
            baseline_time = total
        speedup = baseline_time / total
        points.append(ScalingPoint(
            n_nodes=nodes,
            per_node_time_s=local.time_s,
            noc_time_s=noc_t,
            total_time_s=total,
            speedup=speedup,
            efficiency=speedup / nodes,
        ))
    return tuple(points)


def scaling_report(points: Sequence[ScalingPoint], title: str = "") -> str:
    from .report import render_table

    rows = [
        [
            p.n_nodes,
            p.per_node_time_s * 1e6,
            p.noc_time_s * 1e6,
            p.total_time_s * 1e6,
            p.speedup,
            p.efficiency,
        ]
        for p in points
    ]
    return render_table(
        ["nodes", "node us", "NoC us", "total us", "speedup", "efficiency"],
        rows,
        title=title or "Multi-node strong scaling (dominant-rank split)",
    )
