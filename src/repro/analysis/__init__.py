"""Analysis helpers: report rendering, capability tables, roofline."""

from .report import render_kv, render_table
from .tables import (
    BUFFER_ROWS,
    SCHEDULER_ROWS,
    BufferCapabilities,
    SchedulerCapabilities,
    buffer_capability_table,
    config_capabilities,
    scheduler_capability_table,
)
from .scaling import (
    ScalingPoint,
    noc_seconds_per_run,
    scaling_report,
    simulate_cg_scaling,
)
from .roofline import (
    REGULAR_GEMM,
    SKEWED_GEMM,
    GemmPoint,
    gemm_roofline_rows,
    result_on_roofline,
    roofline_for,
)
from .service_report import (
    render_jobs,
    render_service_stats,
    summarize_sweep_outcome,
    sweep_outcome_rows,
)
from .tuner_report import render_tune_result, tune_results_json

__all__ = [
    "render_kv",
    "render_table",
    "BUFFER_ROWS",
    "SCHEDULER_ROWS",
    "BufferCapabilities",
    "SchedulerCapabilities",
    "buffer_capability_table",
    "config_capabilities",
    "scheduler_capability_table",
    "REGULAR_GEMM",
    "SKEWED_GEMM",
    "GemmPoint",
    "gemm_roofline_rows",
    "result_on_roofline",
    "roofline_for",
    "ScalingPoint",
    "noc_seconds_per_run",
    "scaling_report",
    "simulate_cg_scaling",
    "render_tune_result",
    "tune_results_json",
    "render_jobs",
    "render_service_stats",
    "summarize_sweep_outcome",
    "sweep_outcome_rows",
]
