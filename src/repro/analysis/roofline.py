"""Roofline analysis helpers (Fig. 2 and the Fig. 12 roofline panel)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..core.intensity import Roofline, best_arithmetic_intensity
from ..hw.config import AcceleratorConfig
from ..sim.results import SimResult


@dataclass(frozen=True)
class GemmPoint:
    """One GEMM plotted on the roofline (Fig. 2)."""

    label: str
    m: int
    k: int
    n: int
    word_bytes: int = 4

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def intensity(self) -> float:
        return best_arithmetic_intensity(self.m, self.k, self.n, self.word_bytes)


#: Fig. 2's two running examples: same multiplication count, wildly
#: different intensity.
REGULAR_GEMM = GemmPoint("regular 512x512x512", 512, 512, 512)
SKEWED_GEMM = GemmPoint("skewed 524288x16x16", 524288, 16, 16)


def roofline_for(cfg: AcceleratorConfig) -> Roofline:
    return Roofline(
        peak_ops_per_s=cfg.peak_macs_per_s,
        bandwidth_bytes_per_s=cfg.dram_bandwidth_bytes_per_s,
    )


def gemm_roofline_rows(
    cfg: AcceleratorConfig,
    points: Sequence[GemmPoint] = (REGULAR_GEMM, SKEWED_GEMM),
) -> Tuple[Tuple[str, float, float, bool], ...]:
    """(label, intensity ops/B, attainable GMAC/s, memory-bound) per GEMM."""
    rl = roofline_for(cfg)
    return tuple(
        (
            p.label,
            p.intensity,
            rl.attainable(p.intensity) / 1e9,
            rl.is_memory_bound(p.intensity),
        )
        for p in points
    )


def result_on_roofline(result: SimResult, cfg: AcceleratorConfig) -> Tuple[float, float]:
    """(achieved intensity, attainable GMAC/s) of a simulation result —
    the Fig. 12 roofline panel places each configuration this way."""
    rl = roofline_for(cfg)
    ai = result.effective_intensity
    return ai, rl.attainable(ai) / 1e9 if ai != float("inf") else cfg.peak_macs_per_s / 1e9
