"""Hot-path micro-benchmarks: cache kernels, CHORD events, engines.

The simulation hot paths — the batched cache kernel, CHORD event handling
and the schedule-driven engine — are what bound every ``repro all`` cold
run.  This module times them with a small self-contained harness (no
pytest-benchmark dependency so the CLI can run it anywhere), renders a
table, and writes ``BENCH_kernels.json`` so the repo's performance
trajectory is tracked from run to run (CI uploads the file as an
artifact; ``benchmarks/bench_perf_kernels.py`` wraps the same harness
under pytest).

The headline number is the vector-vs-reference cache speedup on a
streaming trace — the rewrite this file exists to guard — expected to be
well above 10x.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..buffers.brrip import BrripPolicy
from ..buffers.cache import SetAssociativeCache
from ..buffers.lru import LruPolicy
from ..buffers.srrip import SrripPolicy
from ..chord.buffer import ChordBuffer
from ..chord.hints import ReuseHints, TensorHints
from ..hw.config import AcceleratorConfig
from ..sim.engine import CacheEngine, ScheduleEngine
from ..sim.trace import StreamSegment
from .report import render_table

#: Bumped when the benchmark definitions change incomparably.
BENCH_SCHEMA = 1

DEFAULT_OUT = "BENCH_kernels.json"

_POLICIES: Dict[str, Callable[[], object]] = {
    "lru": LruPolicy,
    "brrip": BrripPolicy,
    "srrip": SrripPolicy,
}


def _timed(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def streaming_segments(
    total_bytes: int,
    chunk: int = 4096,
    n_streams: int = 3,
    passes: int = 2,
) -> List[StreamSegment]:
    """A synthetic best-intra-op-style trace: ``n_streams`` tensors woven
    together ``chunk`` bytes at a time (one of them written), repeated
    ``passes`` times so the cache sees streaming misses *and* reuse hits.

    Stream bases are chunk-aligned like real ``AddressMap`` extents —
    unaligned bases would make consecutive chunks re-touch their shared
    boundary line, artificially capping the conflict-free batch length.
    """
    per_stream = (total_bytes // n_streams) // chunk * chunk
    bases = [i * per_stream for i in range(n_streams)]
    segments: List[StreamSegment] = []
    for _ in range(passes):
        off = 0
        while off < per_stream:
            n = min(chunk, per_stream - off)
            for i, base in enumerate(bases):
                segments.append(StreamSegment(
                    tensor=f"T{i}", start=base + off, nbytes=n,
                    is_write=(i == n_streams - 1),
                ))
            off += n
    return segments


def bench_cache_backends(policy_name: str, accesses: int,
                         line_bytes: int = 16) -> Dict[str, float]:
    """Time one streaming trace through the vector and reference backends.

    The trace totals ~``accesses`` line-granularity accesses over a
    footprint 4x the cache capacity — the streaming-with-reuse shape the
    paper's baselines simulate.  Both backends replay the identical
    segment list; their stats are asserted equal, so the speedup is for
    byte-identical work.
    """
    passes = 2
    total_bytes = accesses * line_bytes // passes
    # Footprint ~4x capacity: streaming misses dominate but the later
    # passes still find partial reuse, so both hit and fill paths run.
    unit = line_bytes * 8
    capacity = max(unit, (total_bytes // 4) // unit * unit)
    segments = streaming_segments(total_bytes, passes=passes)
    results = {}
    stats = {}
    for backend in ("vector", "reference"):
        cache = SetAssociativeCache(
            capacity, line_bytes, 8, _POLICIES[policy_name](), backend=backend
        )
        seconds = _timed(lambda: cache.access_segments(segments))
        cache.flush()
        n = cache.stats.accesses
        results[f"{backend}_s"] = seconds
        results[f"{backend}_accesses_per_s"] = n / seconds if seconds else 0.0
        stats[backend] = cache.stats.as_dict()
    if stats["vector"] != stats["reference"]:
        raise AssertionError(
            f"backend divergence in {policy_name} bench: "
            f"{stats['vector']} != {stats['reference']}"
        )
    results["accesses"] = stats["vector"]["accesses"]
    results["speedup"] = (
        results["vector_accesses_per_s"] / results["reference_accesses_per_s"]
        if results["reference_accesses_per_s"] else float("inf")
    )
    return results


def bench_chord_events(n_tensors: int, rounds: int) -> Dict[str, float]:
    """CHORD event throughput: one write + ``rounds`` reads per tensor under
    capacity pressure (RIFF steals active)."""
    hints = ReuseHints({
        f"T{i}": TensorHints(
            f"T{i}", 10_000, i,
            tuple(i + (r + 1) * n_tensors for r in range(rounds)), False,
        )
        for i in range(n_tensors)
    })
    chord = ChordBuffer(n_tensors * 4_000, hints)

    def run() -> None:
        for i in range(n_tensors):
            chord.write(f"T{i}", i)
        for r in range(rounds):
            for i in range(n_tensors):
                chord.read(f"T{i}", (r + 1) * n_tensors + i)

    seconds = _timed(run)
    events = n_tensors * (rounds + 1)
    return {
        "events": events,
        "seconds": seconds,
        "events_per_s": events / seconds if seconds else 0.0,
    }


def bench_schedule_engine(iterations: int) -> Dict[str, float]:
    """End-to-end CELLO executor latency on a CG program."""
    from ..score.scheduler import Score
    from ..workloads.cg import CgProblem, build_cg_dag
    from ..workloads.matrices import FV1

    cfg = AcceleratorConfig()
    dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=iterations))
    sched = Score(cfg).schedule(dag)
    engine = ScheduleEngine(cfg)
    seconds = _timed(lambda: engine.run(sched))
    n_ops = len(dag.ops)
    return {
        "ops": n_ops,
        "seconds": seconds,
        "ops_per_s": n_ops / seconds if seconds else 0.0,
    }


def bench_cache_engine(iterations: int) -> Dict[str, float]:
    """End-to-end cache-baseline run (trace generation + vector kernel) at
    exact granularity (g=1), the fidelity the vectorization buys back."""
    from ..workloads.cg import CgProblem, build_cg_dag
    from ..workloads.matrices import FV1

    cfg = AcceleratorConfig()
    dag = build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=iterations))
    engine = CacheEngine(cfg, LruPolicy(), granularity=1)
    out: Dict[str, float] = {}
    seconds = _timed(lambda: out.setdefault("dram", engine.run(dag).dram_bytes))
    return {"seconds": seconds, "dram_bytes": out["dram"]}


def bench_analytic_eval(evals: int, sim_evals: int,
                        batch_points: int) -> Dict[str, float]:
    """Analytic fast path vs the full simulated path, per tuner point.

    Measures what ``repro tune --fidelity hybrid`` actually buys, on
    three rungs of the same ladder:

    * **simulated** — rebuild the DAG and replay the schedule engine
      from scratch ``sim_evals`` times (``runner.clear_cache()`` between
      runs — a fresh point never hits the memo);
    * **point-wise analytic** — the compiled model, compile once,
      ``model.evaluate`` ``evals`` times (≥10k at full size so the rate
      is not single-call noise);
    * **batch analytic** — one :func:`repro.analytic.evaluate_batch`
      call over a ``batch_points``-row knob grid.

    The point-wise and batch sides price the *same* knob distribution —
    schedule toggles cycling through all eight combinations, an entries
    axis sweeping 1..512 across the no-pressure peak — so the ratio is
    apples to apples and both the closed-form broadcast and the
    vectorised capacity recurrence are on the clock.

    ``analytic_over_simulated`` and ``batch_over_pointwise`` are gated
    by ``tools/check_bench.py`` (``--min-analytic-speedup`` 100x,
    ``--min-batch-speedup`` 50x).
    """
    from dataclasses import replace

    from ..analytic import BatchKnobs, evaluate_batch, model_for
    from ..baselines import runner
    from ..baselines.configs import cello_variant_name
    from ..sim.engine import EngineOptions
    from ..workloads.registry import resolve_workload

    cfg = AcceleratorConfig()
    workload = resolve_workload("gmres/fv1/m=8/N=1")
    model = model_for(workload, "CELLO", cfg)  # compile outside the clock

    def knob_row(i: int):
        return (bool(i & 1), bool(i & 2), bool(i & 4), (i % 512) + 1)

    def run_analytic() -> None:
        for i in range(evals):
            riff, retire, swz, entries = knob_row(i)
            options = EngineOptions(use_riff=riff, explicit_retire=retire,
                                    charge_swizzle=swz)
            model.evaluate(cello_variant_name(options), options,
                           replace(cfg, chord_entries=entries))

    def run_simulated() -> None:
        for _ in range(sim_evals):
            runner.clear_cache()
            runner.run_workload_config(workload, "CELLO", cfg)

    rows = np.arange(batch_points)
    knobs = BatchKnobs.from_columns(
        batch_points,
        use_riff=(rows & 1).astype(bool),
        explicit_retire=(rows & 2).astype(bool),
        charge_swizzle=(rows & 4).astype(bool),
        chord_entries=(rows % 512) + 1,
        capacity_bytes=cfg.chord_data_bytes,
    )
    evaluate_batch(model, knobs)  # warm the cached batch program

    analytic_s = _timed(run_analytic)
    simulated_s = _timed(run_simulated)
    batch_s = _timed(lambda: evaluate_batch(model, knobs))
    runner.clear_cache()
    analytic_rate = evals / analytic_s if analytic_s else 0.0
    simulated_rate = sim_evals / simulated_s if simulated_s else 0.0
    batch_rate = batch_points / batch_s if batch_s else 0.0
    return {
        "evals": evals,
        "sim_evals": sim_evals,
        "batch_points": batch_points,
        "analytic_s": analytic_s,
        "simulated_s": simulated_s,
        "batch_s": batch_s,
        "analytic_evals_per_s": analytic_rate,
        "simulated_evals_per_s": simulated_rate,
        "batch_evals_per_s": batch_rate,
        "analytic_over_simulated": (
            analytic_rate / simulated_rate if simulated_rate
            else float("inf")
        ),
        "batch_over_pointwise": (
            batch_rate / analytic_rate if analytic_rate else float("inf")
        ),
    }


def run_kernel_bench(quick: bool = False) -> Dict:
    """Run every hot-path bench; ``quick`` shrinks workloads ~10x for CI."""
    cache_accesses = 200_000 if quick else 2_000_000
    results: Dict[str, Dict[str, float]] = {}
    for name in _POLICIES:
        results[f"cache_{name}"] = bench_cache_backends(name, cache_accesses)
    results["chord_events"] = bench_chord_events(
        n_tensors=64, rounds=20 if quick else 100
    )
    results["schedule_engine"] = bench_schedule_engine(
        iterations=20 if quick else 100
    )
    results["cache_engine_g1"] = bench_cache_engine(
        iterations=2 if quick else 8
    )
    results["analytic_eval"] = bench_analytic_eval(
        evals=1_000 if quick else 10_000,
        sim_evals=3 if quick else 20,
        # One vectorised call over 100k points costs ~30ms, so quick mode
        # keeps the full batch: shrinking it would only deflate the
        # amortisation ratio the CI gate checks.
        batch_points=100_000,
    )
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
    }


def write_bench_json(report: Dict, path: Optional[str] = None) -> Path:
    out = Path(path or DEFAULT_OUT)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out


def render_bench(report: Dict) -> str:
    rows = []
    res = report["results"]
    for name in sorted(k for k in res if k.startswith("cache_") and "speedup" in res[k]):
        r = res[name]
        rows.append([
            name, r["accesses"] / 1e6,
            r["reference_accesses_per_s"] / 1e6,
            r["vector_accesses_per_s"] / 1e6,
            r["speedup"],
        ])
    table = render_table(
        ["bench", "M accesses", "ref Macc/s", "vec Macc/s", "speedup"],
        rows,
        title=f"Cache kernel backends ({'quick' if report['quick'] else 'full'})",
    )
    extra = [
        "",
        f"chord events:    {res['chord_events']['events_per_s'] / 1e6:.2f} M events/s",
        f"schedule engine: {res['schedule_engine']['ops_per_s']:.0f} ops/s "
        f"({res['schedule_engine']['seconds'] * 1e3:.1f} ms)",
        f"cache engine g=1: {res['cache_engine_g1']['seconds'] * 1e3:.1f} ms "
        f"({res['cache_engine_g1']['dram_bytes'] / 1e6:.1f} MB DRAM)",
        f"analytic eval:   {res['analytic_eval']['analytic_evals_per_s']:.0f}"
        f" evals/s vs {res['analytic_eval']['simulated_evals_per_s']:.1f} "
        f"simulated — {res['analytic_eval']['analytic_over_simulated']:.0f}x",
        f"batch analytic:  {res['analytic_eval']['batch_evals_per_s']:.0f}"
        f" evals/s over {res['analytic_eval']['batch_points']:.0f} points "
        f"— {res['analytic_eval']['batch_over_pointwise']:.0f}x point-wise",
    ]
    return table + "\n" + "\n".join(extra)
