"""Capability matrices — Tables II and III, generated from the code.

Rather than hard-coding the paper's tick marks, the scheduler matrix is
derived from which mechanisms each configuration's scheduler actually
enables in this library (so the table stays truthful as code evolves), and
the buffer matrix from the properties of the buffer model classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .report import render_table


@dataclass(frozen=True)
class SchedulerCapabilities:
    """One Table II row."""

    name: str
    intra_op_reuse: bool
    parallel_multicast: bool
    inter_op_pipelining: bool
    delayed_hold: bool
    delayed_writeback: bool
    swizzle_minimization: bool
    part_implicit_buffer: bool
    scope: str


SCHEDULER_ROWS: Tuple[SchedulerCapabilities, ...] = (
    SchedulerCapabilities(
        "MAESTRO/Timeloop/CoSA/GAMMA/... (op-by-op)",
        True, False, False, False, False, False, False,
        "Just within-op reuse.",
    ),
    SchedulerCapabilities(
        "FusedCNN/FLAT/FlashAttention/ISOSceles/TileFlow/OMEGA",
        True, False, True, False, False, False, False,
        "Adjacent ops only, no delayed dependency.",
    ),
    SchedulerCapabilities(
        "SET/TANGRAM",
        True, True, True, True, False, False, False,
        "Adjacent ops + delayed hold.",
    ),
    SchedulerCapabilities(
        "SCORE (this work)",
        True, True, True, True, True, True, True,
        "Adjacent ops + delayed hold and writeback.",
    ),
)


def scheduler_capability_table() -> str:
    """Table II as text."""
    headers = [
        "Scheduler", "Intra-op", "Multicast", "Pipelining",
        "Del.hold", "Del.writeback", "Swizzle-min", "Part-implicit", "Scope",
    ]
    rows = [
        [
            r.name,
            r.intra_op_reuse, r.parallel_multicast, r.inter_op_pipelining,
            r.delayed_hold, r.delayed_writeback, r.swizzle_minimization,
            r.part_implicit_buffer, r.scope,
        ]
        for r in SCHEDULER_ROWS
    ]
    return render_table(headers, rows, title="Table II: scheduler capabilities")


def config_capabilities(config: str) -> SchedulerCapabilities:
    """Capabilities of one Table IV configuration as modelled here.

    Derived from the ScoreOptions each baseline module actually passes —
    these are the mechanisms the simulation credits, keeping the matrix
    honest.
    """
    mapping: Dict[str, SchedulerCapabilities] = {
        "Flexagon": SCHEDULER_ROWS[0],
        "Flex+LRU": SCHEDULER_ROWS[0],
        "Flex+BRRIP": SCHEDULER_ROWS[0],
        "FLAT": SCHEDULER_ROWS[1],
        "SET": SCHEDULER_ROWS[2],
        "PRELUDE-only": SCHEDULER_ROWS[0],
        "CELLO": SCHEDULER_ROWS[3],
    }
    try:
        return mapping[config]
    except KeyError:
        raise KeyError(f"unknown configuration {config!r}") from None


@dataclass(frozen=True)
class BufferCapabilities:
    """One Table III row."""

    name: str
    exposure: str            # implicit / explicit / hybrid
    granularity: str         # line / tile / object
    placement_policy: str
    online_policy: bool
    hw_overhead: str         # lowest / low / highest
    sw_burden: str           # lowest / low / high / highest
    remarks: str


BUFFER_ROWS: Tuple[BufferCapabilities, ...] = (
    BufferCapabilities(
        "Cache", "implicit", "line", "fully agnostic", True, "highest", "lowest",
        "Workload-agnostic, myopic line-level replacement, per-line tags.",
    ),
    BufferCapabilities(
        "Scratchpad", "explicit", "line", "fully controlled", False, "lowest", "highest",
        "Programmer owns the local address map; offline programming.",
    ),
    BufferCapabilities(
        "Buffets", "explicit", "tile (credit)", "fully controlled", False, "low", "high",
        "Credit scoreboarding eases synchronisation over scratchpads.",
    ),
    BufferCapabilities(
        "Tailors", "hybrid", "tile + word", "controlled except overbooked", True, "low", "high",
        "Buffets + implicit word-level replacement of overbooked tails.",
    ),
    BufferCapabilities(
        "CHORD (this work)", "hybrid", "object", "object-aware, coarse control", True, "low", "low",
        "Cycle-level implicit replacement; needs only tensor address ranges "
        "+ DAG reuse metadata.",
    ),
)


def buffer_capability_table() -> str:
    """Table III as text."""
    headers = [
        "Mechanism", "Exposure", "Granularity", "Placement policy",
        "Online", "HW overhead", "SW burden", "Remarks",
    ]
    rows = [
        [
            r.name, r.exposure, r.granularity, r.placement_policy,
            r.online_policy, r.hw_overhead, r.sw_burden, r.remarks,
        ]
        for r in BUFFER_ROWS
    ]
    return render_table(headers, rows, title="Table III: buffer mechanisms")
