"""Plain-text table rendering for experiment reports.

Every experiment module prints the same rows/series its paper figure
shows; this renderer keeps those reports aligned and diff-friendly
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell, precision: int) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1e5 or (abs(cell) < 1e-3 and cell != 0):
            return f"{cell:.{precision}e}"
        return f"{cell:.{precision}f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    srows: List[List[str]] = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple], title: Optional[str] = None) -> str:
    """Render key/value pairs, one per line."""
    width = max((len(str(k)) for k, _ in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs:
        lines.append(f"{str(k).ljust(width)} : {v}")
    return "\n".join(lines)
