"""Numeric block Conjugate Gradient — Algorithm 1, executable.

Block CG runs ``N`` right-hand sides / initial guesses simultaneously
(Eq. 2), turning every vector recurrence into a skewed M×N GEMM — the
workload shape the whole paper is about.  For N = 1 it reduces exactly to
classic CG (Λ = α, Φ = β).

Small N×N systems are solved with ``np.linalg.solve`` rather than explicit
inverses (same operation count, better conditioning); the DAG builder still
models them as the paper's ``inv`` nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp


@dataclass
class BlockCgResult:
    """Outcome of a block-CG solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("inf")


def block_cg(
    a: sp.spmatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 1000,
    tol: float = 1e-8,
) -> BlockCgResult:
    """Solve ``A X = B`` for SPD sparse ``A`` with block width ``B.shape[1]``.

    Follows Algorithm 1 line by line; the convergence test is the paper's
    ``all(diag(Γ)) ≤ ε`` with ε scaled by the initial residual.
    """
    a = a.tocsr()
    m = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("A must be square")
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if b.shape[0] != m:
        b = b.T
    if b.shape[0] != m:
        raise ValueError(f"B must have {m} rows, got {b.shape}")
    n = b.shape[1]
    x = np.zeros((m, n)) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    if x.shape != (m, n):
        raise ValueError(f"X0 must be {(m, n)}, got {x.shape}")

    r = b - a @ x                    # R = B - A X
    gamma = r.T @ r                  # Γ = Rᵀ R
    p = r.copy()                     # P = R
    eps = tol * max(1.0, float(np.max(np.diag(gamma))))
    history: List[float] = [float(np.sqrt(np.max(np.diag(gamma))))]

    for it in range(max_iterations):
        s = a @ p                                        # line 1 (SpMM)
        delta = p.T @ s                                  # line 2: Δ = Pᵀ S
        lam = np.linalg.solve(delta, gamma)              # Λ = Δ⁻¹ Γ
        x += p @ lam                                     # line 3
        r -= s @ lam                                     # line 4
        gamma_prev = gamma
        gamma = r.T @ r                                  # line 5
        history.append(float(np.sqrt(np.max(np.abs(np.diag(gamma))))))
        if np.all(np.abs(np.diag(gamma)) <= eps):        # convergence check
            return BlockCgResult(x=x, iterations=it + 1, converged=True,
                                 residual_history=history)
        phi = np.linalg.solve(gamma_prev, gamma)         # line 6: Φ
        p = r + p @ phi                                  # line 7
    return BlockCgResult(x=x, iterations=max_iterations, converged=False,
                         residual_history=history)


def classic_cg(
    a: sp.spmatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 1000,
    tol: float = 1e-8,
) -> BlockCgResult:
    """Classic single-vector CG — block CG with N = 1 (cross-check)."""
    b = np.asarray(b, dtype=np.float64).reshape(-1, 1)
    x0r = None if x0 is None else np.asarray(x0, dtype=np.float64).reshape(-1, 1)
    res = block_cg(a, b, x0=x0r, max_iterations=max_iterations, tol=tol)
    return BlockCgResult(
        x=res.x.ravel(),
        iterations=res.iterations,
        converged=res.converged,
        residual_history=res.residual_history,
    )
