"""Executable numeric solvers validating the workload DAGs."""

from .blockcg import BlockCgResult, block_cg, classic_cg
from .bicgstab import BiCgStabResult, bicgstab, block_bicgstab
from .reference import (
    CG_SEMANTICS,
    GNN_SEMANTICS,
    einsum_expr,
    execute_cg_dag,
    execute_dag,
)

__all__ = [
    "BlockCgResult",
    "block_cg",
    "classic_cg",
    "BiCgStabResult",
    "bicgstab",
    "block_bicgstab",
    "CG_SEMANTICS",
    "GNN_SEMANTICS",
    "einsum_expr",
    "execute_cg_dag",
    "execute_dag",
]
