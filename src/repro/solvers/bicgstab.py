"""Numeric BiCGStab (van der Vorst [38]) — the Fig. 13 PDE solver.

Column-wise block variant: each right-hand side runs the scalar recurrence
independently (the DAG builder fuses them into skewed M×N tensor ops; the
numerics are identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
import scipy.sparse as sp


@dataclass
class BiCgStabResult:
    x: np.ndarray
    iterations: int
    converged: bool
    residual_history: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("inf")


def bicgstab(
    a: sp.spmatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    max_iterations: int = 1000,
    tol: float = 1e-8,
) -> BiCgStabResult:
    """Solve ``A x = b`` (A need not be symmetric)."""
    a = a.tocsr()
    m = a.shape[0]
    b = np.asarray(b, dtype=np.float64).ravel()
    if b.size != m:
        raise ValueError(f"b must have {m} entries")
    x = np.zeros(m) if x0 is None else np.array(x0, dtype=np.float64, copy=True).ravel()

    r = b - a @ x
    r0 = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(m)
    p = np.zeros(m)
    bnorm = max(float(np.linalg.norm(b)), 1e-300)
    history: List[float] = [float(np.linalg.norm(r)) / bnorm]

    for it in range(max_iterations):
        rho_new = float(r0 @ r)
        if abs(rho_new) < 1e-300:
            return BiCgStabResult(x=x, iterations=it, converged=False,
                                  residual_history=history)
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        v = a @ p
        denom = float(r0 @ v)
        if abs(denom) < 1e-300:
            return BiCgStabResult(x=x, iterations=it, converged=False,
                                  residual_history=history)
        alpha = rho / denom
        s = r - alpha * v
        if np.linalg.norm(s) / bnorm < tol:
            x += alpha * p
            history.append(float(np.linalg.norm(s)) / bnorm)
            return BiCgStabResult(x=x, iterations=it + 1, converged=True,
                                  residual_history=history)
        t = a @ s
        tt = float(t @ t)
        omega = float(t @ s) / tt if tt > 0 else 0.0
        x += alpha * p + omega * s
        r = s - omega * t
        history.append(float(np.linalg.norm(r)) / bnorm)
        if history[-1] < tol:
            return BiCgStabResult(x=x, iterations=it + 1, converged=True,
                                  residual_history=history)
        if omega == 0.0:
            return BiCgStabResult(x=x, iterations=it + 1, converged=False,
                                  residual_history=history)
    return BiCgStabResult(x=x, iterations=max_iterations, converged=False,
                          residual_history=history)


def block_bicgstab(
    a: sp.spmatrix,
    b: np.ndarray,
    max_iterations: int = 1000,
    tol: float = 1e-8,
) -> BiCgStabResult:
    """Column-wise block BiCGStab: solve each RHS column independently."""
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if b.shape[0] != a.shape[0]:
        b = b.T
    cols = []
    iters = 0
    conv = True
    hist: List[float] = []
    for j in range(b.shape[1]):
        res = bicgstab(a, b[:, j], max_iterations=max_iterations, tol=tol)
        cols.append(res.x)
        iters = max(iters, res.iterations)
        conv = conv and res.converged
        if len(res.residual_history) > len(hist):
            hist = res.residual_history
    return BiCgStabResult(
        x=np.stack(cols, axis=1),
        iterations=iters,
        converged=conv,
        residual_history=hist,
    )
