"""Reference executor: run a tensor DAG numerically.

Validates that the DAG builders wire exactly the computation the paper's
Algorithm 1 (and the GNN/ResNet blocks) perform: executing the CG DAG over
concrete arrays must reproduce :func:`repro.solvers.blockcg.block_cg`
bit-for-bit (same floating-point operation order).

Generic MAC ops execute via ``np.einsum`` derived from their rank
bindings; INVERSE ops solve the small system; workload-specific semantics
(the CG element-wise updates, the SpMM over a scipy matrix) dispatch on op
name prefixes.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..core.dag import TensorDag
from ..core.einsum import EinsumOp, OpKind

Array = np.ndarray
OpSemantics = Callable[[Sequence[np.ndarray], EinsumOp], np.ndarray]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def einsum_expr(op: EinsumOp) -> str:
    """Build the ``np.einsum`` subscript string from the op's bindings."""
    symbol: Dict[str, str] = {}

    def sym(rank: str) -> str:
        if rank not in symbol:
            if len(symbol) >= len(_LETTERS):
                raise ValueError("too many distinct ranks for einsum letters")
            symbol[rank] = _LETTERS[len(symbol)]
        return symbol[rank]

    ins = ",".join("".join(sym(r.name) for r in t.ranks) for t in op.inputs)
    out = "".join(sym(r.name) for r in op.output.ranks)
    return f"{ins}->{out}"


def _exec_mac(arrays: Sequence[np.ndarray], op: EinsumOp) -> np.ndarray:
    return np.einsum(einsum_expr(op), *arrays)


def _exec_inverse(arrays: Sequence[np.ndarray], op: EinsumOp) -> np.ndarray:
    """INVERSE nodes: out = inv(in0) @ in1 (solved, not inverted)."""
    if len(arrays) != 2:
        raise ValueError(f"inverse op {op.name!r} needs two inputs")
    return np.linalg.solve(arrays[0], arrays[1])


# -- CG-specific semantics (element-wise updates and the sparse MAC) -----------

def _cg_spmm(arrays: Sequence[np.ndarray], op: EinsumOp) -> np.ndarray:
    a, p = arrays
    return a @ p


def _cg_xupd(arrays: Sequence[np.ndarray], op: EinsumOp) -> np.ndarray:
    x, p, lam = arrays
    return x + p @ lam


def _cg_rupd(arrays: Sequence[np.ndarray], op: EinsumOp) -> np.ndarray:
    r, s, lam = arrays
    return r - s @ lam


def _cg_gram(arrays: Sequence[np.ndarray], op: EinsumOp) -> np.ndarray:
    (r,) = arrays
    return r.T @ r


def _cg_pupd(arrays: Sequence[np.ndarray], op: EinsumOp) -> np.ndarray:
    r, p, phi = arrays
    return r + p @ phi


CG_SEMANTICS: Dict[str, OpSemantics] = {
    "1:": _cg_spmm,
    "3:": _cg_xupd,
    "4:": _cg_rupd,
    "5:": _cg_gram,
    "7:": _cg_pupd,
}

GNN_SEMANTICS: Dict[str, OpSemantics] = {
    "agg@": _cg_spmm,  # Â @ X: same sparse-matmul shape
}


def execute_dag(
    dag: TensorDag,
    inputs: Mapping[str, object],
    semantics: Optional[Mapping[str, OpSemantics]] = None,
) -> Dict[str, np.ndarray]:
    """Execute ``dag`` in program order over concrete arrays.

    ``inputs`` provides program-input tensors (scipy sparse allowed where a
    prefix semantic consumes it).  ``semantics`` maps op-name *prefixes* to
    custom callables; MAC/INVERSE ops without a matching prefix execute
    generically.  Returns all produced tensors by name.
    """
    semantics = dict(semantics or {})
    values: Dict[str, object] = dict(inputs)
    for name in dag.program_inputs():
        if name not in values:
            raise KeyError(f"missing program input {name!r}")
    for op in dag.ops:
        arrays = []
        for t in op.inputs:
            if t.name not in values:
                raise KeyError(f"op {op.name!r}: input {t.name!r} not computed yet")
            arrays.append(values[t.name])
        fn: Optional[OpSemantics] = None
        for prefix, cand in semantics.items():
            if op.name.startswith(prefix):
                fn = cand
                break
        if fn is None:
            if op.kind is OpKind.TENSOR_MAC:
                fn = _exec_mac
            elif op.kind is OpKind.INVERSE:
                fn = _exec_inverse
            else:
                raise ValueError(
                    f"op {op.name!r} is {op.kind.value} and has no semantics; "
                    "provide a prefix override"
                )
        result = fn(arrays, op)  # type: ignore[arg-type]
        expected = dag.tensor(op.output.name).shape
        if tuple(np.shape(result)) != tuple(expected):
            raise ValueError(
                f"op {op.name!r} produced shape {np.shape(result)}, "
                f"spec says {expected}"
            )
        values[op.output.name] = result
    return {
        k: v for k, v in values.items()
        if isinstance(v, np.ndarray) and dag.producer_of(k) is not None
    }


def execute_cg_dag(
    dag: TensorDag,
    a: sp.spmatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Execute a CG DAG built by :func:`repro.workloads.cg.build_cg_dag`.

    Derives the program inputs (P@0, R@0, X@0, Γ@0) from A, B, X0 exactly
    as Algorithm 1's prologue does, then runs the DAG.
    """
    a = a.tocsr()
    m = a.shape[0]
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if b.shape[0] != m:
        b = b.T
    n = b.shape[1]
    x = np.zeros((m, n)) if x0 is None else np.asarray(x0, dtype=np.float64)
    r = b - a @ x
    gamma = r.T @ r
    inputs = {
        "A": a,
        "P@0": r.copy(),
        "R@0": r.copy(),
        "X@0": x.copy(),
        "Gamma@0": gamma,
    }
    return execute_dag(dag, inputs, semantics=CG_SEMANTICS)
