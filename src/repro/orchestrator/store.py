"""Persistent on-disk result store for simulation sweeps.

Simulated DRAM traffic is expensive to produce and tiny to keep: one
:class:`~repro.sim.results.SimResult` is a handful of integers.  The store
keeps every result ever simulated as one JSON line under a cache
directory (``~/.cache/repro`` by default, overridable via the
``REPRO_CACHE_DIR`` environment variable or ``--cache-dir``), keyed by the
runner's traffic key plus a schema version.  Repeat invocations of
``python -m repro`` then replay from disk instead of re-simulating.

Records whose schema version differs from the reader's are ignored on
load, so bumping :data:`SCHEMA_VERSION` invalidates stale caches without
any migration machinery.

The store is safe for **concurrent writers** — threads inside one
process (the service daemon simulates batches and tune jobs on worker
threads) and independent processes sharing one cache directory (several
CLI invocations, or a CLI run racing a daemon).  Every append is a
single ``O_APPEND`` ``write(2)`` of one complete line, so lines from
concurrent writers interleave whole, never torn; racing writers may
duplicate a key, which :meth:`ResultStore._load` resolves
first-record-wins (simulations are deterministic, so duplicates carry
identical results — the rule only pins which byte range is live).
"""

from __future__ import annotations

import json
import os
import sys
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..hw.config import AcceleratorConfig
from ..sim.results import SimResult

#: Bump whenever simulator semantics change in a way that alters traffic
#: for an unchanged key — every cached record of an older version is then
#: treated as missing.
#: v2: auto_granularity target raised 2M -> 20M (vectorized cache kernel),
#: so cache-baseline traffic at default granularity is finer-grained.
SCHEMA_VERSION = 2

#: File names inside the cache directory.
RESULTS_FILE = "results.jsonl"
STATS_FILE = "stats.json"


def result_key(
    config: str,
    workload_name: str,
    cfg: AcceleratorConfig,
    cache_granularity: Optional[int],
) -> Tuple:
    """Canonical memoisation key for one simulated traffic point.

    DRAM bandwidth is deliberately absent: traffic is bandwidth-independent
    and results are re-timed per bandwidth point (see
    :mod:`repro.baselines.runner`).
    """
    return (
        config,
        workload_name,
        cfg.sram_bytes,
        cfg.line_bytes,
        cfg.cache_associativity,
        cfg.chord_entries,
        cfg.pipeline_fraction,
        cfg.rf_bytes,
        cache_granularity,
    )


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultStore:
    """Write-through JSON-lines store of :class:`SimResult` records.

    The whole file is loaded into memory on open (records are tiny), gets
    are served from the in-memory index, and puts append one line — so a
    store survives crashes at any point with at most the in-flight record
    lost.  ``hits``/``misses``/``simulations`` count this process's
    activity; :meth:`save_stats` persists them for ``repro cache stat``.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 schema_version: int = SCHEMA_VERSION) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.path = self.directory / RESULTS_FILE
        self.stats_path = self.directory / STATS_FILE
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.simulations = 0
        self.stale = 0          # records skipped on load (schema mismatch)
        self.duplicates = 0     # records skipped on load (key already seen)
        self.corrupt = 0        # records skipped on load (not valid JSON)
        self._warned_corrupt = 0
        self._index: Dict[str, SimResult] = {}
        self._write_failed = False
        self._lock = threading.RLock()
        with self._lock:
            self._load()

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def key_str(key: Tuple) -> str:
        """Stable string form of a traffic-key tuple."""
        return json.dumps(list(key), separators=(",", ":"))

    # -- persistence -----------------------------------------------------------

    def _load(self) -> None:
        """Initial scan of the on-disk file (caller holds the lock)."""
        self.stale, self.duplicates, self.corrupt = \
            self._scan_into(self._index)
        self._warn_corrupt()

    def _scan_into(self, index: Dict[str, SimResult]
                   ) -> Tuple[int, int, int]:
        """Scan the file into ``index``; returns (stale, duplicates,
        corrupt).

        Duplicate keys — concurrent writers racing the same point — keep
        the **first** record; later copies only count.  Undecodable
        lines are skipped but *counted*: exactly one torn final line is
        expected after an interrupted writer, so a growing corrupt count
        is a store-health signal (bad disk, truncation, foreign writer),
        not routine noise.
        """
        stale = duplicates = corrupt = 0
        try:
            fh = self.path.open("r", encoding="utf-8")
        except OSError:
            return 0, 0, 0  # missing or unreadable: behave as empty
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if record.get("v") != self.schema_version:
                    stale += 1
                    continue
                ks = self.key_str(record["key"])
                if ks in index:
                    duplicates += 1
                    continue
                index[ks] = SimResult.from_dict(record["result"])
        return stale, duplicates, corrupt

    def _warn_corrupt(self) -> None:
        """Warn (once per growth) when undecodable records accumulate."""
        if self.corrupt > self._warned_corrupt:
            print(f"repro: result store {self.path} has {self.corrupt} "
                  "corrupt (undecodable) record(s); intact records were "
                  "kept", file=sys.stderr)
            self._warned_corrupt = self.corrupt

    def reload(self) -> int:
        """Re-scan the file, merging records other processes appended since
        open; returns how many new keys appeared.  In-memory entries that
        never reached disk (unwritable store) are kept.  The rebuilt index
        replaces the live one in a single reference swap, so lock-free
        readers (``len``, ``in``, :meth:`workload_counts`) always see a
        complete snapshot — old or new, never half-scanned.  The O(file)
        scan itself runs *outside* the lock so concurrent ``get``/``put``
        (the daemon's event loop and simulation threads) never stall on a
        long rescan; entries they add mid-scan survive via the merge."""
        fresh: Dict[str, SimResult] = {}
        stale, duplicates, corrupt = self._scan_into(fresh)
        with self._lock:
            before = len(self._index)
            for ks, result in self._index.items():
                fresh.setdefault(ks, result)
            self._index = fresh
            self.stale, self.duplicates, self.corrupt = \
                stale, duplicates, corrupt
            self._warn_corrupt()
            return len(self._index) - before

    def get(self, key: Tuple) -> Optional[SimResult]:
        with self._lock:  # counters are read-modify-write; threads race
            result = self._index.get(self.key_str(key))
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
            return result

    def put(self, key: Tuple, result: SimResult) -> None:
        ks = self.key_str(key)
        with self._lock:
            if ks in self._index:
                return
            self._index[ks] = result
            if self._write_failed:
                return
            record = {"v": self.schema_version, "key": json.loads(ks),
                      "result": result.to_dict()}
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._append_line(json.dumps(record, separators=(",", ":")))
            except OSError as exc:
                # The store is an optimisation: an unwritable cache location
                # degrades to in-memory-only instead of aborting the run.
                self._write_failed = True
                print(f"repro: result store unwritable ({exc}); "
                      "continuing without persistence", file=sys.stderr)

    def _append_line(self, line: str) -> None:
        """Append one record as a single ``O_APPEND`` ``write(2)`` call.

        POSIX appends of one buffer are atomic with respect to other
        appenders on local filesystems, so concurrent CLI processes and
        daemon threads can share a store file without torn lines.  A
        short write (e.g. disk full) is completed in a loop; if writing
        fails mid-record, a best-effort lone newline seals the fragment
        so the *next* writer's line cannot concatenate onto it — the
        fragment itself is then skipped as a torn line on load.
        """
        payload = (line + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            view = memoryview(payload)
            try:
                while view:
                    view = view[os.write(fd, view):]
            except OSError:
                if len(view) != len(payload):  # partial record on disk
                    try:
                        os.write(fd, b"\n")
                    except OSError:
                        pass
                raise
        finally:
            os.close(fd)

    def __contains__(self, key: Tuple) -> bool:
        return self.key_str(key) in self._index

    def __len__(self) -> int:
        return len(self._index)

    def clear(self) -> int:
        """Delete the on-disk store; returns how many records were dropped."""
        with self._lock:
            dropped = len(self._index) + self.stale
            self._index.clear()
            self.hits = self.misses = self.simulations = 0
            self.stale = self.duplicates = self.corrupt = 0
            self._warned_corrupt = 0
            for p in (self.path, self.stats_path):
                try:
                    p.unlink()
                except OSError:
                    pass
            return dropped

    def workload_counts(self) -> Dict[str, int]:
        """Entries per workload name (key position 1 of every traffic key),
        sorted by name — what the service has warmed, per workload."""
        counts: Dict[str, int] = {}
        for ks in list(self._index):
            key = json.loads(ks)
            workload = str(key[1]) if len(key) > 1 else "?"
            counts[workload] = counts.get(workload, 0) + 1
        return dict(sorted(counts.items()))

    # -- stats -----------------------------------------------------------------

    def save_stats(self) -> None:
        """Persist this run's counters (read back by ``repro cache stat``)."""
        previous = self.load_stats()
        cumulative = previous.get("cumulative", {})
        stats = {
            "schema_version": self.schema_version,
            "last_run": {
                "hits": self.hits,
                "misses": self.misses,
                "simulations": self.simulations,
            },
            "cumulative": {
                "hits": cumulative.get("hits", 0) + self.hits,
                "misses": cumulative.get("misses", 0) + self.misses,
                "simulations": cumulative.get("simulations", 0) + self.simulations,
            },
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.stats_path.write_text(json.dumps(stats, indent=2) + "\n",
                                       encoding="utf-8")
        except OSError:
            pass  # same degradation as put(): stats are best-effort

    def load_stats(self) -> Dict:
        try:
            return json.loads(self.stats_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}

    def describe(self) -> str:
        """Human-readable summary for ``repro cache stat``."""
        size = self.path.stat().st_size if self.path.exists() else 0
        skipped = []
        if self.stale:
            skipped.append(f"+{self.stale} stale-schema")
        if self.duplicates:
            skipped.append(f"+{self.duplicates} duplicate")
        if self.corrupt:
            skipped.append(f"+{self.corrupt} corrupt")
        lines = [
            f"cache dir:      {self.directory}",
            f"schema version: {self.schema_version}",
            f"entries:        {len(self)}"
            + (f" ({', '.join(skipped)} records ignored)" if skipped else ""),
            f"store size:     {size} bytes",
        ]
        for workload, count in self.workload_counts().items():
            lines.append(f"  {workload:30s} {count} entr"
                         + ("y" if count == 1 else "ies"))
        stats = self.load_stats()
        last = stats.get("last_run")
        if last is not None:
            lines.append(
                "last run:       "
                f"{last.get('hits', 0)} hits, {last.get('misses', 0)} misses, "
                f"{last.get('simulations', 0)} simulations"
            )
        total = stats.get("cumulative")
        if total is not None:
            lines.append(
                "cumulative:     "
                f"{total.get('hits', 0)} hits, {total.get('misses', 0)} misses, "
                f"{total.get('simulations', 0)} simulations"
            )
        return "\n".join(lines)
