"""Experiment orchestration: declarative sweeps, parallel execution, and a
persistent result store.

The paper's evaluation is a large (workload × configuration × SRAM ×
bandwidth) sweep; this package turns that from nested serial loops into
infrastructure:

* :class:`~repro.orchestrator.spec.SweepSpec` /
  :class:`~repro.orchestrator.spec.SweepPoint` — declare a sweep as data;
* :mod:`~repro.orchestrator.parallel` — fan points out over a process
  pool with deterministic ordering and graceful serial fallback;
* :class:`~repro.orchestrator.store.ResultStore` — JSON-lines on-disk
  cache keyed by traffic key + schema version, so repeat runs replay
  instead of re-simulating.

Quickstart::

    from repro.orchestrator import ResultStore, SweepSpec, run_sweep
    from repro.baselines import runner

    runner.set_store(ResultStore())          # persistent cache (optional)
    spec = SweepSpec(workloads=("cg/*",), configs=("Flexagon", "CELLO"))
    results = run_sweep(spec, jobs=4)
"""

from .parallel import (
    OrchestratorPool,
    default_jobs,
    get_shared_pool,
    prewarm,
    run_points,
    run_sweep,
    set_shared_pool,
)
from .spec import SweepPoint, SweepSpec
from .store import SCHEMA_VERSION, ResultStore, default_cache_dir, result_key

__all__ = [
    "SCHEMA_VERSION",
    "OrchestratorPool",
    "ResultStore",
    "SweepPoint",
    "SweepSpec",
    "default_cache_dir",
    "default_jobs",
    "get_shared_pool",
    "prewarm",
    "result_key",
    "run_points",
    "run_sweep",
    "set_shared_pool",
]
