"""Parallel sweep execution over a process pool.

The simulators are pure Python and CPU-bound, so sweeps parallelise
across processes, not threads.  Workers receive only picklable payloads
— (workload *name*, config name, :class:`AcceleratorConfig`, granularity)
— rebuild the DAG via
:func:`repro.workloads.registry.resolve_workload`, and ship the finished
:class:`SimResult` back as a plain dict.

Two guarantees:

* **Determinism** — results are returned in submission order and the
  caller-visible outputs are always assembled serially from the warm
  cache, so ``jobs=N`` is byte-identical to ``jobs=1``.
* **Graceful fallback** — any failure to parallelise (no ``fork``/
  semaphore support in the sandbox, unpicklable payload, broken pool)
  degrades to the serial path rather than erroring.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines import runner
from ..baselines.configs import run_config
from ..hw.config import AcceleratorConfig
from ..sim.results import SimResult
from ..workloads.registry import Workload, is_resolvable, resolve_workload
from .spec import SweepPoint, SweepSpec

#: Payload shipped to a worker: everything needed to rebuild + simulate.
_Payload = Tuple[str, str, AcceleratorConfig, Optional[int]]


def default_jobs() -> int:
    return os.cpu_count() or 1


def _simulate_payload(payload: _Payload) -> Dict[str, object]:
    """Worker entry point: resolve, build, simulate, encode.

    Module-level (picklable) by construction; runs in the worker process.
    """
    name, config, cfg, granularity = payload
    workload = resolve_workload(name)
    result = run_config(
        config, workload.build(), cfg,
        workload_name=workload.name,
        cache_granularity=granularity,
    )
    return result.to_dict()


def _resolvable(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Points whose workload names round-trip through the registry."""
    return [p for p in points if is_resolvable(p.workload)]


def prewarm(points: Sequence[SweepPoint], jobs: Optional[int] = None) -> int:
    """Simulate every uncached point, ``jobs`` wide; returns #simulated.

    Results land in the runner's cache tiers (process dict + persistent
    store when installed), so subsequent serial code replays them.
    Unresolvable workload names are skipped — their owner still holds the
    real :class:`Workload` object and will simulate lazily in-process.
    """
    jobs = default_jobs() if jobs is None else max(1, jobs)
    todo: List[SweepPoint] = []
    seen = set()
    for p in _resolvable(points):
        key = p.key()
        if key in seen or runner.peek(key) is not None:
            continue
        seen.add(key)
        todo.append(p)
    if not todo:
        return 0

    if jobs > 1 and len(todo) > 1:
        payloads: List[_Payload] = [
            (p.workload, p.config, p.cfg, p.cache_granularity) for p in todo
        ]
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
                encoded = list(pool.map(_simulate_payload, payloads))
        except (OSError, BrokenExecutor, pickle.PicklingError):
            # Pool infrastructure unavailable (sandbox without fork/
            # semaphores, dead worker, unpicklable payload) — fall through
            # to the serial path.  Simulation errors are NOT caught: they
            # propagate exactly as the serial path would raise them.
            pass
        else:
            runner.count_simulations(len(todo))
            for point, data in zip(todo, encoded):
                runner.seed_cache(point.key(), SimResult.from_dict(data))
            return len(todo)

    for p in todo:
        runner.run_workload_config(
            resolve_workload(p.workload), p.config, p.cfg,
            cache_granularity=p.cache_granularity,
        )
    return len(todo)


def run_points(points: Sequence[SweepPoint],
               jobs: Optional[int] = None) -> List[SimResult]:
    """Run every point and return results in ``points`` order.

    Each result is timed under its own point's bandwidth; shared traffic
    between bandwidth variants is simulated once.
    """
    points = list(points)
    prewarm(points, jobs=jobs)
    out: List[SimResult] = []
    for p in points:
        try:
            workload: Workload = resolve_workload(p.workload)
        except KeyError as exc:
            raise KeyError(
                f"sweep point {p.workload!r} is not registry-resolvable; "
                "run custom workloads through baselines.run_workload_config"
            ) from exc
        out.append(
            runner.run_workload_config(
                workload, p.config, p.cfg,
                cache_granularity=p.cache_granularity,
            )
        )
    return out


def run_sweep(spec: SweepSpec, jobs: Optional[int] = None) -> List[SimResult]:
    """Expand ``spec`` and run it; deterministic spec enumeration order."""
    return run_points(spec.points(), jobs=jobs)
