"""Parallel sweep execution over a process pool.

The simulators are pure Python and CPU-bound, so sweeps parallelise
across processes, not threads.  Workers receive only picklable payloads
— (workload *name*, config name, :class:`AcceleratorConfig`, granularity)
— rebuild the DAG via
:func:`repro.workloads.registry.resolve_workload`, and ship the finished
:class:`SimResult` back as a plain dict.

Two guarantees:

* **Determinism** — results are returned in submission order and the
  caller-visible outputs are always assembled serially from the warm
  cache, so ``jobs=N`` is byte-identical to ``jobs=1``.
* **Graceful fallback** — any failure to parallelise (no ``fork``/
  semaphore support in the sandbox, unpicklable payload, broken pool)
  degrades to the serial path rather than erroring.

One-shot CLI sweeps pay worker-spawn cost per :func:`prewarm` call; a
long-running process (the service daemon, ``repro serve``) instead keeps
one :class:`OrchestratorPool` resident and installs it with
:func:`set_shared_pool`, after which every ``prewarm`` in the process —
including ones buried inside experiment modules and the tuner — routes
its batches through the warm pool.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..baselines import runner
from ..baselines.configs import run_config
from ..hw.config import AcceleratorConfig
from ..sim import engine as sim_engine
from ..sim.results import SimResult
from ..workloads.registry import Workload, is_resolvable, resolve_workload
from .spec import SweepPoint, SweepSpec

#: When set (the daemon's ``--phase-profile`` exports it before forking
#: the pool), workers time the engine phases per payload and ship the
#: timings back alongside the encoded result; :func:`prewarm` replays
#: them into the parent's installed phase hook.  Phase data crosses the
#: process boundary this way because a worker's in-process hook dies
#: with the worker.
PHASE_PROFILE_ENV = "REPRO_PHASE_PROFILE"

#: Payload shipped to a worker: everything needed to rebuild + simulate.
_Payload = Tuple[str, str, AcceleratorConfig, Optional[int]]

#: Pool-infrastructure failures that trigger the serial fallback.
#: Simulation errors are deliberately NOT in this set — they propagate
#: exactly as the serial path would raise them.
_POOL_ERRORS = (OSError, BrokenExecutor, pickle.PicklingError)

#: Infrastructure strikes before a pool declines work permanently.  A
#: transient pool never gets a second call anyway; a resident daemon
#: pool gets a few chances to rebuild after a dead worker before
#: settling on the serial path for good.
_MAX_STRIKES = 3


def _is_shutdown_runtime_error(exc: RuntimeError) -> bool:
    """The ``RuntimeError`` an executor raises when raced by shutdown —
    infrastructure, unlike an engine bug raising ``RuntimeError``."""
    text = str(exc)
    return "after shutdown" in text or "interpreter shutdown" in text


def default_jobs() -> int:
    return os.cpu_count() or 1


def _noop(_: int) -> None:
    """Trivial worker task used to spawn pool processes eagerly."""
    return None


class OrchestratorPool:
    """A persistent process pool reused across sweep batches.

    ``ProcessPoolExecutor`` is thread-safe, so a daemon may push batches
    from several threads concurrently.  The first infrastructure failure
    marks the pool ``broken`` permanently and every later call returns
    ``None`` — callers then run the serial path, mirroring
    :func:`prewarm`'s transient-pool fallback.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.broken = False
        self.strikes = 0          # infrastructure failures seen so far
        self.batches = 0          # successful parallel batches dispatched
        self.payloads = 0         # payloads simulated across those batches
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool

    def _infra_failure(self) -> None:
        """Discard the executor; after :data:`_MAX_STRIKES` of these the
        pool declines work permanently (``broken``) instead of fork-
        looping a hopeless environment."""
        with self._lock:
            self.strikes += 1
            if self.strikes >= _MAX_STRIKES:
                self.broken = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _raced_shutdown(self) -> None:
        """This thread's ``map`` hit "cannot schedule new futures after
        shutdown".  If :meth:`close` retired the pool, ``broken`` is
        already set and there is nothing to do; otherwise we raced
        another thread's strike-triggered executor teardown — count our
        own strike rather than condemning the pool outright."""
        if not self.broken:
            self._infra_failure()

    def warm(self) -> bool:
        """Eagerly spawn the worker processes (one trivial task each), so
        the first real batch pays no fork latency.  Returns ``False`` when
        pool infrastructure is unavailable (the pool is then ``broken``
        and all work runs serially)."""
        if self.jobs <= 1 or self.broken:
            return False
        try:
            list(self._ensure().map(_noop, range(self.jobs)))
        except _POOL_ERRORS:
            self._infra_failure()
            return False
        except RuntimeError as exc:
            if _is_shutdown_runtime_error(exc):
                self._raced_shutdown()
                return False
            raise
        return True

    def run_payloads(self, payloads: Sequence[_Payload]
                     ) -> Optional[List[Dict[str, object]]]:
        """Simulate ``payloads`` across the workers, preserving order.

        Returns the encoded results, or ``None`` when the caller should
        use the serial path (1-wide pool, broken infrastructure, or an
        empty batch).  Simulation errors propagate; infrastructure
        errors (worker death, no fork support, shutdown race) count a
        strike and fall back to serial for this batch — the engines do
        no I/O, so an ``OSError`` out of ``map`` is infrastructure too.
        """
        if self.jobs <= 1 or self.broken or not payloads:
            return None
        try:
            encoded = list(self._ensure().map(_simulate_payload, payloads))
        except _POOL_ERRORS:
            self._infra_failure()
            return None
        except RuntimeError as exc:
            # A pool raced by shutdown is infrastructure; an engine bug
            # raising RuntimeError is a simulation error and propagates.
            if _is_shutdown_runtime_error(exc):
                self._raced_shutdown()
                return None
            raise
        with self._lock:
            self.batches += 1
            self.payloads += len(encoded)
        return encoded

    def snapshot(self) -> Dict[str, object]:
        """Counters for service stats reporting."""
        return {
            "jobs": self.jobs,
            "broken": self.broken,
            "strikes": self.strikes,
            "batches": self.batches,
            "payloads": self.payloads,
        }

    def close(self) -> None:
        """Shut the workers down; the pool permanently declines further
        work (``broken``) so late callers take the serial path instead of
        resurrecting an orphan executor."""
        with self._lock:
            self.broken = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "OrchestratorPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_SHARED_POOL: Optional[OrchestratorPool] = None


def set_shared_pool(pool: Optional[OrchestratorPool]) -> None:
    """Install (or with ``None`` remove) the process-wide resident pool.

    While installed, :func:`prewarm` calls that do not pass an explicit
    pool dispatch through it — at the *pool's* width, regardless of their
    ``jobs`` argument."""
    global _SHARED_POOL
    _SHARED_POOL = pool


def get_shared_pool() -> Optional[OrchestratorPool]:
    return _SHARED_POOL


def _simulate_payload(payload: _Payload) -> Dict[str, object]:
    """Worker entry point: resolve, build, simulate, encode.

    Module-level (picklable) by construction; runs in the worker process.
    With :data:`PHASE_PROFILE_ENV` set the per-payload phase timings ride
    back wrapped as ``{"__phases__": ..., "result": ...}`` — the shape
    (not the parent's env) decides unwrapping, so a flag flipped after
    the fork can never desynchronise the two processes.
    """
    name, config, cfg, granularity = payload
    workload = resolve_workload(name)
    phases: Optional[Dict[str, float]] = None
    if os.environ.get(PHASE_PROFILE_ENV):
        sink: Dict[str, float] = {}
        phases = sink
        sim_engine.set_phase_hook(
            lambda phase, dt: sink.__setitem__(
                phase, sink.get(phase, 0.0) + dt))
    try:
        result = run_config(
            config, workload.build(), cfg,
            workload_name=workload.name,
            cache_granularity=granularity,
        )
    finally:
        if phases is not None:
            sim_engine.set_phase_hook(None)
    if phases is not None:
        return {"__phases__": phases, "result": result.to_dict()}
    return result.to_dict()


def _replay_phases(phases: Mapping[str, float]) -> None:
    """Feed a worker's shipped phase timings to the parent's hook."""
    hook = sim_engine.get_phase_hook()
    if hook is None:
        return
    for phase, seconds in phases.items():
        hook(phase, float(seconds))


def _resolvable(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Points whose workload names round-trip through the registry."""
    return [p for p in points if is_resolvable(p.workload)]


def prewarm(points: Sequence[SweepPoint], jobs: Optional[int] = None,
            pool: Optional[OrchestratorPool] = None) -> int:
    """Simulate every uncached point, ``jobs`` wide; returns #simulated.

    Results land in the runner's cache tiers (process dict + persistent
    store when installed), so subsequent serial code replays them.
    Unresolvable workload names are skipped — their owner still holds the
    real :class:`Workload` object and will simulate lazily in-process.

    An explicit ``pool`` (or an installed shared pool, see
    :func:`set_shared_pool`) is reused across calls at its own width;
    otherwise a transient pool spins up when ``jobs > 1``.
    """
    pool = pool if pool is not None else get_shared_pool()
    jobs = default_jobs() if jobs is None else max(1, jobs)
    todo: List[SweepPoint] = []
    seen = set()
    for p in _resolvable(points):
        key = p.key()
        if key in seen or runner.peek(key) is not None:
            continue
        seen.add(key)
        todo.append(p)
    if not todo:
        return 0

    payloads: List[_Payload] = [
        (p.workload, p.config, p.cfg, p.cache_granularity) for p in todo
    ]
    encoded: Optional[List[Dict[str, object]]] = None
    if pool is not None:
        encoded = pool.run_payloads(payloads)
    elif jobs > 1 and len(todo) > 1:
        with OrchestratorPool(min(jobs, len(todo))) as transient:
            encoded = transient.run_payloads(payloads)
    if encoded is not None:
        runner.count_simulations(len(todo))
        for point, data in zip(todo, encoded):
            if "__phases__" in data:
                _replay_phases(data["__phases__"])  # type: ignore[arg-type]
                data = data["result"]  # type: ignore[assignment]
            runner.seed_cache(point.key(), SimResult.from_dict(data))
        return len(todo)

    # Serial path: pool infrastructure unavailable (sandbox without fork/
    # semaphores, dead worker, unpicklable payload) or 1-wide request.
    for p in todo:
        runner.run_workload_config(
            resolve_workload(p.workload), p.config, p.cfg,
            cache_granularity=p.cache_granularity,
        )
    return len(todo)


def run_points(points: Sequence[SweepPoint],
               jobs: Optional[int] = None) -> List[SimResult]:
    """Run every point and return results in ``points`` order.

    Each result is timed under its own point's bandwidth; shared traffic
    between bandwidth variants is simulated once.
    """
    points = list(points)
    prewarm(points, jobs=jobs)
    out: List[SimResult] = []
    for p in points:
        try:
            workload: Workload = resolve_workload(p.workload)
        except KeyError as exc:
            raise KeyError(
                f"sweep point {p.workload!r} is not registry-resolvable; "
                "run custom workloads through baselines.run_workload_config"
            ) from exc
        out.append(
            runner.run_workload_config(
                workload, p.config, p.cfg,
                cache_granularity=p.cache_granularity,
            )
        )
    return out


def run_sweep(spec: SweepSpec, jobs: Optional[int] = None) -> List[SimResult]:
    """Expand ``spec`` and run it; deterministic spec enumeration order."""
    return run_points(spec.points(), jobs=jobs)
