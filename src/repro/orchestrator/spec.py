"""Declarative sweep specifications.

A sweep is the paper's evaluation shape — (workload × configuration ×
SRAM size × bandwidth), the grid behind Figs. 12-14/16 — written down as
data instead of nested loops scattered through experiment modules.
:class:`SweepSpec` enumerates deterministic, order-stable
:class:`SweepPoint` lists that the parallel runner fans out across cores
and the result store keys on disk.

Workloads are referred to by canonical registry *name* (optionally
fnmatch patterns like ``cg/*`` or ``gmres/*``), never by object: a name
is picklable, hashable, and is re-resolved into a DAG builder inside
each worker process (:func:`repro.workloads.registry.resolve_workload`).
Extension families registered per ``docs/extending.md`` participate in
sweeps with no orchestrator changes — pattern expansion and resolution
go through the same registry index.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from typing import Optional, Tuple

from ..baselines.configs import MAIN_CONFIGS
from ..hw.config import AcceleratorConfig
from ..orchestrator.store import result_key
from ..workloads.registry import all_workloads


@dataclass(frozen=True)
class SweepPoint:
    """One simulation to run: a named workload under one configuration.

    Bandwidth lives inside ``cfg`` but does not affect the traffic key —
    points differing only in bandwidth share a simulation and are
    re-timed (see :mod:`repro.baselines.runner`).
    """

    workload: str
    config: str
    cfg: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    cache_granularity: Optional[int] = None

    def key(self) -> Tuple:
        """Traffic-memoisation key (shared with the runner's cache tiers
        and the persistent store; bandwidth-independent by design)."""
        return result_key(self.config, self.workload, self.cfg,
                          self.cache_granularity)

    def to_wire(self) -> dict:
        """JSON-safe form for the service's ``points`` op.

        Carries exactly the axes a ``sweep`` request varies (SRAM,
        bandwidth, granularity) over a default base config — the same
        reconstruction :func:`repro.service.protocol.request_to_spec`
        performs, so a point round-tripped through a gateway keys the
        store identically to one enumerated by a single daemon.
        """
        return {
            "workload": self.workload,
            "config": self.config,
            "sram_bytes": self.cfg.sram_bytes,
            "bandwidth_bytes_per_s": self.cfg.dram_bandwidth_bytes_per_s,
            "cache_granularity": self.cache_granularity,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SweepPoint":
        """Inverse of :meth:`to_wire`; raises ``ValueError`` on bad types."""
        workload = data.get("workload")
        config = data.get("config")
        if not isinstance(workload, str) or not workload.strip():
            raise ValueError("'workload' must be a workload name")
        if not isinstance(config, str) or not config.strip():
            raise ValueError("'config' must be a configuration name")
        cfg = AcceleratorConfig()
        sram = data.get("sram_bytes", cfg.sram_bytes)
        if isinstance(sram, bool) or not isinstance(sram, int) or sram < 1:
            raise ValueError("'sram_bytes' must be a positive integer")
        bandwidth = data.get("bandwidth_bytes_per_s",
                             cfg.dram_bandwidth_bytes_per_s)
        if (isinstance(bandwidth, bool)
                or not isinstance(bandwidth, (int, float)) or bandwidth <= 0):
            raise ValueError("'bandwidth_bytes_per_s' must be a positive "
                             "number")
        granularity = data.get("cache_granularity")
        if granularity is not None and (isinstance(granularity, bool)
                                        or not isinstance(granularity, int)
                                        or granularity < 1):
            raise ValueError("'cache_granularity' must be a positive integer")
        return cls(
            workload=workload,
            config=config,
            cfg=replace(cfg, sram_bytes=sram,
                        dram_bandwidth_bytes_per_s=float(bandwidth)),
            cache_granularity=granularity,
        )


@dataclass(frozen=True)
class SweepSpec:
    """Cartesian sweep: workloads × configs × sram_bytes × bandwidths.

    ``workloads`` entries may be exact registry names or fnmatch patterns
    (``cg/*``, ``*shallow*``); patterns expand against
    :func:`~repro.workloads.registry.all_workloads` in registry order.
    Empty ``sram_bytes``/``bandwidths`` mean "whatever ``base_cfg`` has".
    """

    workloads: Tuple[str, ...]
    configs: Tuple[str, ...] = MAIN_CONFIGS
    base_cfg: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    sram_bytes: Tuple[int, ...] = ()
    bandwidths: Tuple[float, ...] = ()
    cache_granularity: Optional[int] = None

    def expand_workloads(self) -> Tuple[str, ...]:
        """Expand patterns to concrete names, preserving first-seen order.

        A literal entry that matches no registry name is kept verbatim —
        it may still be resolvable (e.g. ``cg/fv1/N=1@it3`` encodes a
        non-default iteration count that the registry index omits).
        """
        known = list(all_workloads())
        out: list[str] = []
        for pattern in self.workloads:
            matched = [n for n in known if fnmatch(n, pattern)]
            for name in matched or [pattern]:
                if name not in out:
                    out.append(name)
        return tuple(out)

    def cfg_variants(self) -> Tuple[AcceleratorConfig, ...]:
        srams = self.sram_bytes or (self.base_cfg.sram_bytes,)
        bws = self.bandwidths or (self.base_cfg.dram_bandwidth_bytes_per_s,)
        return tuple(
            replace(self.base_cfg, sram_bytes=s, dram_bandwidth_bytes_per_s=b)
            for s in srams
            for b in bws
        )

    def points(self) -> Tuple[SweepPoint, ...]:
        """Deterministic enumeration: workload-major, then config, then cfg."""
        return tuple(
            SweepPoint(w, c, cfg, self.cache_granularity)
            for w in self.expand_workloads()
            for c in self.configs
            for cfg in self.cfg_variants()
        )

    def __len__(self) -> int:
        """Number of enumerated sweep points (simulations before dedup)."""
        return len(self.points())
