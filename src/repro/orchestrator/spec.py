"""Declarative sweep specifications.

A sweep is the paper's evaluation shape — (workload × configuration ×
SRAM size × bandwidth), the grid behind Figs. 12-14/16 — written down as
data instead of nested loops scattered through experiment modules.
:class:`SweepSpec` enumerates deterministic, order-stable
:class:`SweepPoint` lists that the parallel runner fans out across cores
and the result store keys on disk.

Workloads are referred to by canonical registry *name* (optionally
fnmatch patterns like ``cg/*`` or ``gmres/*``), never by object: a name
is picklable, hashable, and is re-resolved into a DAG builder inside
each worker process (:func:`repro.workloads.registry.resolve_workload`).
Extension families registered per ``docs/extending.md`` participate in
sweeps with no orchestrator changes — pattern expansion and resolution
go through the same registry index.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from typing import Optional, Tuple

from ..baselines.configs import MAIN_CONFIGS
from ..hw.config import AcceleratorConfig
from ..orchestrator.store import result_key
from ..workloads.registry import all_workloads


@dataclass(frozen=True)
class SweepPoint:
    """One simulation to run: a named workload under one configuration.

    Bandwidth lives inside ``cfg`` but does not affect the traffic key —
    points differing only in bandwidth share a simulation and are
    re-timed (see :mod:`repro.baselines.runner`).
    """

    workload: str
    config: str
    cfg: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    cache_granularity: Optional[int] = None

    def key(self) -> Tuple:
        """Traffic-memoisation key (shared with the runner's cache tiers
        and the persistent store; bandwidth-independent by design)."""
        return result_key(self.config, self.workload, self.cfg,
                          self.cache_granularity)


@dataclass(frozen=True)
class SweepSpec:
    """Cartesian sweep: workloads × configs × sram_bytes × bandwidths.

    ``workloads`` entries may be exact registry names or fnmatch patterns
    (``cg/*``, ``*shallow*``); patterns expand against
    :func:`~repro.workloads.registry.all_workloads` in registry order.
    Empty ``sram_bytes``/``bandwidths`` mean "whatever ``base_cfg`` has".
    """

    workloads: Tuple[str, ...]
    configs: Tuple[str, ...] = MAIN_CONFIGS
    base_cfg: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    sram_bytes: Tuple[int, ...] = ()
    bandwidths: Tuple[float, ...] = ()
    cache_granularity: Optional[int] = None

    def expand_workloads(self) -> Tuple[str, ...]:
        """Expand patterns to concrete names, preserving first-seen order.

        A literal entry that matches no registry name is kept verbatim —
        it may still be resolvable (e.g. ``cg/fv1/N=1@it3`` encodes a
        non-default iteration count that the registry index omits).
        """
        known = list(all_workloads())
        out: list[str] = []
        for pattern in self.workloads:
            matched = [n for n in known if fnmatch(n, pattern)]
            for name in matched or [pattern]:
                if name not in out:
                    out.append(name)
        return tuple(out)

    def cfg_variants(self) -> Tuple[AcceleratorConfig, ...]:
        srams = self.sram_bytes or (self.base_cfg.sram_bytes,)
        bws = self.bandwidths or (self.base_cfg.dram_bandwidth_bytes_per_s,)
        return tuple(
            replace(self.base_cfg, sram_bytes=s, dram_bandwidth_bytes_per_s=b)
            for s in srams
            for b in bws
        )

    def points(self) -> Tuple[SweepPoint, ...]:
        """Deterministic enumeration: workload-major, then config, then cfg."""
        return tuple(
            SweepPoint(w, c, cfg, self.cache_granularity)
            for w in self.expand_workloads()
            for c in self.configs
            for cfg in self.cfg_variants()
        )

    def __len__(self) -> int:
        """Number of enumerated sweep points (simulations before dedup)."""
        return len(self.points())
