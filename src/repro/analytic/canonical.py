"""Canonicalisation: (DAG + SCORE schedule) → normalised traffic program.

The schedule engine walks the program and routes every (op, operand)
event through RF, the pipeline buffer, CHORD, or DRAM.  This module
performs the *same walk once, symbolically*: capacity-independent events
collapse into per-tensor :class:`~repro.analytic.formulas.Term` sums,
pipelined producer→consumer chains are fused (their tensors never touch
DRAM and carry the ``fused`` class), and only the CHORD-routed events —
the single capacity-dependent part of the machine — survive as a compact
``(kind, tensor, op_index)`` stream for the capacity model.

Reuse classes come from Algorithm 2 (:mod:`repro.core.classify`) via the
schedule's own :class:`~repro.core.classify.ClassifiedDag`, so the
canonical program records *why* each tensor's traffic behaves the way it
does: ``delayed-writeback`` tensors are the ones whose traffic moves
with buffer capacity, ``fused``/``streaming`` tensors are provably
capacity-independent, and program ``input`` tensors reload from DRAM on
their first CHORD consumption no matter the capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..core.classify import DependencyType
from ..score.schedule_ir import Route, Schedule
from .formulas import BOTH, READ, WRITE, Term, TensorFormula

#: Chord-event kinds (compact ints: the capacity model replays millions
#: of these across a tuning run).
EV_WRITE = 0
EV_READ = 1
EV_RETIRE = 2

#: One CHORD event: (kind, tensor index, op index).
ChordEvent = Tuple[int, int, int]


@dataclass(frozen=True)
class TensorFacts:
    """Schedule-independent reuse metadata of one tensor (mirrors the
    SCORE→CHORD hints, indexed for the capacity model)."""

    name: str
    total_bytes: int
    producer_index: Optional[int]
    consumer_indices: Tuple[int, ...]
    is_program_output: bool
    traffic_class: str


@dataclass(frozen=True)
class CanonicalProgram:
    """The normalised traffic program one evaluation runs against.

    ``kind`` is ``"engine"`` (CELLO-class schedules executed against the
    buffer hierarchy) or ``"oracle"`` (explicit baselines whose traffic
    is a pure covered-set sum).  Byte counters (``rf_bytes`` etc.) feed
    the on-chip access/energy accounting and are capacity-independent.
    """

    kind: str
    tensors: Tuple[TensorFacts, ...]
    index_of: Mapping[str, int]
    formulas: Tuple[TensorFormula, ...]
    chord_events: Tuple[ChordEvent, ...]
    rf_bytes: int
    pipe_bytes: int
    chord_access_bytes: int
    operand_bytes: int    # oracle on-chip staging (0 for engine programs)
    total_macs: int

    def formula_of(self, tensor: str) -> TensorFormula:
        return self.formulas[self.index_of[tensor]]


#: Most-constrained-wins ordering when a tensor feeds consumers over
#: edges of different dependency types.
_CLASS_RANK = (
    DependencyType.DELAYED_WRITEBACK,
    DependencyType.DELAYED_HOLD,
    DependencyType.PIPELINEABLE,
    DependencyType.SEQUENTIAL,
)
_CLASS_NAME = {
    DependencyType.DELAYED_WRITEBACK: "delayed-writeback",
    DependencyType.DELAYED_HOLD: "delayed-hold",
    DependencyType.PIPELINEABLE: "pipelineable",
    DependencyType.SEQUENTIAL: "sequential",
}


def _traffic_class(schedule: Schedule, name: str, chord_routed: bool) -> str:
    """Resolve one tensor's reuse class from Algorithm 2 + its placement."""
    placement = schedule.placement(name)
    if placement.write_route is Route.PIPELINE:
        return "fused"          # all consumers fed on-chip: node fusion
    if not chord_routed:
        return "streaming"      # RF / drain / direct: capacity-independent
    if schedule.dag.producer_of(name) is None:
        return "input"          # cold reload, then capacity-managed
    deps = {
        schedule.classified.consumer_dep(name, c)
        for c in schedule.dag.consumers_of(name)
    }
    for dep in _CLASS_RANK:
        if dep in deps:
            return _CLASS_NAME[dep]
    return "sequential"


def _facts(schedule: Schedule) -> Tuple[Tuple[TensorFacts, ...], Dict[str, int]]:
    dag = schedule.dag
    chord_routed = set(schedule.chord_tensors())
    facts: List[TensorFacts] = []
    index: Dict[str, int] = {}
    for t in dag.tensors:
        h = schedule.hints.get(t.name)
        index[t.name] = len(facts)
        facts.append(TensorFacts(
            name=t.name,
            total_bytes=h.total_bytes,
            producer_index=h.producer_index,
            consumer_indices=h.consumer_indices,
            is_program_output=h.is_program_output,
            traffic_class=_traffic_class(schedule, t.name, t.name in chord_routed),
        ))
    return tuple(facts), index


def canonicalize(schedule: Schedule) -> CanonicalProgram:
    """Lower a SCORE schedule to its canonical traffic program.

    Performs the schedule engine's event walk once, symbolically — the
    resulting program reproduces the engine's DRAM traffic exactly when
    evaluated (closed form when the CHORD working set fits, via the
    capacity recurrence when it does not).
    """
    dag = schedule.dag
    facts, index = _facts(schedule)
    total_of = {f.name: f.total_bytes for f in facts}

    # Per-(tensor, kind) aggregated byte counts → terms.
    agg: Dict[Tuple[str, str], int] = {}

    def add(name: str, kind: str, nbytes: int) -> None:
        agg[(name, kind)] = agg.get((name, kind), 0) + nbytes

    events: List[ChordEvent] = []
    touched: Set[str] = set()
    cold_read_seen: Set[str] = set()
    chord_candidates = set(schedule.chord_tensors())
    rf_bytes = pipe_bytes = chord_access_bytes = 0

    for i, op in enumerate(dag.ops):
        for t in op.inputs:
            name = t.name
            placement = schedule.placement(name)
            route = placement.route_for(op.name)
            nbytes = total_of[name]
            if (op.name in placement.swizzled_consumers
                    and route is not Route.REGISTER_FILE):
                add(name, "swizzle", nbytes)
            if route is Route.REGISTER_FILE:
                if dag.producer_of(name) is None and name not in touched:
                    add(name, "cold-read", nbytes)
                rf_bytes += nbytes
            elif route in (Route.PIPELINE, Route.HOLD):
                pipe_bytes += nbytes
            elif route is Route.CHORD:
                events.append((EV_READ, index[name], i))
                chord_access_bytes += nbytes
                if dag.producer_of(name) is None and name not in cold_read_seen:
                    # First CHORD consumption of a cold tensor misses in
                    # full regardless of capacity.
                    add(name, "chord-cold-read", nbytes)
                    cold_read_seen.add(name)
            elif route is Route.DRAM:
                add(name, "direct-read", nbytes)
            touched.add(name)

        out_name = op.output.name
        wr = schedule.placement(out_name).write_route
        nbytes = total_of[out_name]
        if wr is Route.REGISTER_FILE:
            rf_bytes += nbytes
        elif wr is Route.PIPELINE:
            pipe_bytes += nbytes
        elif wr is Route.CHORD:
            events.append((EV_WRITE, index[out_name], i))
            chord_access_bytes += nbytes
        elif wr is Route.DRAM:
            add(out_name, "direct-write", nbytes)
        touched.add(out_name)

        # Explicit retirement points (evaluation skips them when the
        # retire knob is off).  Only CHORD-routable tensors can be
        # resident, so others would be no-ops.
        for t in op.inputs:
            h = schedule.hints.get(t.name)
            if h.last_use() == i and t.name in chord_candidates:
                events.append((EV_RETIRE, index[t.name], i))

    for name in dag.program_outputs():
        wr = schedule.placement(name).write_route
        if wr in (Route.REGISTER_FILE, Route.PIPELINE):
            add(name, "output-drain", total_of[name])
        elif wr is Route.CHORD:
            # Written dirty in full; drains once at retire/finalize.
            add(name, "chord-drain", total_of[name])

    formulas = _build_formulas(facts, agg)
    return CanonicalProgram(
        kind="engine",
        tensors=facts,
        index_of=index,
        formulas=formulas,
        chord_events=tuple(events),
        rf_bytes=rf_bytes,
        pipe_bytes=pipe_bytes,
        chord_access_bytes=chord_access_bytes,
        operand_bytes=0,
        total_macs=sum(op.macs for op in dag.ops),
    )


def canonicalize_oracle(dag, covered: Set[str]) -> CanonicalProgram:
    """Canonical program of an explicit oracle baseline.

    Covered tensors (every consumer fed by a realized pipeline/hold) are
    the fused nodes: they contribute no terms.  Everything else stages
    once per consuming op and drains once on production — closed form by
    construction, with no capacity dependence at all.
    """
    facts: List[TensorFacts] = []
    index: Dict[str, int] = {}
    outputs = set(dag.program_outputs())
    for t in dag.tensors:
        index[t.name] = len(facts)
        consumers = tuple(sorted(dag.op_index(c) for c in dag.consumers_of(t.name)))
        producer = dag.producer_of(t.name)
        facts.append(TensorFacts(
            name=t.name,
            total_bytes=t.bytes,
            producer_index=dag.op_index(producer) if producer else None,
            consumer_indices=consumers,
            is_program_output=t.name in outputs,
            traffic_class="fused" if t.name in covered else "streaming",
        ))

    agg: Dict[Tuple[str, str], int] = {}
    operand_bytes = 0
    for op in dag.ops:
        for t in op.inputs:
            operand_bytes += dag.tensor(t.name).bytes
            if t.name not in covered:
                agg[(t.name, "oracle-read")] = (
                    agg.get((t.name, "oracle-read"), 0) + dag.tensor(t.name).bytes
                )
        out = op.output.name
        operand_bytes += dag.tensor(out).bytes
        if out not in covered:
            agg[(out, "oracle-write")] = (
                agg.get((out, "oracle-write"), 0) + dag.tensor(out).bytes
            )

    formulas = _build_formulas(tuple(facts), agg)
    return CanonicalProgram(
        kind="oracle",
        tensors=tuple(facts),
        index_of=index,
        formulas=formulas,
        chord_events=(),
        rf_bytes=0,
        pipe_bytes=0,
        chord_access_bytes=0,
        operand_bytes=operand_bytes,
        total_macs=sum(op.macs for op in dag.ops),
    )


_TERM_DIRECTION = {
    "cold-read": READ,
    "direct-read": READ,
    "oracle-read": READ,
    "chord-cold-read": READ,
    "direct-write": WRITE,
    "output-drain": WRITE,
    "oracle-write": WRITE,
    "chord-drain": WRITE,
    "swizzle": BOTH,
}


def _build_formulas(
    facts: Tuple[TensorFacts, ...],
    agg: Mapping[Tuple[str, str], int],
) -> Tuple[TensorFormula, ...]:
    by_tensor: Dict[str, List[Term]] = {f.name: [] for f in facts}
    for (name, kind), nbytes in sorted(agg.items()):
        by_tensor[name].append(Term(
            kind=kind,
            nbytes=nbytes,
            direction=_TERM_DIRECTION[kind],
            gated_by="charge_swizzle" if kind == "swizzle" else "",
        ))
    return tuple(
        TensorFormula(
            tensor=f.name,
            traffic_class=f.traffic_class,
            terms=tuple(by_tensor[f.name]),
            capacity_dependent=f.traffic_class
            in ("input", "sequential", "pipelineable",
                "delayed-hold", "delayed-writeback"),
        )
        for f in facts
    )
