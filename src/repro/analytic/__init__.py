"""Analytic traffic fast path: closed-form per-tensor DRAM/runtime/energy
prediction, pinned to the simulator by the differential test harness.

The pipeline: canonicalise (DAG + SCORE schedule) into per-tensor
traffic formulas plus a compact CHORD event stream
(:mod:`~repro.analytic.canonical`), compile those into an evaluable
model with pre-folded sums and no-pressure peaks
(:mod:`~repro.analytic.compiler`), and evaluate any engine-knob /
bandwidth / index-table point without generating a trace — closed form
when the working set fits, the piecewise capacity recurrence
(:mod:`~repro.analytic.capacity`) when it does not.  The backend
(:mod:`~repro.analytic.backend`) dispatches Table IV config names and
caches compiled models; cache-policy baselines raise
:class:`AnalyticUnsupported` and fall back to the exact simulator.

Consumers: ``repro tune --fidelity analytic|hybrid``, the service's
``predict`` op, ``analysis/fidelity_report.py``, and
``tests/test_analytic_differential.py`` (the harness that keeps the
model honest — exact for sequential/streaming classes, ≤2% relative
error bound asserted elsewhere).  Derivation notes: ``docs/analytic.md``.
"""

from .backend import (
    AnalyticUnsupported,
    clear_model_cache,
    engine_options_for,
    family_of,
    model_cache_size,
    model_for,
    predict_config,
    predict_workload_config,
    schedule_cfg_key,
    supports_config,
)
from .batch import (
    REGIME_CLOSED_FORM,
    REGIME_NAMES,
    REGIME_RECURRENCE,
    REGIME_STREAMING,
    BatchEvaluation,
    BatchKnobs,
    BatchUnsupported,
    batch_objective_arrays,
    evaluate_batch,
    onchip_accesses_of,
    replay_chord_batch,
)
from .canonical import CanonicalProgram, TensorFacts, canonicalize, canonicalize_oracle
from .capacity import ChordTally, no_pressure_peaks, replay_chord
from .compiler import (
    CLOSED_FORM,
    RECURRENCE,
    STREAMING,
    AnalyticEvaluation,
    AnalyticModel,
)
from .formulas import TensorFormula, Term, describe_formulas

__all__ = [
    "AnalyticEvaluation",
    "AnalyticModel",
    "AnalyticUnsupported",
    "BatchEvaluation",
    "BatchKnobs",
    "BatchUnsupported",
    "CanonicalProgram",
    "ChordTally",
    "CLOSED_FORM",
    "RECURRENCE",
    "REGIME_CLOSED_FORM",
    "REGIME_NAMES",
    "REGIME_RECURRENCE",
    "REGIME_STREAMING",
    "STREAMING",
    "TensorFacts",
    "TensorFormula",
    "Term",
    "batch_objective_arrays",
    "canonicalize",
    "canonicalize_oracle",
    "clear_model_cache",
    "describe_formulas",
    "engine_options_for",
    "evaluate_batch",
    "family_of",
    "model_cache_size",
    "model_for",
    "no_pressure_peaks",
    "onchip_accesses_of",
    "predict_config",
    "predict_workload_config",
    "replay_chord",
    "replay_chord_batch",
    "schedule_cfg_key",
    "supports_config",
]
