"""Analytic prediction backend: config-name dispatch + compile cache.

Mirrors :func:`repro.baselines.configs.run_config`'s name grammar so a
prediction is requested exactly like a simulation — by (workload,
config name, accelerator config).  Five of the seven Table IV families
are analytically modelled:

* ``Flexagon`` — the op-by-op oracle (pure covered-set sums);
* ``FLAT`` / ``SET`` — oracle sums minus SCORE-realized pipeline/hold
  coverage;
* ``PRELUDE-only`` — best-intra-op schedule against PRELUDE (RIFF off);
* ``CELLO`` and every ``CELLO[...]`` knob variant — the full SCORE
  schedule, with engine knobs applied at evaluation time.

``Flex+<policy>`` cache baselines replay an address trace through a
set-associative cache whose conflict behaviour is not a function of
tensor-granularity reuse metadata — they raise
:class:`AnalyticUnsupported`, and every caller (hybrid tuner, fidelity
report, service ``predict`` op) falls back to the exact simulator.
That oracle fallback is the audited boundary of the model
(``docs/analytic.md``).

Compiled models are cached per (workload name, schedule family,
schedule-shaping config): DAG construction and SCORE scheduling are
paid once, and every knob/bandwidth/entries point evaluates against
the same model — the source of the ≥100× speedup the bench gate holds.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..baselines.configs import (
    CACHE_POLICIES,
    is_known_config,
    parse_cello_variant,
)
from ..baselines.flat import covered_tensors, flat_schedule
from ..baselines.set_sched import set_schedule
from ..hw.config import AcceleratorConfig
from ..score.scheduler import Score, ScoreOptions
from ..sim.engine import EngineOptions
from ..sim.results import SimResult
from ..workloads.registry import Workload
from .canonical import canonicalize, canonicalize_oracle
from .compiler import AnalyticEvaluation, AnalyticModel


class AnalyticUnsupported(Exception):
    """The named config has no analytic model; simulate it instead."""


#: Schedule families (what a compiled model is keyed on — all
#: ``CELLO[...]`` variants share one model because the SCORE schedule
#: does not depend on the engine knobs).
_FAMILIES = ("flexagon", "flat", "set", "prelude", "cello")

#: Soft cap on cached models (a tuning sweep touches a handful of SRAM
#: points; this only guards against unbounded growth in long services).
_CACHE_CAP = 256

_MODEL_CACHE: Dict[Tuple, AnalyticModel] = {}


def family_of(config: str) -> str:
    """Resolve a config name to its schedule family.

    Raises :class:`AnalyticUnsupported` for the trace-replayed cache
    baselines and :class:`KeyError` for unknown names (mirroring
    ``run_config``'s error surface).
    """
    if config == "Flexagon":
        return "flexagon"
    if config == "FLAT":
        return "flat"
    if config == "SET":
        return "set"
    if config == "PRELUDE-only":
        return "prelude"
    if parse_cello_variant(config) is not None:
        return "cello"
    if config.startswith("Flex+") and config[len("Flex+"):] in CACHE_POLICIES:
        raise AnalyticUnsupported(
            f"config {config!r} replays a cache trace; no analytic model "
            "(use the simulator)"
        )
    raise KeyError(f"unknown configuration {config!r}")


def supports_config(config: str) -> bool:
    """True when :func:`predict_workload_config` can price ``config``."""
    if not is_known_config(config):
        return False
    try:
        family_of(config)
    except AnalyticUnsupported:
        return False
    return True


def schedule_cfg_key(cfg: AcceleratorConfig) -> AcceleratorConfig:
    """Normalise away the config fields that cannot shape a schedule.

    DRAM bandwidth and the CHORD index-table size only matter at
    evaluation time (re-timing / table bypass), so models compiled at
    different values of either are identical — collapsing them is what
    lets a bandwidth/entries sweep reuse one compiled model.
    """
    return replace(
        cfg,
        dram_bandwidth_bytes_per_s=AcceleratorConfig().dram_bandwidth_bytes_per_s,
        chord_entries=AcceleratorConfig().chord_entries,
    )


def engine_options_for(config: str) -> EngineOptions:
    """Engine knobs a config name implies (identity for oracle names)."""
    if config == "PRELUDE-only":
        return EngineOptions(use_riff=False)
    options = parse_cello_variant(config)
    return options if options is not None else EngineOptions()


def _compile(workload: Workload, family: str,
             cfg: AcceleratorConfig) -> AnalyticModel:
    dag = workload.build()
    if family == "flexagon":
        program = canonicalize_oracle(dag, set())
    elif family == "flat":
        program = canonicalize_oracle(dag, covered_tensors(flat_schedule(dag, cfg)))
    elif family == "set":
        program = canonicalize_oracle(dag, covered_tensors(set_schedule(dag, cfg)))
    elif family == "prelude":
        schedule = Score(cfg, ScoreOptions(
            enable_pipelining=False, enable_holds=False)).schedule(dag)
        program = canonicalize(schedule)
    else:   # cello
        schedule = Score(cfg, ScoreOptions()).schedule(dag)
        program = canonicalize(schedule)
    return AnalyticModel(program, cfg, workload.name)


def model_for(workload: Workload, config: str,
              cfg: AcceleratorConfig) -> AnalyticModel:
    """Compiled model for (workload, config family, schedule config) —
    cached, so repeated evaluations skip DAG build + SCORE entirely."""
    family = family_of(config)
    key = (workload.name, family, schedule_cfg_key(cfg))
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = _compile(workload, family, cfg)
        if len(_MODEL_CACHE) >= _CACHE_CAP:
            _MODEL_CACHE.pop(next(iter(_MODEL_CACHE)))
        _MODEL_CACHE[key] = model
    return model


def predict_workload_config(
    workload: Workload,
    config: str,
    cfg: AcceleratorConfig,
    detail: bool = False,
) -> AnalyticEvaluation:
    """Analytic counterpart of ``runner.run_workload_config``.

    Raises :class:`AnalyticUnsupported` for cache-policy configs and
    :class:`KeyError` for unknown names.
    """
    model = model_for(workload, config, cfg)
    return model.evaluate(
        config_name=config,
        options=engine_options_for(config),
        cfg=cfg,
        detail=detail,
    )


def predict_config(workload: Workload, config: str,
                   cfg: AcceleratorConfig) -> SimResult:
    """Convenience: just the predicted :class:`SimResult`."""
    return predict_workload_config(workload, config, cfg).result


def clear_model_cache() -> None:
    _MODEL_CACHE.clear()


def model_cache_size() -> int:
    return len(_MODEL_CACHE)
