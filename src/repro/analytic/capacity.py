"""CHORD capacity response: closed form when the working set fits, a
tensor-granularity prefix recurrence when it does not.

CHORD's policies are defined on contiguous tensor prefixes, so its DRAM
traffic is a piecewise-linear function of data-array capacity: every
event moves a ``min``/``max`` of linear byte quantities.  This module
evaluates that function *without a trace*, at two fidelities:

* :func:`no_pressure_peaks` computes the peak resident footprint (bytes
  and tensor count) assuming nothing ever spills.  When capacity and
  index-table entries both cover the peak, traffic is the pure closed
  form — cold first-reads plus program-output drains — and evaluation is
  O(1) per point (the sums were folded at compile time).
* :func:`replay_chord` runs the prefix recurrence over the compiled
  ``(kind, tensor, op_index)`` event stream: PRELUDE head-fill,
  RIFF next-use-distance/frequency victim selection, tail eviction with
  dirty-overlap writeback, clean read-miss re-extension, and explicit
  retirement — the exact arithmetic of
  :class:`repro.chord.buffer.ChordBuffer`, at O(events × residents)
  with no address map, stats objects, or history recording.

Both paths agree wherever their domains overlap (the differential suite
asserts it); the recurrence is the general case and the closed form is
the fast path the hybrid tuner leans on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .canonical import EV_READ, EV_RETIRE, EV_WRITE, ChordEvent


@dataclass
class ChordTally:
    """DRAM traffic attributed to CHORD over one evaluation."""

    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    #: Per-tensor-index attribution, same keys as ``ChordBuffer.per_tensor``
    #: (bytes: hit / miss / spill / writeback).  Only filled on request.
    per_tensor: Dict[int, Dict[str, int]] = field(default_factory=dict)


def no_pressure_peaks(
    events: Sequence[ChordEvent],
    totals: Sequence[int],
    consumers: Sequence[Tuple[int, ...]],
    explicit_retire: bool,
) -> Tuple[int, int]:
    """Peak resident (bytes, tensor count) assuming infinite capacity.

    If a real buffer covers both peaks, no PRELUDE spill, RIFF steal, or
    index-table bypass can occur, so the closed-form terms are exact.
    """
    resident: Dict[int, int] = {}
    used = peak_bytes = peak_count = 0
    for kind, tid, op_index in events:
        if kind == EV_WRITE:
            if tid not in resident:
                resident[tid] = totals[tid]
                used += totals[tid]
        elif kind == EV_READ:
            if tid not in resident:
                cs = consumers[tid]
                if bisect_right(cs, op_index) < len(cs):
                    # Cold miss re-offered to PRELUDE (still has uses).
                    resident[tid] = totals[tid]
                    used += totals[tid]
        elif kind == EV_RETIRE and explicit_retire:
            freed = resident.pop(tid, 0)
            used -= freed
        if used > peak_bytes:
            peak_bytes = used
        if len(resident) > peak_count:
            peak_count = len(resident)
    return peak_bytes, peak_count


def replay_chord(
    events: Sequence[ChordEvent],
    totals: Sequence[int],
    consumers: Sequence[Tuple[int, ...]],
    is_output: Sequence[bool],
    capacity: int,
    entries: int,
    use_riff: bool,
    explicit_retire: bool,
    detail: bool = False,
) -> ChordTally:
    """Evaluate CHORD traffic under capacity pressure.

    Mirrors ``ChordBuffer`` event-for-event at tensor granularity:
    residency is a head prefix per tensor, dirty bytes a prefix of that,
    and the RIFF priority of a tensor at op ``i`` is
    ``(alive, -next_use_distance, remaining_frequency)`` — dead tensors
    rank below everything, first-lowest wins ties (insertion order).
    """
    tally = ChordTally()
    # tid -> [resident_end, dirty_end]; dict preserves insertion order,
    # which is what breaks RIFF priority ties (strict-< scan).
    residents: Dict[int, List[int]] = {}
    used = 0

    def account(tid: int, key: str, nbytes: int) -> None:
        if not detail or nbytes <= 0:
            return
        rec = tally.per_tensor.setdefault(
            tid, {"hit": 0, "miss": 0, "spill": 0, "writeback": 0}
        )
        rec[key] += nbytes

    def priority(tid: int, op_index: int) -> Tuple[int, int, int]:
        cs = consumers[tid]
        j = bisect_right(cs, op_index)
        if j == len(cs):
            return (0, 0, 0)
        return (1, op_index - cs[j], len(cs) - j)

    def evict_tail(victim: int, nbytes: int) -> int:
        nonlocal used
        r = residents[victim]
        take = min(nbytes, r[0])
        if take <= 0:
            return 0
        new_end = r[0] - take
        writeback = r[1] - new_end
        if writeback > 0:
            tally.dram_write_bytes += writeback
            account(victim, "writeback", writeback)
        r[0] = new_end
        if r[1] > new_end:
            r[1] = new_end
        used -= take
        if r[0] == 0:
            del residents[victim]
        return take

    def insert(tid: int, nbytes: int, op_index: int, dirty: bool) -> int:
        nonlocal used
        r = residents.get(tid)
        if r is None:
            if len(residents) >= entries:
                # Index table exhausted: the tensor bypasses CHORD.
                return 0
            r = [0, 0]
            residents[tid] = r
        inserted = min(nbytes, capacity - used)   # PRELUDE head fill
        remaining = nbytes - inserted
        if remaining > 0 and use_riff:
            incoming = priority(tid, op_index)
            while remaining > 0:
                best_id = -1
                best: Optional[Tuple[int, int, int]] = None
                for vid in residents:
                    if vid == tid:
                        continue
                    p = priority(vid, op_index)
                    if best is None or p < best:
                        best = p
                        best_id = vid
                if best is None or not best < incoming:
                    break   # nothing strictly lower: spill the remainder
                freed = evict_tail(best_id, remaining)
                if freed == 0:
                    break
                inserted += freed
                remaining -= freed
        if inserted:
            r[0] += inserted
            used += inserted
            if dirty:
                r[1] = r[0]
        if r[0] == 0:
            del residents[tid]
        return inserted

    def write(tid: int, op_index: int) -> None:
        n = totals[tid]
        inserted = insert(tid, n, op_index, dirty=True)
        spilled = n - inserted
        if spilled:
            tally.dram_write_bytes += spilled
            account(tid, "spill", spilled)

    def read(tid: int, op_index: int) -> None:
        n = totals[tid]
        r = residents.get(tid)
        hit = min(n, r[0]) if r is not None else 0
        miss = n - hit
        account(tid, "hit", hit)
        if miss:
            tally.dram_read_bytes += miss
            account(tid, "miss", miss)
            cs = consumers[tid]
            if bisect_right(cs, op_index) < len(cs):
                insert(tid, miss, op_index, dirty=False)

    def retire(tid: int) -> None:
        nonlocal used
        r = residents.get(tid)
        if r is None:
            return
        if is_output[tid] and r[1]:
            tally.dram_write_bytes += r[1]
            account(tid, "writeback", r[1])
        used -= r[0]
        del residents[tid]

    for kind, tid, op_index in events:
        if kind == EV_READ:
            read(tid, op_index)
        elif kind == EV_WRITE:
            write(tid, op_index)
        elif kind == EV_RETIRE and explicit_retire:
            retire(tid)
    for tid in list(residents):
        retire(tid)
    return tally
