"""Per-tensor traffic terms: the symbolic layer of the analytic model.

A compiled analytic model is, per tensor, a small sum of *terms* — each a
byte count with a direction (read/write/both), an optional engine-knob
gate, and a flag saying whether it only holds in the no-pressure
(closed-form) CHORD regime.  The evaluator aggregates terms instead of
re-deriving traffic, so the human-readable formula table
(:func:`describe_formulas`) and the numbers the tuner ranks on are the
same object — the model cannot drift from its own documentation.

Term kinds
----------
``cold-read``
    First touch of a cold program input staged through the register file.
``direct-read`` / ``direct-write``
    Operands routed straight to DRAM (no on-chip placement).
``output-drain``
    A program output living in RF/pipeline drains to DRAM exactly once.
``swizzle``
    Layout-transform round trip (read + write), gated on the
    ``charge_swizzle`` engine knob.
``chord-cold-read``
    A cold tensor's first CHORD consumption misses entirely — exact in
    the no-pressure regime, a lower bound under capacity pressure.
``chord-drain``
    A CHORD-resident program output writes back once — exact in the
    no-pressure regime.
``oracle-read`` / ``oracle-write``
    The explicit-baseline oracle staging terms (Flexagon/FLAT/SET): one
    read per consuming op, one write per production, covered tensors
    skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

#: Direction of a term's traffic.
READ = "read"
WRITE = "write"
BOTH = "both"

#: Term kinds whose bytes only apply in the no-pressure CHORD regime
#: (under pressure the capacity recurrence supersedes them).
CLOSED_FORM_KINDS = ("chord-cold-read", "chord-drain")


@dataclass(frozen=True)
class Term:
    """One additive traffic contribution of one tensor."""

    kind: str
    nbytes: int
    direction: str
    gated_by: str = ""    # engine-knob name ("charge_swizzle") or empty

    def describe(self) -> str:
        gate = f" if {self.gated_by}" if self.gated_by else ""
        return f"{self.kind}: {self.nbytes} B {self.direction}{gate}"


@dataclass(frozen=True)
class TensorFormula:
    """The closed-form traffic expression of one tensor.

    ``capacity_dependent`` marks tensors that route through CHORD: their
    closed-form terms hold when the working set fits, and the piecewise
    capacity recurrence (:mod:`repro.analytic.capacity`) takes over when
    it does not.
    """

    tensor: str
    traffic_class: str
    terms: Tuple[Term, ...]
    capacity_dependent: bool

    def read_bytes(self, charge_swizzle: bool = True,
                   closed_form: bool = True) -> int:
        return self._sum(READ, charge_swizzle, closed_form)

    def write_bytes(self, charge_swizzle: bool = True,
                    closed_form: bool = True) -> int:
        return self._sum(WRITE, charge_swizzle, closed_form)

    def _sum(self, direction: str, charge_swizzle: bool,
             closed_form: bool) -> int:
        total = 0
        for t in self.terms:
            if t.direction not in (direction, BOTH):
                continue
            if t.gated_by == "charge_swizzle" and not charge_swizzle:
                continue
            if t.kind in CLOSED_FORM_KINDS and not closed_form:
                continue
            total += t.nbytes
        return total

    def describe(self) -> str:
        dep = " [capacity-dependent]" if self.capacity_dependent else ""
        parts = "; ".join(t.describe() for t in self.terms) or "no DRAM traffic"
        return f"{self.tensor} ({self.traffic_class}){dep}: {parts}"


def describe_formulas(formulas: Iterable[TensorFormula]) -> str:
    """Render the per-tensor formula table (the model's audit trail)."""
    lines = ["Analytic traffic formulas (per tensor):"]
    lines.extend(f"  {f.describe()}" for f in formulas)
    return "\n".join(lines)
