"""NumPy-vectorised batch evaluation of a compiled analytic model.

:meth:`AnalyticModel.evaluate` prices one knob point per call; a tuning
run over 10^5–10^6 points spends its time in the Python enumeration
loop, not in the model.  This module evaluates the *same* compiled model
over knob **arrays** — one NumPy row per design point — so the whole
batch moves through ufunc arithmetic:

* the streaming and closed-form regimes are pure broadcast expressions
  over the pre-folded formula sums (swizzle toggle, no-pressure drains);
* the capacity recurrence (:func:`repro.analytic.capacity.replay_chord`)
  is replayed once per CHORD *event* but vectorised across every
  pressured point at each step — state is a ``(tensors, points)`` matrix
  and RIFF victim selection is an argmin over pre-computed priority keys;
* points the analytic model cannot price at all (cache-policy baselines)
  never enter: callers route them to the simulator, exactly as the
  point-wise path does.

Every output is bit-identical to the corresponding point-wise
``model.evaluate(...)`` call — the property suite in
``tests/test_batch_analytic.py`` asserts element-wise equality across
random DAGs, knob grids, and all three regimes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hw.config import AcceleratorConfig
from ..hw.sram_model import cache_cost, chord_cost
from ..sim.energy import DRAM_PJ_PER_BYTE, onchip_energy_j
from .canonical import EV_READ, EV_RETIRE, EV_WRITE
from .compiler import CLOSED_FORM, RECURRENCE, STREAMING, AnalyticModel

#: Integer regime codes (compact per-point tags; names match the
#: compiler's string regimes one-to-one).
REGIME_STREAMING = 0
REGIME_CLOSED_FORM = 1
REGIME_RECURRENCE = 2
REGIME_NAMES: Tuple[str, str, str] = (STREAMING, CLOSED_FORM, RECURRENCE)


class BatchUnsupported(Exception):
    """The program's event stream does not fit the packed priority-key
    encoding (absurdly deep consumer lists); evaluate point-wise."""


def _as_bool(values: object, n: int) -> np.ndarray:
    arr = np.broadcast_to(np.asarray(values, dtype=bool), (n,))
    return np.ascontiguousarray(arr)


def _as_int(values: object, n: int) -> np.ndarray:
    arr = np.asarray(values)
    if arr.dtype.kind not in "iu":
        arr = arr.astype(np.int64)
    arr = np.broadcast_to(arr.astype(np.int64), (n,))
    return np.ascontiguousarray(arr)


@dataclass(frozen=True)
class BatchKnobs:
    """Columnar engine/hardware knobs: row ``i`` of every array is one
    evaluation point.  Mirrors what the point-wise path reads from
    ``EngineOptions`` + ``AcceleratorConfig``:

    * ``use_riff`` / ``explicit_retire`` / ``charge_swizzle`` — the
      SCORE ablation toggles;
    * ``chord_entries`` — RIFF index-table size (the resolved value,
      i.e. ``options.chord_entries or cfg.chord_entries``);
    * ``capacity_bytes`` — CHORD data-array capacity
      (``cfg.chord_data_bytes``, *not* raw SRAM bytes).
    """

    use_riff: np.ndarray
    explicit_retire: np.ndarray
    charge_swizzle: np.ndarray
    chord_entries: np.ndarray
    capacity_bytes: np.ndarray

    def __len__(self) -> int:
        return int(self.capacity_bytes.shape[0])

    @classmethod
    def from_columns(
        cls,
        n: int,
        use_riff: object = True,
        explicit_retire: object = True,
        charge_swizzle: object = True,
        chord_entries: object = 64,
        capacity_bytes: object = 0,
    ) -> "BatchKnobs":
        """Broadcast scalars / sequences to ``n`` rows with the dtypes
        the evaluator expects."""
        return cls(
            use_riff=_as_bool(use_riff, n),
            explicit_retire=_as_bool(explicit_retire, n),
            charge_swizzle=_as_bool(charge_swizzle, n),
            chord_entries=_as_int(chord_entries, n),
            capacity_bytes=_as_int(capacity_bytes, n),
        )

    def take(self, idx: np.ndarray) -> "BatchKnobs":
        return BatchKnobs(
            use_riff=self.use_riff[idx],
            explicit_retire=self.explicit_retire[idx],
            charge_swizzle=self.charge_swizzle[idx],
            chord_entries=self.chord_entries[idx],
            capacity_bytes=self.capacity_bytes[idx],
        )


@dataclass(frozen=True)
class BatchEvaluation:
    """Columnar analytic predictions: DRAM traffic and regime per point."""

    dram_read_bytes: np.ndarray    # int64, (n,)
    dram_write_bytes: np.ndarray   # int64, (n,)
    regime: np.ndarray             # int8 regime codes, (n,)

    def __len__(self) -> int:
        return int(self.regime.shape[0])

    @property
    def dram_bytes(self) -> np.ndarray:
        return self.dram_read_bytes + self.dram_write_bytes

    def regime_names(self) -> List[str]:
        return [REGIME_NAMES[c] for c in self.regime]


# -- packed RIFF priority keys --------------------------------------------------
#
# The scalar recurrence ranks eviction victims by the tuple
# ``(alive, op - next_use, remaining_frequency)`` — lowest evicted first,
# insertion order breaking exact ties.  Packing the tuple into one int64
# (alive bit above a biased next-use-distance field above the frequency)
# preserves the full lexicographic order, so victim selection across all
# pressured points collapses to one column argmin per eviction round.

_FREQ_BITS = 20
_DIST_BITS = 32
_DIST_BIAS = 1 << (_DIST_BITS - 1)
_ALIVE_KEY = np.int64(1) << (_FREQ_BITS + _DIST_BITS)
_DEAD_KEY = np.int64(_DIST_BIAS) << _FREQ_BITS
#: Sentinel above every real key (masks non-candidates out of the argmin).
_MAX_KEY = np.int64(1) << 62


class _BatchProgram:
    """Array form of one model's capacity-recurrence inputs.

    Everything here depends only on the compiled program, so it is built
    once per model (see :func:`batch_program_for`) and shared by every
    batch: per-event packed priority keys for all tensors, the re-insert
    gate of read misses, and int64 views of the totals/output flags.
    """

    def __init__(self, model: AnalyticModel) -> None:
        program = model.program
        self.events: Tuple[Tuple[int, int, int], ...] = program.chord_events
        totals = tuple(f.total_bytes for f in program.tensors)
        consumers = tuple(f.consumer_indices for f in program.tensors)
        self.totals = np.asarray(totals, dtype=np.int64)
        self.is_output = np.asarray(
            [f.is_program_output for f in program.tensors], dtype=bool)
        self.n_tensors = len(totals)

        max_freq = max((len(cs) for cs in consumers), default=0)
        max_op = max((ev[2] for ev in self.events), default=0)
        if max_freq >= (1 << _FREQ_BITS) or max_op >= _DIST_BIAS:
            raise BatchUnsupported(
                f"program too deep for packed RIFF keys "
                f"(max consumer count {max_freq}, max op index {max_op})")

        ops = np.asarray([ev[2] for ev in self.events], dtype=np.int64)
        n_events = len(self.events)
        # prio_keys[t, e]: packed priority of tensor t at event e's op.
        keys = np.full((self.n_tensors, n_events), _DEAD_KEY, dtype=np.int64)
        for t, cs in enumerate(consumers):
            if not cs:
                continue
            cs_arr = np.asarray(cs, dtype=np.int64)
            j = np.searchsorted(cs_arr, ops, side="right")
            alive = j < len(cs_arr)
            nxt = cs_arr[np.minimum(j, len(cs_arr) - 1)]
            dist = ops - nxt                      # negative next-use distance
            freq = np.int64(len(cs_arr)) - j
            keys[t] = np.where(
                alive,
                _ALIVE_KEY + ((dist + _DIST_BIAS) << _FREQ_BITS) + freq,
                _DEAD_KEY,
            )
        self.prio_keys = keys
        # Read misses re-enter PRELUDE only while future consumers remain
        # — the same bisect gate read() applies point-wise.
        self.read_reinserts = tuple(
            kind == EV_READ and bisect_right(consumers[tid], op) < len(consumers[tid])
            for kind, tid, op in self.events
        )


def batch_program_for(model: AnalyticModel) -> _BatchProgram:
    """The array program of ``model``, cached on the model instance so
    its lifetime tracks the backend's model cache."""
    bp = getattr(model, "_batch_program", None)
    if bp is None:
        bp = _BatchProgram(model)
        model._batch_program = bp  # type: ignore[attr-defined]
    return bp


def replay_chord_batch(
    bp: _BatchProgram,
    capacity: np.ndarray,
    entries: np.ndarray,
    use_riff: np.ndarray,
    explicit_retire: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`~repro.analytic.capacity.replay_chord`.

    One column per evaluation point; every event advances all points at
    once.  Returns ``(dram_read_bytes, dram_write_bytes)`` int64 arrays,
    element-wise equal to the scalar recurrence at each column's knobs.
    """
    n_points = int(capacity.shape[0])
    n_tensors = bp.n_tensors
    cols = np.arange(n_points)
    capacity = capacity.astype(np.int64)
    entries = entries.astype(np.int64)

    # State matrices: resident/dirty prefix ends per (tensor, point), and
    # the insertion sequence number that stands in for dict order in the
    # scalar replay (RIFF ties keep the earliest-inserted resident).
    res = np.zeros((n_tensors, n_points), dtype=np.int64)
    dirty = np.zeros((n_tensors, n_points), dtype=np.int64)
    seq = np.zeros((n_tensors, n_points), dtype=np.int64)
    seq_ctr = np.zeros(n_points, dtype=np.int64)
    used = np.zeros(n_points, dtype=np.int64)
    n_res = np.zeros(n_points, dtype=np.int64)
    dram_r = np.zeros(n_points, dtype=np.int64)
    dram_w = np.zeros(n_points, dtype=np.int64)
    zeros = np.zeros(n_points, dtype=np.int64)

    def insert(tid: int, nbytes: np.ndarray, ev_i: int,
               make_dirty: bool) -> np.ndarray:
        nonlocal seq_ctr, used, n_res, dram_w
        active = nbytes > 0
        if not active.any():
            return zeros
        was_res = res[tid] > 0
        # Index-table bypass: a non-resident tensor offered while the
        # table is full never enters (scalar insert returns 0 outright).
        eligible = active & (was_res | (n_res < entries))
        ins = np.where(eligible, np.minimum(nbytes, capacity - used), 0)
        remaining = np.where(eligible, nbytes - ins, 0)
        need = eligible & use_riff & (remaining > 0)
        if need.any():
            ev_keys = bp.prio_keys[:, ev_i]           # (tensors,)
            incoming = ev_keys[tid]
            while True:
                # Candidate victims: resident tensors other than tid, in
                # columns still hungry for bytes.
                cand = (res > 0) & need[None, :]
                cand[tid] = False
                keys = np.where(cand, ev_keys[:, None], _MAX_KEY)
                best = keys.min(axis=0)
                evict = need & (best < incoming)
                if not evict.any():
                    break
                tie = (keys == best[None, :]) & cand
                victim = np.where(tie, seq, np.iinfo(np.int64).max
                                  ).argmin(axis=0)
                v_res = res[victim, cols]
                v_dirty = dirty[victim, cols]
                take = np.where(evict, np.minimum(remaining, v_res), 0)
                new_end = v_res - take
                writeback = np.where(evict, np.maximum(v_dirty - new_end, 0), 0)
                dram_w = dram_w + writeback
                res[victim, cols] = np.where(evict, new_end, v_res)
                dirty[victim, cols] = np.where(
                    evict, np.minimum(v_dirty, new_end), v_dirty)
                n_res = n_res - (evict & (new_end == 0))
                used = used - take
                ins = ins + take
                remaining = remaining - take
                # A column whose best candidate no longer outranks the
                # incoming tensor drops out for good (priorities of the
                # survivors only rise as the event's op is fixed).
                need = evict & (remaining > 0)
                if not need.any():
                    break
        grew = ins > 0
        res[tid] = res[tid] + ins
        used = used + ins
        if make_dirty:
            dirty[tid] = np.where(grew, res[tid], dirty[tid])
        became = grew & ~was_res
        seq[tid] = np.where(became, seq_ctr, seq[tid])
        seq_ctr = seq_ctr + became
        n_res = n_res + became
        return ins

    def retire(tid: int, mask: np.ndarray) -> None:
        nonlocal used, n_res, dram_w
        if not mask.any():
            return
        if bp.is_output[tid]:
            dram_w = dram_w + np.where(mask, dirty[tid], 0)
        used = used - np.where(mask, res[tid], 0)
        n_res = n_res - mask
        res[tid] = np.where(mask, 0, res[tid])
        dirty[tid] = np.where(mask, 0, dirty[tid])

    totals = bp.totals
    for ev_i, (kind, tid, _op) in enumerate(bp.events):
        n = totals[tid]
        if kind == EV_READ:
            hit = np.minimum(n, res[tid])
            miss = n - hit
            dram_r = dram_r + miss
            if bp.read_reinserts[ev_i]:
                insert(tid, miss, ev_i, make_dirty=False)
        elif kind == EV_WRITE:
            offered = np.full(n_points, n, dtype=np.int64)
            ins = insert(tid, offered, ev_i, make_dirty=True)
            dram_w = dram_w + (offered - ins)
        elif kind == EV_RETIRE:
            retire(tid, explicit_retire & (res[tid] > 0))
    for tid in range(n_tensors):
        retire(tid, res[tid] > 0)
    return dram_r, dram_w


def evaluate_batch(model: AnalyticModel, knobs: BatchKnobs) -> BatchEvaluation:
    """Price every knob row of ``knobs`` against ``model`` at once.

    Bit-identical to calling ``model.evaluate`` per row: the streaming
    and closed-form regimes are broadcast sums, and only the rows whose
    working set overflows capacity (or the index table) pay the
    vectorised recurrence.  Raises :class:`BatchUnsupported` for event
    streams too deep for the packed priority keys (fall back point-wise).
    """
    n = len(knobs)
    program = model.program
    if program.kind == "oracle":
        return BatchEvaluation(
            dram_read_bytes=np.full(n, model._base_read, dtype=np.int64),
            dram_write_bytes=np.full(n, model._base_write, dtype=np.int64),
            regime=np.full(n, REGIME_STREAMING, dtype=np.int8),
        )

    swz = knobs.charge_swizzle
    read = np.full(n, model._base_read, dtype=np.int64)
    write = np.full(n, model._base_write, dtype=np.int64)
    read = read + np.where(swz, model._swizzle_bytes, 0)
    write = write + np.where(swz, model._swizzle_bytes, 0)

    peak_b_t, peak_c_t = model._peaks[True]
    peak_b_f, peak_c_f = model._peaks[False]
    retire = knobs.explicit_retire
    peak_bytes = np.where(retire, peak_b_t, peak_b_f)
    peak_count = np.where(retire, peak_c_t, peak_c_f)
    fits = ((peak_bytes <= knobs.capacity_bytes)
            & (peak_count <= knobs.chord_entries))

    read = read + np.where(fits, model._np_chord_read, 0)
    write = write + np.where(fits, model._np_chord_write, 0)
    regime = np.where(fits, REGIME_CLOSED_FORM, REGIME_RECURRENCE
                      ).astype(np.int8)

    pressured = np.flatnonzero(~fits)
    if pressured.size:
        bp = batch_program_for(model)
        sub = knobs.take(pressured)
        extra_r, extra_w = replay_chord_batch(
            bp, sub.capacity_bytes, sub.chord_entries,
            sub.use_riff, sub.explicit_retire)
        read[pressured] += extra_r
        write[pressured] += extra_w
    return BatchEvaluation(
        dram_read_bytes=read, dram_write_bytes=write, regime=regime)


# -- objective arrays -----------------------------------------------------------


def onchip_accesses_of(model: AnalyticModel,
                       cfg: AcceleratorConfig) -> Dict[str, int]:
    """The on-chip access counts every evaluation of ``model`` carries
    (identical dict, and dict order, to the point-wise path)."""
    program = model.program
    if program.kind == "oracle":
        return {"buffet": program.operand_bytes // cfg.line_bytes}
    return {
        "chord": program.chord_access_bytes // cfg.line_bytes,
        "rf": program.rf_bytes // cfg.line_bytes,
        "pipeline": program.pipe_bytes // cfg.line_bytes,
    }


def batch_objective_arrays(
    names: Sequence[str],
    model: AnalyticModel,
    evaluation: BatchEvaluation,
    cfg: AcceleratorConfig,
    chord_entries: Optional[np.ndarray] = None,
    is_cache_family: bool = False,
) -> Dict[str, np.ndarray]:
    """Vectorised :func:`repro.tuner.pareto.objective_values`.

    ``cfg`` carries the per-group constants (SRAM split, line size,
    bandwidth, MAC peak); ``chord_entries`` the per-point index-table
    sizes that the area objective depends on.  Each array reproduces the
    scalar objective float-for-float: the arithmetic runs in the same
    order on the same float64 values.
    """
    dram = evaluation.dram_bytes
    n = len(evaluation)
    out: Dict[str, np.ndarray] = {}
    for name in names:
        if name == "runtime":
            compute_s = model.program.total_macs / cfg.peak_macs_per_s
            memory_s = dram / cfg.dram_bandwidth_bytes_per_s
            out[name] = np.maximum(compute_s, memory_s)
        elif name == "dram":
            out[name] = dram.astype(np.float64)
        elif name == "energy":
            onchip_j = sum(onchip_energy_j(
                onchip_accesses_of(model, cfg), cfg).values())
            out[name] = dram * DRAM_PJ_PER_BYTE * 1e-12 + onchip_j
        elif name == "area":
            if is_cache_family:
                out[name] = np.full(n, cache_cost(cfg).total_mm2)
            else:
                if chord_entries is None:
                    raise ValueError("area objective needs chord_entries")
                from dataclasses import replace
                uniq, inverse = np.unique(chord_entries, return_inverse=True)
                per_entry = np.asarray([
                    chord_cost(replace(cfg, chord_entries=int(e))).total_mm2
                    for e in uniq
                ])
                out[name] = per_entry[inverse]
        else:
            raise KeyError(f"unknown objective {name!r}")
    return out
