"""Compile a canonical program into an evaluable analytic model.

Compilation folds the per-tensor formula terms into direction/gate sums
and pre-computes the no-pressure peaks for both retire modes, so one
compiled :class:`AnalyticModel` evaluates *any* engine-knob combination
(RIFF / retire / swizzle toggles, index-table sizes, bandwidth points)
in microseconds — the schedule and DAG construction that dominate a
simulated evaluation are paid exactly once.  This is the contract the
hybrid tuner and the ≥100× bench gate rely on.

A model is pinned to the accelerator parameters that shaped its
schedule (SRAM split, line size, RF size — see
:func:`repro.analytic.backend.schedule_cfg_key`); evaluating it against
a config that differs only in bandwidth, clock, or index-table entries
is exact, because DRAM traffic is independent of those knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..hw.config import AcceleratorConfig
from ..sim.engine import EngineOptions
from ..sim.perf import make_result
from ..sim.results import SimResult
from .canonical import CanonicalProgram
from .capacity import ChordTally, no_pressure_peaks, replay_chord
from .formulas import describe_formulas

#: Evaluation regimes (exactness classes the differential suite keys on).
STREAMING = "streaming"        # oracle baselines: capacity-independent
CLOSED_FORM = "closed-form"    # CHORD working set fits: pure formula sums
RECURRENCE = "recurrence"      # capacity pressure: prefix recurrence


@dataclass(frozen=True)
class AnalyticEvaluation:
    """One analytic prediction, with its audit trail."""

    result: SimResult
    regime: str
    #: Reuse class per tensor (from Algorithm 2 via canonicalisation).
    classes: Mapping[str, str]
    #: Per-tensor DRAM bytes {"read": r, "write": w}; only filled when
    #: the evaluation was asked for detail.
    per_tensor: Mapping[str, Dict[str, int]]
    #: CHORD attribution in ``ChordBuffer.per_tensor`` conventions
    #: (hit/miss/spill/writeback bytes), empty in the closed-form and
    #: streaming regimes unless detail was requested.
    chord_per_tensor: Mapping[str, Dict[str, int]]


class AnalyticModel:
    """Closed-form traffic/runtime/energy model of one (workload,
    schedule family, schedule-shaping config) triple."""

    def __init__(self, program: CanonicalProgram, cfg: AcceleratorConfig,
                 workload_name: str) -> None:
        self.program = program
        self.cfg = cfg
        self.workload_name = workload_name

        # Fold formula terms into the evaluator's sums.
        base_read = base_write = swizzle = np_read = np_write = 0
        for f in program.formulas:
            swz = sum(t.nbytes for t in f.terms if t.kind == "swizzle")
            swizzle += swz
            np_read += sum(t.nbytes for t in f.terms
                           if t.kind == "chord-cold-read")
            np_write += sum(t.nbytes for t in f.terms
                            if t.kind == "chord-drain")
            base_read += f.read_bytes(charge_swizzle=False, closed_form=False)
            base_write += f.write_bytes(charge_swizzle=False, closed_form=False)
        self._base_read = base_read
        self._base_write = base_write
        self._swizzle_bytes = swizzle
        self._np_chord_read = np_read
        self._np_chord_write = np_write

        # Capacity-model arrays (indexed by tensor id).
        self._totals = tuple(f.total_bytes for f in program.tensors)
        self._consumers = tuple(f.consumer_indices for f in program.tensors)
        self._is_output = tuple(f.is_program_output for f in program.tensors)
        self._classes = {f.name: f.traffic_class for f in program.tensors}
        self._names = tuple(f.name for f in program.tensors)

        # No-pressure peaks per retire mode: the closed-form precondition.
        self._peaks = {
            retire: no_pressure_peaks(
                program.chord_events, self._totals, self._consumers, retire)
            for retire in (True, False)
        }

    @property
    def classes(self) -> Dict[str, str]:
        return dict(self._classes)

    def fits(self, capacity: int, entries: int, explicit_retire: bool) -> bool:
        """True when the CHORD working set never pressures the buffer."""
        peak_bytes, peak_count = self._peaks[explicit_retire]
        return peak_bytes <= capacity and peak_count <= entries

    def evaluate(
        self,
        config_name: str,
        options: Optional[EngineOptions] = None,
        cfg: Optional[AcceleratorConfig] = None,
        detail: bool = False,
    ) -> AnalyticEvaluation:
        """Predict the :class:`SimResult` of one configuration point.

        ``cfg`` may differ from the compile config only in traffic-
        independent fields (bandwidth, clock, index-table entries);
        ``options`` carries the CELLO engine knobs and is ignored by
        oracle-family models.
        """
        cfg = cfg or self.cfg
        options = options or EngineOptions()
        program = self.program

        if program.kind == "oracle":
            read, write = self._base_read, self._base_write
            onchip = {"buffet": program.operand_bytes // cfg.line_bytes}
            regime = STREAMING
            tally: Optional[ChordTally] = None
        else:
            read = self._base_read
            write = self._base_write
            if options.charge_swizzle:
                read += self._swizzle_bytes
                write += self._swizzle_bytes
            entries = options.chord_entries or cfg.chord_entries
            capacity = cfg.chord_data_bytes
            if self.fits(capacity, entries, options.explicit_retire):
                read += self._np_chord_read
                write += self._np_chord_write
                regime = CLOSED_FORM
                tally = None
                if detail:
                    tally = self._closed_form_tally()
            else:
                tally = replay_chord(
                    program.chord_events, self._totals, self._consumers,
                    self._is_output, capacity, entries,
                    options.use_riff, options.explicit_retire, detail=detail,
                )
                read += tally.dram_read_bytes
                write += tally.dram_write_bytes
                regime = RECURRENCE
            onchip = {
                "chord": program.chord_access_bytes // cfg.line_bytes,
                "rf": program.rf_bytes // cfg.line_bytes,
                "pipeline": program.pipe_bytes // cfg.line_bytes,
            }

        result = make_result(
            config=config_name,
            workload=self.workload_name,
            total_macs=program.total_macs,
            dram_read_bytes=read,
            dram_write_bytes=write,
            cfg=cfg,
            onchip_accesses=onchip,
        )
        per_tensor: Dict[str, Dict[str, int]] = {}
        chord_per: Dict[str, Dict[str, int]] = {}
        if detail:
            per_tensor = self._per_tensor(options, tally)
            if tally is not None:
                chord_per = {
                    self._names[tid]: dict(rec)
                    for tid, rec in tally.per_tensor.items()
                }
        return AnalyticEvaluation(
            result=result,
            regime=regime,
            classes=self.classes,
            per_tensor=per_tensor,
            chord_per_tensor=chord_per,
        )

    def _closed_form_tally(self) -> ChordTally:
        """Reconstruct per-tensor CHORD attribution in the fits regime by
        running the recurrence at the peak footprint (exactly equivalent,
        only needed when detail is requested)."""
        peak_bytes, peak_count = self._peaks[True]
        cap = max(peak_bytes, max(self._peaks[False][0], 1))
        ent = max(peak_count, self._peaks[False][1], 1)
        return replay_chord(
            self.program.chord_events, self._totals, self._consumers,
            self._is_output, cap, ent, True, True, detail=True,
        )

    def _per_tensor(self, options: EngineOptions,
                    tally: Optional[ChordTally]) -> Dict[str, Dict[str, int]]:
        closed = tally is None
        out: Dict[str, Dict[str, int]] = {}
        for f in self.program.formulas:
            read = f.read_bytes(charge_swizzle=options.charge_swizzle,
                                closed_form=closed)
            swz = sum(t.nbytes for t in f.terms if t.kind == "swizzle")
            write = f.write_bytes(charge_swizzle=options.charge_swizzle,
                                  closed_form=closed)
            if read or write or swz:
                out[f.tensor] = {"read": read, "write": write}
        if tally is not None:
            for tid, rec in tally.per_tensor.items():
                name = self._names[tid]
                slot = out.setdefault(name, {"read": 0, "write": 0})
                slot["read"] += rec["miss"]
                slot["write"] += rec["spill"] + rec["writeback"]
        return out

    def describe(self) -> str:
        peak_bytes, peak_count = self._peaks[True]
        lines = [
            f"AnalyticModel({self.workload_name}, {self.program.kind}): "
            f"{len(self.program.tensors)} tensors, "
            f"{len(self.program.chord_events)} CHORD events, "
            f"no-pressure peak {peak_bytes} B / {peak_count} tensors "
            "(with retirement)",
            describe_formulas(self.program.formulas),
        ]
        return "\n".join(lines)
