"""Multi-node NoC traffic model (Sec. V-B "Scalable Dataflow", Fig. 8).

When execution spans several nodes, SCORE splits the *dominant* rank across
nodes and pipelines sub-tensors within a node, so only the small (N×N') side
tensors cross the NoC.  The alternative — splitting the DAG op-by-op across
nodes — ships the skewed M×N intermediates around.

For the running example (pipelining between CG ops 4 and 5):

* op-split strategy moves ``SIZE_R = M*N`` words through the NoC;
* dominant-rank split moves ``N*N'*(hops_broadcast + hops_reduce)`` words.

Since M >> N·hops, the dominant-rank split wins by orders of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NocConfig:
    """A 2-D mesh of compute nodes."""

    n_nodes: int = 16

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")

    @property
    def mesh_side(self) -> int:
        return max(1, int(math.ceil(math.sqrt(self.n_nodes))))

    @property
    def broadcast_hops(self) -> int:
        """Hops for a row+column tree broadcast on the mesh."""
        return max(1, 2 * (self.mesh_side - 1))

    @property
    def reduce_hops(self) -> int:
        """Hops for the mirror-image reduction tree."""
        return self.broadcast_hops


def op_split_traffic_words(m: int, n: int) -> int:
    """Words moved when the skewed M×N intermediate crosses the NoC
    (Fig. 8 top: each operator owns a region of PEs and ships its whole
    output to the next operator's region)."""
    return m * n


def rank_split_traffic_words(n: int, n_prime: int, noc: NocConfig) -> int:
    """Words×hops moved when the dominant rank is split across nodes
    (Fig. 8 bottom: only the small N×N' tensor is broadcast and the partial
    N×N' results reduced)."""
    return n * n_prime * (noc.broadcast_hops + noc.reduce_hops)


def traffic_advantage(m: int, n: int, n_prime: int, noc: NocConfig) -> float:
    """op-split traffic / rank-split traffic (>> 1 for skewed shapes)."""
    return op_split_traffic_words(m, n) / rank_split_traffic_words(n, n_prime, noc)
