"""CACTI-style SRAM area and energy model (Fig. 15, Sec. VI-B numbers).

The paper uses CACTI 7 to cost three 4 MB on-chip structures:

* **buffet** (explicit scratchpad + tiny credit controller): 6.72 mm² — the
  controller adds ~2 % over the raw data array;
* **8-way cache** (16 B lines): 9.87 mm² total, 6.59 mm² data + 1.85 mm² tag
  (rest is the cache controller);
* **CHORD**: 6.74 mm² — data array + a RIFF index table that is ~0.01× the
  cache's tag array.

We reproduce these with a parametric model: data-array area scales linearly
with capacity (per-bit constant calibrated to the paper's 6.59 mm² @ 4 MB);
tag/metadata arrays are sized from their actual bit counts; per-access
energy follows the usual ~sqrt(capacity) wordline/bitline scaling with a
fixed per-access overhead for tag lookup (set-associative caches read all
ways of a tag set).  Calibration pins the absolute endpoints, so every
*comparison* Fig. 15 makes is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .config import AcceleratorConfig, MIB

# -- calibration constants (per Fig. 15 @ 4 MB, 16 B lines, 8-way) -------------

#: mm² per data-array byte: 6.59 mm² / 4 MiB.
_DATA_MM2_PER_BYTE = 6.59 / (4 * MIB)
#: Buffet controller overhead over the data array (Sec. VII-B3: ~2 %).
_BUFFET_CTRL_OVERHEAD = 0.02
#: Cache controller area as a fraction of the data array (9.87 - 6.59 - 1.85
#: = 1.43 mm² for the 4 MB point).
_CACHE_CTRL_OVERHEAD = 1.43 / 6.59
#: Address bits assumed for tag computation (40-bit physical addresses).
_ADDR_BITS = 40
#: Per-line state bits beside the tag (valid + dirty + replacement state).
_LINE_STATE_BITS = 4
#: mm² per tag/metadata bit, calibrated so an 8-way 4 MB cache with 16 B
#: lines lands on 1.85 mm² of tag array.
#: tag bits/line = 40 - log2(32768 sets) - log2(16) = 21, +4 state = 25;
#: 262144 lines * 25 bits = 6.55 Mb.
_TAG_MM2_PER_BIT = 1.85 / (262144 * 25)

#: Energy model: data access energy at the 4 MB point, pJ per 16 B access.
#: CACTI-class numbers for a large SRAM macro; scales as sqrt(capacity).
_DATA_PJ_AT_4MB = 20.0
#: Tag probe energy comparable to data access energy (Sec. VI-B: "tag access
#: energy is comparable to data access energy, because of the size of the
#: tag array and also due to set associativity").
_TAG_PJ_AT_4MB = 16.0
#: CHORD's RIFF-index-table probe: one 512-bit entry read, no associative
#: search.
_CHORD_TABLE_PJ = 0.4
#: Buffet credit-scoreboard energy per access.
_BUFFET_CTRL_PJ = 0.2


@dataclass(frozen=True)
class StructureCost:
    """Area/energy verdict for one on-chip buffer structure."""

    name: str
    data_mm2: float
    metadata_mm2: float
    control_mm2: float
    energy_pj_per_access: float

    @property
    def total_mm2(self) -> float:
        return self.data_mm2 + self.metadata_mm2 + self.control_mm2


def _data_area_mm2(capacity_bytes: int) -> float:
    return capacity_bytes * _DATA_MM2_PER_BYTE


def _data_energy_pj(capacity_bytes: int) -> float:
    """Per-access data-array energy; ~sqrt scaling in capacity."""
    return _DATA_PJ_AT_4MB * math.sqrt(capacity_bytes / (4 * MIB))


def cache_tag_bits(cfg: AcceleratorConfig) -> int:
    """Total tag+state bits of the set-associative cache."""
    n_sets = cfg.n_sets
    tag_bits = _ADDR_BITS - int(math.log2(n_sets)) - int(math.log2(cfg.line_bytes))
    return cfg.n_lines * (tag_bits + _LINE_STATE_BITS)


def chord_table_bits(cfg: AcceleratorConfig) -> int:
    """RIFF index table: ``chord_entries`` × ``chord_entry_bits`` (Table V)."""
    return cfg.chord_entries * cfg.chord_entry_bits


def scratchpad_cost(cfg: AcceleratorConfig) -> StructureCost:
    """Raw explicitly-managed scratchpad: data array only."""
    cap = cfg.sram_bytes
    return StructureCost(
        name="scratchpad",
        data_mm2=_data_area_mm2(cap),
        metadata_mm2=0.0,
        control_mm2=0.0,
        energy_pj_per_access=_data_energy_pj(cap),
    )


def buffet_cost(cfg: AcceleratorConfig) -> StructureCost:
    """Buffet: scratchpad + ~2 % credit-management controller."""
    cap = cfg.sram_bytes
    data = _data_area_mm2(cap)
    return StructureCost(
        name="buffet",
        data_mm2=data,
        metadata_mm2=0.0,
        control_mm2=data * _BUFFET_CTRL_OVERHEAD,
        energy_pj_per_access=_data_energy_pj(cap) + _BUFFET_CTRL_PJ,
    )


def cache_cost(cfg: AcceleratorConfig) -> StructureCost:
    """Set-associative cache: data + tag array + controller.

    Every access probes all ways of one tag set, so tag energy is charged on
    each access in addition to the data access.
    """
    cap = cfg.sram_bytes
    data = _data_area_mm2(cap)
    tags = cache_tag_bits(cfg) * _TAG_MM2_PER_BIT
    tag_energy = _TAG_PJ_AT_4MB * math.sqrt(cap / (4 * MIB))
    return StructureCost(
        name="cache",
        data_mm2=data,
        metadata_mm2=tags,
        control_mm2=data * _CACHE_CTRL_OVERHEAD,
        energy_pj_per_access=_data_energy_pj(cap) + tag_energy,
    )


def chord_cost(cfg: AcceleratorConfig) -> StructureCost:
    """CHORD: data array + 64-entry RIFF index table + small controller.

    Hit detection reads one table entry and compares against
    ``end_chord`` — no per-line tag match — so per-access energy is the data
    access plus a sub-pJ table probe.  The controller is buffet-class.
    """
    cap = cfg.sram_bytes
    data = _data_area_mm2(cap)
    table = chord_table_bits(cfg) * _TAG_MM2_PER_BIT
    return StructureCost(
        name="chord",
        data_mm2=data,
        metadata_mm2=table,
        control_mm2=data * _BUFFET_CTRL_OVERHEAD,
        energy_pj_per_access=_data_energy_pj(cap) + _CHORD_TABLE_PJ + _BUFFET_CTRL_PJ,
    )


def all_structure_costs(cfg: AcceleratorConfig) -> Dict[str, StructureCost]:
    """Fig. 15's three structures (+ raw scratchpad for reference)."""
    return {
        c.name: c
        for c in (
            scratchpad_cost(cfg),
            buffet_cost(cfg),
            cache_cost(cfg),
            chord_cost(cfg),
        )
    }


def chord_metadata_ratio(cfg: AcceleratorConfig) -> float:
    """CHORD-table bits / cache-tag bits (paper: ~0.01x, Sec. VI-A)."""
    return chord_table_bits(cfg) / cache_tag_bits(cfg)


#: DRAM access energy, pJ per byte (off-chip channel + device).  Absolute
#: value only scales Fig. 14's y-axis; relative energies are ratios of DRAM
#: traffic.
DRAM_PJ_PER_BYTE = 20.0
