"""Accelerator architecture configuration (Table V + Table VII).

One :class:`AcceleratorConfig` instance parameterises every simulator and
cost model: buffer capacity, PE count, cache geometry, DRAM bandwidth and
CHORD's metadata table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

KIB = 1024
MIB = 1024 * 1024
GB = 1_000_000_000


@dataclass(frozen=True)
class AcceleratorConfig:
    """Hardware parameters of the modelled accelerator.

    Defaults reproduce Table V: 4 MB SRAM, 16384 MAC units, 16 B lines,
    8-way cache associativity, 1 GHz clock, 64-entry/512-bit RIFF index
    table.  Bandwidth defaults to 1 TB/s; Fig. 12/16 also use 250 GB/s.
    """

    sram_bytes: int = 4 * MIB
    n_macs: int = 16384
    line_bytes: int = 16
    cache_associativity: int = 8
    dram_bandwidth_bytes_per_s: float = 1000 * GB
    clock_hz: float = 1e9
    chord_entries: int = 64
    chord_entry_bits: int = 512
    #: Fraction of on-chip SRAM reserved for the explicit pipeline buffer +
    #: input staging when CHORD is active; the rest is CHORD's data array.
    #: SCORE sizes pipeline stages to a handful of tiles (Sec. V-C), so the
    #: reservation is small.
    pipeline_fraction: float = 0.125
    #: Register file bytes per PE cluster available to hold the small tensor
    #: of a skewed GEMM (Sec. V-B "the register file can store all of the
    #: small tensor").
    rf_bytes: int = 32 * KIB

    def __post_init__(self) -> None:
        if self.sram_bytes <= 0 or self.n_macs <= 0:
            raise ValueError("sram_bytes and n_macs must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        if self.cache_associativity <= 0:
            raise ValueError("associativity must be positive")
        if not (0.0 <= self.pipeline_fraction < 1.0):
            raise ValueError("pipeline_fraction must be in [0, 1)")

    # -- derived geometry -------------------------------------------------------

    @property
    def n_lines(self) -> int:
        return self.sram_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Cache sets when the SRAM is organised as a set-associative cache."""
        return self.n_lines // self.cache_associativity

    @property
    def chord_data_bytes(self) -> int:
        """CHORD data-array capacity (SRAM minus pipeline reservation)."""
        return int(self.sram_bytes * (1.0 - self.pipeline_fraction))

    @property
    def pipeline_buffer_bytes(self) -> int:
        return self.sram_bytes - self.chord_data_bytes

    # -- derived rates ------------------------------------------------------------

    @property
    def peak_macs_per_s(self) -> float:
        """Peak MAC throughput (one MAC per unit per cycle)."""
        return self.n_macs * self.clock_hz

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_bytes_per_s / self.clock_hz

    @property
    def ridge_ops_per_byte(self) -> float:
        """Roofline ridge point: minimum AI for compute-bound operation."""
        return self.peak_macs_per_s / self.dram_bandwidth_bytes_per_s

    # -- variants ------------------------------------------------------------------

    def with_bandwidth(self, bytes_per_s: float) -> "AcceleratorConfig":
        return replace(self, dram_bandwidth_bytes_per_s=bytes_per_s)

    def with_sram(self, sram_bytes: int) -> "AcceleratorConfig":
        return replace(self, sram_bytes=sram_bytes)

    def describe(self) -> str:
        return (
            f"AcceleratorConfig(SRAM={self.sram_bytes // MIB}MB, "
            f"MACs={self.n_macs}, line={self.line_bytes}B, "
            f"assoc={self.cache_associativity}, "
            f"BW={self.dram_bandwidth_bytes_per_s / GB:.0f}GB/s, "
            f"clock={self.clock_hz / 1e9:.1f}GHz)"
        )


def default_config(cfg: Optional[AcceleratorConfig]) -> AcceleratorConfig:
    """None-sentinel resolution: a fresh Table V config when ``cfg`` is None.

    Experiment/engine signatures take ``cfg: Optional[AcceleratorConfig] =
    None`` instead of a shared module-level default instance, so no two
    callers can ever alias (and accidentally share) one config object.
    """
    return AcceleratorConfig() if cfg is None else cfg


#: The paper's two evaluated bandwidth points (Table V).
BANDWIDTH_POINTS: Tuple[float, ...] = (250 * GB, 1000 * GB)

DEFAULT_CONFIG = AcceleratorConfig()
