"""Hardware configuration and cost models (Table V, Fig. 15, Fig. 8)."""

from .config import (
    BANDWIDTH_POINTS,
    DEFAULT_CONFIG,
    GB,
    KIB,
    MIB,
    AcceleratorConfig,
)
from .sram_model import (
    DRAM_PJ_PER_BYTE,
    StructureCost,
    all_structure_costs,
    buffet_cost,
    cache_cost,
    cache_tag_bits,
    chord_cost,
    chord_metadata_ratio,
    chord_table_bits,
    scratchpad_cost,
)
from .noc import (
    NocConfig,
    op_split_traffic_words,
    rank_split_traffic_words,
    traffic_advantage,
)

__all__ = [
    "BANDWIDTH_POINTS",
    "DEFAULT_CONFIG",
    "GB",
    "KIB",
    "MIB",
    "AcceleratorConfig",
    "DRAM_PJ_PER_BYTE",
    "StructureCost",
    "all_structure_costs",
    "buffet_cost",
    "cache_cost",
    "cache_tag_bits",
    "chord_cost",
    "chord_metadata_ratio",
    "chord_table_bits",
    "scratchpad_cost",
    "NocConfig",
    "op_split_traffic_words",
    "rank_split_traffic_words",
    "traffic_advantage",
]
