"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig12                # regenerate Fig. 12 (CG performance)
    python -m repro fig16a fig16c        # several at once
    python -m repro all                  # everything (minutes)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import (
    fig01_fig07_dag,
    fig02_roofline,
    fig08_multinode,
    fig12_cg_performance,
    fig13_gnn_bicgstab,
    fig14_energy,
    fig15_area_energy,
    fig16a_resnet,
    fig16b_sram_sweep,
    fig16c_prelude_only,
    sec6b_searchspace,
    table01_hpcg,
    table02_schedulers,
    table03_buffers,
)

EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig1": lambda: fig01_fig07_dag.report(),
    "fig2": lambda: fig02_roofline.report(),
    "fig7": lambda: fig01_fig07_dag.report(),
    "fig8": lambda: fig08_multinode.report(),
    "fig12": lambda: fig12_cg_performance.report(),
    "fig13": lambda: fig13_gnn_bicgstab.report(),
    "fig14": lambda: fig14_energy.report(),
    "fig15": lambda: fig15_area_energy.report(),
    "fig16a": lambda: fig16a_resnet.report(),
    "fig16b": lambda: fig16b_sram_sweep.report(),
    "fig16c": lambda: fig16c_prelude_only.report(),
    "table1": lambda: table01_hpcg.report(),
    "table2": lambda: table02_schedulers.report(),
    "table3": lambda: table03_buffers.report(),
    "sec6b": lambda: sec6b_searchspace.report(),
}

DESCRIPTIONS: Dict[str, str] = {
    "fig1": "CG tensor dependency DAG (text rendering, also covers fig7)",
    "fig2": "arithmetic intensity + roofline, regular vs skewed GEMM",
    "fig7": "Algorithm 2 output: dominance letters + dependency classes",
    "fig8": "multi-node NoC traffic: op split vs dominant-rank split",
    "fig12": "CG performance across datasets/N/bandwidth (main result)",
    "fig13": "GNN and BiCGStab performance",
    "fig14": "off-chip energy relative to the explicit baseline",
    "fig15": "area and energy of 4MB buffet/cache/CHORD",
    "fig16a": "ResNet residual block (with the SET baseline)",
    "fig16b": "CELLO vs CHORD capacity sweep",
    "fig16c": "PRELUDE-only configuration study",
    "table1": "HPCG vs HPL on top supercomputers",
    "table2": "scheduler capability matrix (live-verified)",
    "table3": "buffer mechanism matrix (live-verified)",
    "sec6b": "buffer-allocation search-space sizes",
}


def list_experiments() -> str:
    lines = ["Available experiments:"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:8s} {DESCRIPTIONS[name]}")
    return "\n".join(lines)


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the CELLO reproduction.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig12 table2), 'all', or 'list'",
    )
    args = parser.parse_args(argv)

    targets = args.experiments or ["list"]
    if targets == ["list"]:
        print(list_experiments())
        return 0
    if targets == ["all"]:
        targets = sorted(EXPERIMENTS)

    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(list_experiments(), file=sys.stderr)
        return 2

    seen = set()
    for t in targets:
        if t in seen:
            continue
        seen.add(t)
        print(f"=== {t}: {DESCRIPTIONS[t]} ===")
        print(EXPERIMENTS[t]())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
