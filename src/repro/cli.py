"""Command-line interface: regenerate any paper table/figure, run custom
sweeps, and manage the persistent result cache.

Usage::

    python -m repro list                 # show available experiments
    python -m repro list-workloads       # show every registered workload
    python -m repro fig12                # regenerate Fig. 12 (CG performance)
    python -m repro fig16a fig16c        # several at once
    python -m repro ext                  # extension families vs baselines
    python -m repro all --jobs 4         # everything, sweeps 4-wide
    python -m repro sweep --workloads 'cg/*' --configs Flexagon,CELLO
    python -m repro tune gmres/fv1/m=8/N=1 --strategy grid
    python -m repro cache stat           # persistent-cache hit counters
    python -m repro cache clear
    python -m repro bench --quick        # hot-path kernels -> BENCH_kernels.json
    python -m repro serve                # long-lived simulation service
    python -m repro gateway --shards 8643,8644,8645   # sharded fabric
    python -m repro submit --workloads 'cg/*' --configs CELLO
    python -m repro submit --tune gmres/fv1/m=8/N=1
    python -m repro jobs [--stats|--topology|--cancel ID|--shutdown]
    python -m repro metrics [--watch]    # live operational counters

Experiment and sweep runs read/write an on-disk result store
(``~/.cache/repro`` by default; override with ``--cache-dir`` or the
``REPRO_CACHE_DIR`` environment variable, disable with ``--no-cache``),
so repeat invocations replay simulations instead of re-running them.
``--jobs N`` fans uncached sweep points out over N worker processes;
reports are byte-identical to the serial path either way.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from .analysis.report import render_table
from .baselines import runner
from .baselines.configs import MAIN_CONFIGS, config_names
from .experiments import (
    ext_workloads,
    fig01_fig07_dag,
    fig02_roofline,
    fig08_multinode,
    fig12_cg_performance,
    fig13_gnn_bicgstab,
    fig14_energy,
    fig15_area_energy,
    fig16a_resnet,
    fig16b_sram_sweep,
    fig16c_prelude_only,
    sec6b_searchspace,
    table01_hpcg,
    table02_schedulers,
    table03_buffers,
    tune_study,
)
from .hw.config import GB, MIB
from .orchestrator import ResultStore, SweepSpec, run_sweep
from .workloads.registry import is_resolvable

#: Each experiment takes ``jobs`` (worker processes for its sweep; modules
#: without a sweep ignore it) and returns its report text.
EXPERIMENTS: Dict[str, Callable[[int], str]] = {
    "ext": lambda jobs: ext_workloads.report(jobs=jobs),
    "fig1": lambda jobs: fig01_fig07_dag.report(),
    "fig2": lambda jobs: fig02_roofline.report(),
    "fig7": lambda jobs: fig01_fig07_dag.report(),
    "fig8": lambda jobs: fig08_multinode.report(),
    "fig12": lambda jobs: fig12_cg_performance.report(jobs=jobs),
    "fig13": lambda jobs: fig13_gnn_bicgstab.report(jobs=jobs),
    "fig14": lambda jobs: fig14_energy.report(jobs=jobs),
    "fig15": lambda jobs: fig15_area_energy.report(),
    "fig16a": lambda jobs: fig16a_resnet.report(jobs=jobs),
    "fig16b": lambda jobs: fig16b_sram_sweep.report(jobs=jobs),
    "fig16c": lambda jobs: fig16c_prelude_only.report(jobs=jobs),
    "table1": lambda jobs: table01_hpcg.report(),
    "table2": lambda jobs: table02_schedulers.report(),
    "table3": lambda jobs: table03_buffers.report(),
    "sec6b": lambda jobs: sec6b_searchspace.report(),
    "autotune": lambda jobs: tune_study.report(jobs=jobs),
    "fidelity": lambda jobs: _fidelity_report(jobs),
}


def _fidelity_report(jobs: int) -> str:
    from .analysis.fidelity_report import report

    return report(jobs=jobs)

DESCRIPTIONS: Dict[str, str] = {
    "ext": "extension workloads (transformer/GMRES/multigrid) vs baselines",
    "fig1": "CG tensor dependency DAG (text rendering, also covers fig7)",
    "fig2": "arithmetic intensity + roofline, regular vs skewed GEMM",
    "fig7": "Algorithm 2 output: dominance letters + dependency classes",
    "fig8": "multi-node NoC traffic: op split vs dominant-rank split",
    "fig12": "CG performance across datasets/N/bandwidth (main result)",
    "fig13": "GNN and BiCGStab performance",
    "fig14": "off-chip energy relative to the explicit baseline",
    "fig15": "area and energy of 4MB buffet/cache/CHORD",
    "fig16a": "ResNet residual block (with the SET baseline)",
    "fig16b": "CELLO vs CHORD capacity sweep",
    "fig16c": "PRELUDE-only configuration study",
    "table1": "HPCG vs HPL on top supercomputers",
    "table2": "scheduler capability matrix (live-verified)",
    "table3": "buffer mechanism matrix (live-verified)",
    "sec6b": "buffer-allocation search-space sizes",
    "autotune": "co-design autotuning study: searched best vs fixed CELLO",
    "fidelity": "analytic model audit: predicted vs simulated DRAM traffic",
}


def list_experiments() -> str:
    lines = ["Available experiments:"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:8s} {DESCRIPTIONS[name]}")
    lines.append("")
    lines.append("Other commands:")
    lines.append("  list-workloads  show every registered workload name")
    lines.append("  sweep    run a custom (workload x config x sram x bw) sweep")
    lines.append("  tune     co-design autotuner: Pareto search per workload")
    lines.append("  cache    persistent result cache: stat | clear")
    lines.append("  bench    time simulator hot paths, write BENCH_kernels.json")
    lines.append("  serve    run the simulation service daemon (docs/service.md)")
    lines.append("  gateway  front N daemons as one sharded fabric endpoint")
    lines.append("  submit   send a sweep or tune job to a running service")
    lines.append("  jobs     list service jobs; --stats, --topology, "
                 "--cancel, --shutdown")
    lines.append("  metrics  live service counters: queue, dedup, rates; "
                 "--watch to poll")
    return "\n".join(lines)


def list_workloads() -> str:
    """Render the registry: every canonical workload name by family.

    These names are what ``repro sweep --workloads`` patterns match and
    what the result store keys on; ``docs/extending.md`` explains the
    name grammar for each family.
    """
    from .workloads.registry import all_workloads

    by_family: Dict[str, List[str]] = {}
    descriptions: Dict[str, str] = {}
    for name, w in all_workloads().items():
        by_family.setdefault(w.family, []).append(name)
        descriptions[name] = w.description
    lines = ["Registered workloads (see docs/workloads.md):"]
    for family, names in by_family.items():
        lines.append(f"  [{family}]")
        for n in names:
            lines.append(f"    {n:32s} {descriptions[n]}")
    return "\n".join(lines)


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent result-store directory (default ~/.cache/repro "
             "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result store",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for sweeps (0 = one per core; default 1)",
    )


def _install_store(args: argparse.Namespace) -> Optional[ResultStore]:
    if args.no_cache:
        runner.set_store(None)
        return None
    store = ResultStore(args.cache_dir)
    runner.set_store(store)
    return store


def _jobs_arg(args: argparse.Namespace) -> Optional[int]:
    return None if args.jobs == 0 else max(1, args.jobs)


def _run_experiments(args: argparse.Namespace) -> int:
    targets = args.experiments
    if targets == ["all"]:
        targets = sorted(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(list_experiments(), file=sys.stderr)
        return 2

    store = _install_store(args)
    jobs = _jobs_arg(args)
    try:
        seen = set()
        for t in targets:
            if t in seen:
                continue
            seen.add(t)
            print(f"=== {t}: {DESCRIPTIONS[t]} ===")
            print(EXPERIMENTS[t](jobs))
            print()
    finally:
        if store is not None:
            store.save_stats()
        runner.set_store(None)
    return 0


def _parse_floats(text: str) -> List[float]:
    return [float(x) for x in text.split(",") if x.strip()]


def _split_configs(text: str) -> List[str]:
    """Split a comma-separated config list, respecting brackets —
    ``CELLO[riff=0,retire=0]`` is one name, not two."""
    out: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "," and depth == 0:
            if current.strip():
                out.append(current.strip())
            current = ""
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth = max(0, depth - 1)
        current += ch
    if current.strip():
        out.append(current.strip())
    return out


def _check_configs(configs: List[str]) -> bool:
    """Validate Table IV config names; prints the error for the caller."""
    from .baselines.configs import unknown_config_error

    error = unknown_config_error(configs)
    if error is not None:
        print(error, file=sys.stderr)
        return False
    return True


def _sweep_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a custom (workload x config x SRAM x bandwidth) sweep.",
    )
    parser.add_argument(
        "--workloads", default="*", metavar="PATTERNS",
        help="comma-separated registry names or fnmatch patterns "
             "(e.g. 'cg/*,gnn/cora'; default: every registered workload)",
    )
    parser.add_argument(
        "--configs", default=",".join(MAIN_CONFIGS), metavar="NAMES",
        help=f"comma-separated Table IV configs (default: main five; "
             f"known: {', '.join(config_names())})",
    )
    parser.add_argument(
        "--sram-mb", default="", metavar="MBS",
        help="comma-separated SRAM sizes in MiB (default: 4)",
    )
    parser.add_argument(
        "--bandwidth-gb", default="", metavar="GBS",
        help="comma-separated DRAM bandwidths in GB/s (default: 1000)",
    )
    _add_cache_args(parser)
    args = parser.parse_args(argv)

    configs = _split_configs(args.configs)
    if not _check_configs(configs):
        return 2

    spec = SweepSpec(
        workloads=tuple(w for w in args.workloads.split(",") if w.strip()),
        configs=tuple(configs),
        sram_bytes=tuple(int(m * MIB) for m in _parse_floats(args.sram_mb)),
        bandwidths=tuple(g * GB for g in _parse_floats(args.bandwidth_gb)),
    )
    points = spec.points()
    if not points:
        print("sweep matched no (workload, config) points", file=sys.stderr)
        return 2
    bad = sorted({p.workload for p in points if not is_resolvable(p.workload)})
    if bad:
        from .workloads.registry import all_workloads

        print(f"unknown workload(s): {', '.join(bad)}; "
              f"known: {', '.join(sorted(all_workloads()))}", file=sys.stderr)
        return 2

    store = _install_store(args)
    try:
        results = run_sweep(spec, jobs=_jobs_arg(args))
    finally:
        if store is not None:
            store.save_stats()
        runner.set_store(None)

    rows = []
    for p, r in zip(points, results):
        rows.append([
            p.workload,
            p.config,
            p.cfg.sram_bytes / MIB,
            p.cfg.dram_bandwidth_bytes_per_s / GB,
            r.dram_bytes / 1e6,
            r.throughput_gmacs,
            "mem" if r.memory_bound else "compute",
        ])
    print(render_table(
        ["workload", "config", "SRAM MB", "BW GB/s", "DRAM MB", "GMAC/s", "bound"],
        rows,
        title=f"Sweep: {len(points)} points",
    ))
    return 0


def _tune_main(argv: List[str]) -> int:
    from .analysis.tuner_report import render_tune_result, tune_results_json
    from .tuner import STRATEGIES, TuneSpace, make_strategy, tune
    from .tuner.pareto import OBJECTIVES, DEFAULT_OBJECTIVES

    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="Search the co-design space (schedule knobs x CHORD/"
                    "hardware knobs) of one or more workloads and report "
                    "the Pareto frontier next to the fixed CELLO point.",
    )
    parser.add_argument(
        "workloads", nargs="+", metavar="WORKLOAD",
        help="registry workload name(s), e.g. gmres/fv1/m=8/N=1 "
             "(see 'repro list-workloads')",
    )
    parser.add_argument(
        "--strategy", default="grid", choices=sorted(STRATEGIES),
        help="search strategy (default grid — the spaces are small)",
    )
    parser.add_argument(
        "--budget", type=int, default=32, metavar="N",
        help="evaluation budget for random/halving (default 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="sampling seed for random/halving (default 0)",
    )
    parser.add_argument(
        "--objectives", default=",".join(DEFAULT_OBJECTIVES) + ",area",
        metavar="NAMES",
        help=f"comma-separated minimisation objectives, primary first "
             f"(known: {', '.join(OBJECTIVES)}; default runtime,dram,area)",
    )
    parser.add_argument(
        "--sram-mb", default="4,1", metavar="MBS",
        help="comma-separated SRAM capacities in MiB, paper point first "
             "(default 4,1)",
    )
    parser.add_argument(
        "--entries", default="64,16", metavar="NS",
        help="comma-separated RIFF index-table sizes, paper point first "
             "(default 64,16)",
    )
    parser.add_argument(
        "--include-baselines", action="store_true",
        help="add the Flex+LRU/BRRIP/SRRIP cache policies to the space",
    )
    parser.add_argument(
        "--fidelity", default="exact", choices=("exact", "analytic", "hybrid"),
        help="evaluation fidelity: exact simulates everything, analytic "
             "prices supported points by the closed-form model, hybrid "
             "simulates only the analytically non-dominated survivors "
             "(default exact; see docs/analytic.md)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the full results as JSON to PATH",
    )
    _add_cache_args(parser)
    args = parser.parse_args(argv)

    bad = [w for w in args.workloads if not is_resolvable(w)]
    if bad:
        print(f"unknown workload(s): {', '.join(bad)}; "
              "see 'repro list-workloads'", file=sys.stderr)
        return 2
    try:
        srams = tuple(int(m * MIB) for m in _parse_floats(args.sram_mb))
        entries = tuple(int(e) for e in _parse_floats(args.entries))
        space = TuneSpace(
            chord_entries=entries or (64,),
            sram_bytes=srams or (4 * MIB,),
            cache_policies=("LRU", "BRRIP", "SRRIP")
            if args.include_baselines else (),
        )
        objectives = tuple(
            n.strip() for n in args.objectives.split(",") if n.strip()
        )
    except ValueError as exc:
        print(f"invalid tune space: {exc}", file=sys.stderr)
        return 2

    store = _install_store(args)
    jobs = _jobs_arg(args)
    results = []
    try:
        for w in args.workloads:
            try:
                results.append(tune(
                    w, space=space,
                    strategy=make_strategy(args.strategy, budget=args.budget,
                                           seed=args.seed),
                    objectives=objectives, jobs=jobs,
                    fidelity=args.fidelity,
                ))
            except (KeyError, ValueError) as exc:
                print(f"tune failed for {w!r}: {exc}", file=sys.stderr)
                return 2
            print(render_tune_result(results[-1]))
            print()
    finally:
        if store is not None:
            store.save_stats()
        runner.set_store(None)
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(tune_results_json(results),
                                   encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


def _bench_main(argv: List[str]) -> int:
    from .analysis.kernel_bench import (
        DEFAULT_OUT, render_bench, run_kernel_bench, write_bench_json,
    )

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark the simulation hot paths (cache kernels, "
                    "CHORD events, engines) and record the results.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="~10x smaller workloads (CI smoke runs)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=DEFAULT_OUT,
        help=f"output JSON path (default ./{DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    report = run_kernel_bench(quick=args.quick)
    print(render_bench(report))
    path = write_bench_json(report, args.out)
    print(f"\nwrote {path}")
    return 0


def _cache_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the persistent result store.",
    )
    parser.add_argument("action", choices=("stat", "clear"))
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="store directory (default ~/.cache/repro or $REPRO_CACHE_DIR)",
    )
    args = parser.parse_args(argv)
    store = ResultStore(args.cache_dir)
    if args.action == "stat":
        print(store.describe())
    else:
        dropped = store.clear()
        print(f"cleared {dropped} cached result(s) from {store.directory}")
    return 0


def _add_service_addr_args(parser: argparse.ArgumentParser) -> None:
    from .service.protocol import DEFAULT_HOST, default_port

    parser.add_argument(
        "--host", default=DEFAULT_HOST, metavar="HOST",
        help=f"service address (default {DEFAULT_HOST})",
    )
    parser.add_argument(
        "--port", type=int, default=default_port(), metavar="PORT",
        help="service port (default $REPRO_SERVICE_PORT or 8642)",
    )


def _open_request_log(path: Optional[str]):
    if path is None:
        return None
    from .service import RequestLog

    return RequestLog.open(path)


def _serve_main(argv: List[str]) -> int:
    import asyncio

    from .service import SimulationService

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the simulation service: a long-lived daemon with "
                    "a resident result store and pre-warmed worker pool "
                    "(protocol/ops: docs/service.md).",
    )
    _add_service_addr_args(parser)
    parser.add_argument(
        "--jobs", "-j", type=int, default=0, metavar="N",
        help="simulation worker processes (0 = one per core; default 0)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent result-store directory (default ~/.cache/repro "
             "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve from memory only; nothing persists across restarts",
    )
    parser.add_argument(
        "--max-pending", type=int, default=1024, metavar="N",
        help="bounded simulation-queue depth (backpressure; default 1024)",
    )
    parser.add_argument(
        "--batch-window-ms", type=float, default=20.0, metavar="MS",
        help="how long the dispatcher waits to batch concurrent clients' "
             "points together (default 20)",
    )
    parser.add_argument(
        "--client-quota", type=int, default=None, metavar="N",
        help="per-client cap on queued points (default: the global "
             "--max-pending bound)",
    )
    parser.add_argument(
        "--bulk-threshold", type=int, default=64, metavar="N",
        help="untagged submissions larger than this schedule as bulk "
             "(sheddable) instead of interactive (default 64)",
    )
    parser.add_argument(
        "--client-weight", action="append", default=[], metavar="NAME=W",
        help="weighted round-robin share for a client id (repeatable; "
             "default weight 1)",
    )
    parser.add_argument(
        "--log-json", nargs="?", const="-", default=None, metavar="PATH",
        help="write one JSON line per served request to PATH "
             "(default stderr)",
    )
    parser.add_argument(
        "--prom-port", type=int, default=None, metavar="N",
        help="serve Prometheus text-format metrics on this port "
             "(GET /metrics; 0 picks a free port)",
    )
    parser.add_argument(
        "--phase-profile", action="store_true",
        help="time trace-gen / cache-kernel / CHORD-accounting phases "
             "per simulation and fold them into the metrics histograms",
    )
    args = parser.parse_args(argv)

    weights = {}
    for spec in args.client_weight:
        name, sep, value = spec.partition("=")
        if not sep or not name.strip():
            print(f"bad --client-weight {spec!r}: expected NAME=W",
                  file=sys.stderr)
            return 2
        try:
            weights[name.strip()] = int(value)
        except ValueError:
            print(f"bad --client-weight {spec!r}: weight must be an "
                  "integer", file=sys.stderr)
            return 2

    service = SimulationService(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        use_store=not args.no_cache,
        jobs=None if args.jobs == 0 else max(1, args.jobs),
        max_pending=args.max_pending,
        batch_window_s=args.batch_window_ms / 1000.0,
        quota=args.client_quota,
        weights=weights,
        bulk_threshold=args.bulk_threshold,
        request_log=_open_request_log(args.log_json),
        prom_port=args.prom_port,
        phase_profile=args.phase_profile,
    )
    try:
        asyncio.run(service.run(announce=print))
    except KeyboardInterrupt:
        print("repro service interrupted; shutting down", file=sys.stderr)
    except OSError as exc:
        print(f"cannot serve on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    return 0


def _gateway_main(argv: List[str]) -> int:
    import asyncio

    from .service import GatewayService, parse_shard_addrs

    parser = argparse.ArgumentParser(
        prog="repro gateway",
        description="Front N running 'repro serve' shards as one "
                    "endpoint: routes sweep points by consistent hash of "
                    "their traffic key, merges the result streams, and "
                    "requeues a dead shard's points onto the survivors "
                    "(topology/failure semantics: docs/service.md).",
    )
    _add_service_addr_args(parser)
    parser.add_argument(
        "--shards", required=True, metavar="ADDRS",
        help="comma-separated shard addresses (host:port, or bare port "
             "for localhost), e.g. '8643,8644,8645'",
    )
    parser.add_argument(
        "--replicas", type=int, default=64, metavar="N",
        help="virtual nodes per shard on the hash ring (default 64)",
    )
    parser.add_argument(
        "--health-interval", type=float, default=2.0, metavar="S",
        help="seconds between shard health pings (default 2)",
    )
    parser.add_argument(
        "--ping-timeout", type=float, default=5.0, metavar="S",
        help="health-ping timeout before a shard is marked down "
             "(default 5)",
    )
    parser.add_argument(
        "--shard-read-timeout", type=float, default=600.0, metavar="S",
        help="per-line read timeout on shard result streams; exceeding "
             "it requeues the shard's remaining points (default 600)",
    )
    parser.add_argument(
        "--log-json", nargs="?", const="-", default=None, metavar="PATH",
        help="write one JSON line per served request to PATH "
             "(default stderr)",
    )
    parser.add_argument(
        "--prom-port", type=int, default=None, metavar="N",
        help="serve Prometheus text-format metrics on this port "
             "(GET /metrics; 0 picks a free port)",
    )
    args = parser.parse_args(argv)

    try:
        shards = parse_shard_addrs(
            [s for s in args.shards.split(",") if s.strip()])
    except ValueError as exc:
        print(f"bad --shards: {exc}", file=sys.stderr)
        return 2
    gateway = GatewayService(
        shards,
        host=args.host,
        port=args.port,
        replicas=args.replicas,
        health_interval_s=args.health_interval,
        ping_timeout_s=args.ping_timeout,
        shard_read_timeout_s=args.shard_read_timeout,
        request_log=_open_request_log(args.log_json),
        prom_port=args.prom_port,
    )
    try:
        asyncio.run(gateway.run(announce=print))
    except KeyboardInterrupt:
        print("repro gateway interrupted; shutting down", file=sys.stderr)
    except OSError as exc:
        print(f"cannot serve on {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    return 0


def _submit_main(argv: List[str]) -> int:
    from .analysis.service_report import (
        summarize_sweep_outcome,
        sweep_outcome_rows,
    )
    from .service import JobFailed, ServiceClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a sweep (default) or tune job to a running "
                    "'repro serve' daemon and stream its results.",
    )
    _add_service_addr_args(parser)
    parser.add_argument(
        "--workloads", default=None, metavar="PATTERNS",
        help="comma-separated registry names or fnmatch patterns for a "
             "sweep job (e.g. 'cg/*,gnn/cora')",
    )
    parser.add_argument(
        "--configs", default=",".join(MAIN_CONFIGS), metavar="NAMES",
        help="comma-separated Table IV configs (default: main five)",
    )
    parser.add_argument(
        "--sram-mb", default="", metavar="MBS",
        help="comma-separated SRAM sizes in MiB (default: 4)",
    )
    parser.add_argument(
        "--bandwidth-gb", default="", metavar="GBS",
        help="comma-separated DRAM bandwidths in GB/s (default: 1000)",
    )
    parser.add_argument(
        "--tune", metavar="WORKLOAD", default=None,
        help="submit a tune job for this workload instead of a sweep",
    )
    parser.add_argument(
        "--strategy", default="grid", metavar="NAME",
        help="tune search strategy (default grid)",
    )
    parser.add_argument(
        "--budget", type=int, default=32, metavar="N",
        help="tune evaluation budget for random/halving (default 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="tune sampling seed (default 0)",
    )
    parser.add_argument(
        "--entries", default="64", metavar="NS",
        help="tune: comma-separated RIFF index-table sizes (default 64)",
    )
    parser.add_argument(
        "--tune-sram-mb", default="4", metavar="MBS",
        help="tune: comma-separated SRAM capacities in MiB (default 4)",
    )
    parser.add_argument(
        "--include-baselines", action="store_true",
        help="tune: add Flex+LRU/BRRIP/SRRIP cache policies to the space",
    )
    parser.add_argument(
        "--fidelity", default="exact",
        choices=("exact", "analytic", "hybrid"),
        help="tune: evaluation fidelity (default exact; analytic/hybrid "
             "need a protocol-v3 daemon)",
    )
    parser.add_argument(
        "--client", default=os.environ.get("REPRO_CLIENT"), metavar="ID",
        help="tenant id for fair scheduling and request logs "
             "(default $REPRO_CLIENT, else anonymous)",
    )
    parser.add_argument(
        "--priority", default=None, choices=("interactive", "bulk"),
        help="scheduling class; default: by size against the server's "
             "bulk threshold",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="mint a trace id for the submission (protocol v6): every "
             "hop it takes through the fabric logs the same trace_id, "
             "printed at the end for grepping the request logs",
    )
    args = parser.parse_args(argv)

    if args.tune is None and args.workloads is None:
        print("nothing to submit: pass --workloads PATTERNS (sweep) or "
              "--tune WORKLOAD", file=sys.stderr)
        return 2

    configs = _split_configs(args.configs)
    if args.tune is None and not _check_configs(configs):
        return 2

    def _on_retry(attempt: int, delay: float, exc: Exception) -> None:
        print(f"server overloaded ({exc}); retry {attempt} in "
              f"{delay:.1f}s", file=sys.stderr)

    try:
        with ServiceClient(host=args.host, port=args.port,
                           client_id=args.client,
                           trace=args.trace) as client:
            if args.tune is not None:
                from .analysis.tuner_report import render_tune_result
                from .tuner import TuneResult

                data = client.submit_tune(
                    args.tune,
                    strategy=args.strategy,
                    budget=args.budget,
                    seed=args.seed,
                    sram_mb=_parse_floats(args.tune_sram_mb) or [4.0],
                    entries=[int(e) for e in _parse_floats(args.entries)]
                    or [64],
                    include_baselines=args.include_baselines,
                    fidelity=args.fidelity,
                )
                print(render_tune_result(TuneResult.from_dict(data)))
                if client.last_trace_id is not None:
                    print(f"trace id: {client.last_trace_id}")
                return 0
            outcome = client.submit_sweep(
                workloads=[w for w in args.workloads.split(",")
                           if w.strip()],
                configs=configs,
                sram_mb=_parse_floats(args.sram_mb),
                bandwidth_gb=_parse_floats(args.bandwidth_gb),
                priority=args.priority,
                on_retry=_on_retry,
            )
    except (ServiceError, JobFailed) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2

    print(render_table(
        ["workload", "config", "SRAM MB", "BW GB/s", "DRAM MB", "GMAC/s",
         "bound"],
        sweep_outcome_rows(outcome.points),
        title=f"Sweep job {outcome.job_id}: {len(outcome.points)} points",
    ))
    print(summarize_sweep_outcome(outcome))
    if outcome.trace_id is not None:
        print(f"trace id: {outcome.trace_id}")
    return 0


def _jobs_main(argv: List[str]) -> int:
    from .analysis.service_report import (
        render_jobs,
        render_service_stats,
        render_topology,
    )
    from .service import ServiceClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="Inspect a running 'repro serve' daemon or 'repro "
                    "gateway': list jobs (default), show stats or "
                    "topology, cancel a job, or shut it down.",
    )
    _add_service_addr_args(parser)
    parser.add_argument(
        "--stats", action="store_true",
        help="show server throughput / store / pool counters instead",
    )
    parser.add_argument(
        "--topology", action="store_true",
        help="show what the endpoint is: a lone shard, or a gateway's "
             "ring and per-shard health",
    )
    parser.add_argument(
        "--cancel", metavar="JOB", default=None,
        help="cancel the given running job id",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the service to shut down cleanly",
    )
    args = parser.parse_args(argv)

    try:
        with ServiceClient(host=args.host, port=args.port) as client:
            if args.cancel is not None:
                client.cancel(args.cancel)
                print(f"cancelled {args.cancel}")
            elif args.shutdown:
                client.shutdown()
                print("service shutting down")
            elif args.topology:
                print(render_topology(client.topology()))
            elif args.stats:
                print(render_service_stats(client.stats()))
            else:
                print(render_jobs(client.jobs()))
    except ServiceError as exc:
        print(f"jobs query failed: {exc}", file=sys.stderr)
        return 2
    return 0


def _metrics_main(argv: List[str]) -> int:
    import json as json_mod
    import time

    from .analysis.service_report import render_metrics
    from .service import (
        ServiceClient,
        ServiceConnectionError,
        ServiceError,
        render_prometheus,
    )

    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Show a running daemon's or gateway's operational "
                    "counters: queue depth, dedup split, windowed "
                    "throughput rates, latency percentiles, store hit "
                    "rate, per-shard health.",
    )
    _add_service_addr_args(parser)
    parser.add_argument(
        "--watch", action="store_true",
        help="poll and re-render until interrupted (survives daemon "
             "restarts: reconnects and keeps polling)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between --watch polls (default 2)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw metrics message instead of the report",
    )
    parser.add_argument(
        "--prom", action="store_true",
        help="print the metrics in Prometheus text exposition format "
             "(same body a --prom-port scrape returns)",
    )
    args = parser.parse_args(argv)

    def render_once(client: "ServiceClient") -> None:
        msg = client.metrics()
        if args.prom:
            sys.stdout.write(render_prometheus(msg))
            sys.stdout.flush()
        elif args.json:
            print(json_mod.dumps(msg, indent=2, sort_keys=True))
        else:
            print(render_metrics(msg))

    def connect() -> "ServiceClient":
        return ServiceClient(host=args.host, port=args.port)

    client: "ServiceClient | None" = None
    try:
        # The first poll is strict: if nothing answers, fail like any
        # one-shot query would.
        client = connect()
        render_once(client)
        while args.watch:
            time.sleep(max(0.1, args.interval))
            print()
            try:
                if client is None:
                    client = connect()
                render_once(client)
            except (ServiceConnectionError, ServiceError) as exc:
                # Mid-watch death or restart: surface the role-aware
                # diagnosis (what to restart, what survives) once per
                # failed poll and keep polling — the daemon coming back
                # resumes the watch without user action.
                print(f"[watch] {exc}", file=sys.stderr)
                if client is not None:
                    client.close()
                    client = None
    except ServiceError as exc:
        print(f"metrics query failed: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    finally:
        if client is not None:
            client.close()
    return 0


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "list-workloads":
        print(list_workloads())
        return 0
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "tune":
        return _tune_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "gateway":
        return _gateway_main(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_main(argv[1:])
    if argv and argv[0] == "jobs":
        return _jobs_main(argv[1:])
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the CELLO reproduction.",
    )
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig12 table2), 'all', or 'list'; see "
             "also the 'sweep', 'tune', 'cache', 'bench', 'serve', "
             "'gateway', 'submit', 'jobs' and 'metrics' subcommands",
    )
    _add_cache_args(parser)
    args = parser.parse_args(argv)

    targets = args.experiments or ["list"]
    if targets == ["list"]:
        print(list_experiments())
        return 0
    args.experiments = targets
    return _run_experiments(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
