"""CHORD: hybrid implicit/explicit tensor-granularity buffering (Sec. VI)."""

from .hints import ReuseHints, TensorHints
from .metadata import ENTRY_BITS_USED, FIELD_BITS, RiffIndexTable, TensorEntry
from .prelude import FillDecision, prelude_fill
from .riff import Priority, RiffPolicy
from .buffer import ChordBuffer
from .timeline import occupancy_series, render_occupancy, traffic_audit

__all__ = [
    "ReuseHints",
    "TensorHints",
    "ENTRY_BITS_USED",
    "FIELD_BITS",
    "RiffIndexTable",
    "TensorEntry",
    "FillDecision",
    "prelude_fill",
    "Priority",
    "RiffPolicy",
    "ChordBuffer",
    "occupancy_series",
    "render_occupancy",
    "traffic_audit",
]
