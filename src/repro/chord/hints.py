"""The SCORE→CHORD interface: coarse-grained per-tensor reuse metadata.

CHORD is *hybrid*: placement/replacement decisions are made in hardware at
cycle level, but they consume high-level, per-tensor information computed
once by the software scheduler — global address range, reuse distance,
reuse frequency, and the list of future consuming operations (Sec. V-C,
Table III last row).  This module derives that metadata from the dependency
DAG; its size is O(nodes + edges), which is the whole point of Sec. VI-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.dag import TensorDag


@dataclass(frozen=True)
class TensorHints:
    """Reuse metadata for one tensor, as SCORE hands it to CHORD."""

    name: str
    total_bytes: int
    producer_index: Optional[int]       # program index of producing op (None = input)
    consumer_indices: Tuple[int, ...]   # sorted program indices of consumers
    is_program_output: bool

    @property
    def frequency(self) -> int:
        """Total reuse count (RIFF's ``Freq`` column, Fig. 10)."""
        return len(self.consumer_indices)

    @property
    def first_distance(self) -> Optional[int]:
        """Ops from production to first use (RIFF's ``Dist`` column)."""
        if not self.consumer_indices:
            return None
        born = self.producer_index if self.producer_index is not None else 0
        return self.consumer_indices[0] - born

    def next_use_after(self, op_index: int) -> Optional[int]:
        """First consumer strictly after ``op_index`` (None = dead)."""
        for c in self.consumer_indices:
            if c > op_index:
                return c
        return None

    def remaining_frequency(self, op_index: int) -> int:
        """Number of uses still ahead of ``op_index``."""
        return sum(1 for c in self.consumer_indices if c > op_index)

    def last_use(self) -> Optional[int]:
        return self.consumer_indices[-1] if self.consumer_indices else None


class ReuseHints:
    """Per-tensor :class:`TensorHints` for a whole program."""

    def __init__(self, by_tensor: Dict[str, TensorHints]) -> None:
        self._by_tensor = dict(by_tensor)

    @classmethod
    def from_dag(cls, dag: TensorDag) -> "ReuseHints":
        """Derive hints for every tensor of ``dag`` (program order)."""
        outputs = set(dag.program_outputs())
        hints: Dict[str, TensorHints] = {}
        for t in dag.tensors:
            producer = dag.producer_of(t.name)
            consumers = tuple(sorted(dag.op_index(c) for c in dag.consumers_of(t.name)))
            hints[t.name] = TensorHints(
                name=t.name,
                total_bytes=t.bytes,
                producer_index=dag.op_index(producer) if producer is not None else None,
                consumer_indices=consumers,
                is_program_output=t.name in outputs,
            )
        return cls(hints)

    def get(self, tensor: str) -> TensorHints:
        try:
            return self._by_tensor[tensor]
        except KeyError:
            raise KeyError(f"no hints for tensor {tensor!r}") from None

    def __contains__(self, tensor: str) -> bool:
        return tensor in self._by_tensor

    def __iter__(self):
        return iter(self._by_tensor.values())

    def __len__(self) -> int:
        return len(self._by_tensor)
