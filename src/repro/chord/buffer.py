"""CHORD: the hybrid implicit/explicit tensor-granularity buffer (Sec. VI).

The model is exact at byte granularity but O(tensors) per event, because
CHORD's own policies are defined on contiguous tensor *slices*:

* a tensor's resident bytes are always a **prefix** ``[0, resident_end)``
  of the tensor (PRELUDE keeps the head, spills/evicts the tail);
* dirty bytes are a prefix of the resident prefix: production writes the
  whole tensor dirty; evictions shrink from the tail (writing back the
  dirty overlap); read-miss refetches re-extend the prefix with *clean*
  bytes (DRAM already holds them).

Events are issued by the engine once per (operation, tensor) — a production
writes the whole tensor through PRELUDE/RIFF, a consumption reads it
(prefix hits, tail misses).  ``retire`` implements the explicit half of the
hybrid: SCORE knows each tensor's last consumer, so dead tensors free their
space without writeback, and program outputs drain to DRAM exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..buffers.base import BufferStats
from .hints import ReuseHints
from .metadata import RiffIndexTable, TensorEntry
from .prelude import prelude_fill
from .riff import RiffPolicy


@dataclass
class _Resident:
    entry: TensorEntry
    total: int
    resident_end: int = 0   # bytes of the tensor's head kept on-chip
    dirty_end: int = 0      # dirty prefix (<= resident_end)


class ChordBuffer:
    """PRELUDE + RIFF over a fixed-capacity data array.

    Parameters
    ----------
    capacity_bytes:
        Data-array capacity.
    hints:
        SCORE's per-tensor reuse metadata (:class:`ReuseHints`).
    use_riff:
        Disable for the PRELUDE-only configuration (Fig. 16c).
    table:
        Optional pre-built :class:`RiffIndexTable`; default 64×512 bit.
    base_addrs:
        Optional global base address per tensor (cosmetic — drives the
        index-table address fields; a bump allocator is used otherwise).
    record_history:
        Opt-in occupancy recorder: append ``(op_index, used_bytes)``
        samples after events, decimating 2:1 whenever ``history_limit``
        samples accumulate so memory stays bounded on million-event runs.
        Off by default — only the timeline renderer consumes it, and the
        engine opts in on the renderer's behalf.
    history_limit:
        Maximum retained samples when recording.

    Stats convention: ``hits``/``misses``/``accesses`` count **bytes** (the
    natural unit of slice-granularity events); ``dram_*_bytes`` are bytes as
    everywhere else.

    Occupancy is O(1) per event: ``used_bytes`` is an incrementally
    maintained counter (every resident-prefix change adjusts it), not a
    per-event sum over residents; :meth:`audit_used_bytes` recomputes the
    slow sum for invariant checks.
    """

    def __init__(
        self,
        capacity_bytes: int,
        hints: ReuseHints,
        use_riff: bool = True,
        table: Optional[RiffIndexTable] = None,
        base_addrs: Optional[Mapping[str, int]] = None,
        record_history: bool = False,
        history_limit: int = 8192,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if history_limit <= 1:
            raise ValueError("history_limit must be > 1")
        self.capacity_bytes = capacity_bytes
        self.hints = hints
        self.riff: Optional[RiffPolicy] = RiffPolicy(hints) if use_riff else None
        self.table = table if table is not None else RiffIndexTable()
        self.stats = BufferStats()
        self._resident: Dict[str, _Resident] = {}
        self._base_addrs = dict(base_addrs or {})
        self._bump = 0
        self._used_bytes = 0
        #: Per-tensor traffic attribution (bytes): hit / miss / spill /
        #: writeback — feeds the engine's audit report.
        self.per_tensor: Dict[str, Dict[str, int]] = {}
        #: Occupancy history: (op_index, used_bytes) samples — feeds the
        #: timeline renderer.  Empty unless ``record_history`` is set.
        self.history: list = []
        self._record_history = record_history
        self._history_limit = history_limit
        self._history_stride = 1
        self._event_count = 0

    def _account(self, tensor: str, field_name: str, nbytes: int) -> None:
        if nbytes <= 0:
            return
        rec = self.per_tensor.setdefault(
            tensor, {"hit": 0, "miss": 0, "spill": 0, "writeback": 0}
        )
        rec[field_name] += nbytes

    def _record(self, op_index: int) -> None:
        """Append an occupancy sample (decimating 2:1 at the size limit)."""
        if not self._record_history:
            return
        self._event_count += 1
        if self._event_count % self._history_stride:
            return
        self.history.append((op_index, self._used_bytes))
        if len(self.history) >= self._history_limit:
            # Keep every other sample; future events sample half as often.
            del self.history[::2]
            self._history_stride *= 2

    # -- occupancy ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def audit_used_bytes(self) -> int:
        """O(tensors) recomputation of occupancy (invariant checking only)."""
        return sum(r.resident_end for r in self._resident.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def resident_bytes(self, tensor: str) -> int:
        r = self._resident.get(tensor)
        return r.resident_end if r is not None else 0

    def is_tracked(self, tensor: str) -> bool:
        return tensor in self._resident

    # -- internals -----------------------------------------------------------------

    def _base_addr(self, tensor: str, total: int) -> int:
        if tensor not in self._base_addrs:
            self._base_addrs[tensor] = self._bump
            self._bump += total
        return self._base_addrs[tensor]

    def _track(self, tensor: str, total: int) -> Optional[_Resident]:
        r = self._resident.get(tensor)
        if r is not None:
            return r
        if len(self.table) >= self.table.n_entries:
            # Index table exhausted: the tensor cannot be tracked and
            # bypasses CHORD entirely (hardware has nowhere to put its
            # metadata).  SCORE's retirement keeps this from happening in
            # practice; the no-retire ablation exercises it.
            return None
        base = self._base_addr(tensor, total)
        entry = self.table.allocate(tensor, base, base + total)
        h = self.hints.get(tensor)
        entry.frequency = h.frequency
        entry.distance = h.first_distance or 0
        r = _Resident(entry=entry, total=total)
        self._resident[tensor] = r
        return r

    def _untrack(self, tensor: str) -> None:
        r = self._resident.pop(tensor, None)
        if r is not None:
            self._used_bytes -= r.resident_end
            self.table.release(tensor)

    def _evict_tail(self, victim: str, nbytes: int) -> int:
        """Shrink ``victim``'s resident prefix from the tail.

        Dirty evicted bytes are written back to DRAM.  Returns bytes freed.
        """
        r = self._resident[victim]
        take = min(nbytes, r.resident_end)
        if take <= 0:
            return 0
        new_end = r.resident_end - take
        writeback = max(0, r.dirty_end - new_end)
        if writeback:
            self.stats.dram_write_bytes += writeback
            self.stats.writebacks += writeback
            self._account(victim, "writeback", writeback)
        r.resident_end = new_end
        r.dirty_end = min(r.dirty_end, new_end)
        r.entry.end_chord = r.entry.start_tensor + new_end
        self._used_bytes -= take
        self.stats.evictions += take
        if r.resident_end == 0:
            self._untrack(victim)
        return take

    def _insert(self, tensor: str, nbytes: int, op_index: int, dirty: bool) -> int:
        """PRELUDE fill with RIFF steals; returns bytes made resident."""
        r = self._track(tensor, self.hints.get(tensor).total_bytes)
        if r is None:
            return 0  # untracked (table full): everything bypasses to DRAM
        decision = prelude_fill(nbytes, self.free_bytes)
        inserted = decision.inserted
        remaining = decision.spilled
        # RIFF: displace lower-priority tensors' tails to keep filling.
        while remaining > 0 and self.riff is not None:
            victim = self.riff.select_victim(
                resident=list(self._resident), incoming=tensor, op_index=op_index
            )
            if victim is None:
                break
            freed = self._evict_tail(victim, remaining)
            if freed == 0:
                break
            inserted += freed
            remaining -= freed
        if inserted:
            r.resident_end += inserted
            self._used_bytes += inserted
            if dirty:
                r.dirty_end = r.resident_end
            r.entry.end_chord = r.entry.start_tensor + r.resident_end
            if r.resident_end > r.total:
                raise AssertionError(
                    f"resident bytes {r.resident_end} exceed tensor size {r.total}"
                )
        if r.resident_end == 0:
            self._untrack(tensor)
        return inserted

    # -- events ---------------------------------------------------------------------

    def write(self, tensor: str, op_index: int, nbytes: Optional[int] = None,
              dirty: bool = True) -> int:
        """Production of ``tensor`` at program position ``op_index``.

        The head fills on-chip (free space first, then RIFF steals); the
        spilled tail goes straight to DRAM (PRELUDE).  Returns the number of
        bytes that became resident.
        """
        h = self.hints.get(tensor)
        n = h.total_bytes if nbytes is None else nbytes
        if n < 0:
            raise ValueError("write bytes must be non-negative")
        self.stats.accesses += n
        inserted = self._insert(tensor, n, op_index, dirty=dirty)
        spilled = n - inserted
        if spilled and dirty:
            self.stats.dram_write_bytes += spilled
            self._account(tensor, "spill", spilled)
        if self.is_tracked(tensor):
            self._resident[tensor].entry.record_access(hit=spilled == 0)
        self._record(op_index)
        return inserted

    def read(self, tensor: str, op_index: int, nbytes: Optional[int] = None,
             reinsert: bool = True) -> int:
        """Consumption of ``tensor`` by the op at ``op_index``.

        The resident prefix hits; the tail is fetched from DRAM.  Missed
        bytes are offered back to PRELUDE (clean) when the tensor still has
        uses after this op and ``reinsert`` is enabled.  Returns hit bytes.
        """
        h = self.hints.get(tensor)
        n = h.total_bytes if nbytes is None else nbytes
        if n < 0:
            raise ValueError("read bytes must be non-negative")
        r = self._resident.get(tensor)
        hit = min(n, r.resident_end) if r is not None else 0
        miss = n - hit
        self.stats.accesses += n
        self.stats.hits += hit
        self.stats.misses += miss
        self._account(tensor, "hit", hit)
        if miss:
            self.stats.dram_read_bytes += miss
            self._account(tensor, "miss", miss)
            if reinsert and h.next_use_after(op_index) is not None:
                self._insert(tensor, miss, op_index, dirty=False)
        if self.is_tracked(tensor):
            self._resident[tensor].entry.record_access(hit=miss == 0)
        self._record(op_index)
        return hit

    # -- explicit lifetime management (the hybrid's explicit half) --------------------

    def retire(self, tensor: str) -> None:
        """Free a tensor whose last consumer has run.

        Program outputs drain their dirty resident bytes to DRAM; dead
        intermediates are discarded without traffic.
        """
        r = self._resident.get(tensor)
        if r is None:
            return
        h = self.hints.get(tensor)
        if h.is_program_output and r.dirty_end:
            self.stats.dram_write_bytes += r.dirty_end
            self.stats.writebacks += r.dirty_end
            self._account(tensor, "writeback", r.dirty_end)
        self._untrack(tensor)

    def finalize(self) -> None:
        """End of program: drain every remaining dirty program output."""
        for name in list(self._resident):
            self.retire(name)

    def describe(self) -> str:
        lines = [
            f"ChordBuffer({self.used_bytes}/{self.capacity_bytes} B used, "
            f"{len(self._resident)} tensors, riff={'on' if self.riff else 'off'})"
        ]
        for name, r in sorted(self._resident.items()):
            lines.append(
                f"  {name}: resident {r.resident_end}/{r.total} B "
                f"(dirty {r.dirty_end}), end_chord={r.entry.end_chord:#x}"
            )
        return "\n".join(lines)
