"""RIFF: tensor-granularity replacement by reuse distance and frequency.

PRELUDE alone never displaces anything, so a tensor with a *far* next use
(X, reused one full CG iteration later) can squat in the buffer while a
tensor reused *sooner and more often* (R, reused at lines 5 and 7 of the
same iteration) is forced to DRAM.  RIFF fixes this by ranking resident
tensors by (next-use distance, remaining frequency) and evicting the tail
of the lowest-priority one to make room (Fig. 9 right, Sec. VI-A).

Replacement is at operand granularity: victims lose bytes from their *tail*
(the portion re-referenced last), never their head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .hints import ReuseHints


@dataclass(frozen=True)
class Priority:
    """Orderable priority of a tensor at a given point in the program.

    Higher compares greater.  Dead tensors (no next use) rank below
    everything; among live tensors a *smaller* next-use distance wins and
    remaining frequency breaks ties — keep what is needed soonest/most.
    """

    next_use_distance: Optional[int]   # ops until next use; None = dead
    remaining_frequency: int

    def key(self) -> Tuple[int, float, int]:
        if self.next_use_distance is None:
            return (0, 0.0, 0)
        return (1, -float(self.next_use_distance), self.remaining_frequency)

    def __lt__(self, other: "Priority") -> bool:
        return self.key() < other.key()

    def __le__(self, other: "Priority") -> bool:
        return self.key() <= other.key()


class RiffPolicy:
    """Victim selection over resident tensors using SCORE hints."""

    name = "riff"

    def __init__(self, hints: ReuseHints) -> None:
        self.hints = hints

    def priority(self, tensor: str, op_index: int) -> Priority:
        h = self.hints.get(tensor)
        nxt = h.next_use_after(op_index)
        return Priority(
            next_use_distance=None if nxt is None else nxt - op_index,
            remaining_frequency=h.remaining_frequency(op_index),
        )

    def select_victim(
        self,
        resident: Iterable[str],
        incoming: str,
        op_index: int,
    ) -> Optional[str]:
        """Lowest-priority resident tensor strictly below the incoming one.

        Returns None when no resident tensor may be displaced — in that case
        PRELUDE spills the incoming tensor's remainder to DRAM ("if the
        requested tensor has lower priority than all the other tensors in
        CHORD, the tensor is sent straight to DRAM").
        """
        incoming_priority = self.priority(incoming, op_index)
        best_name: Optional[str] = None
        best_priority: Optional[Priority] = None
        for name in resident:
            if name == incoming:
                continue  # a tensor never victimises itself (Fig. 10)
            p = self.priority(name, op_index)
            if best_priority is None or p < best_priority:
                best_priority = p
                best_name = name
        if best_name is None or best_priority is None:
            return None
        if best_priority < incoming_priority:
            return best_name
        return None
