"""The RIFF index table (Fig. 10).

CHORD's only metadata is one entry per tensor — not one tag per line.  An
entry packs: tensor ID, the tensor's global start/end addresses, the
``end_chord`` address (end of the resident slice), the start/end *indices*
of the slice inside the data array, a 64-bit re-reference history, and the
reuse frequency/distance fields from SCORE.  The paper budgets 512 bits per
entry × 64 entries (Table V), which is ~0.01× the tag array of an
equivalently sized cache.

Hit detection needs no search: tensors are contiguous and ordered, so
``hit := req.addr < end_chord[req.id]`` and the data-array index is
``(req.addr - start_tensor) + start_index`` — one table read, one compare,
one add (Sec. VI-B "lower complexity").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: Bit budget per metadata field, summing to < 512 (Table V entry width).
FIELD_BITS = {
    "tensor_id": 8,          # 64 entries needs 6; rounded to a byte
    "start_tensor": 40,      # global byte address
    "end_tensor": 40,
    "end_chord": 40,         # global address one past the resident slice
    "start_index": 24,       # data-array line index of the slice start
    "end_index": 24,
    "reref_history": 64,     # per-op re-reference bitvector (Fig. 10)
    "frequency": 16,
    "distance": 16,
}

ENTRY_BITS_USED = sum(FIELD_BITS.values())


@dataclass
class TensorEntry:
    """One RIFF-index-table row."""

    tensor_id: int
    name: str
    start_tensor: int          # global byte address of tensor start
    end_tensor: int            # global byte address one past tensor end
    end_chord: int             # one past the resident prefix (== start => empty)
    start_index: int = 0       # data-array byte index of slice start
    end_index: int = 0         # data-array byte index one past slice end
    reref_history: int = 0     # rolling 64-bit access history
    frequency: int = 0         # remaining reuse count (SCORE hint)
    distance: int = 0          # ops to next use (SCORE hint)

    @property
    def resident_bytes(self) -> int:
        return self.end_chord - self.start_tensor

    @property
    def total_bytes(self) -> int:
        return self.end_tensor - self.start_tensor

    def is_hit(self, addr: int) -> bool:
        """Fig. 10 hit rule: request address below ``end_chord``."""
        return self.start_tensor <= addr < self.end_chord

    def local_index(self, addr: int) -> int:
        """Data-array position of a hit (no tag search)."""
        if not self.is_hit(addr):
            raise ValueError(f"address {addr:#x} is not resident for {self.name!r}")
        return (addr - self.start_tensor) + self.start_index

    def record_access(self, hit: bool) -> None:
        self.reref_history = ((self.reref_history << 1) | (1 if hit else 0)) & ((1 << 64) - 1)


class RiffIndexTable:
    """Fixed-capacity table of :class:`TensorEntry` rows.

    Mirrors the hardware constraint: at most ``n_entries`` tensors can be
    tracked concurrently; allocating past that raises (SCORE's coarse
    steering keeps the count at DAG scale, ~10²).
    """

    def __init__(self, n_entries: int = 64, entry_bits: int = 512) -> None:
        if n_entries <= 0:
            raise ValueError("table needs at least one entry")
        if entry_bits < ENTRY_BITS_USED:
            raise ValueError(
                f"entry width {entry_bits} bits cannot pack the "
                f"{ENTRY_BITS_USED} bits of metadata fields"
            )
        self.n_entries = n_entries
        self.entry_bits = entry_bits
        self._entries: Dict[str, TensorEntry] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[TensorEntry]:
        return iter(self._entries.values())

    @property
    def total_bits(self) -> int:
        return self.n_entries * self.entry_bits

    def get(self, name: str) -> TensorEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(f"tensor {name!r} has no index-table entry") from None

    def allocate(self, name: str, start_tensor: int, end_tensor: int) -> TensorEntry:
        if name in self._entries:
            raise ValueError(f"tensor {name!r} already tracked")
        if len(self._entries) >= self.n_entries:
            raise RuntimeError(
                f"RIFF index table full ({self.n_entries} entries); "
                "SCORE must retire tensors before tracking more"
            )
        entry = TensorEntry(
            tensor_id=self._next_id,
            name=name,
            start_tensor=start_tensor,
            end_tensor=end_tensor,
            end_chord=start_tensor,
        )
        self._next_id += 1
        self._entries[name] = entry
        return entry

    def release(self, name: str) -> None:
        if name not in self._entries:
            raise KeyError(f"tensor {name!r} has no index-table entry")
        del self._entries[name]
