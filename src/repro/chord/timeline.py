"""CHORD occupancy timeline rendering.

The buffer records ``(op_index, used_bytes)`` after every event; this
module renders that history as an ASCII occupancy chart and produces the
per-tensor traffic audit — the observability layer a user of the real
hardware's performance counters would want.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.report import render_table
from .buffer import ChordBuffer


def occupancy_series(chord: ChordBuffer, buckets: int = 60) -> List[Tuple[int, int]]:
    """Downsample the event history to ``buckets`` (op_index, max used)."""
    if not chord.history:
        return []
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    n = len(chord.history)
    step = max(1, -(-n // buckets))  # ceil division: at most ``buckets`` points
    out: List[Tuple[int, int]] = []
    for i in range(0, n, step):
        window = chord.history[i: i + step]
        out.append((window[0][0], max(u for _, u in window)))
    return out


def render_occupancy(chord: ChordBuffer, width: int = 60, height: int = 10) -> str:
    """ASCII occupancy-over-time chart (one column per time bucket)."""
    series = occupancy_series(chord, buckets=width)
    if not series:
        return "(no CHORD events recorded)"
    cap = chord.capacity_bytes
    cols = [min(height, round(height * u / cap)) for _, u in series]
    lines: List[str] = []
    for level in range(height, 0, -1):
        row = "".join("#" if c >= level else " " for c in cols)
        pct = 100 * level / height
        lines.append(f"{pct:5.0f}% |{row}|")
    lines.append("       " + "-" * (len(cols) + 2))
    first, last = series[0][0], series[-1][0]
    lines.append(f"       op {first} .. op {last}  (capacity {cap} B)")
    return "\n".join(lines)


def traffic_audit(chord: ChordBuffer, top: int = 15) -> str:
    """Per-tensor DRAM attribution, heaviest offenders first."""
    rows = []
    for name, rec in chord.per_tensor.items():
        dram = rec["miss"] + rec["spill"] + rec["writeback"]
        total = rec["hit"] + rec["miss"]
        hit_rate = rec["hit"] / total if total else 1.0
        rows.append((dram, [
            name, rec["hit"] / 1e6, rec["miss"] / 1e6,
            rec["spill"] / 1e6, rec["writeback"] / 1e6, hit_rate,
        ]))
    rows.sort(key=lambda r: -r[0])
    return render_table(
        ["tensor", "hit MB", "miss MB", "spill MB", "writeback MB", "hit rate"],
        [r for _, r in rows[:top]],
        title="CHORD per-tensor traffic audit (heaviest DRAM first)",
    )
