"""PRELUDE: head-first fill with tail spill (Fig. 9 left).

A tensor is written in queue order; once the buffer is full the *remaining*
portion goes straight to DRAM.  The resident part is therefore always a
contiguous **prefix** (head) of the tensor — the part that will be
re-referenced first on the next sequential pass — in stark contrast to LRU,
which retains the most-recently-touched *tail* of a scan (Fig. 11 step 1).

The controller also handles read misses: missed bytes are fetched from DRAM
and offered back through the same fill path (clean), extending the prefix
when space (or a RIFF victim) allows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FillDecision:
    """How many bytes of an insertion became resident vs spilled."""

    inserted: int
    spilled: int

    def __post_init__(self) -> None:
        if self.inserted < 0 or self.spilled < 0:
            raise ValueError("fill decision bytes must be non-negative")


def prelude_fill(request_bytes: int, free_bytes: int) -> FillDecision:
    """Pure PRELUDE arithmetic: fill what fits, spill the rest.

    This is the no-replacement core; :class:`~repro.chord.buffer.ChordBuffer`
    layers RIFF steals on top when the free space runs out.
    """
    if request_bytes < 0 or free_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    inserted = min(request_bytes, free_bytes)
    return FillDecision(inserted=inserted, spilled=request_bytes - inserted)
