"""Simulation-as-a-service: a resident daemon over the warm result store.

Every ``repro`` CLI entry point is a one-shot process that pays pool
spawn and store load per invocation.  This package turns the repro into
a long-lived server instead:

* :class:`~repro.service.server.SimulationService` — asyncio daemon
  holding one persistent :class:`~repro.orchestrator.store.ResultStore`
  and one pre-warmed orchestrator pool, with single-flight dedup of
  concurrent identical points, cross-client batching, streamed progress,
  cancellation and bounded-queue backpressure;
* :class:`~repro.service.gateway.GatewayService` — the sharded-fabric
  gateway (``repro gateway``): consistent-hash routing of sweep points
  across N daemons, merged byte-identical result streams, shard health
  checks with requeue-on-death;
* :mod:`~repro.service.hashing` — the consistent-hash ring the gateway
  routes on;
* :mod:`~repro.service.protocol` — the JSON-lines wire protocol;
* :class:`~repro.service.client.ServiceClient` — blocking client used by
  ``repro submit`` / ``repro jobs`` (a gateway and a lone daemon are
  indistinguishable to it);
* :mod:`~repro.service.jobs` — job lifecycle records.

Quickstart::

    $ python -m repro serve --port 8642 &
    $ python -m repro submit --workloads 'cg/*' --configs Flexagon,CELLO
    $ python -m repro submit --workloads 'cg/*' --configs Flexagon,CELLO
      # warm resubmit: "simulations: 0"
    $ python -m repro jobs --shutdown

See ``docs/service.md`` for the full protocol and operations guide.
"""

from .client import (
    JobFailed,
    Overloaded,
    PointResult,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    SweepOutcome,
)
from .gateway import GatewayService, ShardState, parse_shard_addrs
from .hashing import DEFAULT_REPLICAS, EmptyRing, HashRing, stable_hash
from .jobs import Job, JobRegistry, JobState
from .metrics import RateMeter
from .protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ERROR_OVERLOADED,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    default_port,
)
from .reqlog import RequestLog
from .scheduling import FairQueue, classify_priority
from .server import SimulationService

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_REPLICAS",
    "ERROR_OVERLOADED",
    "EmptyRing",
    "FairQueue",
    "GatewayService",
    "HashRing",
    "Job",
    "JobFailed",
    "JobRegistry",
    "JobState",
    "MAX_LINE_BYTES",
    "Overloaded",
    "PROTOCOL_VERSION",
    "PointResult",
    "ProtocolError",
    "RateMeter",
    "RequestLog",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ShardState",
    "SimulationService",
    "SweepOutcome",
    "classify_priority",
    "default_port",
    "parse_shard_addrs",
    "stable_hash",
]
