"""Simulation-as-a-service: a resident daemon over the warm result store.

Every ``repro`` CLI entry point is a one-shot process that pays pool
spawn and store load per invocation.  This package turns the repro into
a long-lived server instead:

* :class:`~repro.service.server.SimulationService` — asyncio daemon
  holding one persistent :class:`~repro.orchestrator.store.ResultStore`
  and one pre-warmed orchestrator pool, with single-flight dedup of
  concurrent identical points, cross-client batching, streamed progress,
  cancellation and bounded-queue backpressure;
* :class:`~repro.service.gateway.GatewayService` — the sharded-fabric
  gateway (``repro gateway``): consistent-hash routing of sweep points
  across N daemons, merged byte-identical result streams, shard health
  checks with requeue-on-death;
* :mod:`~repro.service.hashing` — the consistent-hash ring the gateway
  routes on;
* :mod:`~repro.service.protocol` — the JSON-lines wire protocol;
* :class:`~repro.service.client.ServiceClient` — blocking client used by
  ``repro submit`` / ``repro jobs`` (a gateway and a lone daemon are
  indistinguishable to it);
* :mod:`~repro.service.jobs` — job lifecycle records;
* :mod:`~repro.service.tracing` — trace/span ids propagated through
  every fabric hop (protocol v6) and stamped into request logs;
* :mod:`~repro.service.metrics` — rate meters and log-bucketed latency
  histograms behind the ``metrics`` op;
* :mod:`~repro.service.promexport` — Prometheus text-format rendering
  of the metrics snapshot, served by ``--prom-port``.

Quickstart::

    $ python -m repro serve --port 8642 &
    $ python -m repro submit --workloads 'cg/*' --configs Flexagon,CELLO
    $ python -m repro submit --workloads 'cg/*' --configs Flexagon,CELLO
      # warm resubmit: "simulations: 0"
    $ python -m repro jobs --shutdown

See ``docs/service.md`` for the full protocol and operations guide.
"""

from .client import (
    JobFailed,
    Overloaded,
    PointResult,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    SweepOutcome,
)
from .gateway import GatewayService, ShardState, parse_shard_addrs
from .hashing import DEFAULT_REPLICAS, EmptyRing, HashRing, stable_hash
from .jobs import Job, JobRegistry, JobState, workload_family
from .metrics import DEFAULT_BUCKETS, Histogram, HistogramFamily, RateMeter
from .promexport import PROM_CONTENT_TYPE, PromExporter, render_prometheus
from .protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ERROR_OVERLOADED,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    default_port,
)
from .reqlog import RequestLog
from .scheduling import FairQueue, classify_priority
from .server import SimulationService
from .tracing import SpanContext, attach_trace, parse_trace_fields

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_REPLICAS",
    "ERROR_OVERLOADED",
    "EmptyRing",
    "FairQueue",
    "GatewayService",
    "HashRing",
    "Histogram",
    "HistogramFamily",
    "Job",
    "JobFailed",
    "JobRegistry",
    "JobState",
    "MAX_LINE_BYTES",
    "Overloaded",
    "PROM_CONTENT_TYPE",
    "PROTOCOL_VERSION",
    "PointResult",
    "PromExporter",
    "ProtocolError",
    "RateMeter",
    "RequestLog",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ShardState",
    "SimulationService",
    "SpanContext",
    "SweepOutcome",
    "attach_trace",
    "classify_priority",
    "default_port",
    "parse_shard_addrs",
    "parse_trace_fields",
    "render_prometheus",
    "stable_hash",
    "workload_family",
]
