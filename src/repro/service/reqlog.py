"""Structured JSON request logging (``--log-json``).

One JSON line per served request, written as it finishes: who asked
(``client``), what (``op``), how much work it was (``points`` /
``sims`` / ``hits`` / ``coalesced``), how long it took (``latency_s``)
and how it ended (``outcome``: ``ok``, ``done``, ``failed``,
``cancelled`` or ``shed``, plus ``error`` when there is one).  The
format is grep/jq-friendly by construction — no multi-line records, no
prose.

Writes happen from the event loop *and* from CLI teardown paths, so a
lock guards the stream; each record is flushed immediately (the log is
an operational signal, not a buffer to lose in a crash).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Dict, Optional


class RequestLog:
    """Append-only JSON-lines request log over one text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    @classmethod
    def open(cls, path: str) -> "RequestLog":
        """``-`` logs to stderr; anything else appends to that file."""
        if path == "-":
            return cls(sys.stderr)
        return cls(open(path, "a", encoding="utf-8"))

    def log(self, op: str, *,
            client: Optional[str] = None,
            job: Optional[str] = None,
            points: Optional[int] = None,
            sims: Optional[int] = None,
            hits: Optional[int] = None,
            coalesced: Optional[int] = None,
            latency_s: Optional[float] = None,
            outcome: str = "ok",
            error: Optional[str] = None) -> None:
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "client": client or "anon",
            "op": op,
        }
        if job is not None:
            record["job"] = job
        for name, value in (("points", points), ("sims", sims),
                            ("hits", hits), ("coalesced", coalesced)):
            if value is not None:
                record[name] = int(value)
        if latency_s is not None:
            record["latency_s"] = round(float(latency_s), 6)
        record["outcome"] = outcome
        if error is not None:
            record["error"] = error
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            try:
                self._stream.write(line)
                self._stream.flush()
            except (OSError, ValueError):
                pass  # a dead log stream must never take the service down
