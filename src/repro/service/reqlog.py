"""Structured JSON request logging (``--log-json``).

One JSON line per served request, written as it finishes: who asked
(``client``), what (``op``), how much work it was (``points`` /
``sims`` / ``hits`` / ``coalesced``), how long it took (``duration_s``)
and how it ended (``outcome``: ``ok``, ``done``, ``failed``,
``cancelled`` or ``shed``, plus ``error`` when there is one).  Traced
requests (protocol v6, :mod:`repro.service.tracing`) additionally carry
``trace_id`` / ``span_id`` / ``parent_span``, so one ``grep trace_id``
across the fabric's logs reconstructs a request's hop tree.  The format
is grep/jq-friendly by construction — no multi-line records, no prose.

Two clock domains, deliberately explicit: ``ts`` is *wall-clock*
(``time.time()``) — for humans and for correlating records across
machines — while ``duration_s`` is derived from ``time.monotonic()``
deltas measured around the request.  Never compute a latency by
subtracting two records' ``ts`` values: wall clocks step under NTP and
the two numbers may straddle an adjustment.  ``duration_s`` is the
latency; ``ts`` is only when-roughly-did-this-happen.

Writes happen from the event loop *and* from CLI teardown paths, so a
lock guards the stream; each record is flushed immediately (the log is
an operational signal, not a buffer to lose in a crash).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Dict, Mapping, Optional


class RequestLog:
    """Append-only JSON-lines request log over one text stream."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    @classmethod
    def open(cls, path: str) -> "RequestLog":
        """``-`` logs to stderr; anything else appends to that file."""
        if path == "-":
            return cls(sys.stderr)
        return cls(open(path, "a", encoding="utf-8"))

    def log(self, op: str, *,
            client: Optional[str] = None,
            job: Optional[str] = None,
            points: Optional[int] = None,
            sims: Optional[int] = None,
            hits: Optional[int] = None,
            coalesced: Optional[int] = None,
            duration_s: Optional[float] = None,
            trace: Optional[Mapping[str, str]] = None,
            outcome: str = "ok",
            error: Optional[str] = None) -> None:
        record: Dict[str, object] = {
            # Wall clock, for cross-machine correlation only — latency
            # math belongs to duration_s (monotonic-derived).
            "ts": round(time.time(), 6),
            "client": client or "anon",
            "op": op,
        }
        if trace:
            record.update(trace)
        if job is not None:
            record["job"] = job
        for name, value in (("points", points), ("sims", sims),
                            ("hits", hits), ("coalesced", coalesced)):
            if value is not None:
                record[name] = int(value)
        if duration_s is not None:
            record["duration_s"] = round(float(duration_s), 6)
        record["outcome"] = outcome
        if error is not None:
            record["error"] = error
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            try:
                self._stream.write(line)
                self._stream.flush()
            except (OSError, ValueError):
                pass  # a dead log stream must never take the service down
