"""Live service counters: windowed rate meters for the ``metrics`` op.

The service tier's throughput claims (sims/s, points/s, analytic
evals/s) are exported *from the serving loop* rather than reconstructed
from job tables after the fact.  A :class:`RateMeter` is the primitive:
an append-only event log pruned to a sliding window, so the reported
rate is "events over the last ``window_s`` seconds" — not a lifetime
average that flattens every burst.

Meters are mutated only on the server's event loop (or under the
caller's own synchronisation), so they carry no locks.  The clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Tuple

#: Default sliding window for every exported rate.
DEFAULT_WINDOW_S = 60.0


class RateMeter:
    """Sliding-window event-rate meter.

    ``record(n)`` logs ``n`` events now; :meth:`rate` reports events per
    second over the trailing window.  A meter younger than its window
    divides by its uptime instead, so a daemon that simulated 4 points
    in its first 2 seconds reports 2/s, not 4/60.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.window_s = max(1e-3, float(window_s))
        self._clock = clock
        self._events: Deque[Tuple[float, int]] = deque()
        self._t0 = clock()
        #: Lifetime event count (monotone; never pruned).
        self.total = 0

    def record(self, n: int = 1) -> None:
        if n <= 0:
            return
        self.total += n
        self._events.append((self._clock(), n))
        self._prune()

    def _prune(self) -> None:
        cutoff = self._clock() - self.window_s
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()

    def rate(self) -> float:
        """Events per second over ``min(window_s, uptime)``."""
        self._prune()
        elapsed = self._clock() - self._t0
        span = min(self.window_s, elapsed) if elapsed > 0 else self.window_s
        return sum(n for _, n in self._events) / span
