"""Live service counters: rate meters and latency histograms for the
``metrics`` op.

The service tier's throughput claims (sims/s, points/s, analytic
evals/s) are exported *from the serving loop* rather than reconstructed
from job tables after the fact.  A :class:`RateMeter` is the primitive:
an append-only event log pruned to a sliding window, so the reported
rate is "events over the last ``window_s`` seconds" — not a lifetime
average that flattens every burst.

Latency distributions ride on :class:`Histogram`, a log-bucketed
histogram with *fixed* bucket boundaries.  Fixed boundaries are the
load-bearing property: two histograms built from disjoint sample sets
(one per shard, say) merge by bucket-wise addition, and the merge is
associative and commutative — merging shard histograms is exactly
histogramming the pooled samples.  Quantiles are estimated by linear
interpolation inside the covering bucket, so the estimate error is
bounded by the bucket width (≤ the ~2.5x log spacing, relatively).

Meters are mutated only on the server's event loop (or under the
caller's own synchronisation), so they carry no locks.
:class:`HistogramFamily` *does* lock, because phase-profiling hooks
report from executor threads.  Clocks are injectable for deterministic
tests.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import (Callable, Deque, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Tuple)

#: Default sliding window for every exported rate.
DEFAULT_WINDOW_S = 60.0

#: Default latency bucket upper bounds in seconds: log-spaced 1-2.5-5
#: decades from 0.5 ms to 5 minutes.  Shared by every histogram in the
#: fabric so shard snapshots merge without resampling; an implicit
#: +Inf overflow bucket catches everything beyond the last bound.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 300.0,
)


class RateMeter:
    """Sliding-window event-rate meter.

    ``record(n)`` logs ``n`` events now; :meth:`rate` reports events per
    second over the trailing window.  A meter younger than its window
    divides by its uptime instead, so a daemon that simulated 4 points
    in its first 2 seconds reports 2/s, not 4/60.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.window_s = max(1e-3, float(window_s))
        self._clock = clock
        self._events: Deque[Tuple[float, int]] = deque()
        self._t0 = clock()
        #: Lifetime event count (monotone; never pruned).
        self.total = 0

    def record(self, n: int = 1) -> None:
        if n <= 0:
            return
        self.total += n
        self._events.append((self._clock(), n))
        self._prune()

    def _prune(self) -> None:
        cutoff = self._clock() - self.window_s
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()

    def rate(self) -> float:
        """Events per second over ``min(window_s, uptime)``."""
        self._prune()
        elapsed = self._clock() - self._t0
        span = min(self.window_s, elapsed) if elapsed > 0 else self.window_s
        return sum(n for _, n in self._events) / span


class Histogram:
    """Log-bucketed histogram with fixed bounds and exact merging.

    ``observe(v)`` counts ``v`` into the first bucket whose upper bound
    is ``>= v`` (values beyond the last bound land in an implicit +Inf
    overflow bucket).  Because the bounds are fixed at construction and
    shared fabric-wide, :meth:`merge` is plain bucket-wise addition —
    associative, commutative, and identical to histogramming the pooled
    samples.  ``sum``/``count`` ride along so exporters can emit the
    Prometheus ``_sum``/``_count`` series and exact means.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        #: Per-bucket counts; the extra final slot is the +Inf overflow.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._clock = clock

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def start_timer(self) -> Callable[[], float]:
        """Start timing now; the returned callable observes (and
        returns) the elapsed seconds when invoked."""
        t0 = self._clock()

        def stop() -> float:
            elapsed = self._clock() - t0
            self.observe(elapsed)
            return elapsed

        return stop

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count
        return self

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) by linear
        interpolation inside the covering bucket.  Overflow-bucket
        quantiles clamp to the last finite bound; an empty histogram
        reports 0."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= rank:
                if i >= len(self.bounds):       # overflow bucket
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                return lo + (hi - lo) * (rank - cum) / n
            cum += n
        return self.bounds[-1]

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe form carried by the ``metrics`` wire op."""
        return {"bounds": list(self.bounds),
                "counts": list(self.counts),
                "sum": round(self.sum, 9),
                "count": self.count}

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "Histogram":
        hist = cls(buckets=data["bounds"])  # type: ignore[arg-type]
        counts = [int(n) for n in data["counts"]]  # type: ignore[union-attr]
        if len(counts) != len(hist.counts):
            raise ValueError("snapshot counts do not match bucket bounds")
        hist.counts = counts
        hist.sum = float(data["sum"])  # type: ignore[arg-type]
        hist.count = int(data["count"])  # type: ignore[arg-type]
        return hist


class HistogramFamily:
    """A keyed set of same-bounds histograms, e.g. request latency per
    ``(op, workload family, priority)``.

    Series materialise on first observation.  A lock guards the map and
    the observations because phase-profiling hooks report from executor
    threads, not just the event loop; the wire form joins label values
    with ``|`` so the ``metrics`` op stays flat JSON.
    """

    SEP = "|"

    def __init__(self, label_names: Sequence[str],
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.label_names = tuple(label_names)
        self._buckets = tuple(float(b) for b in buckets)
        self._clock = clock
        self._series: Dict[Tuple[str, ...], Histogram] = {}
        self._lock = threading.Lock()

    def observe(self, labels: Sequence[str], value: float) -> None:
        key = tuple(str(v) for v in labels)
        if len(key) != len(self.label_names):
            raise ValueError(f"expected {len(self.label_names)} labels, "
                             f"got {len(key)}")
        with self._lock:
            hist = self._series.get(key)
            if hist is None:
                hist = Histogram(self._buckets, clock=self._clock)
                self._series[key] = hist
            hist.observe(value)

    def items(self) -> List[Tuple[Tuple[str, ...], Histogram]]:
        with self._lock:
            return sorted(self._series.items())

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            series = {self.SEP.join(key): hist.snapshot()
                      for key, hist in sorted(self._series.items())}
        return {"labels": list(self.label_names), "series": series}

    @staticmethod
    def merged_by(snapshot: Mapping[str, object],
                  label: str) -> Dict[str, Histogram]:
        """Collapse a wire snapshot onto one label dimension — e.g.
        per-op aggregates for the p50/p90/p99 report lines."""
        labels: List[str] = list(snapshot.get("labels", ()))  # type: ignore[arg-type]
        idx = labels.index(label)
        merged: Dict[str, Histogram] = {}
        series: Mapping[str, Mapping[str, object]] = \
            snapshot.get("series", {})  # type: ignore[assignment]
        for key, data in series.items():
            name = key.split(HistogramFamily.SEP)[idx]
            hist = Histogram.from_snapshot(data)
            if name in merged:
                merged[name].merge(hist)
            else:
                merged[name] = hist
        return merged
