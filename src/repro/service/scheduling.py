"""Fair scheduling and load shedding for the service batch queue.

The daemon used to feed its dispatcher from a single bounded FIFO, which
made backpressure global: one tenant submitting a 10k-point bulk sweep
filled the queue and every interactive client behind it waited out the
whole backlog.  :class:`FairQueue` replaces that FIFO with per-client
lanes drained by weighted round-robin:

* each client id owns one lane; the dispatcher takes up to ``weight``
  entries (default 1) from a lane before rotating to the next, so a
  tenant's latency is bounded by the *number of tenants*, not by the
  depth of anyone else's backlog;
* within a lane, ``interactive`` entries are served before ``bulk``
  ones, so a tenant's own small probe is never stuck behind its own
  sweep;
* capacity is still globally bounded (``max_pending``, the existing
  backpressure knob) plus an optional per-client ``quota``; when a
  bulk submission cannot be admitted, the server sheds it with a typed
  ``overloaded`` wire error (:class:`Overloaded`) instead of queueing —
  interactive work is never shed, it blocks on the bounded queue like
  before.

Shedding is tiered lowest-priority-first: tune searches (which occupy a
worker thread for their whole run) are refused once the queue passes
``TUNE_SHED_FRACTION`` of capacity; bulk sweeps are refused only when
no capacity is free at admission; interactive submissions always queue.

Everything here runs on the server's event loop; the waiting primitives
are futures (the same scheme ``asyncio.Queue`` uses), so the sync
mutators (``put_nowait``/``get_nowait``) need no locks.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

#: Wire-visible priority classes, highest first.
PRIORITIES = ("interactive", "bulk")

#: A submission with more points than this classifies as ``bulk`` when
#: the client did not say otherwise.
DEFAULT_BULK_THRESHOLD = 64

#: Tune jobs are shed once the queue is this full (they are the lowest
#: tier: a whole search occupies a worker thread, not one queue slot).
TUNE_SHED_FRACTION = 0.5


class Overloaded(Exception):
    """The server refused work it cannot absorb right now.

    Carried onto the wire as an ``error`` response with
    ``code="overloaded"`` and a ``retry_after_s`` hint; well-behaved
    clients back off (with jitter) and resubmit — completed simulations
    are warm by then, so retries never duplicate work.
    """

    def __init__(self, reason: str, retry_after_s: float = 1.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after_s = retry_after_s


def classify_priority(explicit: Optional[str], n_points: int,
                      bulk_threshold: int = DEFAULT_BULK_THRESHOLD) -> str:
    """The submission's scheduling class: the client's explicit choice
    when given, else by size against ``bulk_threshold``."""
    if explicit in PRIORITIES:
        return str(explicit)
    return "bulk" if n_points > bulk_threshold else "interactive"


class _Lane:
    """One client's pending entries, interactive ahead of bulk."""

    __slots__ = ("interactive", "bulk")

    def __init__(self) -> None:
        self.interactive: Deque[object] = deque()
        self.bulk: Deque[object] = deque()

    def __len__(self) -> int:
        return len(self.interactive) + len(self.bulk)

    def push(self, item: object, priority: str) -> None:
        (self.interactive if priority == "interactive"
         else self.bulk).append(item)

    def pop(self) -> object:
        return (self.interactive or self.bulk).popleft()


class FairQueue:
    """Bounded multi-tenant queue drained by weighted round-robin.

    API mirrors the ``asyncio.Queue`` subset the dispatcher uses
    (``put``/``put_nowait``/``get``/``get_nowait``/``qsize``), with
    every put tagged by ``client`` and ``priority``.  ``get_nowait``
    raises :class:`asyncio.QueueEmpty` so the dispatcher's drain loop is
    unchanged; ``put_nowait`` raises :class:`Overloaded` instead of
    ``QueueFull`` because "no room" is a scheduling decision here, not
    an error.
    """

    def __init__(self, maxsize: int,
                 quota: Optional[int] = None,
                 weights: Optional[Mapping[str, int]] = None) -> None:
        self.maxsize = max(1, int(maxsize))
        #: Per-client cap on queued entries (defaults to the global cap,
        #: i.e. no extra restriction).
        self.quota = self.maxsize if quota is None else max(1, int(quota))
        self._weights: Dict[str, int] = {
            str(k): max(1, int(v)) for k, v in (weights or {}).items()}
        self._lanes: Dict[str, _Lane] = {}
        self._order: Deque[str] = deque()   # clients with queued entries
        self._credits: Optional[int] = None  # head client's remaining turn
        self._total = 0
        self._getters: List["asyncio.Future[None]"] = []
        self._putters: List["asyncio.Future[None]"] = []

    # -- introspection ---------------------------------------------------------

    def qsize(self) -> int:
        return self._total

    def client_depths(self) -> Dict[str, int]:
        """Queued entries per client (the metrics op's per-tenant view)."""
        return {c: len(lane) for c, lane in sorted(self._lanes.items())
                if len(lane)}

    def free_slots(self, client: str) -> int:
        """How many entries ``client`` could enqueue right now."""
        lane = self._lanes.get(client)
        used = len(lane) if lane is not None else 0
        return max(0, min(self.maxsize - self._total, self.quota - used))

    def weight(self, client: str) -> int:
        return self._weights.get(client, 1)

    # -- enqueue ---------------------------------------------------------------

    def _has_room(self, client: str) -> bool:
        return self.free_slots(client) > 0

    def _enqueue(self, item: object, client: str, priority: str) -> None:
        lane = self._lanes.get(client)
        if lane is None:
            lane = self._lanes[client] = _Lane()
        if not len(lane):
            self._order.append(client)
        lane.push(item, priority)
        self._total += 1
        self._wake(self._getters)

    async def put(self, item: object, client: str = "anon",
                  priority: str = "interactive") -> None:
        """Enqueue, blocking while the client has no free slot (the
        backpressure path: interactive work and an admitted bulk job's
        own trickle)."""
        while not self._has_room(client):
            fut = asyncio.get_running_loop().create_future()
            self._putters.append(fut)
            try:
                await fut
            finally:
                if fut in self._putters:
                    self._putters.remove(fut)
        self._enqueue(item, client, priority)

    def put_nowait(self, item: object, client: str = "anon",
                   priority: str = "interactive") -> None:
        """Enqueue or raise :class:`Overloaded` — the shedding path."""
        if not self._has_room(client):
            raise Overloaded(self.overload_reason(client),
                             self.retry_after_s())
        self._enqueue(item, client, priority)

    def overload_reason(self, client: str) -> str:
        lane = self._lanes.get(client)
        used = len(lane) if lane is not None else 0
        if self.quota - used <= 0 and self.maxsize - self._total > 0:
            return (f"client {client!r} is at its queue quota "
                    f"({used}/{self.quota} entries)")
        return (f"queue full ({self._total}/{self.maxsize} pending across "
                f"{len(self._order)} client(s))")

    def retry_after_s(self) -> float:
        """Backoff hint scaled to the backlog; small queues clear fast."""
        return round(min(30.0, max(0.1, 0.02 * self._total)), 3)

    # -- dequeue (weighted round-robin) ----------------------------------------

    def _pop_next(self) -> object:
        client = self._order[0]
        lane = self._lanes[client]
        if self._credits is None:
            self._credits = self.weight(client)
        item = lane.pop()
        self._total -= 1
        self._credits -= 1
        if not len(lane):
            # Lane drained: drop the client from the rotation entirely
            # (an empty lane must not burn turns).
            self._order.popleft()
            del self._lanes[client]
            self._credits = None
        elif self._credits <= 0:
            self._order.rotate(-1)
            self._credits = None
        self._wake(self._putters)
        return item

    async def get(self) -> object:
        while self._total == 0:
            fut = asyncio.get_running_loop().create_future()
            self._getters.append(fut)
            try:
                await fut
            finally:
                if fut in self._getters:
                    self._getters.remove(fut)
        return self._pop_next()

    def get_nowait(self) -> object:
        if self._total == 0:
            raise asyncio.QueueEmpty
        return self._pop_next()

    @staticmethod
    def _wake(waiters: List["asyncio.Future[None]"]) -> None:
        # Wake everyone; each waiter re-checks its condition in a loop
        # (spurious wakeups are fine, lost wakeups are not).
        for fut in waiters:
            if not fut.done():
                fut.set_result(None)
