"""Distributed tracing across the simulation fabric (protocol v6).

A trace follows one client request through every hop it causes:
client → gateway → shard partitions → requeued failover partitions.
The client mints a ``trace_id`` (16 hex chars) and a root ``span_id``
(8 hex chars); each receiving node mints its *own* span whose parent is
the span id it was handed, then forwards ``(trace_id, its span_id)``
downstream.  Every :class:`~repro.service.reqlog.RequestLog` record a
traced request produces carries ``trace_id`` / ``span_id`` /
``parent_span``, so one ``grep trace_id`` over the fabric's request
logs reconstructs the full hop tree — including the extra spans the
gateway mints when a dead shard's points are requeued onto survivors.

Both fields are optional on the wire and *omitted when unset*: an
untagged submission stays byte-identical to what a protocol-v5 client
sends, the same compatibility discipline ``client``/``priority`` (v5)
and ``fidelity`` (v3) follow.  Servers ignore unknown fields, so traced
requests degrade gracefully against old daemons; a gateway only
forwards trace fields to shards that ping protocol >= 6.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .protocol import ProtocolError

#: Wire sizes, in hex characters.  A trace id is 64 random bits — wide
#: enough that a fleet-wide log grep never collides; span ids are 32
#: bits, scoped to one trace.
TRACE_ID_HEX = 16
SPAN_ID_HEX = 8

#: Accepted wire form: lowercase hex, bounded length.  Lenient on
#: length (other tracing systems mint 32-char ids) but strict on the
#: alphabet so ids stay grep- and label-safe.
_ID_RE = re.compile(r"^[0-9a-f]{1,64}$")


def new_trace_id() -> str:
    return os.urandom(TRACE_ID_HEX // 2).hex()


def new_span_id() -> str:
    return os.urandom(SPAN_ID_HEX // 2).hex()


@dataclass(frozen=True)
class SpanContext:
    """One node's position in a trace: its span and who called it."""

    trace_id: str
    span_id: str
    parent_span: Optional[str] = None

    @classmethod
    def new_root(cls, trace_id: Optional[str] = None) -> "SpanContext":
        """Mint a fresh root span — the client end of a trace."""
        return cls(trace_id=trace_id or new_trace_id(),
                   span_id=new_span_id())

    def child(self) -> "SpanContext":
        """Mint a span one hop below this one (same trace).  An
        anonymous caller (empty ``span_id``) yields a parentless child —
        the receiver becomes the root of the recorded tree."""
        return SpanContext(trace_id=self.trace_id, span_id=new_span_id(),
                           parent_span=self.span_id or None)

    def log_fields(self) -> Dict[str, str]:
        """The request-log fields of this span (parent omitted at the
        root so untraced-field absence and root-ness stay distinct)."""
        fields = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span is not None:
            fields["parent_span"] = self.parent_span
        return fields


def attach_trace(req: Dict[str, object],
                 ctx: Optional[SpanContext]) -> Dict[str, object]:
    """Tag a wire request with the sender's span (v6 fields).

    ``None`` attaches nothing — the request stays byte-identical to an
    untraced v5 submission.  The *sender's* span id travels; the
    receiver minting a child from it is what links the hops.
    """
    if ctx is not None:
        req["trace_id"] = ctx.trace_id
        req["span_id"] = ctx.span_id
    return req


def parse_trace_fields(req: Mapping[str, object]) -> Optional[SpanContext]:
    """Validate the optional v6 trace fields of an incoming request.

    Returns the *caller's* span context (the receiver should mint its
    own span via :meth:`SpanContext.child`), or ``None`` for untraced
    requests.  A ``trace_id`` without a ``span_id`` is accepted — the
    caller is anonymous and the receiver's span becomes a recorded
    root — but malformed ids are protocol errors like any other bad
    field.
    """
    trace_id = req.get("trace_id")
    span_id = req.get("span_id")
    if trace_id is None and span_id is None:
        return None
    if trace_id is None:
        raise ProtocolError("'span_id' requires a 'trace_id'")
    for name, value in (("trace_id", trace_id), ("span_id", span_id)):
        if value is None:
            continue
        if not isinstance(value, str) or not _ID_RE.match(value):
            raise ProtocolError(
                f"{name!r} must be a lowercase hex string (1-64 chars)")
    return SpanContext(trace_id=trace_id, span_id=span_id or "")
