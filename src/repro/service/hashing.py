"""Consistent hashing for the sharded simulation fabric.

The gateway routes every sweep point to a shard by hashing its *traffic
key* (the same string the result store keys on) onto a ring of virtual
nodes.  Consistent hashing is what makes the fabric's two core
guarantees compose:

* **Single-flight stays local.**  All bandwidth variants of a point
  share one traffic key, so they land on one shard — that shard's
  in-flight table dedups them exactly as a single daemon would, with no
  cross-shard locks.
* **Shard death moves only the dead shard's keys.**  Removing a shard
  from the ring reassigns *only* the keys it owned (~1/N of the total);
  every other key keeps its owner, so survivors' warm stores stay hot
  through a requeue.

Hashes are :func:`hashlib.blake2b` digests — deterministic across
processes, interpreter restarts and ``PYTHONHASHSEED`` values, unlike
builtin ``hash()``.  Determinism matters: a gateway restarted against
the same shard set must route every key to the same shard so warm
resubmissions find their results (pinned by ``tests/test_hashing.py``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

#: Virtual nodes per shard.  More replicas smooth the key distribution
#: (stddev ~ 1/sqrt(replicas)); 64 keeps ring construction trivial while
#: bounding shard imbalance to a few percent on realistic key counts.
DEFAULT_REPLICAS = 64


def stable_hash(text: str) -> int:
    """64-bit process-independent hash of ``text``.

    ``blake2b`` with an 8-byte digest: cryptographic-quality dispersion
    at ~100ns per key, and — unlike ``hash()`` — identical in every
    Python process regardless of ``PYTHONHASHSEED``.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class EmptyRing(ValueError):
    """Every shard has been removed (or none were supplied)."""


class HashRing:
    """An immutable consistent-hash ring over named shards.

    ``shards`` are opaque identifier strings (the gateway uses
    ``host:port`` addresses).  Each shard owns :attr:`replicas` virtual
    nodes; a key is assigned to the shard owning the first virtual node
    clockwise of the key's hash.  Duplicate shard ids are rejected —
    silently collapsing them would skew the distribution.
    """

    def __init__(self, shards: Sequence[str],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        shard_list = list(shards)
        if not shard_list:
            raise EmptyRing("a hash ring needs at least one shard")
        if len(set(shard_list)) != len(shard_list):
            raise ValueError(f"duplicate shard ids in {shard_list!r}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shards: Tuple[str, ...] = tuple(shard_list)
        self.replicas = replicas
        nodes: List[Tuple[int, str]] = []
        for shard in self.shards:
            for i in range(replicas):
                # Ties (astronomically rare with 64-bit positions) break
                # on the shard id, keeping assignment order-independent.
                nodes.append((stable_hash(f"{shard}#{i}"), shard))
        nodes.sort()
        self._positions = [pos for pos, _ in nodes]
        self._owners = [shard for _, shard in nodes]

    def assign(self, key: str) -> str:
        """The shard owning ``key`` (first virtual node clockwise)."""
        idx = bisect.bisect_right(self._positions, stable_hash(key))
        if idx == len(self._positions):
            idx = 0  # wrap around the ring
        return self._owners[idx]

    def assign_many(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning shard (insertion order preserved)."""
        groups: Dict[str, List[str]] = {}
        for key in keys:
            groups.setdefault(self.assign(key), []).append(key)
        return groups

    def without(self, shard: str) -> "HashRing":
        """The ring after ``shard`` leaves; only its keys are reassigned."""
        survivors = [s for s in self.shards if s != shard]
        return HashRing(survivors, replicas=self.replicas)

    def with_shard(self, shard: str) -> "HashRing":
        """The ring after ``shard`` joins; only keys it now owns move."""
        return HashRing((*self.shards, shard), replicas=self.replicas)

    def __contains__(self, shard: object) -> bool:
        return shard in self.shards

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        return (f"HashRing({list(self.shards)!r}, "
                f"replicas={self.replicas})")
