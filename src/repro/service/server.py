"""The simulation service daemon.

One long-lived asyncio process owns what every one-shot CLI invocation
used to rebuild from scratch: a persistent
:class:`~repro.orchestrator.store.ResultStore` and a pre-warmed
:class:`~repro.orchestrator.parallel.OrchestratorPool`.  Clients connect
over local TCP, submit ``simulate``/``sweep``/``tune`` jobs as JSON
lines (see :mod:`repro.service.protocol`), and receive streamed
per-point results.

Three server-side guarantees:

* **Single-flight** — each distinct *sweep* traffic key simulates at
  most once, ever: warm keys answer from the store, and concurrent jobs
  wanting the same un-warmed key share one in-flight future instead of
  re-enqueuing.  (Tune jobs evaluate through the warm store and resident
  pool but do not consult the in-flight table, so a tune racing a sweep
  on the same cold key may duplicate that one simulation — results stay
  identical either way, simulations being deterministic.)
* **Cross-client batching** — the dispatcher drains whatever distinct
  points are queued (briefly waiting ``batch_window_s`` for stragglers)
  and ships them to the resident pool as one orchestrator batch, so N
  clients submitting disjoint grids still amortise pool dispatch.
* **Backpressure** — the simulation queue is bounded
  (``max_pending``); a job that out-runs the simulators blocks on
  enqueue instead of growing server memory, and cancellation stops its
  remaining enqueues.

Results are assembled through the exact serial runner path
(:func:`repro.baselines.runner.run_workload_config` over the warm
cache), so a streamed result is byte-identical to a direct engine run.
"""

from __future__ import annotations

import asyncio
import functools
import os
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines import runner
from ..hw.config import MIB
from ..orchestrator.parallel import (PHASE_PROFILE_ENV, OrchestratorPool,
                                     prewarm, set_shared_pool)
from ..orchestrator.spec import SweepPoint
from ..orchestrator.store import ResultStore
from ..sim import engine as sim_engine
from ..workloads.registry import all_workloads, is_resolvable, resolve_workload
from .jobs import Job, JobRegistry, JobState, workload_family
from .metrics import DEFAULT_WINDOW_S, HistogramFamily, RateMeter
from .protocol import (
    DEFAULT_HOST,
    ERROR_OVERLOADED,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    SUBMIT_OPS,
    ProtocolError,
    default_port,
    encode_message,
    parse_predict_fields,
    parse_request,
    parse_submit_fields,
    parse_tune_fields,
    request_to_points,
    request_to_spec,
)
from .promexport import PromExporter
from .reqlog import RequestLog
from .tracing import parse_trace_fields
from .scheduling import (
    DEFAULT_BULK_THRESHOLD,
    TUNE_SHED_FRACTION,
    FairQueue,
    classify_priority,
)


class _JobCancelled(Exception):
    """Internal control flow: a job observed its cancel event."""


def _consume_exception(fut: "asyncio.Future[None]") -> None:
    """Done-callback that retrieves an abandoned future's exception so
    the event loop does not log 'exception was never retrieved'."""
    if not fut.cancelled():
        fut.exception()


class SimulationService:
    """The daemon behind ``repro serve``.

    Run it on the current event loop with :meth:`run`, or from a plain
    thread via ``asyncio.run(service.run())`` + :meth:`wait_started` /
    :meth:`request_stop` (how the loopback tests drive it).
    """

    def __init__(self,
                 host: str = DEFAULT_HOST,
                 port: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 use_store: bool = True,
                 jobs: Optional[int] = None,
                 max_pending: int = 1024,
                 batch_window_s: float = 0.02,
                 max_batch: int = 64,
                 keep_jobs: int = 256,
                 tune_heartbeat_s: float = 10.0,
                 quota: Optional[int] = None,
                 weights: Optional[Mapping[str, int]] = None,
                 bulk_threshold: int = DEFAULT_BULK_THRESHOLD,
                 request_log: Optional[RequestLog] = None,
                 metrics_window_s: float = DEFAULT_WINDOW_S,
                 prom_port: Optional[int] = None,
                 phase_profile: bool = False) -> None:
        self.host = host
        self.port = default_port() if port is None else port
        self.cache_dir = cache_dir
        self.use_store = use_store
        self.max_pending = max(1, max_pending)
        self.batch_window_s = max(0.0, batch_window_s)
        self.max_batch = max(1, max_batch)
        self.tune_heartbeat_s = max(0.1, tune_heartbeat_s)
        self.quota = quota
        self.weights = dict(weights or {})
        self.bulk_threshold = max(0, bulk_threshold)
        self.request_log = request_log
        self.pool = OrchestratorPool(jobs)
        self.registry = JobRegistry(keep=keep_jobs)
        self.store: Optional[ResultStore] = None
        self.startup_error: Optional[BaseException] = None
        self.points_streamed = 0
        self.hits_total = 0
        self.coalesced_total = 0
        self.shed_total = 0
        self.prom_port = prom_port
        self.phase_profile = phase_profile
        self._sims_meter = RateMeter(metrics_window_s)
        self._points_meter = RateMeter(metrics_window_s)
        self._analytic_meter = RateMeter(metrics_window_s)
        self._latency = HistogramFamily(("op", "family", "priority"))
        self._phases = HistogramFamily(("phase",))
        self._prom: Optional[PromExporter] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._queue: Optional[FairQueue] = None
        #: Traffic keys with a simulation dispatched or queued, mapped to
        #: the future every interested job awaits (single-flight table).
        self._in_flight: Dict[str, "asyncio.Future[None]"] = {}
        self._t0 = 0.0

    # -- lifecycle -------------------------------------------------------------

    async def run(self, announce=None) -> None:
        """Serve until a ``shutdown`` op or :meth:`request_stop`."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._queue = FairQueue(self.max_pending, quota=self.quota,
                                weights=self.weights)
        try:
            server = await asyncio.start_server(
                self._handle_conn, self.host, self.port or 0,
                limit=MAX_LINE_BYTES)
        except OSError as exc:
            self.startup_error = exc
            self._started.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self.store = ResultStore(self.cache_dir) if self.use_store else None
        runner.set_store(self.store)
        set_shared_pool(self.pool)
        if self.phase_profile:
            # Env before fork: workers inherit the flag and ship their
            # phase timings back; the hook folds them (and every
            # in-process engine run) into the phase histograms.
            os.environ[PHASE_PROFILE_ENV] = "1"
            sim_engine.set_phase_hook(self._observe_phase)
        if self.pool.jobs > 1:
            # Fork the workers before accepting work; a sandbox without
            # pool support degrades here, once, to all-serial batches.
            await self._loop.run_in_executor(None, self.pool.warm)
        dispatcher = asyncio.create_task(self._dispatch_loop())
        self._t0 = time.monotonic()
        if self.prom_port is not None:
            try:
                self._prom = PromExporter(self.metrics_snapshot,
                                          host=self.host,
                                          port=self.prom_port)
                self.prom_port = self._prom.start()
            except OSError as exc:
                self.startup_error = exc
                self._started.set()
                server.close()
                dispatcher.cancel()
                await asyncio.gather(dispatcher, return_exceptions=True)
                raise
        self._started.set()
        if announce is not None:
            width = self.pool.jobs if not self.pool.broken else 1
            store_desc = (str(self.store.directory) if self.store is not None
                          else "disabled")
            prom_desc = (f", prometheus: :{self.prom_port}/metrics"
                         if self._prom is not None else "")
            announce(f"repro service listening on {self.host}:{self.port} "
                     f"(pool: {width} worker(s), store: {store_desc}"
                     f"{prom_desc})")
        try:
            await self._stop.wait()
        finally:
            # Close the listener without awaiting wait_closed(): since
            # Python 3.12.1 that would block on every connection handler,
            # and one idle client sitting in readline() would hang
            # shutdown forever.  Lingering handler tasks are cancelled by
            # asyncio.run()'s teardown instead.
            server.close()
            dispatcher.cancel()
            await asyncio.gather(dispatcher, return_exceptions=True)
            self._fail_pending("service shut down")
            if self._prom is not None:
                await self._loop.run_in_executor(None, self._prom.stop)
                self._prom = None
            if self.phase_profile:
                sim_engine.set_phase_hook(None)
                os.environ.pop(PHASE_PROFILE_ENV, None)
            if self.store is not None:
                self.store.save_stats()
            runner.set_store(None)
            set_shared_pool(None)
            self.pool.close()

    def wait_started(self, timeout: Optional[float] = None) -> bool:
        """Block (from another thread) until the server accepts
        connections; check :attr:`startup_error` on ``True``."""
        return self._started.wait(timeout)

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (SIGINT handler, test teardown)."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass  # loop already closed — the server has stopped on its own

    @staticmethod
    def _abandon(futures: Dict[str, "asyncio.Future[None]"]) -> None:
        """A job stopped awaiting these futures (cancel / failure /
        disconnect); make sure any late exceptions still get retrieved so
        the event loop does not log 'exception was never retrieved'."""
        for fut in futures.values():
            fut.add_done_callback(_consume_exception)

    def _fail_pending(self, reason: str) -> None:
        for fut in self._in_flight.values():
            if not fut.done():
                fut.add_done_callback(_consume_exception)
                fut.set_exception(RuntimeError(reason))
        self._in_flight.clear()

    # -- connection handling ---------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    msg: Dict[str, object]) -> None:
        writer.write(encode_message(msg))
        await writer.drain()

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded MAX_LINE_BYTES: protocol violation —
                    # report and drop the connection (resync is hopeless).
                    await self._send(writer, {
                        "type": "error", "job": None,
                        "error": f"request line exceeds {MAX_LINE_BYTES} "
                                 "bytes"})
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    req = parse_request(line)
                except ProtocolError as exc:
                    await self._send(writer, {"type": "error", "job": None,
                                              "error": str(exc)})
                    continue
                if await self._handle_request(req, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; any job it owned keeps warming the store
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, req: Dict[str, object],
                              writer: asyncio.StreamWriter) -> bool:
        """Serve one request; ``True`` closes the connection."""
        op = req["op"]
        t_start = time.monotonic()
        if op == "ping":
            await self._send(writer, {"type": "pong",
                                      "server": "repro-service",
                                      "protocol": PROTOCOL_VERSION})
        elif op == "jobs":
            await self._send(writer, {"type": "jobs",
                                      "jobs": self.registry.snapshots()})
        elif op == "stats":
            store_stats: Optional[Dict[str, object]] = None
            if self.store is not None:
                # Merge records other processes appended to the shared
                # cache directory since we last looked — a one-shot
                # `repro sweep` racing the daemon warms us too.  Both the
                # O(file) rescan and the O(entries) per-workload counting
                # run off the event loop.
                assert self._loop is not None
                store_stats = await self._loop.run_in_executor(
                    None, self._store_stats)
            await self._send(writer, self._stats_msg(store_stats))
        elif op == "predict":
            await self._handle_predict(req, writer)
        elif op == "topology":
            await self._send(writer, self._topology_msg())
        elif op == "cancel":
            await self._handle_cancel(req, writer)
        elif op == "shutdown":
            await self._send(writer, {"type": "ok", "stopping": True})
            assert self._stop is not None
            self._stop.set()
            return True
        elif op == "metrics":
            await self._send(writer, self._metrics_msg())
        elif op == "tune":
            await self._tune_job(req, writer)
        else:  # "simulate" / "sweep" / "points"
            await self._sweep_job(req, writer)
        if op not in SUBMIT_OPS:
            # Submissions log themselves with job context at finish.
            elapsed = time.monotonic() - t_start
            self._latency.observe((str(op), "-", "-"), elapsed)
            if self.request_log is not None:
                client = req.get("client")
                self.request_log.log(
                    str(op),
                    client=client if isinstance(client, str) else None,
                    trace=self._query_trace(req),
                    duration_s=elapsed)
        return False

    def _query_trace(self, req: Mapping[str, object]
                     ) -> Optional[Dict[str, str]]:
        """Span fields for a query op's log record: queries are leaf
        hops, so the node span is minted here and never forwarded.
        Malformed trace fields on a query never fail the (already
        answered) request — they just go unlogged."""
        try:
            caller = parse_trace_fields(req)
        except ProtocolError:
            return None
        return caller.child().log_fields() if caller is not None else None

    def _topology_msg(self) -> Dict[str, object]:
        """This node's view of itself for the ``topology`` op: a plain
        daemon is one shard.  Gateways answer the same op with their
        shard table (see :mod:`repro.service.gateway`)."""
        assert self._queue is not None
        return {
            "type": "topology",
            "role": "shard",
            "protocol": PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "workers": self.pool.jobs if not self.pool.broken else 1,
            "in_flight": len(self._in_flight),
            "queue_depth": self._queue.qsize(),
            "store": (str(self.store.directory)
                      if self.store is not None else None),
        }

    async def _handle_cancel(self, req: Dict[str, object],
                             writer: asyncio.StreamWriter) -> None:
        job = self.registry.get(req.get("job"))
        if job is None:
            await self._send(writer, {
                "type": "error", "job": None,
                "error": f"unknown job {req.get('job')!r}"})
        elif job.kind == "tune":
            await self._send(writer, {
                "type": "error", "job": job.id,
                "error": "tune jobs cannot be cancelled"})
        elif job.finished_state:
            await self._send(writer, {
                "type": "error", "job": job.id,
                "error": f"job {job.id} already {job.state.value}"})
        else:
            job.cancel_event.set()
            await self._send(writer, {"type": "ok", "job": job.id})

    async def _handle_predict(self, req: Dict[str, object],
                              writer: asyncio.StreamWriter) -> None:
        """Analytic prediction: single response, never enters the queue
        or the pool — the whole point of the op is to skip them."""
        assert self._loop is not None
        try:
            fields = parse_predict_fields(req)
            workload = str(fields["workload"])
            if not is_resolvable(workload):
                raise ProtocolError(
                    f"unknown workload {workload!r}; see 'repro "
                    "list-workloads'")
        except ProtocolError as exc:
            await self._send(writer, {"type": "error", "job": None,
                                      "error": str(exc)})
            return
        try:
            # Model compilation can take a few milliseconds the first
            # time; keep the event loop responsive.
            evaluation = await self._loop.run_in_executor(
                None, functools.partial(self._predict, fields))
        except Exception as exc:
            await self._send(writer, {"type": "error", "job": None,
                                      "error": str(exc)})
            return
        self._analytic_meter.record(1)
        await self._send(writer, {
            "type": "predict",
            "workload": fields["workload"],
            "config": fields["config"],
            "regime": evaluation.regime,
            "fidelity": "analytic",
            "result": evaluation.result.to_dict(),
        })

    @staticmethod
    def _predict(fields: Dict[str, object]):
        import dataclasses

        from ..analytic import AnalyticUnsupported, predict_workload_config
        from ..hw.config import default_config

        cfg = default_config(None).with_sram(int(fields["sram_bytes"]))  # type: ignore[arg-type]
        overrides: Dict[str, object] = {}
        if fields["bandwidth_bytes_per_s"] is not None:
            overrides["dram_bandwidth_bytes_per_s"] = float(
                fields["bandwidth_bytes_per_s"])  # type: ignore[arg-type]
        if fields["entries"] is not None:
            overrides["chord_entries"] = int(fields["entries"])  # type: ignore[arg-type]
        if overrides:
            cfg = dataclasses.replace(cfg, **overrides)  # type: ignore[arg-type]
        try:
            return predict_workload_config(
                resolve_workload(str(fields["workload"])),
                str(fields["config"]), cfg)
        except AnalyticUnsupported as exc:
            raise RuntimeError(
                f"{exc}; submit a 'simulate' job for exact results"
            ) from exc

    def _store_stats(self) -> Dict[str, object]:
        """Store view for the stats op; runs on an executor thread."""
        assert self.store is not None
        self.store.reload()
        return {
            "directory": str(self.store.directory),
            "schema_version": self.store.schema_version,
            "entries": len(self.store),
            "corrupt": self.store.corrupt,
            "workloads": self.store.workload_counts(),
        }

    def _stats_msg(self, store_stats: Optional[Dict[str, object]]
                   ) -> Dict[str, object]:
        assert self._queue is not None
        return {
            "type": "stats",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "jobs": self.registry.counts_by_state(),
            "points_streamed": self.points_streamed,
            "simulations": runner.simulation_count(),
            "hits_total": self.hits_total,
            "coalesced_total": self.coalesced_total,
            "shed_total": self.shed_total,
            "queue_depth": self._queue.qsize(),
            "in_flight": len(self._in_flight),
            "pool": self.pool.snapshot(),
            "store": store_stats,
        }

    def _metrics_msg(self) -> Dict[str, object]:
        """Cheap operational counters: everything here is in-memory —
        no store rescan, no executor hop — so ``--watch`` polling does
        not perturb the daemon it is observing."""
        assert self._queue is not None
        store: Optional[Dict[str, object]] = None
        if self.store is not None:
            lookups = self.store.hits + self.store.misses
            store = {
                "entries": len(self.store),
                "hits": self.store.hits,
                "misses": self.store.misses,
                "hit_rate": round(self.store.hits / lookups, 4)
                if lookups else 0.0,
                "corrupt": self.store.corrupt,
                "stale": self.store.stale,
                "duplicates": self.store.duplicates,
            }
        return {
            "type": "metrics",
            "role": "shard",
            "protocol": PROTOCOL_VERSION,
            "server": "repro-service",
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "queue_depth": self._queue.qsize(),
            "max_pending": self.max_pending,
            "queue_clients": self._queue.client_depths(),
            "in_flight": len(self._in_flight),
            "points_streamed": self.points_streamed,
            "simulations": runner.simulation_count(),
            "hits_total": self.hits_total,
            "coalesced_total": self.coalesced_total,
            "shed_total": self.shed_total,
            "jobs": self.registry.counts_by_state(),
            "rates": {
                "window_s": self._sims_meter.window_s,
                "sims_per_s": round(self._sims_meter.rate(), 4),
                "points_per_s": round(self._points_meter.rate(), 4),
                "analytic_evals_per_s":
                    round(self._analytic_meter.rate(), 4),
            },
            "latency": self._latency.snapshot(),
            "phases": self._phases.snapshot(),
            "store": store,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Thread-safe :meth:`_metrics_msg` for the Prometheus exporter:
        hops onto the event loop so scrape threads never read loop-owned
        state (queue, registry) mid-mutation."""
        loop = self._loop
        if loop is None:
            raise RuntimeError("service not running")

        async def _snap() -> Dict[str, object]:
            return self._metrics_msg()

        return asyncio.run_coroutine_threadsafe(_snap(), loop).result(
            timeout=10)

    def _observe_phase(self, phase: str, seconds: float) -> None:
        """Engine phase hook (``--phase-profile``): called in-process by
        the engines and replayed from pool-worker payloads."""
        self._phases.observe((phase,), seconds)

    # -- sweep jobs ------------------------------------------------------------

    async def _sweep_job(self, req: Dict[str, object],
                         writer: asyncio.StreamWriter) -> None:
        try:
            client, explicit_priority = parse_submit_fields(req)
            caller_span = parse_trace_fields(req)
            if req["op"] == "points":
                points: Sequence[SweepPoint] = request_to_points(req)
                summary = ", ".join(sorted({p.workload for p in points}))
            else:
                spec = request_to_spec(req)
                points = spec.points()
                summary = ", ".join(spec.workloads)
            if not points:
                raise ProtocolError(
                    "sweep matched no (workload, config) points")
            bad = sorted({p.workload for p in points
                          if not is_resolvable(p.workload)})
            if bad:
                raise ProtocolError(
                    f"unknown workload(s): {', '.join(bad)}; known: "
                    f"{', '.join(sorted(all_workloads()))}")
        except (ProtocolError, ValueError) as exc:
            await self._send(writer, {"type": "error", "job": None,
                                      "error": str(exc)})
            return

        client = client or "anon"
        priority = classify_priority(explicit_priority, len(points),
                                     self.bulk_threshold)
        await self._sync_store(points)
        job = self.registry.create(str(req["op"]), summary=summary,
                                   client=client, priority=priority)
        job.total = len(points)
        job.family = workload_family(p.workload for p in points)
        if caller_span is not None:
            job.span = caller_span.child()
        assert self._queue is not None
        if priority == "bulk" and self._queue.free_slots(client) <= 0:
            # Tiered shedding: bulk work is refused while the client has
            # no free capacity at admission.  Interactive submissions are
            # never shed — they block on the bounded queue like before.
            await self._shed(job, writer,
                             self._queue.overload_reason(client),
                             self._queue.retry_after_s())
            return
        accepted: Dict[str, object] = {"type": "accepted", "job": job.id,
                                       "kind": job.kind,
                                       "points": job.total}
        if job.span is not None:
            accepted["trace_id"] = job.span.trace_id
        await self._send(writer, accepted)
        job.state = JobState.RUNNING
        waiter = asyncio.ensure_future(job.cancel_event.wait())
        futures: Dict[str, asyncio.Future] = {}
        try:
            await self._claim_points(job, points, futures)
            await self._stream_results(job, points, futures, waiter, writer)
        except _JobCancelled:
            self._abandon(futures)
            job.finish(JobState.CANCELLED)
            await self._send(writer, {"type": "cancelled", "job": job.id,
                                      "done": job.done, "total": job.total})
        except (ConnectionError, asyncio.CancelledError):
            self._abandon(futures)
            job.finish(JobState.FAILED, "client disconnected")
            raise
        except Exception as exc:  # simulation failure
            self._abandon(futures)
            job.finish(JobState.FAILED, str(exc))
            await self._send(writer, {"type": "error", "job": job.id,
                                      "error": str(exc)})
        else:
            job.finish(JobState.DONE)
            done_msg: Dict[str, object] = {
                "type": "done", "job": job.id, "points": job.total,
                "simulations": job.simulations, "hits": job.hits,
                "coalesced": job.coalesced,
                "elapsed_s": round(job.elapsed_s(), 3)}
            if job.span is not None:
                done_msg["trace_id"] = job.span.trace_id
            await self._send(writer, done_msg)
        finally:
            waiter.cancel()
            self._log_job(job)

    async def _shed(self, job: Job, writer: asyncio.StreamWriter,
                    reason: str, retry_after_s: float) -> None:
        """Refuse a submission with a typed ``overloaded`` error."""
        self.shed_total += 1
        error = f"overloaded: {reason}"
        job.finish(JobState.FAILED, error)
        self._log_job(job, outcome="shed")
        await self._send(writer, {
            "type": "error", "job": job.id, "code": ERROR_OVERLOADED,
            "error": error, "retry_after_s": retry_after_s})

    def _log_job(self, job: Job, outcome: Optional[str] = None) -> None:
        final = outcome or job.state.value
        if final != "shed":
            # Shed jobs are refused at admission in microseconds; folding
            # them into the serve histogram would drag p50 down during
            # exactly the overload storms the histogram should expose.
            self._latency.observe((job.kind, job.family, job.priority),
                                  job.elapsed_s())
        if self.request_log is None:
            return
        self.request_log.log(
            job.kind, client=job.client, job=job.id,
            trace=job.span.log_fields() if job.span is not None else None,
            points=job.total, sims=job.simulations, hits=job.hits,
            coalesced=job.coalesced, duration_s=job.elapsed_s(),
            outcome=final, error=job.error)

    async def _sync_store(self, points: Sequence[SweepPoint]) -> None:
        """Store-shard sync: merge records other writers appended before
        claiming any cold key.

        In a sharded fabric several daemons append to one cache
        directory; a key this shard never simulated may already be warm
        on disk — most importantly after a requeue, where a dying
        shard's last results land in the file but not in any survivor's
        index.  One first-record-wins :meth:`ResultStore.reload` (off
        the event loop) turns those into hits instead of duplicate
        simulations.  Jobs whose every key is already warm skip the
        O(file) rescan.
        """
        if self.store is None:
            return
        if all(runner.peek(p.key()) is not None for p in points):
            return
        assert self._loop is not None
        await self._loop.run_in_executor(None, self.store.reload)

    async def _claim_points(self, job: Job, points: Sequence[SweepPoint],
                            futures: Dict[str, "asyncio.Future[None]"],
                            ) -> None:
        """Classify each distinct traffic key (warm hit / coalesced /
        fresh) and enqueue the fresh ones, respecting backpressure.

        Fills the caller's ``futures`` dict in place so that keys claimed
        before a mid-claim cancellation still reach ``_abandon``.
        """
        assert self._loop is not None and self._queue is not None
        for p in points:
            ks = ResultStore.key_str(p.key())
            if ks in futures:
                continue  # bandwidth variant of a point already claimed
            if runner.peek(p.key()) is not None:
                done: asyncio.Future = self._loop.create_future()
                done.set_result(None)
                futures[ks] = done
                job.hits += 1
                self.hits_total += 1
                continue
            existing = self._in_flight.get(ks)
            if existing is not None:
                futures[ks] = existing
                job.coalesced += 1
                self.coalesced_total += 1
                continue
            if job.cancelled:
                raise _JobCancelled
            fut: asyncio.Future = self._loop.create_future()
            self._in_flight[ks] = fut
            futures[ks] = fut
            # May block on the bounded queue; the entry is tiny and the
            # dispatcher always drains, so a cancel arriving mid-put only
            # stops *subsequent* enqueues (checked at loop top).
            await self._queue.put((ks, p), client=job.client,
                                  priority=job.priority)
            job.simulations += 1

    async def _stream_results(self, job: Job, points: Sequence[SweepPoint],
                              futures: Dict[str, "asyncio.Future[None]"],
                              waiter: "asyncio.Future[object]",
                              writer: asyncio.StreamWriter) -> None:
        for index, p in enumerate(points):
            fut = futures[ResultStore.key_str(p.key())]
            if not fut.done():
                await asyncio.wait({fut, waiter},
                                   return_when=asyncio.FIRST_COMPLETED)
            if not fut.done():
                # The cancel waiter fired first: abandon the remaining
                # stream.  In-flight keys still resolve and warm the
                # store for everyone else.
                raise _JobCancelled
            fut.result()  # re-raises this key's simulation error, if any
            # Assemble through the standard serial path: the base result
            # is warm, so this only re-times for this point's bandwidth —
            # byte-identical to a direct engine run.
            result = runner.run_workload_config(
                resolve_workload(p.workload), p.config, p.cfg,
                cache_granularity=p.cache_granularity)
            job.done = index + 1
            self.points_streamed += 1
            self._points_meter.record(1)
            await self._send(writer, {
                "type": "result", "job": job.id, "index": index,
                "done": job.done, "total": job.total,
                "point": {
                    "workload": p.workload,
                    "config": p.config,
                    "sram_bytes": p.cfg.sram_bytes,
                    "bandwidth_bytes_per_s":
                        p.cfg.dram_bandwidth_bytes_per_s,
                    "cache_granularity": p.cache_granularity,
                },
                "result": result.to_dict(),
            })
            if job.cancelled:
                raise _JobCancelled

    # -- the batch dispatcher --------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain queued points into shared orchestrator batches, forever."""
        assert self._loop is not None and self._queue is not None
        while True:
            batch: List[Tuple[str, SweepPoint]] = [await self._queue.get()]
            if self.batch_window_s > 0:
                # A short gather window lets concurrently-submitting
                # clients land in the same pool batch.
                await asyncio.sleep(self.batch_window_s)
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                outcome = await self._loop.run_in_executor(
                    None, functools.partial(self._execute_batch, batch))
            except asyncio.CancelledError:
                raise  # dispatcher shutdown; run() fails pending futures
            except BaseException as exc:
                # The dispatcher is the service's single heart — whatever
                # leaks out of a batch must fail that batch, never the
                # loop itself.
                outcome = {ks: exc for ks, _ in batch}
            self._sims_meter.record(
                sum(1 for ks, _ in batch if outcome.get(ks) is None))
            for ks, _ in batch:
                fut = self._in_flight.pop(ks, None)
                if fut is None or fut.done():
                    continue
                exc = outcome.get(ks)
                if exc is None:
                    fut.set_result(None)
                else:
                    fut.set_exception(exc)

    def _execute_batch(self, batch: Sequence[Tuple[str, SweepPoint]]
                       ) -> Dict[str, Optional[BaseException]]:
        """Simulate one batch on a worker thread; per-key error capture.

        The fast path is one :func:`prewarm` through the resident pool;
        if any point errors there, re-run per point serially so one bad
        point fails only its own key.  A pool batch that failed mid-way
        seeded nothing, so the serial retry re-simulates the whole batch
        (each success now caching as it lands) — acceptable for what is
        a rare engine-bug path, and the dispatcher stalls only for this
        batch's duration.
        """
        points = [p for _, p in batch]
        outcome: Dict[str, Optional[BaseException]] = {}
        try:
            prewarm(points, pool=self.pool)
            for ks, _ in batch:
                outcome[ks] = None
            return outcome
        except BaseException:
            # Includes CancelledError (a BaseException): a concurrent
            # user of the shared pool marking it broken cancels our
            # pending map futures — the serial retry below, which needs
            # no pool, is exactly the right response.
            pass
        for ks, p in batch:
            try:
                runner.run_workload_config(
                    resolve_workload(p.workload), p.config, p.cfg,
                    cache_granularity=p.cache_granularity)
                outcome[ks] = None
            except Exception as exc:
                outcome[ks] = exc
        return outcome

    # -- tune jobs -------------------------------------------------------------

    async def _tune_job(self, req: Dict[str, object],
                        writer: asyncio.StreamWriter) -> None:
        assert self._loop is not None
        from ..tuner import TuneSpace, make_strategy, tune
        from ..tuner.pareto import DEFAULT_OBJECTIVES

        try:
            client, _ = parse_submit_fields(req)
            caller_span = parse_trace_fields(req)
            fields = parse_tune_fields(req)
            workload = str(fields["workload"])
            if not is_resolvable(workload):
                raise ProtocolError(
                    f"unknown workload {workload!r}; see 'repro "
                    "list-workloads'")
            strategy = make_strategy(
                str(fields["strategy"]),
                budget=int(fields["budget"]),  # type: ignore[arg-type]
                seed=int(fields["seed"]))      # type: ignore[arg-type]
            objectives = tuple(
                fields["objectives"] or DEFAULT_OBJECTIVES)  # type: ignore[arg-type]
            space = TuneSpace(
                chord_entries=tuple(fields["entries"]),  # type: ignore[arg-type]
                sram_bytes=tuple(int(m * MIB)
                                 for m in fields["sram_mb"]),  # type: ignore[union-attr]
                cache_policies=("LRU", "BRRIP", "SRRIP")
                if fields["include_baselines"] else (),
            )
        except (ProtocolError, KeyError, ValueError, TypeError) as exc:
            await self._send(writer, {"type": "error", "job": None,
                                      "error": str(exc)})
            return

        client = client or "anon"
        job = self.registry.create("tune", summary=workload,
                                   client=client, priority="bulk")
        job.family = workload_family([workload])
        if caller_span is not None:
            job.span = caller_span.child()
        assert self._queue is not None
        shed_at = max(1, int(self.max_pending * TUNE_SHED_FRACTION))
        if self._queue.qsize() >= shed_at:
            # Lowest shedding tier: a tune search occupies a worker
            # thread for its whole run, so it is refused well before the
            # queue is full.
            await self._shed(job, writer,
                             f"queue at {self._queue.qsize()}/"
                             f"{self.max_pending}; tune searches are "
                             "shed first under load",
                             self._queue.retry_after_s())
            return
        tune_accepted: Dict[str, object] = {"type": "accepted",
                                            "job": job.id,
                                            "kind": "tune", "points": 0}
        if job.span is not None:
            tune_accepted["trace_id"] = job.span.trace_id
        await self._send(writer, tune_accepted)
        job.state = JobState.RUNNING
        # The search runs on a worker thread; prewarm() inside the tuner
        # picks up the resident pool via the shared-pool hook.  While it
        # runs, the client receives heartbeat progress lines so a long
        # search does not starve its per-read socket timeout.
        fn = functools.partial(tune, workload, space=space,
                               strategy=strategy, objectives=objectives,
                               jobs=self.pool.jobs,
                               fidelity=str(fields["fidelity"]))
        search = self._loop.run_in_executor(None, fn)
        try:
            while True:
                done_set, _ = await asyncio.wait(
                    {search}, timeout=self.tune_heartbeat_s)
                if done_set:
                    break
                await self._send(writer, {
                    "type": "progress", "job": job.id, "done": 0,
                    "total": 0, "heartbeat": True,
                    "elapsed_s": round(job.elapsed_s(), 3)})
            tune_result = search.result()
        except (ConnectionError, asyncio.CancelledError):
            job.finish(JobState.FAILED, "client disconnected")
            self._log_job(job)
            search.add_done_callback(_consume_exception)
            raise
        except Exception as exc:  # search or simulation failure
            job.finish(JobState.FAILED, str(exc))
            self._log_job(job)
            await self._send(writer, {"type": "error", "job": job.id,
                                      "error": str(exc)})
            return
        job.total = job.done = len(tune_result.evaluations)
        # The tuner derives n_simulations from the process-global counter;
        # a concurrent cold sweep inflates that delta, so clamp to keep
        # the job table and the hits partition sane.
        job.simulations = min(tune_result.n_simulations, job.total)
        job.hits = job.total - job.simulations
        # Tune simulations bypass the dispatcher (the search drives the
        # pool directly), so meter them here; analytic evaluations are
        # the search's model-only probes.
        self._sims_meter.record(job.simulations)
        self._analytic_meter.record(
            int(getattr(tune_result, "n_analytic", 0)))
        try:
            try:
                await self._send(writer,
                                 {"type": "tune-result", "job": job.id,
                                  "result": tune_result.to_dict()})
            except ProtocolError as exc:
                # A huge --budget can push the serialised result past the
                # line bound; report it instead of dropping the connection.
                error = (f"tune result too large for the wire "
                         f"({len(tune_result.evaluations)} evaluations): "
                         f"{exc}")
                job.finish(JobState.FAILED, error)
                self._log_job(job)
                await self._send(writer, {"type": "error", "job": job.id,
                                          "error": error})
                return
            job.finish(JobState.DONE)
            self._log_job(job)
            tune_done: Dict[str, object] = {
                "type": "done", "job": job.id, "points": job.total,
                "simulations": job.simulations, "hits": job.hits,
                "coalesced": 0, "elapsed_s": round(job.elapsed_s(), 3)}
            if job.span is not None:
                tune_done["trace_id"] = job.span.trace_id
            await self._send(writer, tune_done)
        except (ConnectionError, asyncio.CancelledError):
            # Disconnect during delivery: never leave the job RUNNING.
            if not job.finished_state:
                job.finish(JobState.FAILED, "client disconnected")
                self._log_job(job)
            raise
