"""Synchronous client for the simulation service.

A thin blocking wrapper over one TCP connection: build a request with
:mod:`repro.service.protocol`, send it, iterate response lines.  The
client is what the ``repro submit`` / ``repro jobs`` CLI verbs and the
loopback test suite use; anything else that can write JSON lines to a
socket (``nc``, another language) speaks the same protocol.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from ..orchestrator.spec import SweepPoint
from ..sim.results import SimResult
from .protocol import (
    DEFAULT_HOST,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_message,
    default_port,
    encode_message,
    points_request,
    predict_request,
    sweep_request,
    tune_request,
)
from .tracing import SpanContext, attach_trace


class ServiceError(RuntimeError):
    """The server reported an error, or the conversation broke down."""


class ServiceConnectionError(ServiceError):
    """No server reachable at the requested address."""


class JobFailed(ServiceError):
    """A submitted job ended in ``error`` or ``cancelled``."""

    def __init__(self, message: str, job_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.job_id = job_id


class Overloaded(JobFailed):
    """The server shed this submission (typed ``overloaded`` error).

    Not a failure of the work itself: the server refused to queue it
    right now.  ``retry_after_s`` is the server's backoff hint; the
    submit helpers retry automatically (with exponential backoff and
    jitter) unless told not to.  Anything the server simulated before
    shedding is warm in its store, so a retry never duplicates work.
    """

    def __init__(self, message: str, job_id: Optional[str] = None,
                 retry_after_s: float = 1.0) -> None:
        super().__init__(message, job_id)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class PointResult:
    """One streamed sweep point: where it ran and what came back."""

    workload: str
    config: str
    sram_bytes: int
    bandwidth_bytes_per_s: float
    cache_granularity: Optional[int]
    result: SimResult


@dataclass(frozen=True)
class SweepOutcome:
    """A finished sweep job as the client saw it."""

    job_id: str
    points: List[PointResult]
    simulations: int
    hits: int
    coalesced: int
    elapsed_s: float
    #: Points re-hashed off a dead shard (always 0 on a single daemon).
    requeued: int = 0
    #: Trace id the fabric stamped on its request logs (tracing clients
    #: only; ``None`` when the submission was untraced or pre-v6).
    trace_id: Optional[str] = None


class ServiceClient:
    """One connection to a running ``repro serve`` daemon.

    Usable as a context manager; all methods block.  ``timeout`` bounds
    each socket operation — sweeps stream a line per point and tune jobs
    heartbeat every few seconds while searching, so even long jobs keep
    producing lines well within a generous timeout.
    """

    def __init__(self, host: str = DEFAULT_HOST,
                 port: Optional[int] = None,
                 timeout: float = 600.0,
                 client_id: Optional[str] = None,
                 trace: bool = False) -> None:
        self.host = host
        self.port = default_port() if port is None else port
        #: Tenant tag attached to every submission (fair scheduling,
        #: per-client quotas, request logs); ``None`` submits as "anon".
        self.client_id = client_id
        #: Mint a root span per request (protocol v6): every hop the
        #: request takes through the fabric logs the same trace id.
        self.trace = trace
        #: Trace id of the most recent traced request — what to grep the
        #: fabric's request logs for.
        self.last_trace_id: Optional[str] = None
        try:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=timeout)
        except OSError as exc:
            raise ServiceConnectionError(
                f"no repro service reachable at {self.host}:{self.port} "
                f"({exc}); start one with 'repro serve'") from exc
        self._sock.settimeout(timeout)
        # Binary mode: the protocol's line bound is in bytes, so the
        # bounded readline below must count bytes, not characters.
        self._rfile = self._sock.makefile("rb")
        # What kind of endpoint answered ("repro-service" shard or
        # "repro-gateway"), learned from any message carrying a
        # ``server`` field; steers the mid-stream EOF diagnosis.
        self._server_role: Optional[str] = None

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- plumbing --------------------------------------------------------------

    def _send(self, msg: Mapping[str, object]) -> None:
        try:
            self._sock.sendall(encode_message(msg))
        except OSError as exc:
            raise ServiceError(f"send failed: {exc}") from exc

    def _recv(self) -> Dict[str, object]:
        try:
            # Bounded read: a rogue endpoint on this port must not be
            # able to balloon the client by streaming a newline-free
            # line (the server enforces the same bound on requests).
            line = self._rfile.readline(MAX_LINE_BYTES + 1)
        except OSError as exc:
            raise ServiceError(f"receive failed: {exc}") from exc
        if not line:
            # EOF mid-conversation: the endpoint went away (stopped,
            # restarted, or crashed) between our request and its reply.
            # What to restart depends on what we were talking to — a
            # gateway dying loses no shard state, while a lone daemon
            # dying means the daemon itself must come back.
            raise ServiceConnectionError(self._eof_diagnosis())
        if len(line) > MAX_LINE_BYTES or not line.endswith(b"\n"):
            raise ServiceError(
                f"server sent a line exceeding {MAX_LINE_BYTES} bytes")
        try:
            msg = decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad server message: {exc}") from exc
        role = msg.get("server")
        if isinstance(role, str):
            self._server_role = role
        return msg

    def _eof_diagnosis(self) -> str:
        """Actionable message for a connection that died mid-stream."""
        where = f"{self.host}:{self.port}"
        if self._server_role == "repro-gateway":
            return (
                f"the repro gateway at {where} closed the connection "
                "mid-conversation — the gateway restarted or crashed; its "
                "shards (and their result stores) keep running "
                "independently, so restart the gateway with 'repro "
                "gateway' and resubmit: completed simulations will be "
                "warm hits")
        if self._server_role == "repro-service":
            return (
                f"the repro service at {where} closed the connection "
                "mid-conversation — the shard daemon stopped or "
                "restarted; completed simulations are in its result "
                "store, so reconnect and retry the submission (restart "
                "the daemon with 'repro serve' if it is down)")
        return (
            f"the repro endpoint at {where} closed the connection "
            "mid-conversation — the daemon or gateway there stopped or "
            "restarted; completed simulations persist in the result "
            "store, so reconnect and retry the submission (restart it "
            "with 'repro serve' for a daemon, 'repro gateway' for a "
            "gateway, if it is down)")

    def _traced(self, req: Mapping[str, object]) -> Mapping[str, object]:
        """Stamp a fresh root span onto ``req`` when tracing is on.

        One logical request = one trace: overload retries reuse the
        request dict, so every shed-and-resubmit cycle shows up under a
        single trace id in the request logs.
        """
        if not self.trace:
            return req
        span = SpanContext.new_root()
        self.last_trace_id = span.trace_id
        out = dict(req)
        attach_trace(out, span)
        return out

    def request(self, msg: Mapping[str, object]) -> Dict[str, object]:
        """Send one single-response op; raise on an ``error`` reply."""
        if self.client_id is not None and "client" not in msg:
            # Tag query ops too, so the server's request log attributes
            # them; servers of any version ignore unknown fields.
            msg = {**msg, "client": self.client_id}
        msg = self._traced(msg)
        self._send(msg)
        reply = self._recv()
        if reply.get("type") == "error":
            raise ServiceError(str(reply.get("error", "unknown error")))
        return reply

    # -- single-response ops ---------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.request({"op": "ping"})

    def predict(self, workload: str, config: str,
                sram_mb: float = 4.0,
                bandwidth_gb: Optional[float] = None,
                entries: Optional[int] = None) -> Dict[str, object]:
        """Analytic traffic prediction of one point (no simulation).

        Returns the raw ``predict`` response: ``result`` holds the
        serialised :class:`~repro.sim.results.SimResult`, ``regime`` the
        analytic evaluation regime.  Raises :class:`ServiceError` for
        unsupported configs (cache policies simulate instead).
        """
        return self.request(predict_request(
            workload, config, sram_mb=sram_mb, bandwidth_gb=bandwidth_gb,
            entries=entries))

    def jobs(self) -> List[Dict[str, object]]:
        return list(self.request({"op": "jobs"})["jobs"])  # type: ignore[arg-type]

    def topology(self) -> Dict[str, object]:
        """Describe the endpoint: a lone shard reports itself, a gateway
        reports its hash ring and per-shard health (protocol v4+)."""
        return self.request({"op": "topology"})

    def stats(self) -> Dict[str, object]:
        return self.request({"op": "stats"})

    def metrics(self) -> Dict[str, object]:
        """Cheap operational counters (protocol v5): queue depth, dedup
        split, windowed rates, store hit rate — safe to poll."""
        try:
            return self.request({"op": "metrics"})
        except ServiceError as exc:
            if "op" in str(exc) and "metrics" in str(exc):
                raise ServiceError(
                    f"the endpoint at {self.host}:{self.port} does not "
                    "know the 'metrics' op (needs protocol v5+); restart "
                    "it with this build") from exc
            raise

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self.request({"op": "cancel", "job": job_id})

    def shutdown(self) -> Dict[str, object]:
        """Ask the server to stop; returns its acknowledgement."""
        return self.request({"op": "shutdown"})

    # -- job submission --------------------------------------------------------

    def _stream(self, req: Mapping[str, object],
                on_message: Optional[Callable[[Dict[str, object]], None]],
                ) -> Iterator[Dict[str, object]]:
        self._send(req)
        while True:
            msg = self._recv()
            if on_message is not None:
                on_message(msg)
            yield msg
            if msg.get("type") in ("done", "error", "cancelled"):
                return

    def submit_sweep(self, workloads: Sequence[str],
                     configs: Optional[Sequence[str]] = None,
                     sram_mb: Sequence[float] = (),
                     bandwidth_gb: Sequence[float] = (),
                     cache_granularity: Optional[int] = None,
                     on_message: Optional[
                         Callable[[Dict[str, object]], None]] = None,
                     priority: Optional[str] = None,
                     overload_retries: int = 4,
                     on_retry: Optional[
                         Callable[[int, float, "Overloaded"], None]] = None,
                     ) -> SweepOutcome:
        """Submit a sweep and block until it finishes.

        ``on_message`` observes every raw response line (progress UIs);
        raises :class:`JobFailed` if the job errors or is cancelled.  A
        shed submission (:class:`Overloaded`) is resubmitted after a
        jittered backoff up to ``overload_retries`` times; ``on_retry``
        observes each backoff (attempt, delay_s, error).
        """
        req = sweep_request(workloads, configs=configs, sram_mb=sram_mb,
                            bandwidth_gb=bandwidth_gb,
                            cache_granularity=cache_granularity,
                            client=self.client_id, priority=priority)
        return self._submit_with_retry(self._traced(req), on_message,
                                       overload_retries, on_retry)

    def submit_points(self, points: Sequence[SweepPoint],
                      on_message: Optional[
                          Callable[[Dict[str, object]], None]] = None,
                      priority: Optional[str] = None,
                      overload_retries: int = 4,
                      on_retry: Optional[
                          Callable[[int, float, "Overloaded"], None]] = None,
                      ) -> SweepOutcome:
        """Submit an explicit point list (protocol v4 ``points`` op).

        A sharded gateway partitions a grid by traffic key, so each
        shard receives an arbitrary point subset — this is the op those
        partitions travel over, but it works against a lone daemon too.
        """
        req = points_request(points, client=self.client_id,
                             priority=priority)
        return self._submit_with_retry(self._traced(req), on_message,
                                       overload_retries, on_retry)

    def _submit_with_retry(self, req: Mapping[str, object],
                           on_message: Optional[
                               Callable[[Dict[str, object]], None]],
                           overload_retries: int,
                           on_retry: Optional[
                               Callable[[int, float, "Overloaded"], None]],
                           ) -> SweepOutcome:
        """Resubmit on :class:`Overloaded` with jittered exponential
        backoff.  The server leaves the connection open after an error
        reply, so retries reuse this connection; completed simulations
        are warm in the server's store, so a retry repeats no work."""
        attempt = 0
        while True:
            try:
                return self._collect_sweep(req, on_message)
            except Overloaded as exc:
                if attempt >= overload_retries:
                    raise
                delay = min(60.0, exc.retry_after_s * (2 ** attempt)
                            * random.uniform(0.5, 1.5))
                if on_retry is not None:
                    on_retry(attempt + 1, delay, exc)
                time.sleep(delay)
                attempt += 1

    def _collect_sweep(self, req: Mapping[str, object],
                       on_message: Optional[
                           Callable[[Dict[str, object]], None]],
                       ) -> SweepOutcome:
        """Drive one point-streaming job (``sweep``/``points``) to its
        terminal message and fold the stream into a :class:`SweepOutcome`."""
        job_id: Optional[str] = None
        points: List[PointResult] = []
        for msg in self._stream(req, on_message):
            kind = msg.get("type")
            if kind == "accepted":
                job_id = str(msg["job"])
            elif kind == "result":
                point = dict(msg["point"])  # type: ignore[arg-type]
                points.append(PointResult(
                    workload=str(point["workload"]),
                    config=str(point["config"]),
                    sram_bytes=int(point["sram_bytes"]),  # type: ignore[arg-type]
                    bandwidth_bytes_per_s=float(
                        point["bandwidth_bytes_per_s"]),  # type: ignore[arg-type]
                    cache_granularity=point.get(  # type: ignore[assignment]
                        "cache_granularity"),
                    result=SimResult.from_dict(
                        msg["result"]),  # type: ignore[arg-type]
                ))
            elif kind == "cancelled":
                raise JobFailed(f"job {job_id} was cancelled", job_id)
            elif kind == "error":
                error = str(msg.get("error", "job failed"))
                if msg.get("code") == "overloaded":
                    raise Overloaded(
                        error, job_id or msg.get("job"),  # type: ignore[arg-type]
                        retry_after_s=float(
                            msg.get("retry_after_s", 1.0)))  # type: ignore[arg-type]
                raise JobFailed(error, job_id)
            elif kind == "done":
                return SweepOutcome(
                    job_id=str(msg["job"]),
                    points=points,
                    simulations=int(msg["simulations"]),  # type: ignore[arg-type]
                    hits=int(msg["hits"]),  # type: ignore[arg-type]
                    coalesced=int(msg["coalesced"]),  # type: ignore[arg-type]
                    elapsed_s=float(msg["elapsed_s"]),  # type: ignore[arg-type]
                    requeued=int(msg.get("requeued", 0)),  # type: ignore[arg-type]
                    trace_id=msg.get("trace_id"),  # type: ignore[arg-type]
                )
        raise ServiceError("stream ended without a terminal message")

    def submit_tune(self, workload: str,
                    strategy: str = "grid",
                    budget: int = 32,
                    seed: int = 0,
                    objectives: Optional[Sequence[str]] = None,
                    sram_mb: Sequence[float] = (4.0,),
                    entries: Sequence[int] = (64,),
                    include_baselines: bool = False,
                    fidelity: str = "exact",
                    on_message: Optional[
                        Callable[[Dict[str, object]], None]] = None,
                    ) -> Dict[str, object]:
        """Submit a tune job; returns the serialised
        :class:`~repro.tuner.TuneResult` dict (rebuild with
        ``TuneResult.from_dict``).

        A non-default ``fidelity`` needs a protocol-v3 daemon: v2 daemons
        ignore unknown request fields, so without the version check a
        hybrid submission would silently run at exact fidelity.  The
        check turns that into a clear client-side error instead.
        """
        if fidelity != "exact":
            version = self.ping().get("protocol", 1)
            if not (isinstance(version, int) and version >= 3):
                raise ServiceError(
                    f"daemon speaks protocol v{version} which has no "
                    f"'fidelity' tune field (needs v3+); a v2 daemon would "
                    f"silently ignore fidelity={fidelity!r} and simulate "
                    f"every point — restart the daemon with this build or "
                    f"drop --fidelity")
        req = self._traced(tune_request(
            workload, strategy=strategy, budget=budget,
            seed=seed, objectives=objectives, sram_mb=sram_mb,
            entries=entries, include_baselines=include_baselines,
            fidelity=fidelity, client=self.client_id))
        job_id: Optional[str] = None
        tune_result: Optional[Dict[str, object]] = None
        for msg in self._stream(req, on_message):
            kind = msg.get("type")
            if kind == "accepted":
                job_id = str(msg["job"])
            elif kind == "tune-result":
                tune_result = dict(msg["result"])  # type: ignore[arg-type]
            elif kind == "error":
                error = str(msg.get("error", "tune failed"))
                if msg.get("code") == "overloaded":
                    raise Overloaded(
                        error, job_id or msg.get("job"),  # type: ignore[arg-type]
                        retry_after_s=float(
                            msg.get("retry_after_s", 1.0)))  # type: ignore[arg-type]
                raise JobFailed(error, job_id)
            elif kind == "done":
                if tune_result is None:
                    raise ServiceError("tune finished without a result")
                return tune_result
        raise ServiceError("stream ended without a terminal message")
