"""Job records and the server-side job table.

A job is one client submission (``simulate``/``sweep``/``tune``).  Its
lifecycle::

    pending ──▶ running ──▶ done
                   │ ├────▶ failed     (simulation / search error)
                   │ └────▶ cancelled  (client `cancel` op)

``simulations`` / ``hits`` / ``coalesced`` partition a sweep job's
*distinct traffic keys* by how the server satisfied them: freshly
simulated by this job, answered from the warm result store, or attached
to another job's in-flight simulation (single-flight dedup).  A warm
resubmission is therefore ``simulations == 0`` by construction.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from .tracing import SpanContext


def workload_family(workloads: Iterable[str]) -> str:
    """Label value for per-family latency histograms: the shared first
    path segment of the job's workload names (``cg/fv1/N=16`` → ``cg``),
    ``multi`` for mixed-family jobs, ``-`` for none.  Families keep the
    label space bounded — full workload names are unbounded (every N is
    a new name) and would explode a histogram per point."""
    families = sorted({name.split("/", 1)[0] for name in workloads})
    if not families:
        return "-"
    return families[0] if len(families) == 1 else "multi"


class JobState(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job can never leave.
FINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One tracked submission; mutated only on the server's event loop
    (except ``cancel_event``, which is loop-safe by design)."""

    id: str
    kind: str                     # "simulate" | "sweep" | "tune"
    summary: str                  # short human description for listings
    client: str = "anon"          # tenant tag (fair scheduling, req logs)
    priority: str = "interactive"  # scheduling class: interactive | bulk
    state: JobState = JobState.PENDING
    total: int = 0                # points to stream (sweeps) / evals (tune)
    done: int = 0
    simulations: int = 0
    hits: int = 0
    coalesced: int = 0
    requeued: int = 0             # points re-hashed off a dead shard (gateway)
    family: str = "-"             # workload family label for latency metrics
    span: Optional[SpanContext] = None  # this node's span (traced requests)
    error: Optional[str] = None
    created: float = field(default_factory=time.monotonic)
    finished: Optional[float] = None
    cancel_event: asyncio.Event = field(default_factory=asyncio.Event,
                                        repr=False, compare=False)

    @property
    def cancelled(self) -> bool:
        return self.cancel_event.is_set()

    @property
    def finished_state(self) -> bool:
        return self.state in FINAL_STATES

    def elapsed_s(self) -> float:
        end = self.finished if self.finished is not None else time.monotonic()
        return end - self.created

    def finish(self, state: JobState, error: Optional[str] = None) -> None:
        self.state = state
        self.error = error
        self.finished = time.monotonic()

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view for the ``jobs`` op and progress messages."""
        snap: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "summary": self.summary,
            "client": self.client,
            "priority": self.priority,
            "state": self.state.value,
            "total": self.total,
            "done": self.done,
            "simulations": self.simulations,
            "hits": self.hits,
            "coalesced": self.coalesced,
            "requeued": self.requeued,
            "elapsed_s": round(self.elapsed_s(), 3),
            "error": self.error,
        }
        if self.span is not None:
            # Only traced jobs carry the field — untagged clients keep
            # seeing the exact pre-v6 snapshot shape.
            snap["trace_id"] = self.span.trace_id
        return snap


class JobRegistry:
    """Insertion-ordered job table with bounded history.

    Finished jobs beyond ``keep`` are evicted oldest-first so a
    long-running daemon's table stays bounded; live jobs are never
    evicted.
    """

    def __init__(self, keep: int = 256) -> None:
        self.keep = max(1, keep)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)

    def create(self, kind: str, summary: str,
               client: str = "anon",
               priority: str = "interactive") -> Job:
        job = Job(id=f"j{next(self._ids)}", kind=kind, summary=summary,
                  client=client, priority=priority)
        self._jobs[job.id] = job
        self._trim()
        return job

    def get(self, job_id: object) -> Optional[Job]:
        if not isinstance(job_id, str):
            return None
        return self._jobs.get(job_id)

    def snapshots(self) -> List[Dict[str, object]]:
        return [job.snapshot() for job in self._jobs.values()]

    def counts_by_state(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state.value] = counts.get(job.state.value, 0) + 1
        return counts

    def _trim(self) -> None:
        if len(self._jobs) <= self.keep:
            return
        for job_id, job in list(self._jobs.items()):
            if len(self._jobs) <= self.keep:
                break
            if job.finished_state:
                del self._jobs[job_id]

    def __len__(self) -> int:
        return len(self._jobs)
