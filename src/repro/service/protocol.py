"""Wire protocol of the simulation service: JSON lines over local TCP.

Every message — request or response — is one JSON object encoded on one
UTF-8 line (``\\n``-terminated, at most :data:`MAX_LINE_BYTES` bytes).
Requests carry an ``"op"`` field; responses carry a ``"type"`` field.

Request ops
-----------

========== =============================================================
op          meaning
========== =============================================================
ping        liveness + protocol version (single ``pong`` response)
simulate    one (workload, config) point — sugar for a 1-point sweep
sweep       a (workloads × configs × sram × bandwidth) grid
points      an explicit list of sweep points (the gateway's fan-out
            unit: a consistent-hash partition of a grid is not itself
            a grid, so shards receive point lists)
tune        a co-design autotuning run (:func:`repro.tuner.tune`)
predict     analytic traffic prediction of one point (single response;
            never touches the pool or the queue — :mod:`repro.analytic`)
topology    fabric introspection: role (gateway/shard), shard table and
            health on a gateway, worker/store view on a shard
jobs        snapshot of the server's job table (single response)
stats       server / store / pool counters (single response)
metrics     live observability counters (protocol v5): queue depth and
            per-client lanes, dedup split (warm hits vs coalesced),
            windowed sims/s / points/s / analytic-evals/s rates, store
            hit rate; per-shard health and requeues on a gateway
cancel      stop a running sweep job by id (single response)
shutdown    acknowledge, then stop the server (single response)
========== =============================================================

Submission ops optionally carry a ``client`` id (tenant tag for fair
scheduling and request logs) and a ``priority`` (``interactive`` or
``bulk``); both are omitted from the wire when unset, so a default
submission stays byte-identical to protocol v4.  An overloaded server
answers a submission with a typed ``error`` carrying
``code="overloaded"`` and a ``retry_after_s`` backoff hint.

Protocol v6 adds two more optional submission fields, ``trace_id`` and
``span_id`` (see :mod:`repro.service.tracing`): the sender's span,
propagated client → gateway → shard so request-log records across the
fabric share one trace.  Like every optional tag before them they are
omitted when unset — untraced v5 traffic stays byte-identical on the
wire — and a traced ``accepted``/``done`` response echoes ``trace_id``
so clients can surface it.

Submission ops (``simulate``/``sweep``/``tune``) stream several
responses on the same connection: ``accepted`` → ``result`` per point
(sweeps) or ``tune-result`` (tunes) → ``done``; a failed job ends with
``error`` and a cancelled one with ``cancelled`` instead.  Every other
op gets exactly one response.  Responses to a submission never
interleave with other clients' — each connection only sees its own jobs.

The module is deliberately dependency-light: converting wire requests
into :class:`~repro.orchestrator.spec.SweepSpec` lives here so the
server and tests share one validation path, but no asyncio/socket code
does.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..baselines.configs import MAIN_CONFIGS, unknown_config_error
from ..hw.config import GB, MIB
from ..orchestrator.spec import SweepPoint, SweepSpec

#: Bump on any wire-visible change (ops, field names, framing).
#: v2 added the ``predict`` op; v3 the ``fidelity`` field on ``tune``
#: (v2 daemons silently ignore unknown fields, so clients must check the
#: ping version before relying on it); v4 the ``points`` and
#: ``topology`` ops plus the ``requeued`` field on sweep ``done``
#: messages — the sharded-fabric surface (a gateway requires protocol
#: >= 4 of its shards); v5 the ``metrics`` op, optional
#: ``client``/``priority`` submission fields, and typed ``overloaded``
#: errors (``code`` + ``retry_after_s`` on ``error`` responses); v6
#: optional ``trace_id``/``span_id`` submission fields (distributed
#: tracing — a gateway only forwards them to shards that ping >= 6),
#: the ``latency`` histogram block on ``metrics`` responses, and
#: ``trace_id`` echoed on traced ``accepted``/``done`` messages.
PROTOCOL_VERSION = 6

#: ``code`` value of a typed load-shedding error (protocol v5).
ERROR_OVERLOADED = "overloaded"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Hard per-line bound (requests and responses); a line this long is a
#: protocol violation, not a big job — grids expand server-side.
MAX_LINE_BYTES = 1 << 20

#: Ops that stream multiple responses (job submissions).
SUBMIT_OPS = ("simulate", "sweep", "points", "tune")
#: Ops answered by exactly one response line.
QUERY_OPS = ("ping", "predict", "topology", "jobs", "stats", "metrics",
             "cancel", "shutdown")
KNOWN_OPS = SUBMIT_OPS + QUERY_OPS


class ProtocolError(ValueError):
    """A malformed or invalid wire message (bad frame, unknown op, bad
    field types, unknown config name, empty grid...)."""


def default_port() -> int:
    """``$REPRO_SERVICE_PORT`` when set, else :data:`DEFAULT_PORT`."""
    env = os.environ.get("REPRO_SERVICE_PORT")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return DEFAULT_PORT


# -- framing -------------------------------------------------------------------


def encode_message(msg: Mapping[str, object]) -> bytes:
    """One message → one JSON line (the only frame the protocol has)."""
    payload = json.dumps(dict(msg), separators=(",", ":")) + "\n"
    data = payload.encode("utf-8")
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(f"message of {len(data)} bytes exceeds "
                            f"MAX_LINE_BYTES={MAX_LINE_BYTES}")
    return data


def decode_message(line: "bytes | str") -> Dict[str, object]:
    """One line → one message dict; raises :class:`ProtocolError` on a
    non-JSON or non-object line."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("line exceeds MAX_LINE_BYTES")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"line is not UTF-8: {exc}") from exc
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"line is not JSON: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError("message must be a JSON object")
    return msg


def parse_request(line: "bytes | str") -> Dict[str, object]:
    """Decode a client line and check it names a known op."""
    msg = decode_message(line)
    op = msg.get("op")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; known: {', '.join(KNOWN_OPS)}")
    return msg


# -- request builders (client side) --------------------------------------------


def _submit_meta(req: Dict[str, object], client: Optional[str],
                 priority: Optional[str]) -> Dict[str, object]:
    """Attach the v5 tenant tags, wire-omitted when unset so a default
    submission stays byte-identical to what a v4 client sends."""
    if client is not None:
        req["client"] = str(client)
    if priority is not None:
        req["priority"] = str(priority)
    return req


def sweep_request(workloads: Sequence[str],
                  configs: Optional[Sequence[str]] = None,
                  sram_mb: Sequence[float] = (),
                  bandwidth_gb: Sequence[float] = (),
                  cache_granularity: Optional[int] = None,
                  client: Optional[str] = None,
                  priority: Optional[str] = None,
                  ) -> Dict[str, object]:
    req: Dict[str, object] = {"op": "sweep", "workloads": list(workloads)}
    if configs is not None:
        req["configs"] = list(configs)
    if sram_mb:
        req["sram_mb"] = [float(m) for m in sram_mb]
    if bandwidth_gb:
        req["bandwidth_gb"] = [float(g) for g in bandwidth_gb]
    if cache_granularity is not None:
        req["cache_granularity"] = int(cache_granularity)
    return _submit_meta(req, client, priority)


def tune_request(workload: str,
                 strategy: str = "grid",
                 budget: int = 32,
                 seed: int = 0,
                 objectives: Optional[Sequence[str]] = None,
                 sram_mb: Sequence[float] = (4.0,),
                 entries: Sequence[int] = (64,),
                 include_baselines: bool = False,
                 fidelity: str = "exact",
                 client: Optional[str] = None,
                 ) -> Dict[str, object]:
    req: Dict[str, object] = {
        "op": "tune",
        "workload": workload,
        "strategy": strategy,
        "budget": int(budget),
        "seed": int(seed),
        "sram_mb": [float(m) for m in sram_mb],
        "entries": [int(e) for e in entries],
        "include_baselines": bool(include_baselines),
    }
    if fidelity != "exact":
        # Only non-default fidelities go on the wire: an "exact" request
        # stays byte-identical to what a v2 client would send.
        req["fidelity"] = str(fidelity)
    if objectives is not None:
        req["objectives"] = list(objectives)
    return _submit_meta(req, client, None)


def points_request(points: Sequence[SweepPoint],
                   client: Optional[str] = None,
                   priority: Optional[str] = None) -> Dict[str, object]:
    """An explicit-point submission (protocol v4; the gateway's fan-out
    unit — shards receive the consistent-hash partition of a grid as a
    point list, in the exact per-shard stream order).  The gateway
    forwards the tenant's ``client``/``priority`` tags so shard-side
    fair scheduling sees the originating tenant, not the gateway."""
    req: Dict[str, object] = {"op": "points",
                              "points": [p.to_wire() for p in points]}
    return _submit_meta(req, client, priority)


def predict_request(workload: str, config: str,
                    sram_mb: float = 4.0,
                    bandwidth_gb: Optional[float] = None,
                    entries: Optional[int] = None) -> Dict[str, object]:
    req: Dict[str, object] = {
        "op": "predict",
        "workload": workload,
        "config": config,
        "sram_mb": float(sram_mb),
    }
    if bandwidth_gb is not None:
        req["bandwidth_gb"] = float(bandwidth_gb)
    if entries is not None:
        req["entries"] = int(entries)
    return req


# -- request validation (server side, shared with tests) -----------------------


def _str_list(req: Mapping[str, object], field: str,
              default: Sequence[str] = ()) -> List[str]:
    raw = req.get(field, list(default))
    if isinstance(raw, str):
        raw = [raw]
    if (not isinstance(raw, list)
            or any(not isinstance(x, str) for x in raw)):
        raise ProtocolError(f"{field!r} must be a string or list of strings")
    return [x for x in raw if x.strip()]


def _num_list(req: Mapping[str, object], field: str) -> List[float]:
    raw = req.get(field, [])
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        raw = [raw]
    if (not isinstance(raw, list)
            or any(isinstance(x, bool) or not isinstance(x, (int, float))
                   for x in raw)):
        raise ProtocolError(f"{field!r} must be a number or list of numbers")
    return [float(x) for x in raw]


def _int_field(req: Mapping[str, object], field: str, default: int) -> int:
    raw = req.get(field, default)
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ProtocolError(f"{field!r} must be an integer")
    return raw


def parse_submit_fields(req: Mapping[str, object]
                        ) -> "Tuple[Optional[str], Optional[str]]":
    """Validate the optional v5 tenant tags on a submission request;
    returns ``(client, priority)`` with ``None`` for absent fields.

    Older clients never send either field, so absence must stay cheap
    and error-free; presence with a wrong type or an unknown priority is
    a protocol error like any other malformed field.
    """
    client = req.get("client")
    if client is not None:
        if not isinstance(client, str) or not client.strip():
            raise ProtocolError("'client' must be a non-empty string")
        if len(client) > 128:
            raise ProtocolError("'client' must be at most 128 characters")
        client = client.strip()
    priority = req.get("priority")
    if priority is not None and priority not in (
            "interactive", "bulk"):
        raise ProtocolError(
            f"'priority' must be one of interactive/bulk, got {priority!r}")
    return client, priority


def parse_tune_fields(req: Mapping[str, object]) -> Dict[str, object]:
    """Type-validate a ``tune`` request's fields (same helpers the sweep
    path uses, so malformed wire types fail as clean protocol errors).

    Returns plain validated values; workload resolvability and strategy /
    objective names are checked by the server against their registries.
    """
    workload = req.get("workload")
    if not isinstance(workload, str) or not workload.strip():
        raise ProtocolError("'workload' must be a workload name")
    strategy = req.get("strategy", "grid")
    if not isinstance(strategy, str):
        raise ProtocolError("'strategy' must be a string")
    objectives = req.get("objectives")
    sram_mb = _num_list(req, "sram_mb") or [4.0]
    entries = _num_list(req, "entries") or [64.0]
    if any(e < 1 or int(e) != e for e in entries):
        raise ProtocolError("'entries' must be positive integers")
    fidelity = req.get("fidelity", "exact")
    if fidelity not in ("exact", "analytic", "hybrid"):
        raise ProtocolError(
            f"'fidelity' must be one of exact/analytic/hybrid, "
            f"got {fidelity!r}")
    return {
        "workload": workload,
        "strategy": strategy,
        "budget": _int_field(req, "budget", 32),
        "seed": _int_field(req, "seed", 0),
        "objectives": (_str_list(req, "objectives")
                       if objectives is not None else None),
        "sram_mb": sram_mb,
        "entries": [int(e) for e in entries],
        "include_baselines": bool(req.get("include_baselines", False)),
        "fidelity": str(fidelity),
    }


def parse_predict_fields(req: Mapping[str, object]) -> Dict[str, object]:
    """Type-validate a ``predict`` request's fields.

    Config names are validated here (static registry); workload
    resolvability and analytic-model support are the server's errors.
    """
    workload = req.get("workload")
    if not isinstance(workload, str) or not workload.strip():
        raise ProtocolError("'workload' must be a workload name")
    config = req.get("config")
    if not isinstance(config, str) or not config.strip():
        raise ProtocolError("'config' must be a configuration name")
    config_error = unknown_config_error([config])
    if config_error is not None:
        raise ProtocolError(config_error)
    sram = req.get("sram_mb", 4.0)
    if isinstance(sram, bool) or not isinstance(sram, (int, float)) or sram <= 0:
        raise ProtocolError("'sram_mb' must be a positive number")
    bandwidth = req.get("bandwidth_gb")
    if bandwidth is not None and (
            isinstance(bandwidth, bool)
            or not isinstance(bandwidth, (int, float)) or bandwidth <= 0):
        raise ProtocolError("'bandwidth_gb' must be a positive number")
    entries = req.get("entries")
    if entries is not None and (isinstance(entries, bool)
                                or not isinstance(entries, int)
                                or entries < 1):
        raise ProtocolError("'entries' must be a positive integer")
    return {
        "workload": workload,
        "config": config,
        "sram_bytes": int(float(sram) * MIB),
        "bandwidth_bytes_per_s": (None if bandwidth is None
                                  else float(bandwidth) * GB),
        "entries": entries,
    }


def request_to_points(req: Mapping[str, object]) -> "Tuple[SweepPoint, ...]":
    """Validate a ``points`` request into concrete :class:`SweepPoint`\\ s.

    Point order is preserved — the server streams results back in this
    order, which is what lets a gateway map shard-local result indexes
    back to its merged global stream.
    """
    raw = req.get("points")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(
            "'points' must be a non-empty list of point objects")
    points = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ProtocolError(f"points[{i}] must be an object")
        try:
            points.append(SweepPoint.from_wire(entry))
        except ValueError as exc:
            raise ProtocolError(f"points[{i}]: {exc}") from exc
    config_error = unknown_config_error(sorted({p.config for p in points}))
    if config_error is not None:
        raise ProtocolError(config_error)
    return tuple(points)


def request_to_spec(req: Mapping[str, object]) -> SweepSpec:
    """Validate a ``simulate``/``sweep`` request into a :class:`SweepSpec`.

    Workload *names* are not resolved here (that needs the registry and
    produces a better server-side error listing); config names are,
    since :data:`~repro.baselines.configs` is cheap and static.
    """
    op = req.get("op")
    if op == "simulate":
        workload = req.get("workload")
        config = req.get("config")
        if not isinstance(workload, str) or not workload.strip():
            raise ProtocolError("'workload' must be a workload name")
        if not isinstance(config, str) or not config.strip():
            raise ProtocolError("'config' must be a configuration name")
        workloads, configs = [workload], [config]
    else:
        workloads = _str_list(req, "workloads")
        configs = _str_list(req, "configs", default=MAIN_CONFIGS)
        if not workloads:
            raise ProtocolError("'workloads' must name at least one workload")
        if not configs:
            raise ProtocolError("'configs' must name at least one config")
    config_error = unknown_config_error(configs)
    if config_error is not None:
        raise ProtocolError(config_error)
    granularity = req.get("cache_granularity")
    if granularity is not None and (isinstance(granularity, bool)
                                    or not isinstance(granularity, int)
                                    or granularity < 1):
        raise ProtocolError("'cache_granularity' must be a positive integer")
    try:
        return SweepSpec(
            workloads=tuple(workloads),
            configs=tuple(configs),
            sram_bytes=tuple(int(m * MIB)
                             for m in _num_list(req, "sram_mb")),
            bandwidths=tuple(g * GB for g in _num_list(req, "bandwidth_gb")),
            cache_granularity=granularity,
        )
    except ValueError as exc:
        raise ProtocolError(f"invalid sweep grid: {exc}") from exc
