"""Prometheus text-exposition exporter for the service metrics.

Two consumers, one renderer: ``repro serve/gateway --prom-port N``
starts :class:`PromExporter` — a stdlib :mod:`http.server` thread
answering ``GET /metrics`` — and ``repro metrics --prom`` prints the
same rendering once over the wire protocol, for scrape-less use (piping
into ``promtool check metrics``, ad-hoc diffing, airgapped boxes).

:func:`render_prometheus` maps the ``metrics`` op response of either
role (shard or gateway, see :meth:`SimulationService._metrics_msg` /
:meth:`GatewayService._metrics_msg`) to the text format version 0.0.4:
every sample preceded by ``# HELP``/``# TYPE``, counters suffixed
``_total``, histograms emitted as cumulative ``_bucket{le=...}`` series
plus ``_sum``/``_count``, per-shard health as labelled gauges.  The
inventory is documented in docs/service.md §Tracing and Prometheus.

The exporter renders from a snapshot *callable* so the HTTP thread
never touches event-loop state directly — the services hand it a
``run_coroutine_threadsafe`` bridge onto their own loop.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import Histogram

#: Content type of the Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: object) -> str:
    """A sample value: integers stay integral, floats use the shortest
    round-tripping form (what ``repr`` gives on Python 3)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


class _TextBuilder:
    """Accumulates one exposition document, enforcing the one-TYPE-per-
    family discipline the format (and ``promtool``) requires."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def family(self, name: str, mtype: str, help_text: str,
               samples: Sequence[Tuple[Mapping[str, str], object]],
               suffix: str = "") -> None:
        if not samples:
            return
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {mtype}")
        for labels, value in samples:
            self.sample(name + suffix, labels, value)

    def sample(self, series: str, labels: Mapping[str, str],
               value: object) -> None:
        if labels:
            body = ",".join(f'{k}="{_escape(str(v))}"'
                            for k, v in labels.items())
            self._lines.append(f"{series}{{{body}}} {_fmt(value)}")
        else:
            self._lines.append(f"{series} {_fmt(value)}")

    def histogram(self, name: str, help_text: str,
                  series: Sequence[Tuple[Mapping[str, str], Histogram]],
                  ) -> None:
        """Emit one histogram family: cumulative ``_bucket`` counts per
        ``le`` bound (ending at ``+Inf``), then ``_sum`` and ``_count``."""
        if not series:
            return
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} histogram")
        for labels, hist in series:
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                self.sample(name + "_bucket",
                            {**labels, "le": _fmt(bound)}, cumulative)
            self.sample(name + "_bucket", {**labels, "le": "+Inf"},
                        hist.count)
            self.sample(name + "_sum", labels, hist.sum)
            self.sample(name + "_count", labels, hist.count)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _histogram_series(snapshot: Mapping[str, object]
                      ) -> List[Tuple[Dict[str, str], Histogram]]:
    """Decode a :class:`~repro.service.metrics.HistogramFamily` wire
    snapshot into (labels, histogram) pairs for the exposition."""
    label_names = [str(n) for n in snapshot.get("labels", ())]  # type: ignore[arg-type]
    out: List[Tuple[Dict[str, str], Histogram]] = []
    series: Mapping[str, Mapping[str, object]] = \
        snapshot.get("series", {})  # type: ignore[assignment]
    for key, data in series.items():
        values = key.split("|")
        if len(values) != len(label_names):
            continue  # malformed entry; skip rather than lie
        out.append((dict(zip(label_names, values)),
                    Histogram.from_snapshot(data)))
    return out


def render_prometheus(msg: Mapping[str, object]) -> str:
    """Render a ``metrics`` op response (either role) as exposition text."""
    role = str(msg.get("role", "shard"))
    b = _TextBuilder()
    b.family("repro_role_info", "gauge",
             "Static identity of the scraped endpoint.",
             [({"role": role, "server": str(msg.get("server", ""))}, 1)])
    b.family("repro_protocol_version", "gauge",
             "Wire protocol version this endpoint speaks.",
             [({}, int(msg.get("protocol", 0)))])  # type: ignore[arg-type]
    b.family("repro_uptime_seconds", "gauge",
             "Seconds since this endpoint started serving.",
             [({}, float(msg.get("uptime_s", 0.0)))])  # type: ignore[arg-type]
    b.family("repro_points_streamed_total", "counter",
             "Sweep points streamed back to clients.",
             [({}, int(msg.get("points_streamed", 0)))])  # type: ignore[arg-type]

    jobs: Mapping[str, object] = msg.get("jobs", {})  # type: ignore[assignment]
    b.family("repro_jobs", "gauge",
             "Jobs in the registry by lifecycle state.",
             [({"state": state}, int(count))  # type: ignore[arg-type]
              for state, count in sorted(jobs.items())])

    rates: Mapping[str, object] = msg.get("rates", {})  # type: ignore[assignment]
    rate_help = {
        "sims_per_s": "Simulations per second over the sliding window.",
        "points_per_s": "Points streamed per second over the sliding "
                        "window.",
        "analytic_evals_per_s": "Analytic model evaluations per second "
                                "over the sliding window.",
    }
    for key, help_text in rate_help.items():
        if key in rates:
            b.family(f"repro_{key.replace('_per_s', '')}_per_second",
                     "gauge", help_text,
                     [({}, float(rates[key]))])  # type: ignore[arg-type]
    if "window_s" in rates:
        b.family("repro_rate_window_seconds", "gauge",
                 "Sliding window the per-second rates average over.",
                 [({}, float(rates["window_s"]))])  # type: ignore[arg-type]

    if role == "shard":
        b.family("repro_simulations_total", "counter",
                 "Simulations executed since process start.",
                 [({}, int(msg.get("simulations", 0)))])  # type: ignore[arg-type]
        b.family("repro_warm_hits_total", "counter",
                 "Distinct traffic keys answered from the warm store.",
                 [({}, int(msg.get("hits_total", 0)))])  # type: ignore[arg-type]
        b.family("repro_coalesced_total", "counter",
                 "Distinct traffic keys coalesced onto in-flight "
                 "simulations.",
                 [({}, int(msg.get("coalesced_total", 0)))])  # type: ignore[arg-type]
        b.family("repro_shed_total", "counter",
                 "Submissions refused with a typed overloaded error.",
                 [({}, int(msg.get("shed_total", 0)))])  # type: ignore[arg-type]
        b.family("repro_queue_depth", "gauge",
                 "Points waiting in the fair queue.",
                 [({}, int(msg.get("queue_depth", 0)))])  # type: ignore[arg-type]
        b.family("repro_queue_max_pending", "gauge",
                 "Bounded queue capacity (--max-pending).",
                 [({}, int(msg.get("max_pending", 0)))])  # type: ignore[arg-type]
        b.family("repro_in_flight", "gauge",
                 "Traffic keys with a simulation queued or running.",
                 [({}, int(msg.get("in_flight", 0)))])  # type: ignore[arg-type]
        lanes: Mapping[str, object] = \
            msg.get("queue_clients", {})  # type: ignore[assignment]
        b.family("repro_queue_client_depth", "gauge",
                 "Queued points per tenant lane.",
                 [({"client": client}, int(depth))  # type: ignore[arg-type]
                  for client, depth in sorted(lanes.items())])
        store: Optional[Mapping[str, object]] = \
            msg.get("store")  # type: ignore[assignment]
        if store:
            b.family("repro_store_entries", "gauge",
                     "Records resident in the persistent result store.",
                     [({}, int(store.get("entries", 0)))])  # type: ignore[arg-type]
            b.family("repro_store_hits_total", "counter",
                     "Store lookups answered from disk.",
                     [({}, int(store.get("hits", 0)))])  # type: ignore[arg-type]
            b.family("repro_store_misses_total", "counter",
                     "Store lookups that missed.",
                     [({}, int(store.get("misses", 0)))])  # type: ignore[arg-type]
            b.family("repro_store_hit_rate", "gauge",
                     "hits / (hits + misses) since process start.",
                     [({}, float(store.get("hit_rate", 0.0)))])  # type: ignore[arg-type]
            b.family("repro_store_corrupt_lines_total", "counter",
                     "Corrupt store lines skipped on reload.",
                     [({}, int(store.get("corrupt", 0)))])  # type: ignore[arg-type]
    else:  # gateway
        b.family("repro_requeued_points_total", "counter",
                 "Points re-hashed off dead shards onto survivors.",
                 [({}, int(msg.get("requeued_total", 0)))])  # type: ignore[arg-type]
        b.family("repro_shards_healthy", "gauge",
                 "Shards currently passing health checks.",
                 [({}, int(msg.get("shards_healthy", 0)))])  # type: ignore[arg-type]
        b.family("repro_shards_total", "gauge",
                 "Shards configured behind this gateway.",
                 [({}, int(msg.get("shards_total", 0)))])  # type: ignore[arg-type]
        shards: Sequence[Mapping[str, object]] = \
            msg.get("shards", ())  # type: ignore[assignment]
        b.family("repro_shard_healthy", "gauge",
                 "Per-shard health (1 healthy, 0 down).",
                 [({"shard": str(s.get("id"))}, bool(s.get("healthy")))
                  for s in shards])
        b.family("repro_shard_deaths_total", "counter",
                 "Times each shard failed mid-job or went unreachable.",
                 [({"shard": str(s.get("id"))}, int(s.get("deaths", 0)))  # type: ignore[arg-type]
                  for s in shards])
        b.family("repro_shard_requeued_total", "counter",
                 "Points re-hashed off each shard across its deaths.",
                 [({"shard": str(s.get("id"))}, int(s.get("requeued", 0)))  # type: ignore[arg-type]
                  for s in shards])

    latency: Mapping[str, object] = \
        msg.get("latency", {})  # type: ignore[assignment]
    b.histogram("repro_request_duration_seconds",
                "Request duration by op, workload family and priority.",
                _histogram_series(latency))
    phases: Mapping[str, object] = \
        msg.get("phases", {})  # type: ignore[assignment]
    b.histogram("repro_phase_duration_seconds",
                "Per-point engine phase timings (--phase-profile).",
                _histogram_series(phases))
    return b.render()


class PromExporter:
    """Serves ``GET /metrics`` from a daemon thread.

    ``snapshot_fn`` must be thread-safe: it is invoked on HTTP handler
    threads.  The services pass a bridge that hops onto their event
    loop, so handler threads never read loop-owned state directly.
    """

    def __init__(self, snapshot_fn: Callable[[], Mapping[str, object]],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._snapshot_fn = snapshot_fn
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        snapshot_fn = self._snapshot_fn

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?")[0] not in ("/metrics", "/"):
                    self.send_error(404, "scrape /metrics")
                    return
                try:
                    body = render_prometheus(snapshot_fn()).encode("utf-8")
                except Exception as exc:  # snapshot raced a shutdown
                    self.send_error(503, f"metrics unavailable: {exc}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", PROM_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # scrapes are not operator-facing log events

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="prom-exporter", daemon=True)
        self._thread.start()
        return self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
