"""The sharded-fabric gateway daemon.

``repro gateway`` fronts N independent ``repro serve`` shards and makes
them look like one daemon to an unmodified
:class:`~repro.service.client.ServiceClient`.  The trick that keeps the
single-daemon guarantees intact is *routing by traffic key*: every sweep
point is assigned to a shard by consistent hash
(:class:`~repro.service.hashing.HashRing`) of the same
bandwidth-independent key the result store and the runner cache use.
Points that would share one simulation therefore always land on the
same shard, so that shard's local single-flight table remains a
globally correct dedup — no cross-shard locks, no coordination
protocol.

What the gateway does per sweep/points job:

* partition the point list across *healthy* shards by hashed key,
* ship each partition as one protocol-v4 ``points`` op,
* merge the per-shard streams back into the client's stream in strict
  global submission order, passing each ``point``/``result`` payload
  through verbatim (byte-identical to what a lone daemon would send),
* on a shard death mid-stream (EOF, connection reset, read timeout),
  re-hash only that shard's unfinished points over the survivors and
  keep going — the ``done`` message reports how many points were
  ``requeued``.

Requeue never duplicates simulations when the shards share a cache
directory: the dying shard's completed results are already on disk
(single atomic append per record), and every shard reloads the store
before claiming cold keys (:meth:`SimulationService._sync_store`), so
requeued-but-already-simulated keys resolve as warm hits.

Tune jobs are forwarded whole to one shard (chosen by hash of the
workload name) and their stream proxied; they are **not** requeued on
shard death — a tuner's search state lives in the shard.  ``predict``
fails over across healthy shards.  A shard ``error`` reply (a
deterministic simulation failure) fails the job without requeue:
re-running it elsewhere would fail the same way.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..orchestrator.spec import SweepPoint
from ..orchestrator.store import ResultStore
from ..workloads.registry import all_workloads, is_resolvable
from .hashing import DEFAULT_REPLICAS, EmptyRing, HashRing
from .jobs import Job, JobRegistry, JobState, workload_family
from .metrics import DEFAULT_WINDOW_S, HistogramFamily, RateMeter
from .promexport import PromExporter
from .protocol import (
    DEFAULT_HOST,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    parse_request,
    parse_submit_fields,
    points_request,
    request_to_points,
    request_to_spec,
)
from .reqlog import RequestLog
from .scheduling import classify_priority
from .tracing import SpanContext, attach_trace, parse_trace_fields


class _JobCancelled(Exception):
    """Internal control flow: a gateway job observed its cancel event."""


class _NoHealthyShards(Exception):
    """Internal control flow: routing found zero live shards."""


class _ShardJobError(Exception):
    """A shard reported a terminal job error; carries the typed fields
    (``code`` / ``retry_after_s``) so an ``overloaded`` shed by a shard
    reaches the gateway's client intact and its retry logic still
    works."""

    def __init__(self, shard_id: str, error: str,
                 code: Optional[str] = None,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(f"shard {shard_id}: {error}")
        self.code = code
        self.retry_after_s = retry_after_s


def parse_shard_addrs(specs: Sequence[str]) -> List[Tuple[str, int]]:
    """Parse ``host:port`` / bare-``port`` shard specs (CLI ``--shards``).

    Rejects duplicates: the ring treats shard ids as distinct nodes, and
    listing one shard twice would silently skew its key share.
    """
    addrs: List[Tuple[str, int]] = []
    seen = set()
    for spec in specs:
        text = spec.strip()
        host, _, port_text = text.rpartition(":")
        if not host:
            host = DEFAULT_HOST
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"bad shard address {spec!r}: expected host:port or port")
        if not (0 < port < 65536):
            raise ValueError(f"bad shard address {spec!r}: port out of range")
        addr = (host, port)
        if addr in seen:
            raise ValueError(f"duplicate shard address {spec!r}")
        seen.add(addr)
        addrs.append(addr)
    if not addrs:
        raise ValueError("a gateway needs at least one shard address")
    return addrs


@dataclass
class ShardState:
    """The gateway's view of one backend daemon."""

    id: str                       # "host:port" — also the ring node id
    host: str
    port: int
    healthy: bool = False
    protocol: Optional[int] = None
    last_error: Optional[str] = None
    deaths: int = 0               # times this shard failed mid-job
    requeued: int = 0             # points re-hashed off this shard's deaths

    def snapshot(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "host": self.host,
            "port": self.port,
            "healthy": self.healthy,
            "protocol": self.protocol,
            "deaths": self.deaths,
            "requeued": self.requeued,
            "error": self.last_error,
        }


class GatewayService:
    """The daemon behind ``repro gateway``.

    Lifecycle mirrors :class:`~repro.service.server.SimulationService`
    (:meth:`run` / :meth:`wait_started` / :meth:`request_stop`) so the
    same thread harnesses drive both.  The gateway holds no simulation
    state of its own — no pool, no store — which is why restarting it
    loses nothing but in-flight client conversations.
    """

    def __init__(self,
                 shards: Sequence[Tuple[str, int]],
                 host: str = DEFAULT_HOST,
                 port: int = 0,
                 replicas: int = DEFAULT_REPLICAS,
                 health_interval_s: float = 2.0,
                 ping_timeout_s: float = 5.0,
                 shard_read_timeout_s: float = 600.0,
                 keep_jobs: int = 256,
                 request_log: Optional[RequestLog] = None,
                 metrics_window_s: float = DEFAULT_WINDOW_S,
                 prom_port: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.replicas = max(1, replicas)
        self.health_interval_s = max(0.05, health_interval_s)
        self.ping_timeout_s = max(0.05, ping_timeout_s)
        self.shard_read_timeout_s = max(0.05, shard_read_timeout_s)
        self.registry = JobRegistry(keep=keep_jobs)
        self.request_log = request_log
        self.startup_error: Optional[BaseException] = None
        self.points_streamed = 0
        self.requeued_total = 0
        self.prom_port = prom_port
        self._points_meter = RateMeter(metrics_window_s)
        self._latency = HistogramFamily(("op", "family", "priority"))
        self._prom: Optional[PromExporter] = None
        self._shards: "Dict[str, ShardState]" = {}
        for shard_host, shard_port in shards:
            state = ShardState(id=f"{shard_host}:{shard_port}",
                               host=shard_host, port=shard_port)
            if state.id in self._shards:
                raise ValueError(f"duplicate shard {state.id}")
            self._shards[state.id] = state
        if not self._shards:
            raise ValueError("a gateway needs at least one shard")
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._t0 = 0.0

    # -- lifecycle -------------------------------------------------------------

    async def run(self, announce=None) -> None:
        """Serve until a ``shutdown`` op or :meth:`request_stop`."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_conn, self.host, self.port or 0,
                limit=MAX_LINE_BYTES)
        except OSError as exc:
            self.startup_error = exc
            self._started.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        # One initial sweep of the shard table before accepting work so
        # the first job routes around shards that never came up.
        await asyncio.gather(
            *(self._check_shard(s) for s in self._shards.values()))
        health = asyncio.create_task(self._health_loop())
        self._t0 = time.monotonic()
        if self.prom_port is not None:
            try:
                self._prom = PromExporter(self.metrics_snapshot,
                                          host=self.host,
                                          port=self.prom_port)
                self.prom_port = self._prom.start()
            except OSError as exc:
                self.startup_error = exc
                self._started.set()
                server.close()
                health.cancel()
                await asyncio.gather(health, return_exceptions=True)
                raise
        self._started.set()
        if announce is not None:
            healthy = sum(1 for s in self._shards.values() if s.healthy)
            prom_desc = (f", prometheus: :{self.prom_port}/metrics"
                         if self._prom is not None else "")
            announce(f"repro gateway listening on {self.host}:{self.port} "
                     f"(shards: {healthy}/{len(self._shards)} healthy, "
                     f"ring replicas: {self.replicas}{prom_desc})")
        try:
            await self._stop.wait()
        finally:
            # Same rationale as the shard daemon: close without
            # wait_closed() so an idle client cannot hang shutdown.
            server.close()
            health.cancel()
            await asyncio.gather(health, return_exceptions=True)
            if self._prom is not None:
                await self._loop.run_in_executor(None, self._prom.stop)
                self._prom = None

    def wait_started(self, timeout: Optional[float] = None) -> bool:
        """Block (from another thread) until the gateway accepts
        connections; check :attr:`startup_error` on ``True``."""
        return self._started.wait(timeout)

    def request_stop(self) -> None:
        """Thread-safe shutdown trigger (SIGINT handler, test teardown)."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass  # loop already closed — the gateway stopped on its own

    # -- shard health ----------------------------------------------------------

    async def _health_loop(self) -> None:
        """Re-ping every shard on a fixed cadence.

        Detects deaths between jobs and *resurrections*: a restarted
        shard re-enters the ring, and — consistent hashing — reclaims
        exactly the keys it owned before, nothing else moves.
        """
        while True:
            await asyncio.sleep(self.health_interval_s)
            await asyncio.gather(
                *(self._check_shard(s) for s in self._shards.values()))

    async def _check_shard(self, shard: ShardState) -> None:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port,
                                        limit=MAX_LINE_BYTES),
                self.ping_timeout_s)
        except (OSError, asyncio.TimeoutError) as exc:
            self._mark_unhealthy(shard, f"unreachable: {exc or 'timeout'}")
            return
        try:
            writer.write(encode_message({"op": "ping"}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(),
                                          self.ping_timeout_s)
            msg = decode_message(line) if line else {}
            protocol = msg.get("protocol")
            if msg.get("type") != "pong" or not isinstance(protocol, int):
                raise ProtocolError("did not answer ping with a pong")
            shard.protocol = protocol
            if protocol < 4:
                # The fan-out runs on the v4 `points` op; an old daemon
                # would reject every partition, so fail it up front.
                raise ProtocolError(
                    f"speaks protocol v{protocol}, gateway needs v4+")
            shard.healthy = True
            shard.last_error = None
        except (OSError, asyncio.TimeoutError, ProtocolError,
                ValueError) as exc:
            self._mark_unhealthy(shard, str(exc) or "ping timeout")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _mark_unhealthy(self, shard: ShardState, reason: str) -> None:
        if shard.healthy:
            shard.deaths += 1
        shard.healthy = False
        shard.last_error = reason

    def _healthy_ring(self) -> HashRing:
        healthy = [s.id for s in self._shards.values() if s.healthy]
        if not healthy:
            raise _NoHealthyShards
        return HashRing(healthy, replicas=self.replicas)

    # -- connection handling ---------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    msg: Dict[str, object]) -> None:
        writer.write(encode_message(msg))
        await writer.drain()

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(writer, {
                        "type": "error", "job": None,
                        "error": f"request line exceeds {MAX_LINE_BYTES} "
                                 "bytes"})
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    req = parse_request(line)
                except ProtocolError as exc:
                    await self._send(writer, {"type": "error", "job": None,
                                              "error": str(exc)})
                    continue
                if await self._handle_request(req, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; shard-side jobs keep warming stores
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, req: Dict[str, object],
                              writer: asyncio.StreamWriter) -> bool:
        """Serve one request; ``True`` closes the connection."""
        op = req["op"]
        t_start = time.monotonic()
        if op == "ping":
            healthy = sum(1 for s in self._shards.values() if s.healthy)
            await self._send(writer, {"type": "pong",
                                      "server": "repro-gateway",
                                      "protocol": PROTOCOL_VERSION,
                                      "shards_healthy": healthy,
                                      "shards_total": len(self._shards)})
        elif op == "jobs":
            await self._send(writer, {"type": "jobs",
                                      "jobs": self.registry.snapshots()})
        elif op == "stats":
            await self._send(writer, self._stats_msg())
        elif op == "metrics":
            await self._send(writer, self._metrics_msg())
        elif op == "topology":
            await self._send(writer, self._topology_msg())
        elif op == "predict":
            await self._forward_predict(req, writer)
        elif op == "cancel":
            await self._handle_cancel(req, writer)
        elif op == "shutdown":
            await self._send(writer, {"type": "ok", "stopping": True})
            assert self._stop is not None
            self._stop.set()
            return True
        elif op == "tune":
            await self._forward_tune(req, writer)
        else:  # "simulate" / "sweep" / "points"
            await self._merged_job(req, writer)
        if op not in ("simulate", "sweep", "points", "tune"):
            # Submissions log themselves with job context at finish.
            elapsed = time.monotonic() - t_start
            self._latency.observe((str(op), "-", "-"), elapsed)
            if self.request_log is not None:
                client = req.get("client")
                self.request_log.log(
                    str(op),
                    client=client if isinstance(client, str) else None,
                    trace=self._query_trace(req),
                    duration_s=elapsed)
        return False

    def _query_trace(self, req: Dict[str, object]
                     ) -> Optional[Dict[str, str]]:
        """Span fields for a query op's log record (queries answered by
        the gateway itself are leaf hops).  Malformed trace fields never
        fail an already-answered request — they just go unlogged."""
        try:
            caller = parse_trace_fields(req)
        except ProtocolError:
            return None
        return caller.child().log_fields() if caller is not None else None

    def _topology_msg(self) -> Dict[str, object]:
        return {
            "type": "topology",
            "role": "gateway",
            "protocol": PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "replicas": self.replicas,
            "requeued_total": self.requeued_total,
            "shards": [s.snapshot() for s in self._shards.values()],
        }

    def _stats_msg(self) -> Dict[str, object]:
        healthy = sum(1 for s in self._shards.values() if s.healthy)
        return {
            "type": "stats",
            "role": "gateway",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "jobs": self.registry.counts_by_state(),
            "points_streamed": self.points_streamed,
            "requeued_total": self.requeued_total,
            "shards_healthy": healthy,
            "shards_total": len(self._shards),
        }

    def _metrics_msg(self) -> Dict[str, object]:
        """Gateway-side operational counters; per-shard dedup and queue
        detail lives behind each shard's own ``metrics`` op."""
        healthy = sum(1 for s in self._shards.values() if s.healthy)
        return {
            "type": "metrics",
            "role": "gateway",
            "protocol": PROTOCOL_VERSION,
            "server": "repro-gateway",
            "uptime_s": round(time.monotonic() - self._t0, 3),
            "points_streamed": self.points_streamed,
            "requeued_total": self.requeued_total,
            "jobs": self.registry.counts_by_state(),
            "rates": {
                "window_s": self._points_meter.window_s,
                "points_per_s": round(self._points_meter.rate(), 4),
            },
            "latency": self._latency.snapshot(),
            "shards_healthy": healthy,
            "shards_total": len(self._shards),
            "shards": [s.snapshot() for s in self._shards.values()],
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Thread-safe :meth:`_metrics_msg` for the Prometheus exporter:
        hops onto the event loop so scrape threads never read loop-owned
        state (registry, shard table) mid-mutation."""
        loop = self._loop
        if loop is None:
            raise RuntimeError("gateway not running")

        async def _snap() -> Dict[str, object]:
            return self._metrics_msg()

        return asyncio.run_coroutine_threadsafe(_snap(), loop).result(
            timeout=10)

    def _log_job(self, job: Job, outcome: Optional[str] = None) -> None:
        self._latency.observe((job.kind, job.family, job.priority),
                              job.elapsed_s())
        if self.request_log is None:
            return
        self.request_log.log(
            job.kind, client=job.client, job=job.id,
            trace=job.span.log_fields() if job.span is not None else None,
            points=job.total, sims=job.simulations, hits=job.hits,
            coalesced=job.coalesced, duration_s=job.elapsed_s(),
            outcome=outcome or job.state.value, error=job.error)

    async def _handle_cancel(self, req: Dict[str, object],
                             writer: asyncio.StreamWriter) -> None:
        job = self.registry.get(req.get("job"))
        if job is None:
            await self._send(writer, {
                "type": "error", "job": None,
                "error": f"unknown job {req.get('job')!r}"})
        elif job.kind == "tune":
            await self._send(writer, {
                "type": "error", "job": job.id,
                "error": "tune jobs cannot be cancelled"})
        elif job.finished_state:
            await self._send(writer, {
                "type": "error", "job": job.id,
                "error": f"job {job.id} already {job.state.value}"})
        else:
            job.cancel_event.set()
            await self._send(writer, {"type": "ok", "job": job.id})

    # -- merged sweep jobs -----------------------------------------------------

    async def _merged_job(self, req: Dict[str, object],
                          writer: asyncio.StreamWriter) -> None:
        """Fan a sweep/points job across the shards; stream the merge."""
        try:
            client, explicit_priority = parse_submit_fields(req)
            caller_span = parse_trace_fields(req)
            if req["op"] == "points":
                points: Sequence[SweepPoint] = request_to_points(req)
                summary = ", ".join(sorted({p.workload for p in points}))
            else:
                spec = request_to_spec(req)
                points = spec.points()
                summary = ", ".join(spec.workloads)
            if not points:
                raise ProtocolError(
                    "sweep matched no (workload, config) points")
            # Validate here, not on the shards: an unknown workload must
            # be one clean error, not N partial partition failures.
            bad = sorted({p.workload for p in points
                          if not is_resolvable(p.workload)})
            if bad:
                raise ProtocolError(
                    f"unknown workload(s): {', '.join(bad)}; known: "
                    f"{', '.join(sorted(all_workloads()))}")
        except (ProtocolError, ValueError) as exc:
            await self._send(writer, {"type": "error", "job": None,
                                      "error": str(exc)})
            return

        client = client or "anon"
        # Classify by the *whole* submission so each shard applies the
        # same scheduling class to its partition as a lone daemon would
        # to the full job.
        priority = classify_priority(explicit_priority, len(points))
        job = self.registry.create(str(req["op"]), summary=summary,
                                   client=client, priority=priority)
        job.total = len(points)
        job.family = workload_family(p.workload for p in points)
        if caller_span is not None:
            job.span = caller_span.child()
        accepted: Dict[str, object] = {"type": "accepted", "job": job.id,
                                       "kind": job.kind,
                                       "points": job.total}
        if job.span is not None:
            accepted["trace_id"] = job.span.trace_id
        await self._send(writer, accepted)
        job.state = JobState.RUNNING
        waiter = asyncio.ensure_future(job.cancel_event.wait())
        queue: "asyncio.Queue[Tuple[object, ...]]" = asyncio.Queue()
        tasks: "set[asyncio.Task]" = set()
        try:
            await self._run_merge(job, points, queue, tasks, waiter, writer)
        except _JobCancelled:
            job.finish(JobState.CANCELLED)
            await self._send(writer, {"type": "cancelled", "job": job.id,
                                      "done": job.done, "total": job.total})
        except _NoHealthyShards:
            error = ("no healthy shards: every backend daemon is down or "
                     "speaks a pre-v4 protocol; check 'repro jobs "
                     "--topology' and restart shards with 'repro serve'")
            job.finish(JobState.FAILED, error)
            await self._send(writer, {"type": "error", "job": job.id,
                                      "error": error})
        except (ConnectionError, asyncio.CancelledError):
            job.finish(JobState.FAILED, "client disconnected")
            raise
        except _ShardJobError as exc:
            # Pass a shard's typed error (notably an `overloaded` shed)
            # through with its fields so client-side retry still works.
            job.finish(JobState.FAILED, str(exc))
            msg: Dict[str, object] = {"type": "error", "job": job.id,
                                      "error": str(exc)}
            if exc.code is not None:
                msg["code"] = exc.code
            if exc.retry_after_s is not None:
                msg["retry_after_s"] = exc.retry_after_s
            await self._send(writer, msg)
        except Exception as exc:  # shard-reported simulation failure
            job.finish(JobState.FAILED, str(exc))
            await self._send(writer, {"type": "error", "job": job.id,
                                      "error": str(exc)})
        else:
            job.finish(JobState.DONE)
            done_msg: Dict[str, object] = {
                "type": "done", "job": job.id, "points": job.total,
                "simulations": job.simulations, "hits": job.hits,
                "coalesced": job.coalesced, "requeued": job.requeued,
                "elapsed_s": round(job.elapsed_s(), 3)}
            if job.span is not None:
                done_msg["trace_id"] = job.span.trace_id
            await self._send(writer, done_msg)
        finally:
            waiter.cancel()
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            self._log_job(job)

    async def _run_merge(self, job: Job, points: Sequence[SweepPoint],
                         queue: "asyncio.Queue[Tuple[object, ...]]",
                         tasks: "set[asyncio.Task]",
                         waiter: "asyncio.Future[object]",
                         writer: asyncio.StreamWriter) -> None:
        """The merge loop: spawn per-shard workers, stream results in
        global submission order, requeue a dead shard's leftovers."""
        indexed = list(enumerate(points))
        live_workers = self._spawn_workers(self._healthy_ring(), indexed,
                                           queue, tasks, job)
        buffered: Dict[int, Dict[str, object]] = {}
        next_index = 0
        while live_workers > 0:
            item = await self._next_item(queue, waiter)
            kind = item[0]
            if kind == "result":
                _, global_index, msg = item
                buffered[int(global_index)] = msg  # type: ignore[arg-type]
                while next_index in buffered:
                    shard_msg = buffered.pop(next_index)
                    job.done += 1
                    self.points_streamed += 1
                    self._points_meter.record(1)
                    await self._send(writer, {
                        "type": "result", "job": job.id,
                        "index": next_index, "done": job.done,
                        "total": job.total,
                        # Verbatim pass-through: byte-identity with a
                        # lone daemon lives or dies right here.
                        "point": shard_msg["point"],
                        "result": shard_msg["result"],
                    })
                    next_index += 1
                if job.cancelled:
                    raise _JobCancelled
            elif kind == "done":
                _, _, msg = item
                job.simulations += int(msg.get("simulations", 0))  # type: ignore[union-attr]
                job.hits += int(msg.get("hits", 0))  # type: ignore[union-attr]
                job.coalesced += int(msg.get("coalesced", 0))  # type: ignore[union-attr]
                live_workers -= 1
            elif kind == "dead":
                _, shard_id, remaining, reason = item
                live_workers -= 1
                remaining = list(remaining)  # type: ignore[arg-type]
                if remaining:
                    job.requeued += len(remaining)
                    self.requeued_total += len(remaining)
                    self._shards[str(shard_id)].requeued += len(remaining)
                    # The failover gets its own span (parent: the gateway
                    # job span) so a trace grep shows the requeue hop and
                    # every respawned partition hangs under it.
                    requeue_span = (job.span.child()
                                    if job.span is not None else None)
                    if requeue_span is not None and self.request_log:
                        self.request_log.log(
                            "requeue", client=job.client, job=job.id,
                            trace=requeue_span.log_fields(),
                            points=len(remaining),
                            error=f"shard {shard_id}: {reason}")
                    # Survivors only: the ring over the still-healthy
                    # shards moves exactly the dead shard's keys.
                    live_workers += self._spawn_workers(
                        self._healthy_ring(), remaining, queue, tasks, job,
                        span=requeue_span)
            else:  # "job-error"
                _, shard_id, msg = item
                raise _ShardJobError(
                    str(shard_id),
                    str(msg.get("error", "batch failed by shard")),  # type: ignore[union-attr]
                    code=msg.get("code"),  # type: ignore[union-attr]
                    retry_after_s=msg.get("retry_after_s"))  # type: ignore[union-attr]
        if next_index != job.total:
            raise RuntimeError(
                f"merge lost points: streamed {next_index} of {job.total}")

    def _spawn_workers(self, ring: HashRing,
                       indexed: Sequence[Tuple[int, SweepPoint]],
                       queue: "asyncio.Queue[Tuple[object, ...]]",
                       tasks: "set[asyncio.Task]",
                       job: Job,
                       span: Optional[SpanContext] = None) -> int:
        """Partition ``indexed`` points by hashed traffic key and start
        one worker per non-empty shard batch; returns the worker count.

        ``span`` is the span the partitions are sent under — the job
        span for the first fan-out, a requeue span on failover (``None``
        falls back to the job span).
        """
        if span is None:
            span = job.span
        batches: Dict[str, List[Tuple[int, SweepPoint]]] = {}
        for index, point in indexed:
            shard_id = ring.assign(ResultStore.key_str(point.key()))
            batches.setdefault(shard_id, []).append((index, point))
        for shard_id, batch in batches.items():
            task = asyncio.create_task(
                self._shard_worker(self._shards[shard_id], batch, queue,
                                   job, span))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        return len(batches)

    async def _next_item(self, queue: "asyncio.Queue[Tuple[object, ...]]",
                         waiter: "asyncio.Future[object]",
                         ) -> Tuple[object, ...]:
        getter = asyncio.ensure_future(queue.get())
        try:
            await asyncio.wait({getter, waiter},
                               return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            getter.cancel()
            raise
        if getter.done():
            return getter.result()
        getter.cancel()
        raise _JobCancelled

    async def _shard_worker(self, shard: ShardState,
                            batch: Sequence[Tuple[int, SweepPoint]],
                            queue: "asyncio.Queue[Tuple[object, ...]]",
                            job: Job,
                            span: Optional[SpanContext] = None) -> None:
        """Run one shard's partition; terminal queue item is exactly one
        of ``done`` (stream finished), ``dead`` (shard failed — carries
        the unstreamed remainder for requeue) or ``job-error`` (the
        shard reported a deterministic failure)."""
        streamed = 0
        writer: Optional[asyncio.StreamWriter] = None
        # Only tag partitions with tenant fields when the shard
        # advertises v5, and with trace fields when it advertises v6; a
        # mixed-version fabric keeps working untagged.
        tagged = (shard.protocol or 0) >= 5
        traced = (shard.protocol or 0) >= 6
        try:
            try:
                reader, writer = await asyncio.open_connection(
                    shard.host, shard.port, limit=MAX_LINE_BYTES)
                partition = points_request(
                    [p for _, p in batch],
                    client=job.client if tagged else None,
                    priority=job.priority if tagged else None)
                if traced:
                    attach_trace(partition, span)
                writer.write(encode_message(partition))
                await writer.drain()
                while True:
                    line = await asyncio.wait_for(reader.readline(),
                                                  self.shard_read_timeout_s)
                    if not line:
                        raise ConnectionError("shard closed the stream")
                    msg = decode_message(line)
                    kind = msg.get("type")
                    if kind == "result":
                        local = int(msg.get("index", streamed))  # type: ignore[arg-type]
                        if not (0 <= local < len(batch)):
                            raise ProtocolError(
                                f"shard sent result index {local} outside "
                                f"its batch of {len(batch)}")
                        streamed = local + 1
                        await queue.put(("result", batch[local][0], msg))
                    elif kind == "done":
                        await queue.put(("done", shard.id, msg))
                        return
                    elif kind in ("error", "cancelled"):
                        if "error" not in msg:
                            msg["error"] = f"batch {kind} by shard"
                        await queue.put(("job-error", shard.id, msg))
                        return
                    # anything else (heartbeats, future fields): ignore
            except (OSError, asyncio.TimeoutError, ProtocolError,
                    ValueError) as exc:
                reason = str(exc) or type(exc).__name__
                self._mark_unhealthy(shard, reason)
                # Results the shard streamed before dying are merged and
                # (crucially) already on disk; only the rest re-hash.
                await queue.put(("dead", shard.id, batch[streamed:], reason))
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    # -- forwarded ops ---------------------------------------------------------

    async def _forward_predict(self, req: Dict[str, object],
                               writer: asyncio.StreamWriter) -> None:
        """Predictions are stateless — any shard answers identically, so
        fail over across the healthy ones instead of routing."""
        reply: Optional[Dict[str, object]] = None
        for shard in self._shards.values():
            if not shard.healthy:
                continue
            shard_writer: Optional[asyncio.StreamWriter] = None
            try:
                reader, shard_writer = await asyncio.open_connection(
                    shard.host, shard.port, limit=MAX_LINE_BYTES)
                shard_writer.write(encode_message(req))
                await shard_writer.drain()
                line = await asyncio.wait_for(reader.readline(),
                                              self.shard_read_timeout_s)
                if not line:
                    raise ConnectionError("shard closed the stream")
                reply = decode_message(line)
                break
            except (OSError, asyncio.TimeoutError, ProtocolError,
                    ValueError) as exc:
                self._mark_unhealthy(shard, str(exc) or type(exc).__name__)
            finally:
                if shard_writer is not None:
                    shard_writer.close()
                    try:
                        await shard_writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
        if reply is None:
            reply = {"type": "error", "job": None,
                     "error": "no healthy shards to answer predict; restart "
                              "shards with 'repro serve'"}
        await self._send(writer, reply)

    async def _forward_tune(self, req: Dict[str, object],
                            writer: asyncio.StreamWriter) -> None:
        """Proxy a tune job to one shard, chosen by hash of the workload
        so repeated tunes of one workload reuse that shard's warm state.

        No requeue on death: the search state lives in the shard, and
        replaying a half-run search elsewhere could double-count its
        simulation budget.  The client is told which restart to do.
        """
        workload = str(req.get("workload", ""))
        try:
            client, _ = parse_submit_fields(req)
            caller_span = parse_trace_fields(req)
        except ProtocolError as exc:
            await self._send(writer, {"type": "error", "job": None,
                                      "error": str(exc)})
            return
        try:
            shard_id = self._healthy_ring().assign(f"tune/{workload}")
        except _NoHealthyShards:
            await self._send(writer, {
                "type": "error", "job": None,
                "error": "no healthy shards to run tune; restart shards "
                         "with 'repro serve'"})
            return
        shard = self._shards[shard_id]
        job = self.registry.create("tune", summary=workload,
                                   client=client or "anon",
                                   priority="bulk")
        job.family = workload_family([workload])
        if caller_span is not None:
            job.span = caller_span.child()
        # The shard must parent its span to the *gateway's* span, not the
        # client's, so the hop tree nests client → gateway → shard.
        # Pre-v6 shards get the trace fields stripped instead.
        req = dict(req)
        req.pop("trace_id", None)
        req.pop("span_id", None)
        if (shard.protocol or 0) >= 6:
            attach_trace(req, job.span)
        shard_writer: Optional[asyncio.StreamWriter] = None

        def shard_died(exc: BaseException) -> Dict[str, object]:
            reason = str(exc) or type(exc).__name__
            self._mark_unhealthy(shard, reason)
            error = (f"shard {shard.id} died mid-tune ({reason}); tune "
                     "jobs are not requeued — evaluations it completed "
                     "are warm in the result store, so resubmit once a "
                     "shard is back")
            job.finish(JobState.FAILED, error)
            return {"type": "error", "job": job.id, "error": error}

        try:
            try:
                reader, shard_writer = await asyncio.open_connection(
                    shard.host, shard.port, limit=MAX_LINE_BYTES)
                shard_writer.write(encode_message(req))
                await shard_writer.drain()
            except (OSError, asyncio.TimeoutError) as exc:
                await self._send(writer, shard_died(exc))
                return
            while True:
                # Keep shard reads in their own try so a *client*
                # disconnect (ConnectionError from self._send below, an
                # OSError too) is never misread as a shard death.
                try:
                    line = await asyncio.wait_for(reader.readline(),
                                                  self.shard_read_timeout_s)
                    if not line:
                        raise ConnectionError("shard closed the stream")
                    msg = decode_message(line)
                except (OSError, asyncio.TimeoutError, ProtocolError,
                        ValueError) as exc:
                    await self._send(writer, shard_died(exc))
                    return
                kind = msg.get("type")
                if kind == "accepted":
                    job.state = JobState.RUNNING
                if "job" in msg:
                    msg["job"] = job.id
                await self._send(writer, msg)
                if kind == "done":
                    job.finish(JobState.DONE)
                    return
                if kind == "error":
                    job.finish(JobState.FAILED,
                               str(msg.get("error", "tune failed")))
                    return
        except (ConnectionError, asyncio.CancelledError):
            if not job.finished_state:
                job.finish(JobState.FAILED, "client disconnected")
            raise
        finally:
            if job.finished_state:
                self._log_job(job)
            if shard_writer is not None:
                shard_writer.close()
                try:
                    await shard_writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
