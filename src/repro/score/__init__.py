"""SCORE: scheduler for complex inter-operation reuse (Sec. V)."""

from .schedule_ir import (
    LoopOrder,
    OpSchedule,
    RealizedHold,
    RealizedPipeline,
    Route,
    Schedule,
    TensorPlacement,
)
from .loop_order import (
    consumer_shares_outermost,
    natural_loop_order,
    pipeline_conditions_met,
    producer_streams_outermost,
    schedule_adjacent,
)
from .tiling import choose_tiling, occupancy_tiles, tile_bytes_of, tile_nnz
from .swizzle import (
    LayoutChoice,
    choose_all_layouts,
    choose_layout,
    desired_major_dim,
    producer_major_dim,
    total_swizzles,
)
from .binding import BindingOptions, place_tensors, realize_holds, realize_pipelines
from .scheduler import Score, ScoreOptions, schedule_program
from .searchspace import (
    SearchSpaceReport,
    chord_design_points,
    compare_search_spaces,
    log10_comb,
    log10_factorial,
    log10_op_by_op_space,
    log10_scratchpad_space,
    log10_slice_allocation,
)
from .multinode import (
    MultiNodePlan,
    NocTrafficComparison,
    NodePlan,
    compare_noc_traffic,
    split_dominant_rank,
)

__all__ = [
    "LoopOrder",
    "OpSchedule",
    "RealizedHold",
    "RealizedPipeline",
    "Route",
    "Schedule",
    "TensorPlacement",
    "consumer_shares_outermost",
    "natural_loop_order",
    "pipeline_conditions_met",
    "producer_streams_outermost",
    "schedule_adjacent",
    "choose_tiling",
    "occupancy_tiles",
    "tile_bytes_of",
    "tile_nnz",
    "LayoutChoice",
    "choose_all_layouts",
    "choose_layout",
    "desired_major_dim",
    "producer_major_dim",
    "total_swizzles",
    "BindingOptions",
    "place_tensors",
    "realize_holds",
    "realize_pipelines",
    "Score",
    "ScoreOptions",
    "schedule_program",
    "SearchSpaceReport",
    "chord_design_points",
    "compare_search_spaces",
    "log10_comb",
    "log10_factorial",
    "log10_op_by_op_space",
    "log10_scratchpad_space",
    "log10_slice_allocation",
    "MultiNodePlan",
    "NocTrafficComparison",
    "NodePlan",
    "compare_noc_traffic",
    "split_dominant_rank",
]
