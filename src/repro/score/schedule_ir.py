"""Schedule intermediate representation — SCORE's output (Fig. 5).

A :class:`Schedule` binds every operation to a loop order + tiling and every
tensor to a *placement*: which buffer each consumer reads it from
(register file / pipeline buffer / hold slot / CHORD / DRAM) and where the
producer writes it.  Realized pipelines and holds record the edges whose
co-dependence conditions were actually satisfiable on the target hardware —
classification says an edge *may* pipeline; realization says it *does*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..core.classify import ClassifiedDag
from ..core.dag import TensorDag
from ..chord.hints import ReuseHints


class Route(enum.Enum):
    """Where a consumer reads a tensor from / a producer writes it to."""

    REGISTER_FILE = "rf"       # small tensor resident in the RF
    PIPELINE = "pipeline"      # adjacent realized pipeline stage
    HOLD = "hold"              # held tiles in the pipeline buffer
    CHORD = "chord"            # hybrid buffer (CELLO) — partial on-chip reuse
    DRAM = "dram"              # straight to/from DRAM (explicit baselines)


@dataclass(frozen=True)
class LoopOrder:
    """Concrete loop nest of one op: ``ranks`` outermost-first, ``parallel``
    marks pfor ranks (Sec. II-A example schedules)."""

    ranks: Tuple[str, ...]
    parallel: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError(f"duplicate ranks in loop order {self.ranks}")
        for p in self.parallel:
            if p not in self.ranks:
                raise ValueError(f"parallel rank {p!r} not in loop order {self.ranks}")

    @property
    def outermost(self) -> str:
        return self.ranks[0]


@dataclass(frozen=True)
class OpSchedule:
    """Per-op schedule: loop order, tiling of the dominant rank, and which
    operands are stationary vs streamed from the RF (Sec. V-B Tiling)."""

    op_name: str
    loop_order: LoopOrder
    tile_rank: Optional[str]          # tiled (usually dominant) rank
    tile_size: int                    # extent of one tile along tile_rank
    n_tiles: int
    stationary_tensor: Optional[str]  # the large tensor kept stationary
    rf_tensors: Tuple[str, ...]       # small tensors streamed from the RF

    def __post_init__(self) -> None:
        if self.n_tiles <= 0 or self.tile_size <= 0:
            raise ValueError("tiling must be positive")


@dataclass(frozen=True)
class RealizedPipeline:
    """An adjacent producer→consumer edge actually run as a pipeline."""

    src: str
    dst: str
    tensor: str
    tile_bytes: int


@dataclass(frozen=True)
class RealizedHold:
    """A delayed-hold edge satisfied by holding tiles in the pipeline
    buffer until the downstream consumer runs (Fig. 6)."""

    src: str
    dst: str
    tensor: str
    depth: int          # intervening pipeline stages
    window_bytes: int   # resident hold window


@dataclass(frozen=True)
class TensorPlacement:
    """Routing of one tensor: per-consumer read route + producer write route
    + the layout chosen by swizzle minimization."""

    tensor: str
    write_route: Route
    consumer_routes: Mapping[str, Route]
    major_rank: Optional[str]        # chosen storage-major rank
    swizzled_consumers: Tuple[str, ...]  # consumers needing a layout transform

    def route_for(self, consumer: str) -> Route:
        try:
            return self.consumer_routes[consumer]
        except KeyError:
            raise KeyError(
                f"op {consumer!r} is not a consumer of tensor {self.tensor!r}"
            ) from None


@dataclass
class Schedule:
    """Complete SCORE output for one program."""

    dag: TensorDag
    classified: ClassifiedDag
    op_schedules: Dict[str, OpSchedule]
    placements: Dict[str, TensorPlacement]
    pipelines: Dict[Tuple[str, str, str], RealizedPipeline]
    holds: Dict[Tuple[str, str, str], RealizedHold]
    hints: ReuseHints

    def placement(self, tensor: str) -> TensorPlacement:
        try:
            return self.placements[tensor]
        except KeyError:
            raise KeyError(f"tensor {tensor!r} has no placement") from None

    def op_schedule(self, op_name: str) -> OpSchedule:
        try:
            return self.op_schedules[op_name]
        except KeyError:
            raise KeyError(f"op {op_name!r} has no schedule") from None

    def is_pipelined(self, src: str, dst: str, tensor: str) -> bool:
        return (src, dst, tensor) in self.pipelines

    @property
    def n_pipelined_edges(self) -> int:
        return len(self.pipelines)

    @property
    def n_held_edges(self) -> int:
        return len(self.holds)

    def chord_tensors(self) -> Tuple[str, ...]:
        """Tensors any of whose consumers read through CHORD."""
        out = []
        for name, p in self.placements.items():
            if p.write_route is Route.CHORD or Route.CHORD in p.consumer_routes.values():
                out.append(name)
        return tuple(out)

    def describe(self) -> str:
        lines = [
            f"Schedule: {len(self.op_schedules)} ops, "
            f"{self.n_pipelined_edges} pipelined edges, "
            f"{self.n_held_edges} held edges"
        ]
        for name, p in self.placements.items():
            routes = ", ".join(f"{c}={r.value}" for c, r in p.consumer_routes.items())
            lines.append(f"  {name}: write={p.write_route.value} [{routes}]")
        return "\n".join(lines)
