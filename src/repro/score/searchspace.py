"""Buffer-allocation search-space accounting (Sec. VI-B).

The paper quantifies why explicit scratchpad allocation for delayed operand
reuse is intractable, in four steps (for T tensors sharing a buffer of
``size`` words):

1. slicing the buffer among T tensors: C(size + T - 1, T - 1) ≈ size^(T-1);
2. arranging the slices: T! assuming contiguous blocks (vs size! line-level);
3. choosing each tensor's resident slice: (Ti - Ti_slice) per tensor
   assuming contiguous head slices (vs binomial, factorial-class, without);
4. re-deciding all of the above at every program step, raising the product
   to the number of time steps.

The combined count reaches ~1e80 for a 4 MB buffer and 5 tensors over a CG
iteration, vs ~7e15 for op-by-op allocation, while CHORD's design space is
just the RIFF policy inputs — O(nodes + edges) ≈ 1e2.  Counts overflow
floats fast, so everything here works in log10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.dag import TensorDag


def log10_comb(n: int, k: int) -> float:
    """log10 of C(n, k) via lgamma (exact enough for 1e80-scale counts)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(10)


def log10_factorial(n: int) -> float:
    return math.lgamma(n + 1) / math.log(10)


def log10_slice_allocation(size_words: int, n_tensors: int) -> float:
    """Step 1: log10 C(size + T - 1, T - 1) — stars-and-bars over words."""
    if n_tensors < 1:
        raise ValueError("need at least one tensor")
    return log10_comb(size_words + n_tensors - 1, n_tensors - 1)


def log10_arrangements(n_tensors: int, contiguous: bool = True,
                       size_words: int = 0) -> float:
    """Step 2: T! for contiguous blocks; size! for free line placement."""
    if contiguous:
        return log10_factorial(n_tensors)
    return log10_factorial(size_words)


def log10_slice_choices(tensor_words: Sequence[int], contiguous: bool = True) -> float:
    """Step 3: product over tensors of slice-content choices.

    Contiguous head slices leave (Ti - Ti_slice) ≈ Ti choices per tensor;
    free element choice is binomial (factorial-class), far worse.
    """
    total = 0.0
    for t in tensor_words:
        if t <= 0:
            raise ValueError("tensor sizes must be positive")
        if contiguous:
            total += math.log10(t)
        else:
            total += log10_comb(t, max(1, t // 2))
    return total


def log10_scratchpad_space(
    size_words: int,
    tensor_words: Sequence[int],
    time_steps: int = 1,
    contiguous: bool = True,
) -> float:
    """Steps 1-4 combined (log10): the full explicit-allocation space."""
    if time_steps < 1:
        raise ValueError("time_steps must be >= 1")
    t = len(tensor_words)
    per_step = (
        log10_slice_allocation(size_words, t)
        + log10_arrangements(t, contiguous=contiguous, size_words=size_words)
        + log10_slice_choices(tensor_words, contiguous=contiguous)
    )
    return per_step * time_steps


def log10_op_by_op_space(size_words: int, tensors_per_op: int = 3,
                         n_ops: int = 7) -> float:
    """Baseline: allocate per op independently (no inter-op reuse).

    Each op splits the buffer among its own operands only; the program
    space is the product over ops.  For a 4 MB buffer and the 7-op CG DAG
    this lands at the paper's ~7e15 order.
    """
    per_op = log10_slice_allocation(size_words, tensors_per_op)
    return per_op + math.log10(n_ops)


def chord_design_points(dag: TensorDag) -> int:
    """CHORD's design space: the RIFF policy consumes only DAG-level reuse
    metadata, so the number of decision inputs is nodes + edges — O(1e2)
    for the paper's workloads (Sec. VI-B last paragraph)."""
    return len(dag) + len(dag.edges(include_inputs=True))


@dataclass(frozen=True)
class SearchSpaceReport:
    """The Sec. VI-B headline comparison for a concrete problem instance."""

    size_words: int
    n_tensors: int
    log10_op_by_op: float
    log10_scratchpad: float
    chord_points: int

    def describe(self) -> str:
        return (
            f"buffer={self.size_words} words, {self.n_tensors} tensors: "
            f"op-by-op 1e{self.log10_op_by_op:.0f} choices, "
            f"DAG-level scratchpad 1e{self.log10_scratchpad:.0f} choices, "
            f"CHORD {self.chord_points} design points"
        )


def compare_search_spaces(
    dag: TensorDag,
    size_words: int = (4 * 1024 * 1024) // 4,
    tensor_words: Sequence[int] | None = None,
    time_steps: int = 4,
) -> SearchSpaceReport:
    """Build the paper's three-way comparison for ``dag``.

    ``time_steps`` models the re-allocation points per CG iteration
    (Sec. VI-B step 4: allocations change as the program moves).
    """
    if tensor_words is None:
        # The five large contending tensors of a CG iteration.
        large = sorted(
            (t.bytes // 4 for t in dag.tensors), reverse=True
        )[:5]
        tensor_words = [max(1, w) for w in large] or [size_words]
    return SearchSpaceReport(
        size_words=size_words,
        n_tensors=len(tensor_words),
        log10_op_by_op=log10_op_by_op_space(size_words),
        log10_scratchpad=log10_scratchpad_space(
            size_words, tensor_words, time_steps=time_steps
        ),
        chord_points=chord_design_points(dag),
    )
