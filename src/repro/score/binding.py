"""Operand→buffer binding: realizing pipelines/holds and steering the rest
to CHORD (Sec. V-C "SCORE-CHORD Interface", Fig. 5 third box).

Classification says which edges *may* pipeline; binding checks the
schedule- and capacity-dependent conditions and produces per-tensor routes:

* small tensors (fit the register file) live in the RF;
* one adjacent pipelineable consumer per tensor can read from the pipeline
  buffer (double-buffered tiles) when the co-dependence conditions hold;
* delayed-hold consumers read held tiles, provided every hop of their
  longest path is itself a realized pipeline and the hold window fits;
* everything else — sequential and delayed-writeback consumers, plus any
  tensor that must survive beyond the pipeline — goes through CHORD.

A tensor whose consumers are all satisfied on-chip and which is not a
program output is never written back at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.classify import ClassifiedDag, DependencyType
from ..core.dag import Edge, TensorDag
from ..hw.config import AcceleratorConfig
from .loop_order import pipeline_conditions_met, schedule_adjacent
from .schedule_ir import (
    LoopOrder,
    OpSchedule,
    RealizedHold,
    RealizedPipeline,
    Route,
    TensorPlacement,
)
from .swizzle import LayoutChoice
from .tiling import tile_bytes_of


@dataclass(frozen=True)
class BindingOptions:
    """Feature switches (ablations disable individual mechanisms)."""

    enable_pipelining: bool = True
    enable_holds: bool = True


def realize_pipelines(
    classified: ClassifiedDag,
    op_schedules: Dict[str, OpSchedule],
    layouts: Dict[str, LayoutChoice],
    cfg: AcceleratorConfig,
    options: BindingOptions,
) -> Dict[Tuple[str, str, str], RealizedPipeline]:
    """Pass 1: adjacent pipelineable edges whose conditions all hold."""
    if not options.enable_pipelining:
        return {}
    dag = classified.dag
    realized: Dict[Tuple[str, str, str], RealizedPipeline] = {}
    for edge in dag.edges():
        if classified.dep_of(edge) is not DependencyType.PIPELINEABLE:
            continue
        assert edge.src is not None
        if not schedule_adjacent(dag.op_index(edge.src), dag.op_index(edge.dst)):
            continue
        swizzled = edge.dst in layouts[edge.tensor].swizzled_consumers
        src_order = op_schedules[edge.src].loop_order
        dst_order = op_schedules[edge.dst].loop_order
        if not pipeline_conditions_met(edge, classified, src_order, dst_order, swizzled):
            continue
        tile = tile_bytes_of(dag.op(edge.src), op_schedules[edge.src])
        if 2 * tile > cfg.pipeline_buffer_bytes:
            continue  # cannot double-buffer a stage of this size
        realized[edge.key()] = RealizedPipeline(
            src=edge.src, dst=edge.dst, tensor=edge.tensor, tile_bytes=tile
        )
    return realized


def realize_holds(
    classified: ClassifiedDag,
    op_schedules: Dict[str, OpSchedule],
    pipelines: Dict[Tuple[str, str, str], RealizedPipeline],
    cfg: AcceleratorConfig,
    options: BindingOptions,
) -> Dict[Tuple[str, str, str], RealizedHold]:
    """Pass 2: delayed-hold edges whose carrier chain actually pipelines.

    The tile can only ride the pipeline buffer to its delayed consumer if
    every hop of the longest src→dst path is a realized pipeline; the hold
    window (depth+2 tiles) must fit alongside the stages.
    """
    if not options.enable_holds:
        return {}
    dag = classified.dag
    realized: Dict[Tuple[str, str, str], RealizedHold] = {}
    for edge in dag.edges():
        if classified.dep_of(edge) is not DependencyType.DELAYED_HOLD:
            continue
        assert edge.src is not None
        path = dag.longest_path(edge.src, edge.dst)
        assert path is not None and len(path) > 2
        chain_ok = True
        for a, b in zip(path, path[1:]):
            hop_tensor = dag.path_edge_tensor(a, b)
            if hop_tensor is None or (a, b, hop_tensor) not in pipelines:
                chain_ok = False
                break
        if not chain_ok:
            continue
        tile = tile_bytes_of(dag.op(edge.src), op_schedules[edge.src])
        depth = len(path) - 2
        window = (depth + 2) * tile
        if window > cfg.pipeline_buffer_bytes:
            continue
        realized[edge.key()] = RealizedHold(
            src=edge.src, dst=edge.dst, tensor=edge.tensor,
            depth=depth, window_bytes=window,
        )
    return realized


def place_tensors(
    classified: ClassifiedDag,
    pipelines: Dict[Tuple[str, str, str], RealizedPipeline],
    holds: Dict[Tuple[str, str, str], RealizedHold],
    layouts: Dict[str, LayoutChoice],
    cfg: AcceleratorConfig,
) -> Dict[str, TensorPlacement]:
    """Pass 3: per-tensor write route and per-consumer read routes."""
    dag = classified.dag
    outputs = set(dag.program_outputs())
    placements: Dict[str, TensorPlacement] = {}
    for spec in dag.tensors:
        name = spec.name
        producer = dag.producer_of(name)
        consumers = dag.consumers_of(name)
        layout = layouts[name]
        small = spec.bytes <= cfg.rf_bytes
        routes: Dict[str, Route] = {}
        for c in consumers:
            if small:
                routes[c] = Route.REGISTER_FILE
            elif producer is not None and (producer, c, name) in pipelines:
                routes[c] = Route.PIPELINE
            elif producer is not None and (producer, c, name) in holds:
                routes[c] = Route.HOLD
            else:
                routes[c] = Route.CHORD
        if producer is None:
            write_route = Route.DRAM  # program inputs are born in DRAM
        elif small:
            write_route = Route.REGISTER_FILE
        elif routes and all(
            r in (Route.PIPELINE, Route.HOLD) for r in routes.values()
        ) and name not in outputs:
            write_route = Route.PIPELINE  # fully consumed on-chip: no writeback
        else:
            write_route = Route.CHORD
        placements[name] = TensorPlacement(
            tensor=name,
            write_route=write_route,
            consumer_routes=routes,
            major_rank=(
                spec.ranks[layout.major_dim].name
                if layout.major_dim is not None and layout.major_dim < len(spec.ranks)
                else None
            ),
            swizzled_consumers=layout.swizzled_consumers,
        )
    return placements
