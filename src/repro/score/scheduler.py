"""SCORE: the top-level scheduler (Sec. V, Fig. 5).

``Score.schedule`` runs the whole pipeline:

1. classify tensor-level dependencies (Algorithm 2);
2. fix per-op loop orders (dominant rank outermost) and tilings;
3. choose per-tensor layouts minimizing swizzle;
4. realize pipelines and holds, steering the rest to CHORD;
5. emit the coarse-grained per-tensor reuse hints CHORD's policies consume.

SCORE deliberately does **not** search buffer allocations: that is the
1e80-choice trap of Sec. VI-B.  Its output is O(nodes + edges) of metadata,
and CHORD's implicit policies make the cycle-level decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..chord.hints import ReuseHints
from ..core.classify import ClassifiedDag, classify_dependencies
from ..core.dag import TensorDag
from ..hw.config import DEFAULT_CONFIG, AcceleratorConfig
from .binding import BindingOptions, place_tensors, realize_holds, realize_pipelines
from .loop_order import natural_loop_order
from .schedule_ir import Schedule
from .swizzle import choose_all_layouts
from .tiling import choose_tiling


@dataclass(frozen=True)
class ScoreOptions:
    """Scheduler feature switches (each is an ablation axis)."""

    enable_pipelining: bool = True
    enable_holds: bool = True
    minimize_swizzle: bool = True

    def binding(self) -> BindingOptions:
        return BindingOptions(
            enable_pipelining=self.enable_pipelining,
            enable_holds=self.enable_holds,
        )


class Score:
    """The SCORE scheduler."""

    def __init__(
        self,
        cfg: Optional[AcceleratorConfig] = None,
        options: Optional[ScoreOptions] = None,
    ) -> None:
        self.cfg = DEFAULT_CONFIG if cfg is None else cfg
        self.options = ScoreOptions() if options is None else options

    def schedule(self, dag: TensorDag,
                 classified: Optional[ClassifiedDag] = None) -> Schedule:
        """Produce a full :class:`Schedule` for ``dag``."""
        cdag = classified if classified is not None else classify_dependencies(dag)
        orders = {op.name: natural_loop_order(op, cdag) for op in dag.ops}
        op_schedules = {
            op.name: choose_tiling(op, cdag, self.cfg, order=orders[op.name])
            for op in dag.ops
        }
        layouts = choose_all_layouts(dag, orders, minimize=self.options.minimize_swizzle)
        pipelines = realize_pipelines(
            cdag, op_schedules, layouts, self.cfg, self.options.binding()
        )
        holds = realize_holds(
            cdag, op_schedules, pipelines, self.cfg, self.options.binding()
        )
        placements = place_tensors(cdag, pipelines, holds, layouts, self.cfg)
        hints = ReuseHints.from_dag(dag)
        return Schedule(
            dag=dag,
            classified=cdag,
            op_schedules=op_schedules,
            placements=placements,
            pipelines=pipelines,
            holds=holds,
            hints=hints,
        )


def schedule_program(
    dag: TensorDag,
    cfg: Optional[AcceleratorConfig] = None,
    options: Optional[ScoreOptions] = None,
) -> Schedule:
    """Convenience one-shot: classify + schedule ``dag``."""
    return Score(cfg, options).schedule(dag)
