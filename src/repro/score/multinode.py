"""Multi-node scalable dataflow (Sec. V-B "Scalable Dataflow", Fig. 8).

SCORE parallelises the *dominant* rank across nodes so pipelining stays
inside a node and only small tensors cross the NoC: each node owns an
``M/nodes`` slab of every skewed tensor and the N×N' Greek tensors are
broadcast/reduced.  This module produces the per-node plan and compares its
NoC traffic against the naive operator-split (top of Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.dag import TensorDag
from ..hw.noc import NocConfig, op_split_traffic_words, rank_split_traffic_words


@dataclass(frozen=True)
class NodePlan:
    """One node's share of a dominant-rank-split schedule."""

    node_id: int
    rank: str
    start: int
    stop: int

    @property
    def extent(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class MultiNodePlan:
    """A dominant-rank split of a program across ``noc.n_nodes`` nodes."""

    rank: str
    rank_extent: int
    nodes: Tuple[NodePlan, ...]
    noc: NocConfig

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def describe(self) -> str:
        return (
            f"split rank {self.rank!r} ({self.rank_extent}) across "
            f"{self.n_nodes} nodes: ~{self.nodes[0].extent} each"
        )


def split_dominant_rank(rank: str, extent: int, noc: NocConfig) -> MultiNodePlan:
    """Even contiguous split of ``rank`` across nodes (cluster rows of the
    skewed tensors stay local, Fig. 8 bottom)."""
    if extent <= 0:
        raise ValueError("extent must be positive")
    n = noc.n_nodes
    base = extent // n
    rem = extent % n
    nodes = []
    start = 0
    for i in range(n):
        size = base + (1 if i < rem else 0)
        nodes.append(NodePlan(node_id=i, rank=rank, start=start, stop=start + size))
        start += size
    return MultiNodePlan(rank=rank, rank_extent=extent, nodes=tuple(nodes), noc=noc)


@dataclass(frozen=True)
class NocTrafficComparison:
    """Fig. 8's two strategies for one pipelined pair of operations."""

    m: int
    n: int
    n_prime: int
    noc: NocConfig
    op_split_words: int
    rank_split_words: int

    @property
    def advantage(self) -> float:
        return self.op_split_words / max(1, self.rank_split_words)

    def describe(self) -> str:
        return (
            f"M={self.m}, N={self.n}: op-split moves {self.op_split_words} "
            f"words, rank-split moves {self.rank_split_words} words "
            f"({self.advantage:.0f}x less)"
        )


def compare_noc_traffic(m: int, n: int, n_prime: int,
                        noc: NocConfig = NocConfig()) -> NocTrafficComparison:
    """Traffic of shipping the skewed intermediate vs broadcasting/reducing
    the small tensor (the paper's ops 4↔5 example)."""
    return NocTrafficComparison(
        m=m, n=n, n_prime=n_prime, noc=noc,
        op_split_words=op_split_traffic_words(m, n),
        rank_split_words=rank_split_traffic_words(n, n_prime, noc),
    )
