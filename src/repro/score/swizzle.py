"""Swizzle (layout transformation) minimization — Challenge 4 / Sec. V-B.

A tensor with several consumers should be stored so that as many consumers
as possible traverse it in storage order.  Because rank *names* are per-op
bindings (CG's ``S`` is ``(m,n)`` at its producer but ``(k,n)`` at line 2a),
the vote is over storage **dimension positions**: each consumer desires the
tensor major in the dimension its loop nest reaches first (outermost), and
SCORE picks the majority, ties broken toward the producer's natural write
order (a free layout).  Losing consumers are *swizzled*: they must either
transform the tensor (an extra round trip) or forgo pipelining.

For the paper's workloads the vote is unanimous (everything wants the
skewed rank major), so CELLO runs swizzle-free; the ablation bench disables
minimization to show the cost of a wrong layout.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.dag import TensorDag
from ..core.tensor import TensorSpec
from .schedule_ir import LoopOrder


@dataclass(frozen=True)
class LayoutChoice:
    """Chosen storage-major dimension for one tensor + consumers that
    disagree (and therefore need a layout transform)."""

    tensor: str
    major_dim: Optional[int]
    swizzled_consumers: Tuple[str, ...]

    @property
    def n_swizzles(self) -> int:
        return len(self.swizzled_consumers)


def _first_order_dim(bound: TensorSpec, order: LoopOrder) -> Optional[int]:
    """Dimension position of the first loop rank (outermost-first) that is a
    rank of ``bound``; None when the op never indexes the tensor by a loop
    rank (degenerate)."""
    for r in order.ranks:
        for dim, rank in enumerate(bound.ranks):
            if rank.name == r:
                return dim
    return None


def desired_major_dim(
    dag: TensorDag, consumer: str, tensor: str, order: LoopOrder
) -> Optional[int]:
    """The storage dimension ``consumer`` wants major (slowest-varying):
    the dimension of its binding reached outermost in its loop nest."""
    bound = dag.op(consumer).input_named(tensor)
    return _first_order_dim(bound, order)


def producer_major_dim(
    dag: TensorDag, tensor: str, orders: Dict[str, LoopOrder]
) -> int:
    """The dimension the producer writes major for free (its outermost loop
    rank on the output); dimension 0 for program inputs (as stored)."""
    producer = dag.producer_of(tensor)
    if producer is None:
        return 0
    spec = dag.op(producer).output
    dim = _first_order_dim(spec, orders[producer])
    return 0 if dim is None else dim


def choose_layout(
    dag: TensorDag,
    tensor: str,
    orders: Dict[str, LoopOrder],
    minimize: bool = True,
) -> LayoutChoice:
    """Pick the storage-major dimension for ``tensor``.

    With ``minimize=True`` (SCORE), the majority desire wins, ties broken
    toward the producer's free write order.  With ``minimize=False``
    (ablation), the producer's order is kept regardless of consumers.
    """
    consumers = dag.consumers_of(tensor)
    prod_major = producer_major_dim(dag, tensor, orders)
    desires: Dict[str, Optional[int]] = {
        c: desired_major_dim(dag, c, tensor, orders[c]) for c in consumers
    }
    if not minimize or not consumers:
        major = prod_major
    else:
        votes = Counter(d for d in desires.values() if d is not None)
        if votes:
            best = max(votes.items(), key=lambda kv: (kv[1], kv[0] == prod_major))
            major = best[0]
        else:
            major = prod_major
    swizzled = tuple(
        c for c, d in desires.items() if d is not None and d != major
    )
    return LayoutChoice(tensor=tensor, major_dim=major, swizzled_consumers=swizzled)


def choose_all_layouts(
    dag: TensorDag,
    orders: Dict[str, LoopOrder],
    minimize: bool = True,
) -> Dict[str, LayoutChoice]:
    """Layout choice for every tensor of the program."""
    return {
        t.name: choose_layout(dag, t.name, orders, minimize=minimize)
        for t in dag.tensors
    }


def total_swizzles(choices: Dict[str, LayoutChoice]) -> int:
    return sum(c.n_swizzles for c in choices.values())
