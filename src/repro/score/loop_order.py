"""Loop-order selection and pipeline co-dependence conditions (Sec. V-B).

SCORE keeps the *dominant* rank in the outermost loop: the large tensor is
stationary tile-by-tile and the small tensor streams from the register
file.  This single rule already achieves best-case intra-op reuse for
skewed GEMMs (Sec. VII-A1's oracle), so no per-op schedule search is
needed — the search-space blow-up lives entirely in buffer allocation,
which CHORD absorbs.

For a producer→consumer pair to actually pipeline, the paper lists four
co-dependence conditions; classification established the first (the edge is
pipelineable) and this module checks the remaining, schedule-dependent
ones.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.classify import ClassifiedDag, DependencyType
from ..core.dag import Edge
from ..core.dominance import Dominance
from ..core.einsum import EinsumOp
from .schedule_ir import LoopOrder


def natural_loop_order(op: EinsumOp, classified: ClassifiedDag) -> LoopOrder:
    """SCORE's fixed loop order: dominant rank outermost.

    After the dominant rank come the contracted ranks (the Sec. II-A
    "schedule B" shape — ``for m1: for k: pfor n`` — which is also the CSR
    SpMM traversal row→nonzero→column), then the remaining uncontracted
    ranks; each group in decreasing traversal extent.  The two innermost
    ranks are parallelised across the PE array (the ``pfor`` levels).
    """
    dom = classified.dominance[op.name]
    rest = [r for r in op.all_ranks if r.name != dom.dominant_rank]
    contracted = sorted(
        (r for r in rest if r.name in op.contracted), key=lambda r: -r.traversal_size
    )
    uncontracted = sorted(
        (r for r in rest if r.name not in op.contracted), key=lambda r: -r.traversal_size
    )
    names: list[str] = []
    if dom.dominant_rank is not None:
        names.append(dom.dominant_rank)
    else:
        # Balanced node: lead with the largest uncontracted rank so the op
        # still streams its output (keeps ResNet chains pipelineable).
        lead = max(
            (r for r in op.all_ranks if r.name not in op.contracted),
            key=lambda r: r.traversal_size,
            default=op.all_ranks[0],
        )
        names.append(lead.name)
        contracted = [r for r in contracted if r.name != lead.name]
        uncontracted = [r for r in uncontracted if r.name != lead.name]
    names.extend(r.name for r in contracted)
    names.extend(r.name for r in uncontracted)
    parallel = tuple(names[-2:]) if len(names) >= 2 else tuple(names)
    return LoopOrder(ranks=tuple(names), parallel=parallel)


def producer_streams_outermost(
    op: EinsumOp, order: LoopOrder, classified: ClassifiedDag
) -> bool:
    """Condition 2: the source emits output tiles as its outermost loop
    advances — true iff its outermost rank is uncontracted (a contracted
    outermost loop only finishes the output at the very end)."""
    return order.outermost not in op.contracted


def consumer_shares_outermost(
    consumer: EinsumOp, order: LoopOrder, tensor_name: str
) -> bool:
    """Condition 3: the destination's outermost loop walks a rank of the
    shared tensor, so it eats tiles in production order."""
    bound = consumer.input_named(tensor_name)
    return bound.has_rank(order.outermost)


def pipeline_conditions_met(
    edge: Edge,
    classified: ClassifiedDag,
    src_order: LoopOrder,
    dst_order: LoopOrder,
    tensor_swizzled: bool,
) -> bool:
    """All four Sec. V-B conditions for realizing a pipeline on ``edge``.

    1. the dependency is pipelineable (Algorithm 2);
    2. the source has an uncontracted rank outermost;
    3. the destination has a shared rank outermost;
    4. the shared tensor is not swizzled between the two.
    """
    if edge.src is None:
        return False
    if classified.dep_of(edge) is not DependencyType.PIPELINEABLE:
        return False
    dag = classified.dag
    src_op = dag.op(edge.src)
    dst_op = dag.op(edge.dst)
    if not producer_streams_outermost(src_op, src_order, classified):
        return False
    if not consumer_shares_outermost(dst_op, dst_order, edge.tensor):
        return False
    if tensor_swizzled:
        return False
    return True


def schedule_adjacent(dag_index_src: int, dag_index_dst: int) -> bool:
    """Pipelines bind producer and consumer to concurrent stages, which the
    space-time schedule only provides for program-adjacent operations
    (Fig. 5's binding step).  A pipelineable edge between distant ops
    (e.g. X from CG line 3 to line 3 of the *next* iteration) degrades to a
    CHORD round trip."""
    return dag_index_dst == dag_index_src + 1
