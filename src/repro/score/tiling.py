"""Tiling of skewed operations (Sec. V-B "Tiling" and "Handling sparsity").

Skewed GEMMs have one large tensor (tiled along the dominant rank, one tile
stationary at a time) and one small tensor (resident in the register file,
streamed).  Sparse operands tile by *occupancy*: row ranges are chosen so
each tile carries roughly equal nnz, which achieves the best possible
arithmetic intensity for the SpMM (each stored entry is touched once).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.classify import ClassifiedDag
from ..core.einsum import EinsumOp
from ..hw.config import AcceleratorConfig
from .loop_order import natural_loop_order
from .schedule_ir import LoopOrder, OpSchedule


def _largest_input(op: EinsumOp) -> Optional[str]:
    """Input tensor with the biggest footprint (the stationary one)."""
    if not op.inputs:
        return None
    return max(op.inputs, key=lambda t: t.bytes).name


def choose_tiling(
    op: EinsumOp,
    classified: ClassifiedDag,
    cfg: AcceleratorConfig,
    order: Optional[LoopOrder] = None,
) -> OpSchedule:
    """Tile ``op`` along its outermost rank so one tile of the *output*
    fits a pipeline stage budget.

    The stage budget is an eighth of the pipeline buffer: a realized
    pipeline needs two tiles resident (double buffering) plus headroom for
    hold windows, and tests pin that ``2 * tile_bytes`` always fits.
    """
    if order is None:
        order = natural_loop_order(op, classified)
    tile_rank = order.outermost
    rank = op.rank(tile_rank)
    out = op.output
    # Bytes of output (or largest operand carrying the rank) per unit of the
    # tiled rank.
    carrier = out if out.has_rank(tile_rank) else op.input_named(_largest_input(op) or out.name)
    if carrier.has_rank(tile_rank):
        bytes_per_unit = max(1, carrier.bytes // rank.size)
    else:
        bytes_per_unit = max(1, carrier.bytes // rank.size)
    stage_budget = max(cfg.line_bytes, cfg.pipeline_buffer_bytes // 8)
    tile_size = max(1, min(rank.size, stage_budget // bytes_per_unit))
    n_tiles = math.ceil(rank.size / tile_size)
    small = tuple(
        t.name for t in op.inputs if t.bytes <= cfg.rf_bytes and t.name != _largest_input(op)
    )
    return OpSchedule(
        op_name=op.name,
        loop_order=order,
        tile_rank=tile_rank,
        tile_size=tile_size,
        n_tiles=n_tiles,
        stationary_tensor=_largest_input(op),
        rf_tensors=small,
    )


def tile_bytes_of(op: EinsumOp, sched: OpSchedule) -> int:
    """Bytes of one output tile under ``sched`` (pipeline stage size)."""
    out = op.output
    if sched.tile_rank and out.has_rank(sched.tile_rank):
        per_unit = max(1, out.bytes // op.rank(sched.tile_rank).size)
        return per_unit * sched.tile_size
    return out.bytes


def occupancy_tiles(row_nnz: Sequence[int], n_tiles: int) -> List[Tuple[int, int]]:
    """Split rows into ``n_tiles`` contiguous ranges of ~equal nnz.

    Returns half-open row ranges ``[(start, end), ...]`` covering all rows.
    Greedy prefix-sum splitting: each tile closes once it reaches the ideal
    share, guaranteeing every tile holds < ideal + max_row_nnz entries.
    """
    if n_tiles <= 0:
        raise ValueError("n_tiles must be positive")
    rows = len(row_nnz)
    if rows == 0:
        return [(0, 0)] * n_tiles
    total = int(np.sum(row_nnz))
    ideal = total / n_tiles if total else 0
    tiles: List[Tuple[int, int]] = []
    start = 0
    acc = 0
    for r, c in enumerate(row_nnz):
        acc += int(c)
        remaining_tiles = n_tiles - len(tiles)
        remaining_rows = rows - r - 1
        if (acc >= ideal and remaining_tiles > 1) or remaining_rows < remaining_tiles - 1:
            tiles.append((start, r + 1))
            start = r + 1
            acc = 0
            if len(tiles) == n_tiles - 1:
                break
    tiles.append((start, rows))
    while len(tiles) < n_tiles:
        tiles.append((rows, rows))
    return tiles


def tile_nnz(row_nnz: Sequence[int], tiles: Sequence[Tuple[int, int]]) -> List[int]:
    """nnz per occupancy tile (for load-balance checks)."""
    arr = np.asarray(row_nnz)
    return [int(arr[s:e].sum()) for s, e in tiles]
