"""repro — reproduction of CELLO (IPDPS 2025).

CELLO co-designs a scheduler (SCORE) that classifies the tensor-level
dependencies of arbitrary einsum DAGs with a hybrid implicit/explicit
buffer (CHORD: PRELUDE + RIFF policies) that reuses tensors at operand
granularity.  This package implements the full system as a simulator +
scheduler library: the core IR and Algorithm 2, SCORE, CHORD, every
Table IV baseline (Flexagon-like oracle, LRU/BRRIP caches, FLAT, SET,
PRELUDE-only), the Table VI workloads (block CG, BiCGStab, GCN, ResNet),
executable numeric solvers, and one experiment module per table/figure.

Quickstart::

    from repro import workloads, baselines, hw

    cfg = hw.AcceleratorConfig()
    w = workloads.cg_workload(workloads.FV1, n=16)
    cello = baselines.run_workload_config(w, "CELLO", cfg)
    flex = baselines.run_workload_config(w, "Flexagon", cfg)
    print(f"CELLO speedup: {cello.speedup_over(flex):.1f}x")
"""

from . import (
    analysis,
    baselines,
    buffers,
    chord,
    core,
    experiments,
    hw,
    orchestrator,
    score,
    sim,
    solvers,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "buffers",
    "chord",
    "core",
    "experiments",
    "hw",
    "orchestrator",
    "score",
    "sim",
    "solvers",
    "workloads",
    "__version__",
]
