"""Tables I/II/III, Sec. VI-B search spaces and Fig. 8 multi-node traffic."""

from conftest import run_once, write_report

from repro.experiments import (
    fig08_multinode,
    sec6b_searchspace,
    table01_hpcg,
    table02_schedulers,
    table03_buffers,
)
from repro.hw import AcceleratorConfig


def test_table01_hpcg(benchmark):
    rep = run_once(benchmark, table01_hpcg.report)
    assert "Frontier" in rep and "Fugaku" in rep
    write_report("table01_hpcg", rep)


def test_table02_schedulers(benchmark):
    checks = run_once(benchmark, table02_schedulers.verify)
    assert all(checks.values())
    write_report("table02_schedulers", table02_schedulers.report())


def test_table03_buffers(benchmark):
    checks = run_once(benchmark, table03_buffers.verify)
    assert all(checks.values())
    write_report("table03_buffers", table03_buffers.report())


def test_sec6b_searchspace(benchmark):
    cfg = AcceleratorConfig()
    rep = run_once(benchmark, sec6b_searchspace.run, cfg)
    # The paper's three regimes: op-by-op huge, DAG-level astronomically
    # bigger, CHORD ~1e2.
    assert rep.log10_op_by_op > 10
    assert rep.log10_scratchpad > rep.log10_op_by_op + 20
    assert 100 <= rep.chord_points <= 1000
    write_report("sec6b_searchspace", sec6b_searchspace.report(cfg))


def test_fig08_multinode(benchmark):
    comps = run_once(benchmark, fig08_multinode.run, 16, 16)
    for c in comps:
        assert c.advantage > 10  # rank split wins by orders of magnitude
    write_report("fig08_multinode", fig08_multinode.report())
