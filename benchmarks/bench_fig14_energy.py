"""Fig. 14: off-chip energy relative to the explicit best-intra baseline."""

from conftest import run_once, write_report

from repro.experiments import fig14_energy
from repro.hw import AcceleratorConfig


def test_fig14_energy(benchmark):
    cfg = AcceleratorConfig()
    rows = run_once(benchmark, fig14_energy.run, cfg)
    for r in rows:
        # CELLO has the lowest energy for each workload family.
        assert r.relative["CELLO"] == min(r.relative.values())
        assert r.relative["Flexagon"] == 1.0
    lo, hi = fig14_energy.cello_reduction_range(rows)
    # Paper: 64% to 83% reduction.  Our band must overlap substantially.
    assert hi > 50.0
    assert lo > 15.0
    write_report("fig14_energy", fig14_energy.report(cfg))
