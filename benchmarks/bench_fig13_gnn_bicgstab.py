"""Fig. 13: GNN (cora, protein) and BiCGStab (NASA4704, fv1, shallow_water1)."""

from conftest import run_once, write_report

from repro.experiments import fig13_gnn_bicgstab
from repro.hw import AcceleratorConfig


def test_fig13_gnn_bicgstab(benchmark):
    cfg = AcceleratorConfig()
    panels = run_once(benchmark, fig13_gnn_bicgstab.run, cfg)
    for p in panels:
        cello = p.results["CELLO"]
        flat = p.results["FLAT"]
        flex = p.results["Flexagon"]
        if p.family == "gnn":
            # Paper: CELLO achieves the same performance as FLAT on GNNs.
            assert cello.dram_bytes <= flat.dram_bytes
            assert cello.dram_bytes >= 0.9 * flat.dram_bytes
            assert flat.dram_bytes < flex.dram_bytes
        else:  # bicgstab: same ordering as CG
            assert cello.dram_bytes < flex.dram_bytes
            assert flat.dram_bytes == flex.dram_bytes
    write_report("fig13_gnn_bicgstab", fig13_gnn_bicgstab.report(cfg))
