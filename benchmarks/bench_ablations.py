"""Ablation benches for the design choices DESIGN.md calls out:

* RIFF on/off (beyond Fig. 16c: at schedule parity);
* explicit retirement on/off;
* swizzle minimization on/off (with a forced-bad-layout variant);
* tensor- vs line-granularity replacement (CHORD vs LRU at equal capacity).
"""

from conftest import run_once, write_report

from repro.analysis.report import render_table
from repro.baselines.runner import run_workload_config
from repro.hw import AcceleratorConfig
from repro.score import Score, ScoreOptions
from repro.sim import EngineOptions, ScheduleEngine
from repro.workloads import SHALLOW_WATER1, cg_workload

CFG = AcceleratorConfig()


def _run_variants():
    dag = cg_workload(SHALLOW_WATER1, n=16, iterations=10).build()
    schedule = Score(CFG).schedule(dag)
    variants = {
        "CELLO (RIFF + retire)": EngineOptions(),
        "no RIFF": EngineOptions(use_riff=False),
        "no retire": EngineOptions(explicit_retire=False, chord_entries=4096),
        "no RIFF, no retire": EngineOptions(
            use_riff=False, explicit_retire=False, chord_entries=4096
        ),
    }
    return {
        label: ScheduleEngine(CFG, opt).run(schedule, config_name=label)
        for label, opt in variants.items()
    }


def test_ablation_riff_and_retire(benchmark):
    results = run_once(benchmark, _run_variants)
    full = results["CELLO (RIFF + retire)"].dram_bytes
    # Removing either mechanism never helps; removing both is worst.
    for label, r in results.items():
        assert r.dram_bytes >= full
    assert results["no RIFF, no retire"].dram_bytes >= results["no RIFF"].dram_bytes * 0.99
    rows = [[label, r.dram_bytes / 1e6, r.dram_bytes / full]
            for label, r in results.items()]
    write_report(
        "ablation_riff_retire",
        render_table(["variant", "DRAM MB", "vs full"], rows,
                     title="Ablation: RIFF and explicit retirement (CG sw1 N=16)"),
    )


def _run_swizzle_ablation():
    dag = cg_workload(SHALLOW_WATER1, n=16, iterations=10).build()
    out = {}
    for label, minimize in (("swizzle-minimized", True), ("no minimization", False)):
        sched = Score(CFG, ScoreOptions(minimize_swizzle=minimize)).schedule(dag)
        out[label] = ScheduleEngine(CFG).run(sched, config_name=label)
    # Forced-bad layout: flip every skewed tensor's major dimension so each
    # streaming consumer needs a transform.
    sched = Score(CFG, ScoreOptions(minimize_swizzle=True)).schedule(dag)
    from dataclasses import replace

    bad = dict(sched.placements)
    for name, p in bad.items():
        spec = dag.tensor(name)
        consumers = tuple(p.consumer_routes)
        if spec.bytes > CFG.rf_bytes and consumers:
            bad[name] = replace(p, swizzled_consumers=consumers)
    sched.placements = bad
    out["forced bad layout"] = ScheduleEngine(CFG).run(sched, config_name="bad-layout")
    return out


def test_ablation_swizzle(benchmark):
    results = run_once(benchmark, _run_swizzle_ablation)
    good = results["swizzle-minimized"].dram_bytes
    # CG's natural layouts agree, so minimization is free; a forced bad
    # layout pays transform round trips on every streaming consumer.
    assert results["no minimization"].dram_bytes == good
    assert results["forced bad layout"].dram_bytes > 1.5 * good
    rows = [[label, r.dram_bytes / 1e6] for label, r in results.items()]
    write_report(
        "ablation_swizzle",
        render_table(["variant", "DRAM MB"], rows,
                     title="Ablation: swizzle minimization (CG sw1 N=16)"),
    )


def test_ablation_granularity_chord_vs_cache(benchmark):
    """Tensor-granularity replacement (CHORD) vs line-granularity (LRU) at
    identical capacity and schedule-independent traffic."""
    w = cg_workload(SHALLOW_WATER1, n=16, iterations=3)

    def run():
        return (
            run_workload_config(w, "CELLO", CFG),
            run_workload_config(w, "Flex+LRU", CFG),
        )

    cello, lru = run_once(benchmark, run)
    assert cello.dram_bytes < lru.dram_bytes
    write_report(
        "ablation_granularity",
        render_table(
            ["mechanism", "DRAM MB"],
            [["CHORD (operand-granularity)", cello.dram_bytes / 1e6],
             ["LRU cache (line-granularity)", lru.dram_bytes / 1e6]],
            title="Ablation: replacement granularity (CG sw1 N=16, 3 iters)",
        ),
    )
