"""Fig. 16(a): ResNet residual block with the SET baseline."""

from conftest import run_once, write_report

from repro.experiments import fig16a_resnet
from repro.hw import AcceleratorConfig


def test_fig16a_resnet(benchmark):
    cfg = AcceleratorConfig()
    panels = run_once(benchmark, fig16a_resnet.run, cfg)
    fast = max(panels, key=lambda p: p.bandwidth)
    slow = min(panels, key=lambda p: p.bandwidth)
    # SET == CELLO on ResNet (delayed hold is all it takes).
    assert fast.results["SET"].dram_bytes == fast.results["CELLO"].dram_bytes
    # FLAT misses the skip connection; Flexagon is worst.
    assert fast.results["FLAT"].dram_bytes > fast.results["SET"].dram_bytes
    assert fast.results["Flexagon"].dram_bytes > fast.results["FLAT"].dram_bytes
    # At 1 TB/s ResNet is compute bound: pipelined configs tie on time.
    assert abs(fast.results["CELLO"].time_s - fast.results["FLAT"].time_s) < 1e-12
    assert not fast.results["CELLO"].memory_bound
    # At 250 GB/s the ridge moves: op-by-op drops below the pipelined configs.
    assert slow.results["Flexagon"].time_s > slow.results["CELLO"].time_s
    write_report("fig16a_resnet", fig16a_resnet.report(cfg))
