"""Fig. 12: CG performance — the paper's main result.

Full grid: {fv1, shallow_water1, G2_circuit} × N ∈ {1, 16} ×
{250, 1000} GB/s × the five main configurations.  The cache simulations
auto-coarsen to stay tractable (the knob DESIGN.md documents).
"""

from conftest import run_once, write_report

from repro.experiments import fig12_cg_performance
from repro.hw import AcceleratorConfig
from repro.sim.results import geomean


def test_fig12_cg_performance(benchmark):
    cfg = AcceleratorConfig()
    panels = run_once(benchmark, fig12_cg_performance.run, cfg)
    # Shape assertions (paper Sec. VII-B1):
    for p in panels:
        # FLAT gains nothing on CG (every intermediate has a delayed consumer).
        assert p.results["FLAT"].dram_bytes == p.results["Flexagon"].dram_bytes
        # CELLO wins every panel.
        for other in ("Flexagon", "FLAT", "Flex+LRU", "Flex+BRRIP"):
            assert p.results["CELLO"].time_s <= p.results[other].time_s * 1.001
    gm = fig12_cg_performance.cello_geomean_speedup(panels)
    assert gm > 2.0  # paper: ~4x geomean
    write_report("fig12_cg_performance", fig12_cg_performance.report(cfg))
