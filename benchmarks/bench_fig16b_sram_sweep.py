"""Fig. 16(b): CELLO vs CHORD capacity (1/4/16 MB), CG shallow_water1."""

from conftest import run_once, write_report

from repro.experiments import fig16b_sram_sweep
from repro.hw import AcceleratorConfig


def test_fig16b_sram_sweep(benchmark):
    cfg = AcceleratorConfig()
    points = run_once(benchmark, fig16b_sram_sweep.run, cfg)
    by_n = {}
    for p in points:
        by_n.setdefault(p.n, []).append((p.sram_bytes, p.result.dram_bytes))
    for n, series in by_n.items():
        series.sort()
        traffic = [t for _, t in series]
        # Monotone: bigger CHORD never hurts.
        assert traffic == sorted(traffic, reverse=True)
        # Capacity genuinely matters on this workload.
        assert traffic[0] > traffic[-1]
    # N=16 keeps paying through 16MB more than N=1 does (relative gap).
    gap = lambda t: t[0] / t[-1]
    n1 = [t for _, t in sorted(by_n[1])]
    n16 = [t for _, t in sorted(by_n[16])]
    assert gap(n1) > 1.0 and gap(n16) > 1.0
    write_report("fig16b_sram_sweep", fig16b_sram_sweep.report(cfg))
