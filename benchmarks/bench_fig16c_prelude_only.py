"""Fig. 16(c): PRELUDE-only vs Flexagon / FLAT / CELLO on CG."""

from conftest import run_once, write_report

from repro.experiments import fig16c_prelude_only
from repro.hw import AcceleratorConfig


def test_fig16c_prelude_only(benchmark):
    cfg = AcceleratorConfig()
    panels = run_once(benchmark, fig16c_prelude_only.run, cfg)
    pos = {}
    for p in panels:
        flex = p.results["Flexagon"].dram_bytes
        pre = p.results["PRELUDE-only"].dram_bytes
        cello = p.results["CELLO"].dram_bytes
        # PRELUDE-only beats the explicit baselines (writeback support
        # matters more than pipelining on CG) but trails CELLO (RIFF).
        assert cello <= pre <= flex
        assert p.results["FLAT"].dram_bytes == flex
        pos[p.n] = p.gap_position()
    # Closer to CELLO at N=1, closer to the baselines at N=16.
    assert pos[1] > pos[16]
    write_report("fig16c_prelude_only", fig16c_prelude_only.report(cfg))
