"""Micro-benchmarks of the simulator components themselves.

These are genuine pytest-benchmark microkernels (multiple rounds): CHORD
event throughput, cache simulation rate, Algorithm 2 classification and
SCORE scheduling latency.  They guard against performance regressions in
the library itself.
"""

import numpy as np

from repro.buffers.cache import SetAssociativeCache
from repro.buffers.lru import LruPolicy
from repro.chord.buffer import ChordBuffer
from repro.chord.hints import ReuseHints, TensorHints
from repro.core.classify import classify_dependencies
from repro.hw import AcceleratorConfig
from repro.score import Score
from repro.workloads import FV1, cg_workload

CFG = AcceleratorConfig()


def test_chord_event_throughput(benchmark):
    n = 64
    hints = ReuseHints({
        f"T{i}": TensorHints(f"T{i}", 10_000, i, (i + n, i + 2 * n), False)
        for i in range(n)
    })

    def run():
        chord = ChordBuffer(200_000, hints)
        for i in range(n):
            chord.write(f"T{i}", i)
        for rnd in (1, 2):
            for i in range(n):
                chord.read(f"T{i}", rnd * n + i)
        return chord.stats.dram_bytes

    result = benchmark(run)
    assert result >= 0


def test_cache_sim_rate(benchmark):
    cache = SetAssociativeCache(64 * 1024, 16, 8, LruPolicy())
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 16384, size=20_000)

    def run():
        for b in blocks:
            cache.access_line(int(b), False)
        return cache.stats.accesses

    assert benchmark(run) > 0


def test_classification_latency(benchmark):
    dag = cg_workload(FV1, n=16, iterations=10).build()
    cdag = benchmark(classify_dependencies, dag)
    assert len(cdag.dependency) == len(dag.edges())


def test_score_scheduling_latency(benchmark):
    dag = cg_workload(FV1, n=16, iterations=10).build()
    scheduler = Score(CFG)
    sched = benchmark(scheduler.schedule, dag)
    assert sched.n_pipelined_edges == 20  # 2 per iteration
