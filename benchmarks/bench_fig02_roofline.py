"""Fig. 2: arithmetic intensity + roofline for regular vs skewed GEMMs."""

from conftest import run_once, write_report

from repro.experiments import fig02_roofline
from repro.hw import AcceleratorConfig


def test_fig02_roofline(benchmark):
    cfg = AcceleratorConfig()
    rows = run_once(benchmark, fig02_roofline.run, cfg)
    regular, skewed = rows
    # Paper values: 42.66 vs 2 ops/byte; compute vs memory bound.
    assert abs(regular.intensity_ops_per_byte - 42.66) < 0.01
    assert abs(skewed.intensity_ops_per_byte - 2.0) < 0.02
    assert not regular.memory_bound
    assert skewed.memory_bound
    write_report("fig02_roofline", fig02_roofline.report(cfg))
