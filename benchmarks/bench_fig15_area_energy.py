"""Fig. 15: area and per-access energy of 4MB buffet / cache / CHORD."""

from conftest import run_once, write_report

from repro.experiments import fig15_area_energy
from repro.hw import AcceleratorConfig
from repro.hw.sram_model import chord_metadata_ratio


def test_fig15_area_energy(benchmark):
    cfg = AcceleratorConfig()
    costs = run_once(benchmark, fig15_area_energy.run, cfg)
    # Paper endpoints: buffet 6.72, cache 9.87, CHORD 6.74 mm^2.
    assert abs(costs["buffet"].total_mm2 - 6.72) / 6.72 < 0.02
    assert abs(costs["cache"].total_mm2 - 9.87) / 9.87 < 0.02
    assert abs(costs["chord"].total_mm2 - 6.74) / 6.74 < 0.02
    # Per-access energy: cache far above buffet/CHORD (tag probes).
    assert costs["cache"].energy_pj_per_access > 1.5 * costs["chord"].energy_pj_per_access
    # RIFF table ~0.01x cache tags.
    assert chord_metadata_ratio(cfg) < 0.02
    write_report("fig15_area_energy", fig15_area_energy.report(cfg))
