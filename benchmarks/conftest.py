"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure: it runs the experiment
once (``benchmark.pedantic(rounds=1)`` — these are simulations, not
microkernels), asserts the paper's qualitative shape, and writes the
text report to ``benchmarks/out/<name>.txt`` so the regenerated figures
survive as artifacts.
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_report(name: str, text: str) -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
