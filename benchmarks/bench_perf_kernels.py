"""Benchmarks of the vectorized simulation hot paths.

Wraps :mod:`repro.analysis.kernel_bench` (the harness behind ``repro
bench``) under pytest-benchmark, pins the PR's acceptance bar — the
vectorized cache backend must beat the scalar reference by >= 10x
accesses/sec on a streaming trace with byte-identical stats — and writes
``benchmarks/out/BENCH_kernels.json`` so the numbers survive as
artifacts next to the regenerated figures.
"""

import json

from conftest import OUT_DIR

from repro.analysis.kernel_bench import (
    bench_cache_backends,
    bench_chord_events,
    run_kernel_bench,
    streaming_segments,
)
from repro.buffers.cache import SetAssociativeCache
from repro.buffers.lru import LruPolicy


def test_vector_backend_10x_and_parity():
    """The acceptance bar: >= 10x accesses/sec over the scalar reference on
    a streaming trace (parity is asserted inside the harness), with the
    whole report recorded in BENCH_kernels.json."""
    report = run_kernel_bench(quick=True)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_kernels.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    for name in ("cache_lru", "cache_brrip", "cache_srrip"):
        assert report["results"][name]["speedup"] >= 10.0, (
            f"{name}: {report['results'][name]['speedup']:.1f}x < 10x"
        )


def test_vector_cache_throughput(benchmark):
    """Raw batched-kernel rate on a streaming trace (regression guard)."""
    segments = streaming_segments(total_bytes=8_000_000)

    def run():
        cache = SetAssociativeCache(1 << 21, 16, 8, LruPolicy(), backend="vector")
        cache.access_segments(segments)
        return cache.stats.accesses

    assert benchmark(run) > 0


def test_reference_cache_throughput(benchmark):
    """Scalar-loop rate on the same trace (the denominator of the 10x)."""
    segments = streaming_segments(total_bytes=800_000)

    def run():
        cache = SetAssociativeCache(1 << 18, 16, 8, LruPolicy(),
                                    backend="reference")
        cache.access_segments(segments)
        return cache.stats.accesses

    assert benchmark(run) > 0


def test_chord_event_rate(benchmark):
    """O(1)-per-event CHORD accounting under RIFF pressure."""
    result = benchmark(bench_chord_events, n_tensors=64, rounds=20)
    assert result["events_per_s"] > 0


def test_cache_backend_speedup_benchmark(benchmark):
    """One-shot speedup measurement kept in the pytest-benchmark record."""
    result = benchmark.pedantic(
        bench_cache_backends, args=("lru", 100_000), rounds=1, iterations=1
    )
    assert result["speedup"] >= 10.0
