"""Extension benches: multi-node strong scaling, the DNN-chain negative
control, the three-way cache-policy sweep, and pipeline-aware timing."""

from conftest import run_once, write_report

from repro.analysis.report import render_table
from repro.analysis.scaling import scaling_report, simulate_cg_scaling
from repro.baselines.runner import run_workload_config
from repro.buffers.brrip import BrripPolicy
from repro.buffers.lru import LruPolicy
from repro.buffers.srrip import SrripPolicy
from repro.hw import AcceleratorConfig
from repro.score import Score
from repro.sim import CacheEngine, pipeline_aware_time
from repro.sim.cluster_timing import describe_clusters
from repro.workloads import (
    FV1,
    SHALLOW_WATER1,
    MlpProblem,
    Workload,
    build_mlp_dag,
    cg_workload,
    resnet_workload,
)

CFG = AcceleratorConfig()


def test_multinode_scaling(benchmark):
    points = run_once(
        benchmark, simulate_cg_scaling,
        SHALLOW_WATER1, 16, 10, (1, 2, 4, 8, 16), CFG,
    )
    # Strong scaling holds because the NoC only moves N x N' tensors.
    assert points[-1].n_nodes == 16
    assert points[-1].speedup > 4.0
    assert points[-1].efficiency > 0.25
    write_report(
        "extension_multinode_scaling",
        scaling_report(points, title="CG strong scaling, dominant-rank split "
                                     "(shallow_water1, N=16)")
        + "\nNote: efficiency > 1 is the classic superlinear-cache effect — "
        "aggregate CHORD\ncapacity grows with nodes, so per-node slabs start "
        "fitting on-chip; the NoC term\nstays microseconds because only N x N' "
        "tensors cross the mesh (Sec. V-B).",
    )


def test_dnn_chain_negative_control(benchmark):
    """On linear DNN chains CELLO must win nothing over FLAT/SET."""
    problem = MlpProblem()
    w = Workload(name="mlp/bench", family="dnn",
                 build=lambda: build_mlp_dag(problem))

    def run():
        return {c: run_workload_config(w, c, CFG)
                for c in ("Flexagon", "FLAT", "SET", "CELLO")}

    results = run_once(benchmark, run)
    assert results["CELLO"].dram_bytes == results["FLAT"].dram_bytes
    assert results["CELLO"].dram_bytes == results["SET"].dram_bytes
    assert results["FLAT"].dram_bytes < results["Flexagon"].dram_bytes
    rows = [[c, r.dram_bytes / 1e6] for c, r in results.items()]
    write_report(
        "extension_dnn_control",
        render_table(["config", "DRAM MB"], rows,
                     title="Negative control: linear MLP chain (CELLO == FLAT == SET)"),
    )


def test_cache_policy_sweep(benchmark):
    """LRU vs SRRIP vs BRRIP on the CG stream (line-granularity policies
    all trail CHORD's operand granularity)."""
    dag = cg_workload(FV1, n=16, iterations=3).build()

    def run():
        out = {}
        for name, policy in (
            ("LRU", LruPolicy()), ("SRRIP", SrripPolicy()), ("BRRIP", BrripPolicy()),
        ):
            eng = CacheEngine(CFG, policy, granularity=4)
            out[name] = eng.run(dag, config_name=name)
        return out

    results = run_once(benchmark, run)
    cello = run_workload_config(cg_workload(FV1, n=16, iterations=3), "CELLO", CFG)
    for name, r in results.items():
        assert r.dram_bytes > cello.dram_bytes
    rows = [[name, r.dram_bytes / 1e6] for name, r in results.items()]
    rows.append(["CHORD (CELLO)", cello.dram_bytes / 1e6])
    write_report(
        "extension_policy_sweep",
        render_table(["policy", "DRAM MB"], rows,
                     title="Cache policy sweep vs CHORD (CG fv1 N=16, 3 iters)"),
    )


def test_pipeline_aware_timing(benchmark):
    """The cluster timing model refines the roofline in compute-bound
    regimes and never undercuts it."""
    dag = resnet_workload().build()
    sched = Score(CFG).schedule(dag)
    cello = run_workload_config(resnet_workload(), "CELLO", CFG)

    t = run_once(benchmark, pipeline_aware_time, sched, CFG, cello.dram_bytes)
    assert t >= cello.time_s * 0.99  # refinement adds fill/drain, never removes work
    write_report(
        "extension_cluster_timing",
        describe_clusters(sched, CFG)
        + f"\nroofline time: {cello.time_s * 1e6:.2f} us, "
        + f"pipeline-aware: {t * 1e6:.2f} us",
    )
