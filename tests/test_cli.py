"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, list_experiments, main


class TestCli:
    def test_every_experiment_described(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table2" in out
        assert "bench" in out

    def test_bench_writes_json(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.analysis import kernel_bench

        # Shrink the harness so the CLI test stays fast; the real bars run
        # in benchmarks/bench_perf_kernels.py and the CI bench-smoke job.
        def tiny_bench(quick=False):
            return {
                "schema": kernel_bench.BENCH_SCHEMA,
                "quick": True,
                "results": {
                    "cache_lru": kernel_bench.bench_cache_backends("lru", 20_000),
                    "chord_events": kernel_bench.bench_chord_events(8, 3),
                    "schedule_engine": kernel_bench.bench_schedule_engine(2),
                    "cache_engine_g1": kernel_bench.bench_cache_engine(1),
                    "analytic_eval": kernel_bench.bench_analytic_eval(
                        2, sim_evals=1, batch_points=64),
                },
            }

        monkeypatch.setattr(kernel_bench, "run_kernel_bench", tiny_bench)
        out_path = tmp_path / "BENCH_kernels.json"
        assert main(["bench", "--quick", "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        lru = report["results"]["cache_lru"]
        assert lru["speedup"] > 1.0
        assert lru["vector_accesses_per_s"] > lru["reference_accesses_per_s"]
        assert report["results"]["analytic_eval"]["analytic_over_simulated"] > 1.0
        assert "Cache kernel backends" in capsys.readouterr().out

    def test_list_workloads(self, capsys):
        from repro.workloads.registry import all_workloads

        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in all_workloads():
            assert name in out
        for family in ("[cg]", "[xformer]", "[gmres]", "[mg]"):
            assert family in out

    def test_ext_experiment_registered(self):
        assert "ext" in EXPERIMENTS
        assert "ext" in DESCRIPTIONS

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_light_experiment(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "42.6" in out

    def test_run_multiple_dedups(self, capsys):
        assert main(["table2", "table2"]) == 0
        out = capsys.readouterr().out
        assert out.count("=== table2") == 1

    def test_table_experiments_runnable(self, capsys):
        assert main(["table1", "table3", "fig15", "fig8"]) == 0
        out = capsys.readouterr().out
        for marker in ("Frontier", "CHORD", "buffet", "advantage"):
            assert marker in out

    def test_autotune_experiment_registered_and_wired(self, capsys, monkeypatch):
        assert "autotune" in EXPERIMENTS and "autotune" in DESCRIPTIONS
        # The real study runs the full families; check the CLI wiring with
        # a stub so the test stays milliseconds.
        from repro.experiments import tune_study

        monkeypatch.setattr(tune_study, "report",
                            lambda cfg=None, jobs=1: "stub-tune-report")
        assert main(["autotune", "--no-cache"]) == 0
        assert "stub-tune-report" in capsys.readouterr().out

    def test_ext_experiment_wired_through_cli(self, capsys, monkeypatch):
        from repro.experiments import ext_workloads

        calls = {}

        def stub_report(cfg=None, configs=None, jobs=1):
            calls["jobs"] = jobs
            return "stub-ext-report"

        monkeypatch.setattr(ext_workloads, "report", stub_report)
        assert main(["ext", "--no-cache", "--jobs", "3"]) == 0
        assert "stub-ext-report" in capsys.readouterr().out
        assert calls["jobs"] == 3

    def test_ext_mixed_with_unknown_experiment_errors(self, capsys):
        # An unknown sibling aborts the whole invocation before anything
        # heavy runs — 'ext' must not start.
        assert main(["ext", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "fig99" in err


class TestSweepCli:
    def test_unknown_config_rejected(self, capsys):
        assert main(["sweep", "--configs", "CELLO,Bogus", "--no-cache"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_cello_variant_configs_accepted(self, capsys):
        assert main([
            "sweep", "--workloads", "cg/fv1/N=1@it2",
            "--configs", "CELLO[riff=0],Flex+SRRIP", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "CELLO[riff=0]" in out and "Flex+SRRIP" in out

    def test_multi_knob_variant_survives_comma_split(self, capsys):
        # The variant grammar uses commas inside brackets; the config
        # list splitter must not cut through them.
        assert main([
            "sweep", "--workloads", "cg/fv1/N=1@it2",
            "--configs", "CELLO,CELLO[riff=0,retire=0]", "--no-cache",
        ]) == 0
        assert "CELLO[riff=0,retire=0]" in capsys.readouterr().out

    def test_unknown_workload_rejected(self, capsys):
        assert main(["sweep", "--workloads", "nope/xyz", "--no-cache"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_empty_match_rejected(self, capsys):
        assert main(["sweep", "--workloads", "", "--no-cache"]) == 2
        assert "matched no" in capsys.readouterr().err


class TestTuneCli:
    def test_tune_small_grid(self, capsys, tmp_path):
        out_json = tmp_path / "tune.json"
        assert main([
            "tune", "cg/fv1/N=16@it2", "--strategy", "grid",
            "--sram-mb", "4,1", "--entries", "64",
            "--objectives", "runtime,dram,area",
            "--json", str(out_json), "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "Pareto point(s)" in out
        assert "fixed CELLO" in out
        # The JSON artefact round-trips through the public loader.
        import json

        from repro.tuner import TuneResult

        data = json.loads(out_json.read_text())
        tr = TuneResult.from_dict(data[0])
        assert tr.workload == "cg/fv1/N=16@it2"
        assert tr.best.result.time_s <= tr.incumbent.result.time_s

    def test_unknown_workload_rejected(self, capsys):
        assert main(["tune", "rand/s=1/ops=bogus", "--no-cache"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_objective_rejected(self, capsys):
        assert main([
            "tune", "cg/fv1/N=1@it2", "--objectives", "latency", "--no-cache",
        ]) == 2
        assert "tune failed" in capsys.readouterr().err

    def test_invalid_space_rejected(self, capsys):
        assert main([
            "tune", "cg/fv1/N=1@it2", "--entries", "64,64", "--no-cache",
        ]) == 2
        assert "invalid tune space" in capsys.readouterr().err

    def test_unknown_strategy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["tune", "cg/fv1/N=1@it2", "--strategy", "annealing"])
