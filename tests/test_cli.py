"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, list_experiments, main


class TestCli:
    def test_every_experiment_described(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table2" in out

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_light_experiment(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "42.6" in out

    def test_run_multiple_dedups(self, capsys):
        assert main(["table2", "table2"]) == 0
        out = capsys.readouterr().out
        assert out.count("=== table2") == 1

    def test_table_experiments_runnable(self, capsys):
        assert main(["table1", "table3", "fig15", "fig8"]) == 0
        out = capsys.readouterr().out
        for marker in ("Frontier", "CHORD", "buffet", "advantage"):
            assert marker in out
