"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, list_experiments, main


class TestCli:
    def test_every_experiment_described(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table2" in out
        assert "bench" in out

    def test_bench_writes_json(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.analysis import kernel_bench

        # Shrink the harness so the CLI test stays fast; the real bars run
        # in benchmarks/bench_perf_kernels.py and the CI bench-smoke job.
        def tiny_bench(quick=False):
            return {
                "schema": kernel_bench.BENCH_SCHEMA,
                "quick": True,
                "results": {
                    "cache_lru": kernel_bench.bench_cache_backends("lru", 20_000),
                    "chord_events": kernel_bench.bench_chord_events(8, 3),
                    "schedule_engine": kernel_bench.bench_schedule_engine(2),
                    "cache_engine_g1": kernel_bench.bench_cache_engine(1),
                },
            }

        monkeypatch.setattr(kernel_bench, "run_kernel_bench", tiny_bench)
        out_path = tmp_path / "BENCH_kernels.json"
        assert main(["bench", "--quick", "--out", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        lru = report["results"]["cache_lru"]
        assert lru["speedup"] > 1.0
        assert lru["vector_accesses_per_s"] > lru["reference_accesses_per_s"]
        assert "Cache kernel backends" in capsys.readouterr().out

    def test_list_workloads(self, capsys):
        from repro.workloads.registry import all_workloads

        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in all_workloads():
            assert name in out
        for family in ("[cg]", "[xformer]", "[gmres]", "[mg]"):
            assert family in out

    def test_ext_experiment_registered(self):
        assert "ext" in EXPERIMENTS
        assert "ext" in DESCRIPTIONS

    def test_default_is_list(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_light_experiment(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "42.6" in out

    def test_run_multiple_dedups(self, capsys):
        assert main(["table2", "table2"]) == 0
        out = capsys.readouterr().out
        assert out.count("=== table2") == 1

    def test_table_experiments_runnable(self, capsys):
        assert main(["table1", "table3", "fig15", "fig8"]) == 0
        out = capsys.readouterr().out
        for marker in ("Frontier", "CHORD", "buffet", "advantage"):
            assert marker in out
