"""The differential harness pinning the analytic model to the simulator.

This is the contract that makes ``repro tune --fidelity hybrid`` and the
service's ``predict`` op trustworthy: for every workload family, every
analytically supported Table IV config, and SRAM capacities spanning the
no-pressure and pressured regimes, the closed-form prediction must agree
with the exact schedule engine —

* **exactly** (byte-for-byte, reads/writes/on-chip/time) in the
  streaming and closed-form regimes, where the model is a pure sum of
  per-tensor terms;
* within the advertised **2% relative error bound** in the capacity
  recurrence regime (and in practice exactly there too — the golden
  corpus pins byte-exactness for pressured points, so any drift shows up
  as a hard failure, not a silent widening toward the bound).

On top of the fixed grid: hypothesis property tests over random einsum
DAGs, metamorphic laws (more SRAM never means more predicted traffic;
oracle traffic is linear in the free iteration rank; not charging
swizzle never increases traffic), a golden regression corpus for the
Table VI families, the hybrid-vs-exact Pareto agreement check, and a
CLI ``--fidelity`` smoke test.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    CLOSED_FORM,
    RECURRENCE,
    STREAMING,
    AnalyticUnsupported,
    clear_model_cache,
    model_cache_size,
    model_for,
    predict_workload_config,
    supports_config,
)
from repro.baselines import runner
from repro.baselines.configs import run_config
from repro.hw.config import KIB, MIB, AcceleratorConfig
from repro.tuner import TuneSpace, dominates, make_strategy, tune
from repro.workloads.registry import random_dag_workload, resolve_workload

#: Relative DRAM error the model advertises for capacity-dependent
#: tensors (docs/analytic.md); streaming/closed-form must be exact.
ERROR_BOUND = 0.02

#: One representative per workload family (Table VI coverage).
WORKLOADS = (
    "cg/fv1/N=1",
    "bicgstab/fv1/N=1",
    "gnn/cora",
    "resnet/conv3_x",
    "xformer/s=512/d=512",
    "gmres/fv1/m=8/N=1",
    "mg/fv1/N=1",
)

#: Every analytically supported config family, including the CELLO
#: engine-knob ablations (the hybrid tuner's search axes).
CONFIGS = (
    "Flexagon",
    "FLAT",
    "SET",
    "PRELUDE-only",
    "CELLO",
    "CELLO[riff=0]",
    "CELLO[retire=0]",
    "CELLO[riff=0,retire=0,swz=0]",
)

#: Capacities spanning heavy pressure (1 MiB), the paper point (4 MiB)
#: and everything-fits (16 MiB).
SRAM_MB = (1, 4, 16)


def _simulate(workload, config, cfg):
    return run_config(config, workload.build(), cfg,
                      workload_name=workload.name)


def _assert_agreement(workload, config, cfg):
    evaluation = predict_workload_config(workload, config, cfg)
    simulated = _simulate(workload, config, cfg)
    predicted = evaluation.result
    where = f"{workload.name} / {config} / {cfg.sram_bytes // MIB} MiB"

    # The 2% bound holds in every regime — asserted first so a drift in
    # the recurrence fails with the contract violation, not a byte diff.
    rel = (abs(predicted.dram_bytes - simulated.dram_bytes)
           / max(simulated.dram_bytes, 1))
    assert rel <= ERROR_BOUND, (
        f"{where}: predicted {predicted.dram_bytes} vs simulated "
        f"{simulated.dram_bytes} ({rel:.3%} > {ERROR_BOUND:.0%} bound)")

    if evaluation.regime in (STREAMING, CLOSED_FORM):
        # No capacity-dependent tensor in play: agreement must be exact.
        assert predicted.dram_read_bytes == simulated.dram_read_bytes, where
        assert predicted.dram_write_bytes == simulated.dram_write_bytes, where
    # Schedule-derived quantities are capacity-independent: exact always.
    assert predicted.onchip_accesses == simulated.onchip_accesses, where
    assert predicted.total_macs == simulated.total_macs, where
    return evaluation, simulated


class TestDifferential:
    """The headline grid: 7 families × 8 configs × 3 capacities."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_family_against_simulator(self, name):
        workload = resolve_workload(name)
        regimes = set()
        for config in CONFIGS:
            for mb in SRAM_MB:
                cfg = AcceleratorConfig(sram_bytes=mb * MIB)
                evaluation, _ = _assert_agreement(workload, config, cfg)
                regimes.add(evaluation.regime)
        # The grid must exercise both the oracle and the engine paths.
        assert STREAMING in regimes
        assert CLOSED_FORM in regimes or RECURRENCE in regimes

    def test_recurrence_regime_is_byte_exact_today(self):
        """Stronger than the advertised bound: the prefix recurrence is
        event-exact against ChordBuffer.  Pin that on pressured points so
        a regression shows as a failure here, not as silent error growth
        toward the 2% bound."""
        cfg = AcceleratorConfig(sram_bytes=1 * MIB)
        for name in ("gmres/fv1/m=8/N=1", "bicgstab/fv1/N=1", "mg/fv1/N=1"):
            workload = resolve_workload(name)
            evaluation = predict_workload_config(workload, "CELLO", cfg)
            assert evaluation.regime == RECURRENCE
            simulated = _simulate(workload, "CELLO", cfg)
            assert evaluation.result.dram_read_bytes \
                == simulated.dram_read_bytes
            assert evaluation.result.dram_write_bytes \
                == simulated.dram_write_bytes

    def test_reuse_classes_are_reported(self):
        workload = resolve_workload("cg/fv1/N=1")
        evaluation = predict_workload_config(
            workload, "CELLO", AcceleratorConfig())
        known = {"fused", "streaming", "input", "sequential", "pipelineable",
                 "delayed-hold", "delayed-writeback"}
        assert evaluation.classes
        assert set(evaluation.classes.values()) <= known

    def test_detail_attribution_sums_to_totals(self):
        cfg = AcceleratorConfig(sram_bytes=1 * MIB)
        workload = resolve_workload("gmres/fv1/m=8/N=1")
        evaluation = predict_workload_config(workload, "CELLO", cfg,
                                             detail=True)
        read = sum(v["read"] for v in evaluation.per_tensor.values())
        write = sum(v["write"] for v in evaluation.per_tensor.values())
        assert read == evaluation.result.dram_read_bytes
        assert write == evaluation.result.dram_write_bytes

    def test_unsupported_configs_raise(self):
        workload = resolve_workload("cg/fv1/N=1")
        for config in ("Flex+LRU", "Flex+BRRIP", "Flex+SRRIP"):
            assert not supports_config(config)
            with pytest.raises(AnalyticUnsupported):
                predict_workload_config(workload, config,
                                        AcceleratorConfig())
        with pytest.raises(KeyError):
            predict_workload_config(workload, "NotAConfig",
                                    AcceleratorConfig())


class TestRandomDags:
    """Property tests: the differential contract on arbitrary programs."""

    @given(seed=st.integers(0, 10_000), n_ops=st.integers(2, 14),
           fanout=st.integers(0, 4), skew=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_random_dag_differential(self, seed, n_ops, fanout, skew):
        workload = random_dag_workload(seed, n_ops=n_ops, fanout=fanout,
                                       skew=skew)
        # Small SRAM so random programs actually contend for capacity.
        cfg = AcceleratorConfig(sram_bytes=256 * KIB)
        for config in ("CELLO", "CELLO[riff=0]", "PRELUDE-only", "Flexagon"):
            _assert_agreement(workload, config, cfg)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_dag_pressured_points_stay_exact(self, seed):
        workload = random_dag_workload(seed, n_ops=16, fanout=4, skew=3)
        cfg = AcceleratorConfig(sram_bytes=128 * KIB)
        evaluation = predict_workload_config(workload, "CELLO", cfg)
        simulated = _simulate(workload, "CELLO", cfg)
        assert evaluation.result.dram_read_bytes == simulated.dram_read_bytes
        assert evaluation.result.dram_write_bytes \
            == simulated.dram_write_bytes


class TestMetamorphic:
    """Laws the model must satisfy without consulting the simulator."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_more_sram_never_increases_predicted_traffic(self, name):
        workload = resolve_workload(name)
        previous = None
        for mb in (1, 2, 4, 8, 16):
            cfg = AcceleratorConfig(sram_bytes=mb * MIB)
            dram = predict_workload_config(workload, "CELLO",
                                           cfg).result.dram_bytes
            if previous is not None:
                assert dram <= previous, (
                    f"{name}: doubling SRAM to {mb} MiB raised predicted "
                    f"traffic {previous} -> {dram}")
            previous = dram

    def test_oracle_traffic_linear_in_free_iteration_rank(self):
        """Scaling the free loop rank scales streaming traffic linearly:
        the oracle re-stages every operand per op, so k iterations cost
        exactly k × one iteration."""
        cfg = AcceleratorConfig()
        for pattern in ("cg/fv1/N=1@it{k}", "gmres/fv1/m=8/N=1@rs{k}",
                        "mg/fv1/N=1@cyc{k}"):
            base = predict_workload_config(
                resolve_workload(pattern.format(k=1)), "Flexagon",
                cfg).result.dram_bytes
            for k in (2, 3, 4):
                scaled = predict_workload_config(
                    resolve_workload(pattern.format(k=k)), "Flexagon",
                    cfg).result.dram_bytes
                assert scaled == k * base, (pattern, k)

    def test_not_charging_swizzle_never_increases_traffic(self):
        cfg = AcceleratorConfig(sram_bytes=1 * MIB)
        for name in ("cg/fv1/N=16", "xformer/s=512/d=512"):
            workload = resolve_workload(name)
            on = predict_workload_config(workload, "CELLO", cfg).result
            off = predict_workload_config(workload, "CELLO[swz=0]",
                                          cfg).result
            assert off.dram_bytes <= on.dram_bytes


#: Golden regression corpus: (workload, config, SRAM MiB) -> exact DRAM
#: (read, write) bytes, produced by the schedule engine at this revision.
#: Both the simulator and the analytic model must keep reproducing these
#: numbers — the corpus is what turns "they agree" into "neither moved".
GOLDEN_TRAFFIC = (
    ("cg/fv1/N=1", "Flexagon", 4, 11047200, 1536800),
    ("cg/fv1/N=1", "CELLO", 4, 835784, 76832),
    ("cg/fv1/N=1", "CELLO", 1, 835784, 76832),
    ("bicgstab/fv1/N=1", "Flexagon", 4, 21325680, 2305080),
    ("bicgstab/fv1/N=1", "CELLO", 4, 912612, 76832),
    ("bicgstab/fv1/N=1", "CELLO", 1, 1214328, 763428),
    ("gnn/cora", "Flexagon", 4, 31171184, 15598080),
    ("gnn/cora", "CELLO", 4, 15648928, 75824),
    ("gnn/cora", "CELLO", 1, 15648928, 75824),
    ("resnet/conv3_x", "Flexagon", 4, 4694016, 2809856),
    ("resnet/conv3_x", "CELLO", 4, 1884160, 802816),
    ("resnet/conv3_x", "CELLO", 1, 1884160, 802816),
    ("xformer/s=512/d=512", "Flexagon", 4, 13632512, 6030336),
    ("xformer/s=512/d=512", "CELLO", 4, 6029312, 1048576),
    ("xformer/s=512/d=512", "CELLO", 1, 6029312, 1179648),
    ("gmres/fv1/m=8/N=1", "Flexagon", 4, 21344912, 1460168),
    ("gmres/fv1/m=8/N=1", "CELLO", 4, 797364, 38416),
    ("gmres/fv1/m=8/N=1", "CELLO", 1, 1493024, 566456),
    ("mg/fv1/N=1", "Flexagon", 4, 9774528, 998816),
    ("mg/fv1/N=1", "CELLO", 4, 1179192, 38416),
    ("mg/fv1/N=1", "CELLO", 1, 1484012, 235212),
)


class TestGoldenCorpus:
    @pytest.mark.parametrize("name,config,mb,read,write", GOLDEN_TRAFFIC)
    def test_analytic_matches_golden(self, name, config, mb, read, write):
        cfg = AcceleratorConfig(sram_bytes=mb * MIB)
        result = predict_workload_config(
            resolve_workload(name), config, cfg).result
        assert (result.dram_read_bytes, result.dram_write_bytes) \
            == (read, write)

    @pytest.mark.parametrize(
        "name,config,mb,read,write",
        [g for g in GOLDEN_TRAFFIC if g[0] == "gmres/fv1/m=8/N=1"])
    def test_simulator_matches_golden(self, name, config, mb, read, write):
        """One family simulated end to end against the pinned numbers, so
        a simultaneous drift of model *and* engine cannot slip through
        the agreement checks unnoticed."""
        cfg = AcceleratorConfig(sram_bytes=mb * MIB)
        result = _simulate(resolve_workload(name), config, cfg)
        assert (result.dram_read_bytes, result.dram_write_bytes) \
            == (read, write)


class TestModelCache:
    def test_cello_variants_share_one_compiled_model(self):
        clear_model_cache()
        workload = resolve_workload("cg/fv1/N=1")
        cfg = AcceleratorConfig()
        for config in ("CELLO", "CELLO[riff=0]", "CELLO[retire=0]",
                       "CELLO[riff=0,retire=0,swz=0]"):
            model_for(workload, config, cfg)
        assert model_cache_size() == 1
        # Bandwidth and index-table entries do not shape the schedule
        # either; only the SRAM capacity forces a recompile.
        import dataclasses

        model_for(workload, "CELLO",
                  dataclasses.replace(cfg, chord_entries=16))
        model_for(workload, "CELLO", dataclasses.replace(
            cfg, dram_bandwidth_bytes_per_s=cfg.dram_bandwidth_bytes_per_s / 2))
        assert model_cache_size() == 1
        model_for(workload, "CELLO", cfg.with_sram(1 * MIB))
        assert model_cache_size() == 2
        clear_model_cache()


class TestHybridTuner:
    def _space(self):
        return TuneSpace(sram_bytes=(4 * MIB, 1 * MIB),
                         chord_entries=(64, 4))

    def test_hybrid_front_admits_no_dominated_point_vs_exact(self):
        runner.clear_cache()
        exact = tune("gmres/fv1/m=8/N=1", space=self._space(),
                     strategy=make_strategy("random", budget=12, seed=3),
                     objectives=("runtime", "dram"), fidelity="exact")
        runner.clear_cache()
        hybrid = tune("gmres/fv1/m=8/N=1", space=self._space(),
                      strategy=make_strategy("random", budget=12, seed=3),
                      objectives=("runtime", "dram"), fidelity="hybrid")
        runner.clear_cache()
        exact_vectors = [e.vector for e in exact.front]
        for entry in hybrid.front:
            assert not any(dominates(v, entry.vector)
                           for v in exact_vectors), entry
        # Same seed, byte-exact predictions: the fronts must coincide.
        assert [e.vector for e in hybrid.front] == exact_vectors
        assert hybrid.n_simulations <= exact.n_simulations
        assert hybrid.n_analytic > 0
        err = hybrid.analytic_max_rel_error
        assert err is None or err <= ERROR_BOUND

    def test_analytic_fidelity_prices_supported_points_without_sims(self):
        runner.clear_cache()
        runner.reset_simulation_count()
        result = tune("cg/fv1/N=1", space=TuneSpace(),
                      strategy=make_strategy("grid"),
                      objectives=("runtime", "dram"), fidelity="analytic")
        # Only the incumbent simulates (it is pinned to exact fidelity).
        assert result.n_simulations == 1
        assert result.incumbent.fidelity == "exact"
        assert all(e.fidelity == "analytic" for e in result.evaluations
                   if e.point != result.incumbent.point)
        runner.clear_cache()

    def test_tune_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            tune("cg/fv1/N=1", fidelity="psychic")

    def test_cli_fidelity_smoke(self, capsys):
        from repro.cli import main

        assert main(["tune", "gmres/fv1/m=8/N=1", "--fidelity", "hybrid",
                     "--strategy", "random", "--budget", "8",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "fidelity: hybrid" in out
        assert "within 2% bound" in out
