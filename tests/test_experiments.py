"""Tests for the experiment modules: each must run and produce the paper's
qualitative rows/series (small parameters keep them fast)."""

import pytest

from repro.experiments import (
    fig02_roofline,
    fig08_multinode,
    fig12_cg_performance,
    fig13_gnn_bicgstab,
    fig14_energy,
    fig15_area_energy,
    fig16a_resnet,
    fig16b_sram_sweep,
    fig16c_prelude_only,
    sec6b_searchspace,
    table01_hpcg,
    table02_schedulers,
    table03_buffers,
    tune_study,
)
from repro.hw.config import AcceleratorConfig
from repro.workloads.matrices import FV1
from repro.workloads.registry import cg_workload

CFG = AcceleratorConfig()


class TestFig02:
    def test_rows(self):
        rows = fig02_roofline.run(CFG)
        regular, skewed = rows
        assert regular.macs == skewed.macs
        assert not regular.memory_bound
        assert skewed.memory_bound
        assert regular.intensity_ops_per_byte == pytest.approx(42.66, abs=0.01)
        assert skewed.intensity_ops_per_byte == pytest.approx(2.0, rel=0.01)

    def test_report(self):
        assert "memory bound" in fig02_roofline.report(CFG)


class TestTable01:
    def test_prediction_brackets_observed_band(self):
        gpu_like = table01_hpcg.predicted_peak_fraction(
            machine_balance_ops_per_byte=100.0
        )
        cpu_like = table01_hpcg.predicted_peak_fraction(
            machine_balance_ops_per_byte=3.4
        )
        # Observed HPCG fractions (0.3%..3%) must lie between the two
        # memory-bound limits.
        assert gpu_like < 0.003
        assert cpu_like > 0.01
        assert gpu_like < cpu_like

    def test_report_contains_systems(self):
        rep = table01_hpcg.report()
        for name in ("Frontier", "Fugaku", "Lumi"):
            assert name in rep


class TestTables0203:
    def test_scheduler_checks_all_pass(self):
        assert all(table02_schedulers.verify().values())

    def test_buffer_checks_all_pass(self):
        assert all(table03_buffers.verify().values())

    def test_config_capabilities_lookup(self):
        from repro.analysis.tables import config_capabilities

        assert config_capabilities("CELLO").delayed_writeback
        assert not config_capabilities("SET").delayed_writeback
        assert not config_capabilities("FLAT").delayed_hold
        with pytest.raises(KeyError):
            config_capabilities("nope")


class TestFig12:
    def test_small_panel_ordering(self):
        panels = fig12_cg_performance.run(
            CFG,
            configs=("Flexagon", "FLAT", "CELLO"),
            bandwidths=(1000e9,),
            datasets=(FV1,),
            n_values=(16,),
            iterations=2,
        )
        assert len(panels) == 1
        p = panels[0]
        assert p.speedup_of("CELLO") > 1.5
        assert p.speedup_of("FLAT") == pytest.approx(1.0)

    def test_geomean_speedup_substantial(self):
        panels = fig12_cg_performance.run(
            CFG,
            configs=("Flexagon", "CELLO"),
            bandwidths=(1000e9,),
            datasets=(FV1,),
            n_values=(1, 16),
            iterations=2,
        )
        gm = fig12_cg_performance.cello_geomean_speedup(panels)
        assert gm > 2.0


class TestFig13:
    def test_gnn_parity(self):
        panels = fig13_gnn_bicgstab.run(CFG, configs=("Flexagon", "FLAT", "CELLO"))
        gnn = [p for p in panels if p.family == "gnn"]
        assert len(gnn) == 2
        for p in gnn:
            flat = p.results["FLAT"].dram_bytes
            cello = p.results["CELLO"].dram_bytes
            assert cello <= flat


class TestFig14:
    def test_cello_lowest_everywhere(self):
        rows = fig14_energy.run(CFG, configs=("Flexagon", "FLAT", "CELLO"))
        for r in rows:
            assert r.relative["CELLO"] <= r.relative["FLAT"] + 1e-9
            assert r.relative["Flexagon"] == pytest.approx(1.0)

    def test_reduction_range_positive(self):
        rows = fig14_energy.run(CFG, configs=("Flexagon", "CELLO"))
        lo, hi = fig14_energy.cello_reduction_range(rows)
        assert 0 < lo <= hi < 100


class TestFig15:
    def test_costs(self):
        costs = fig15_area_energy.run(CFG)
        assert costs["cache"].total_mm2 > costs["chord"].total_mm2
        assert "0.01" in fig15_area_energy.report(CFG) or "0.00" in fig15_area_energy.report(CFG)


class TestFig16:
    def test_resnet_panels(self):
        panels = fig16a_resnet.run(CFG, configs=("Flexagon", "FLAT", "SET", "CELLO"))
        assert len(panels) == 2
        fast = panels[1] if panels[1].bandwidth > panels[0].bandwidth else panels[0]
        # At 1 TB/s all pipelined configs tie (compute bound).
        assert fast.results["SET"].time_s == pytest.approx(fast.results["CELLO"].time_s)

    def test_sram_sweep_monotone(self):
        points = fig16b_sram_sweep.run(CFG, iterations=3)
        by_n = {}
        for p in points:
            by_n.setdefault(p.n, []).append(p.result.dram_bytes)
        for n, series in by_n.items():
            assert series == sorted(series, reverse=True)

    def test_prelude_only_panels(self):
        panels = fig16c_prelude_only.run(CFG, iterations=3)
        for p in panels:
            pre = p.results["PRELUDE-only"].dram_bytes
            assert p.results["CELLO"].dram_bytes <= pre
            assert pre <= p.results["Flexagon"].dram_bytes
        # Closer to CELLO at N=1 than at N=16.
        pos = {p.n: p.gap_position() for p in panels}
        assert pos[1] > pos[16]


class TestSec6b:
    def test_orders_of_magnitude(self):
        rep = sec6b_searchspace.run(CFG, iterations=2)
        assert rep.log10_scratchpad > rep.log10_op_by_op > 5
        assert rep.chord_points < 10 ** 3

    def test_report(self):
        assert "CHORD" in sec6b_searchspace.report(CFG)


class TestFig08:
    def test_rank_split_always_wins(self):
        for c in fig08_multinode.run(n=16, n_nodes=16):
            assert c.advantage > 10

    def test_report(self):
        assert "advantage" in fig08_multinode.report()


class TestTuneStudy:
    #: Small stand-ins: one Table VI family, one extension family.
    WORKLOADS = ("cg/fv1/N=16@it2", "gmres/fv1/m=3/N=1")
    SRAMS = (1024 * 1024, 4 * 1024 * 1024)

    def test_searched_best_never_loses_to_fixed_cello(self):
        results = tune_study.run(CFG, workloads=self.WORKLOADS,
                                 srams=self.SRAMS)
        assert set(results) == {
            (w, s) for w in self.WORKLOADS for s in self.SRAMS
        }
        for tr in results.values():
            assert tr.best.result.time_s <= tr.incumbent.result.time_s
            assert tr.speedup_over_incumbent() >= 1.0
            assert len(tr.evaluations) == len(tune_study.study_space(1))

    def test_report_renders_comparison_and_example_front(self):
        text = tune_study.report(CFG, workloads=self.WORKLOADS,
                                 srams=self.SRAMS)
        assert "searched best vs the fixed CELLO point" in text
        assert "zero re-simulations" in text
        assert "Tuned " in text  # the worked-example frontier
        for w in self.WORKLOADS:
            assert w in text
