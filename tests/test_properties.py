"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

* PRELUDE arithmetic conserves bytes;
* ChordBuffer never overflows, never loses bytes (hit + miss == request),
  and a full write-then-read round trip conserves tensor bytes;
* the LRU cache matches a reference stack model on arbitrary streams;
* occupancy tiling always partitions the rows with bounded imbalance;
* geomean bounds; address-map extents never overlap.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.buffers.cache import SetAssociativeCache
from repro.buffers.lru import LruPolicy
from repro.chord.buffer import ChordBuffer
from repro.chord.hints import ReuseHints, TensorHints
from repro.chord.prelude import prelude_fill
from repro.score.searchspace import log10_comb
from repro.score.tiling import occupancy_tiles, tile_nnz
from repro.sim.address_map import AddressMap
from repro.sim.results import geomean


class TestPreludeProperties:
    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    def test_conserves_bytes(self, request, free):
        d = prelude_fill(request, free)
        assert d.inserted + d.spilled == request
        assert 0 <= d.inserted <= free


def _chord_setup(sizes, capacity):
    """Tensors T0..Tn produced at ops 0..n, each consumed twice later."""
    n = len(sizes)
    hints = ReuseHints({
        f"T{i}": TensorHints(
            f"T{i}", sizes[i], i, (n + i, 2 * n + i), False
        )
        for i in range(n)
    })
    return ChordBuffer(capacity, hints), hints


class TestChordProperties:
    @given(
        st.lists(st.integers(1, 5000), min_size=1, max_size=8),
        st.integers(100, 20000),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_overflows_and_conserves(self, sizes, capacity):
        chord, hints = _chord_setup(sizes, capacity)
        n = len(sizes)
        for i in range(n):
            chord.write(f"T{i}", i)
            assert chord.used_bytes <= capacity
            assert chord.resident_bytes(f"T{i}") <= sizes[i]
        # First read round: hits + misses must cover each tensor exactly.
        for i in range(n):
            before = chord.stats.dram_read_bytes
            hit = chord.read(f"T{i}", n + i)
            missed = chord.stats.dram_read_bytes - before
            assert hit + missed == sizes[i]
            assert chord.used_bytes <= capacity

    @given(
        st.lists(st.integers(1, 5000), min_size=1, max_size=8),
        st.integers(100, 20000),
    )
    @settings(max_examples=60, deadline=None)
    def test_second_read_after_refetch_hits_resident(self, sizes, capacity):
        chord, hints = _chord_setup(sizes, capacity)
        n = len(sizes)
        for i in range(n):
            chord.write(f"T{i}", i)
        for i in range(n):
            chord.read(f"T{i}", n + i)
        for i in range(n):
            hit = chord.read(f"T{i}", 2 * n + i)
            assert hit == chord.stats.hits - chord.stats.hits + hit  # tautology guard
            assert hit <= sizes[i]

    @given(
        st.lists(st.integers(1, 5000), min_size=2, max_size=8),
        st.integers(100, 20000),
    )
    @settings(max_examples=60, deadline=None)
    def test_riff_never_worse_than_prelude_only(self, sizes, capacity):
        def total_traffic(use_riff):
            chord, _ = _chord_setup(sizes, capacity)
            chord.riff = chord.riff if use_riff else None
            n = len(sizes)
            for i in range(n):
                chord.write(f"T{i}", i)
            for rnd in (1, 2):
                for i in range(n):
                    chord.read(f"T{i}", rnd * n + i)
            return chord.stats.dram_bytes

        # Uniform reuse pattern: RIFF's extra evictions may shuffle traffic
        # but resident bytes at read time can only help or tie within the
        # write-back cost of displaced dirty bytes.
        with_riff = total_traffic(True)
        without = total_traffic(False)
        assert with_riff <= without + 2 * sum(sizes)

    @given(st.integers(1, 10**6))
    @settings(max_examples=30)
    def test_retire_frees_everything(self, size):
        hints = ReuseHints({"T": TensorHints("T", size, 0, (1,), False)})
        chord = ChordBuffer(max(1, size // 2), hints)
        chord.write("T", 0)
        chord.read("T", 1)
        chord.retire("T")
        assert chord.used_bytes == 0


class TestLruProperty:
    @given(
        st.lists(st.integers(0, 63), min_size=1, max_size=400),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_stack(self, blocks, assoc):
        n_sets = 8
        cache = SetAssociativeCache(n_sets * assoc * 16, 16, assoc, LruPolicy())
        stacks = {s: [] for s in range(n_sets)}
        for b in blocks:
            s = b % n_sets
            st_ = stacks[s]
            expected = b in st_
            if expected:
                st_.remove(b)
            elif len(st_) == assoc:
                st_.pop(0)
            st_.append(b)
            assert cache.access_line(b, False) == expected


class TestTilingProperties:
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=300),
        st.integers(1, 16),
    )
    @settings(max_examples=60)
    def test_partition_and_balance(self, row_nnz, n_tiles):
        tiles = occupancy_tiles(row_nnz, n_tiles)
        assert len(tiles) == n_tiles
        # Partition: contiguous cover of [0, rows).
        assert tiles[0][0] == 0
        for (s1, e1), (s2, e2) in zip(tiles, tiles[1:]):
            assert e1 == s2
            assert s2 <= e2
        assert max(e for _, e in tiles) == len(row_nnz)
        # Conservation of nnz.
        assert sum(tile_nnz(row_nnz, tiles)) == sum(row_nnz)
        # Balance bound: no tile exceeds ideal + one max row.
        total = sum(row_nnz)
        if total:
            ideal = total / n_tiles
            assert max(tile_nnz(row_nnz, tiles)) <= ideal + max(row_nnz) + 1


class TestMathProperties:
    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_geomean_bounds(self, values):
        g = geomean(values)
        assert min(values) <= g * 1.0000001
        assert g <= max(values) * 1.0000001

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_log10_comb_symmetry(self, n, k):
        assume(k <= n)
        if n <= 170:
            assert log10_comb(n, k) == pytest.approx(
                math.log10(math.comb(n, k)), abs=1e-9
            )
        assert abs(log10_comb(n, k) - log10_comb(n, n - k)) < 1e-9


class TestAddressMapProperty:
    @given(st.lists(st.integers(0, 10000), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_extents_never_overlap(self, sizes):
        amap = AddressMap(line_bytes=16)
        extents = [amap.add(f"t{i}", s) for i, s in enumerate(sizes)]
        for a, b in zip(extents, extents[1:]):
            assert a.end <= b.base
