"""Tests for Algorithm 2 (dominance + dependency classification).

The CG structure tests pin the exact dependency classes the paper's Fig. 7
shows: this is the heart of the reproduction.
"""

import pytest

from repro.core.classify import DependencyType, classify_dependencies
from repro.core.dominance import Dominance, classify_dominance
from repro.core.einsum import EinsumOp, OpKind
from repro.core.ranks import Rank
from repro.core.tensor import csr_tensor, dense_tensor
from repro.workloads.cg import CgProblem, build_cg_dag
from repro.workloads.gnn import build_gnn_dag, cora_problem, protein_problem
from repro.workloads.matrices import FV1
from repro.workloads.resnet import build_resnet_block_dag


@pytest.fixture(scope="module")
def cg():
    return classify_dependencies(build_cg_dag(CgProblem(matrix=FV1, n=16, iterations=2)))


@pytest.fixture(scope="module")
def resnet():
    return classify_dependencies(build_resnet_block_dag())


class TestDominance:
    def test_skewed_gemm_is_uncontracted_dominant(self):
        rm, rk, rn = Rank("m", 100000), Rank("k", 16), Rank("n", 16)
        op = EinsumOp(
            name="g",
            inputs=(dense_tensor("A", (rm, rk)), dense_tensor("B", (rk, rn))),
            output=dense_tensor("Z", (rm, rn)),
            contracted=("k",),
        )
        d = classify_dominance(op)
        assert d.kind is Dominance.UNCONTRACTED
        assert d.dominant_rank == "m"

    def test_gram_is_contracted_dominant(self):
        rk, rp, rn = Rank("k", 100000), Rank("np", 16), Rank("n", 16)
        op = EinsumOp(
            name="gram",
            inputs=(dense_tensor("P", (rk, rp)), dense_tensor("S", (rk, rn))),
            output=dense_tensor("D", (rp, rn)),
            contracted=("k",),
        )
        assert classify_dominance(op).kind is Dominance.CONTRACTED

    def test_cubic_gemm_is_balanced(self):
        rm, rk, rn = Rank("m", 512), Rank("k", 512), Rank("n", 512)
        op = EinsumOp(
            name="g",
            inputs=(dense_tensor("A", (rm, rk)), dense_tensor("B", (rk, rn))),
            output=dense_tensor("Z", (rm, rn)),
            contracted=("k",),
        )
        assert classify_dominance(op).kind is Dominance.BALANCED

    def test_compressed_contraction_makes_spmm_uncontracted(self):
        # Fig. 7: "the first operation is 'U' because the contracted rank is
        # compressed."
        m, nnz = 9604, 85264
        rk = Rank("k", m, compressed=True, effective_size=nnz / m)
        rm, rn = Rank("m", m), Rank("n", 16)
        op = EinsumOp(
            name="spmm",
            inputs=(csr_tensor("A", (rm, rk), nnz=nnz), dense_tensor("P", (rk, rn))),
            output=dense_tensor("S", (rm, rn)),
            contracted=("k",),
        )
        d = classify_dominance(op)
        assert d.kind is Dominance.UNCONTRACTED
        assert d.dominant_rank == "m"


class TestCgClassification:
    """Pin the paper's Fig. 7 structure on the real CG DAG."""

    def test_node_letters(self, cg):
        assert cg.node_letter("1:spmm@0") == "U"
        assert cg.node_letter("2a:gram@0") == "C"
        assert cg.node_letter("3:xupd@0") == "U"
        assert cg.node_letter("4:rupd@0") == "U"
        assert cg.node_letter("5:gram@0") == "C"

    def test_s_pipeline_into_gram(self, cg):
        # 1 -> 2a: S streams into the contraction (adjacent, shared rank).
        assert cg.dependency[("1:spmm@0", "2a:gram@0", "S@0")] is DependencyType.PIPELINEABLE

    def test_s_delayed_writeback_to_rupd(self, cg):
        # 1 -> 4: transitive via the contraction-heavy 2a (Fig. 7 brick red).
        assert cg.dependency[("1:spmm@0", "4:rupd@0", "S@0")] is DependencyType.DELAYED_WRITEBACK

    def test_r_pipeline_into_gram(self, cg):
        assert cg.dependency[("4:rupd@0", "5:gram@0", "R@1")] is DependencyType.PIPELINEABLE

    def test_r_delayed_writeback_to_pupd(self, cg):
        assert cg.dependency[("4:rupd@0", "7:pupd@0", "R@1")] is DependencyType.DELAYED_WRITEBACK

    def test_r_delayed_writeback_across_iterations(self, cg):
        assert cg.dependency[("4:rupd@0", "4:rupd@1", "R@1")] is DependencyType.DELAYED_WRITEBACK

    def test_p_unshared_into_spmm_is_sequential(self, cg):
        # 7 -> 1': the SpMM gathers P rows by sparsity pattern; its dominant
        # rank m is not a rank of P — unshared, sequential.
        assert cg.dependency[("7:pupd@0", "1:spmm@1", "P@1")] is DependencyType.SEQUENTIAL

    def test_p_delayed_writeback_to_next_iteration_gram(self, cg):
        assert cg.dependency[("7:pupd@0", "2a:gram@1", "P@1")] is DependencyType.DELAYED_WRITEBACK

    def test_gram_outputs_are_sequential(self, cg):
        # Contracted-dominant sources never pipeline (lines 2 and 5).
        assert cg.dependency[("2a:gram@0", "2b:inv@0", "Delta@0")] is DependencyType.SEQUENTIAL
        assert cg.dependency[("5:gram@0", "6:inv@0", "Gamma@1")] is DependencyType.SEQUENTIAL

    def test_inverse_outputs_are_sequential(self, cg):
        assert cg.dependency[("2b:inv@0", "3:xupd@0", "Lambda@0")] is DependencyType.SEQUENTIAL
        assert cg.dependency[("6:inv@0", "7:pupd@0", "Phi@0")] is DependencyType.SEQUENTIAL

    def test_x_edge_is_pipelineable_but_distant(self, cg):
        # 3 -> 3': non-transitive and rank-shared, so Algorithm 2 calls it
        # pipelineable; realization (binding) rejects it on adjacency.
        assert cg.dependency[("3:xupd@0", "3:xupd@1", "X@1")] is DependencyType.PIPELINEABLE

    def test_no_delayed_hold_in_cg(self, cg):
        # Every transitive path crosses a contraction: CG has no holds.
        assert cg.summary()["delayed_hold"] == 0

    def test_cg_has_multicast_nodes(self, cg):
        assert any(cg.parallel_multicast.values())


class TestResNetClassification:
    def test_chain_pipelines(self, resnet):
        assert resnet.dependency[("pre:conv", "c1:conv@0", "T0@0")] is DependencyType.PIPELINEABLE
        assert resnet.dependency[("c1:conv@0", "c2:conv@0", "T1@0")] is DependencyType.PIPELINEABLE
        assert resnet.dependency[("c2:conv@0", "c3:conv@0", "T2@0")] is DependencyType.PIPELINEABLE
        assert resnet.dependency[("c3:conv@0", "add:residual@0", "T3@0")] is DependencyType.PIPELINEABLE

    def test_skip_connection_is_delayed_hold(self, resnet):
        # Fig. 7 right: the whole residual path pipelines, so the skip edge
        # holds tiles rather than writing back.
        assert resnet.dependency[("pre:conv", "add:residual@0", "T0@0")] is DependencyType.DELAYED_HOLD

    def test_conv_nodes_are_balanced(self, resnet):
        for node in ("pre:conv", "c1:conv@0", "c2:conv@0", "c3:conv@0"):
            assert resnet.node_letter(node) == "bal"

    def test_pre_is_not_parallel_multicast(self, resnet):
        # The skip edge is transitive; Algorithm 2 counts only
        # non-transitive fan-out toward parallel multicast, so the producer
        # has numcast == 1.
        assert not resnet.parallel_multicast["pre:conv"]
        assert resnet.numcast["pre:conv"] == 1


class TestGnnClassification:
    @pytest.mark.parametrize("problem", [cora_problem(), protein_problem()])
    def test_intermediate_is_pipelineable(self, problem):
        cdag = classify_dependencies(build_gnn_dag(problem))
        assert cdag.dependency[("agg@0", "comb@0", "AX@0")] is DependencyType.PIPELINEABLE

    def test_no_delayed_dependencies(self):
        cdag = classify_dependencies(build_gnn_dag(cora_problem()))
        s = cdag.summary()
        assert s["delayed_hold"] == 0
        assert s["delayed_writeback"] == 0


class TestClassifiedDagApi:
    def test_summary_counts_all_edges(self, cg):
        s = cg.summary()
        assert sum(s.values()) == len(cg.dag.edges())

    def test_edges_of_type(self, cg):
        pipes = cg.edges_of_type(DependencyType.PIPELINEABLE)
        assert all(cg.dep_of(e) is DependencyType.PIPELINEABLE for e in pipes)

    def test_consumer_dep_none_for_inputs(self, cg):
        assert cg.consumer_dep("A", "1:spmm@0") is None

    def test_describe_mentions_nodes_and_edges(self, cg):
        text = cg.describe()
        assert "1:spmm@0" in text
        assert "delayed_writeback" in text
