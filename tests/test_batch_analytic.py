"""Differential tests for the vectorised batch analytic layer.

Three contracts, each pinned to its point-wise reference:

* :func:`repro.analytic.evaluate_batch` is element-wise identical to
  ``AnalyticModel.evaluate`` across random DAGs, knob grids, and all
  three evaluation regimes (hypothesis property suite);
* :func:`repro.tuner.pareto.nondominated_mask` and the vectorised
  :class:`ParetoFront` match the legacy per-insert dominance loop on
  random fronts (ties and duplicates included);
* the columnar grid tune path produces the same frontier, best point,
  and per-point evaluations as the point-wise analytic path.
"""

import random
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    REGIME_NAMES,
    BatchKnobs,
    batch_objective_arrays,
    evaluate_batch,
    model_for,
)
from repro.baselines import runner
from repro.baselines.configs import cello_variant_name
from repro.hw.config import KIB, MIB, AcceleratorConfig
from repro.sim.engine import EngineOptions
from repro.tuner.pareto import ParetoFront, dominates, nondominated_mask, objective_values
from repro.tuner.space import TunePoint, TuneSpace
from repro.tuner.strategies import make_strategy
from repro.tuner.tuner import _BatchEvaluator, tune
from repro.tuner import tuner as tuner_mod
from repro.workloads.registry import random_dag_workload, resolve_workload


def _pointwise(model, knobs, cfg):
    """Reference: one ``model.evaluate`` call per knob row."""
    reads, writes, regimes = [], [], []
    for i in range(len(knobs)):
        options = EngineOptions(
            use_riff=bool(knobs.use_riff[i]),
            explicit_retire=bool(knobs.explicit_retire[i]),
            charge_swizzle=bool(knobs.charge_swizzle[i]),
        )
        # capacity_bytes is cfg.chord_data_bytes; invert the split so the
        # scalar path sees the same capacity the batch row carries.  The
        # split floors, so probe neighbouring sram sizes for an exact hit.
        capacity = int(knobs.capacity_bytes[i])
        guess = int(round(capacity / (1.0 - cfg.pipeline_fraction)))
        point_cfg = None
        for sram in range(max(guess - 2, 1), guess + 3):
            candidate = replace(cfg, sram_bytes=sram,
                                chord_entries=int(knobs.chord_entries[i]))
            if candidate.chord_data_bytes == capacity:
                point_cfg = candidate
                break
        assert point_cfg is not None, capacity
        evaluation = model.evaluate(
            cello_variant_name(options), options, point_cfg)
        reads.append(evaluation.result.dram_read_bytes)
        writes.append(evaluation.result.dram_write_bytes)
        regimes.append(evaluation.regime)
    return reads, writes, regimes


def _knob_grid(model, cfg, extra_capacities=()):
    """A knob grid straddling the model's no-pressure peaks: every
    schedule-toggle combination at capacities/entries above and below the
    peak, so closed-form and recurrence rows coexist in one batch."""
    peak_bytes, peak_count = model._peaks[True]
    capacities = sorted({
        max(int(c), 1) for c in (
            peak_bytes // 3 + 1, max(peak_bytes - 1, 1), peak_bytes + 1,
            peak_bytes * 2 + 1, *extra_capacities)
    })
    entries = sorted({1, max(peak_count // 2, 1), peak_count + 1,
                      peak_count + 64})
    rows = [
        (riff, retire, swz, e, c)
        for riff in (True, False)
        for retire in (True, False)
        for swz in (True, False)
        for e in entries
        for c in capacities
    ]
    return BatchKnobs.from_columns(
        len(rows),
        use_riff=[r[0] for r in rows],
        explicit_retire=[r[1] for r in rows],
        charge_swizzle=[r[2] for r in rows],
        chord_entries=[r[3] for r in rows],
        capacity_bytes=[r[4] for r in rows],
    )


class TestBatchVsPointwise:
    """evaluate_batch == model.evaluate, element-wise."""

    @pytest.mark.parametrize("name", ["cg/fv1/N=1", "gmres/fv1/m=8/N=1",
                                      "mg/fv1/N=1"])
    def test_named_workloads_all_regimes(self, name):
        cfg = AcceleratorConfig()
        model = model_for(resolve_workload(name), "CELLO", cfg)
        knobs = _knob_grid(model, cfg)
        ev = evaluate_batch(model, knobs)
        reads, writes, regimes = _pointwise(model, knobs, cfg)
        assert ev.dram_read_bytes.tolist() == reads
        assert ev.dram_write_bytes.tolist() == writes
        assert ev.regime_names() == regimes
        # The grid was built to exercise both engine regimes at once.
        assert len(set(regimes)) > 1

    def test_streaming_families_are_constant_fills(self):
        cfg = AcceleratorConfig()
        workload = resolve_workload("cg/fv1/N=1")
        for family in ("Flexagon", "FLAT", "SET"):
            model = model_for(workload, family, cfg)
            knobs = BatchKnobs.from_columns(
                8, chord_entries=[1, 2, 4, 8, 16, 32, 64, 128],
                capacity_bytes=cfg.chord_data_bytes)
            ev = evaluate_batch(model, knobs)
            expected = model.evaluate(family, None, cfg).result
            assert set(ev.dram_read_bytes.tolist()) \
                == {expected.dram_read_bytes}
            assert set(ev.dram_write_bytes.tolist()) \
                == {expected.dram_write_bytes}
            assert set(ev.regime_names()) == {"streaming"}

    @given(seed=st.integers(0, 10_000), n_ops=st.integers(2, 12),
           fanout=st.integers(0, 4), skew=st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_random_dag_differential(self, seed, n_ops, fanout, skew):
        workload = random_dag_workload(seed, n_ops=n_ops, fanout=fanout,
                                       skew=skew)
        cfg = AcceleratorConfig(sram_bytes=256 * KIB)
        model = model_for(workload, "CELLO", cfg)
        knobs = _knob_grid(model, cfg,
                           extra_capacities=(cfg.chord_data_bytes,))
        ev = evaluate_batch(model, knobs)
        reads, writes, regimes = _pointwise(model, knobs, cfg)
        assert ev.dram_read_bytes.tolist() == reads
        assert ev.dram_write_bytes.tolist() == writes
        assert ev.regime_names() == regimes

    def test_regime_names_match_compiler_strings(self):
        assert REGIME_NAMES == ("streaming", "closed-form", "recurrence")


class TestBatchObjectiveArrays:
    """batch_objective_arrays == objective_values, float for float."""

    def test_matches_pointwise_objectives(self):
        names = ("runtime", "dram", "energy", "area")
        cfg = AcceleratorConfig()
        workload = resolve_workload("gmres/fv1/m=8/N=1")
        model = model_for(workload, "CELLO", cfg)
        knobs = _knob_grid(model, cfg)
        ev = evaluate_batch(model, knobs)
        # Objective arrays assume one SRAM/line geometry per call; pin
        # capacity to the cfg the comparison evaluates at.
        mask = knobs.capacity_bytes == cfg.chord_data_bytes
        idx = np.flatnonzero(mask)
        if not idx.size:
            knobs = BatchKnobs.from_columns(
                4, chord_entries=[1, 8, 64, 256],
                capacity_bytes=cfg.chord_data_bytes)
            ev = evaluate_batch(model, knobs)
            idx = np.arange(4)
        arrs = batch_objective_arrays(
            names, model,
            type(ev)(dram_read_bytes=ev.dram_read_bytes[idx],
                     dram_write_bytes=ev.dram_write_bytes[idx],
                     regime=ev.regime[idx]),
            cfg, chord_entries=knobs.chord_entries[idx])
        for j, i in enumerate(idx):
            i = int(i)
            options = EngineOptions(
                use_riff=bool(knobs.use_riff[i]),
                explicit_retire=bool(knobs.explicit_retire[i]),
                charge_swizzle=bool(knobs.charge_swizzle[i]))
            point = TunePoint(
                use_riff=options.use_riff,
                explicit_retire=options.explicit_retire,
                charge_swizzle=options.charge_swizzle,
                chord_entries=int(knobs.chord_entries[i]),
                sram_bytes=cfg.sram_bytes, line_bytes=cfg.line_bytes)
            point_cfg = point.accel_cfg(cfg)
            result = model.evaluate(
                cello_variant_name(options), options, point_cfg).result
            expected = objective_values(names, result, point_cfg, point)
            for name in names:
                assert float(arrs[name][j]) == expected[name], (name, i)

    def test_area_requires_entries(self):
        cfg = AcceleratorConfig()
        model = model_for(resolve_workload("cg/fv1/N=1"), "CELLO", cfg)
        knobs = BatchKnobs.from_columns(
            2, capacity_bytes=cfg.chord_data_bytes)
        ev = evaluate_batch(model, knobs)
        with pytest.raises(ValueError, match="chord_entries"):
            batch_objective_arrays(("area",), model, ev, cfg)
        with pytest.raises(KeyError, match="unknown objective"):
            batch_objective_arrays(("speed",), model, ev, cfg)


def _legacy_front(vectors):
    """The pre-vectorisation per-insert loop (reference semantics)."""
    entries = []
    for i, v in enumerate(vectors):
        v = tuple(v)
        if any(dominates(e, v) or e == v for _, e in entries):
            continue
        entries = [(j, e) for j, e in entries if not dominates(v, e)]
        entries.append((i, v))
    return entries


class TestVectorisedPareto:
    """nondominated_mask / ParetoFront.add == the legacy insert loop."""

    @given(seed=st.integers(0, 10_000), n=st.integers(0, 120),
           k=st.integers(1, 4), levels=st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_mask_matches_legacy_loop(self, seed, n, k, levels):
        rng = random.Random(seed)
        # Coarse levels force plenty of exact ties and duplicate vectors.
        vectors = [tuple(float(rng.randrange(levels)) for _ in range(k))
                   for _ in range(n)]
        mask = nondominated_mask(np.asarray(vectors).reshape(n, k))
        survivors = {i for i, _ in _legacy_front(vectors)}
        assert {int(i) for i in np.flatnonzero(mask)} == survivors

    @given(seed=st.integers(0, 10_000), n=st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_front_add_matches_legacy_loop(self, seed, n):
        rng = random.Random(seed)
        names = ("runtime", "dram")
        front = ParetoFront(names)
        vectors = []
        for i in range(n):
            v = (float(rng.randrange(5)), float(rng.randrange(5)))
            vectors.append(v)
            front.add(TunePoint(chord_entries=i + 1), f"p{i}",
                      dict(zip(names, v)))
        legacy = sorted(e for _, e in _legacy_front(vectors))
        assert sorted(e.vector for e in front) == legacy

    def test_mask_rejects_non_matrix_input(self):
        with pytest.raises(ValueError, match="2-D"):
            nondominated_mask(np.zeros(3))
        assert nondominated_mask(np.zeros((0, 2))).tolist() == []


class TestColumnarGrid:
    def _space(self):
        return TuneSpace(chord_entries=(64, 8, 32), sram_bytes=(4 * MIB, MIB),
                         line_bytes=(16, 64), cache_policies=("LRU", "SRRIP"))

    def test_row_order_matches_points(self):
        space = self._space()
        grid = space.columnar()
        pts = space.points()
        assert len(grid) == len(pts) == len(space)
        assert [grid.point_at(i) for i in range(len(grid))] == list(pts)

    def test_cello_index_roundtrip_and_bounds(self):
        space = self._space()
        grid = space.columnar()
        for i in range(grid.n_cello):
            assert grid.cello_index_of(grid.point_at(i)) == i
        assert grid.cello_index_of(TunePoint(chord_entries=999)) is None
        assert grid.cello_index_of(
            TunePoint(cache_policy="LRU")) is None
        with pytest.raises(IndexError):
            grid.point_at(len(grid))

    def test_contains_matches_enumeration(self):
        space = self._space()
        members = set(space.points())
        for p in list(members):
            assert p in space
        assert TunePoint(chord_entries=999) not in space
        assert TunePoint(cache_policy="BRRIP") not in space
        # A cache point with a non-default RIFF table is not on the grid
        # even though the policy/SRAM/line axes all match.
        odd = TunePoint(cache_policy="LRU", chord_entries=8)
        assert odd not in members and odd not in space
        assert "CELLO" not in space  # non-TunePoint

    def test_sample_matches_legacy_draws(self):
        space = self._space()
        pts = space.points()
        for seed in range(5):
            legacy = tuple(random.Random(seed).sample(pts, 7))
            assert space.sample(random.Random(seed), 7) == legacy
        assert space.sample(random.Random(0), len(pts) + 5) == pts


class TestColumnarTune:
    WORKLOAD = "gmres/fv1/m=8/N=1"

    def _space(self):
        return TuneSpace(chord_entries=(64, 8, 16, 32),
                         sram_bytes=(4 * MIB, MIB), line_bytes=(16, 32),
                         cache_policies=("LRU",))

    def _pointwise_tune(self, monkeypatch, **kwargs):
        """The legacy path: columnar fast path off, per-point _predict."""
        monkeypatch.setattr(tuner_mod, "_columnar_grid_tune",
                            lambda *a, **k: None)
        monkeypatch.setattr(
            _BatchEvaluator, "_batch_predict",
            lambda self, pts: {
                p: e for p in pts if p.is_cello
                for e in [self._predict(p)] if e is not None})
        return tune(self.WORKLOAD, **kwargs)

    @pytest.mark.parametrize("fidelity", ["analytic", "hybrid"])
    def test_columnar_front_matches_pointwise(self, monkeypatch, fidelity):
        runner.clear_cache()
        fast = tune(self.WORKLOAD, space=self._space(),
                    strategy=make_strategy("grid"),
                    objectives=("runtime", "dram", "area"),
                    fidelity=fidelity)
        runner.clear_cache()
        slow = self._pointwise_tune(
            monkeypatch, space=self._space(),
            strategy=make_strategy("grid"),
            objectives=("runtime", "dram", "area"), fidelity=fidelity)
        runner.clear_cache()
        assert [(e.point, e.vector) for e in fast.front] \
            == [(e.point, e.vector) for e in slow.front]
        assert fast.best.point == slow.best.point
        assert fast.best.objectives == slow.best.objectives
        assert fast.incumbent.result == slow.incumbent.result
        # The columnar prune keeps the final frontier only, so it never
        # simulates more than the insertion-order point-wise pass.
        assert fast.n_simulations <= slow.n_simulations
        by_point = {e.point: e for e in slow.evaluations}
        for e in fast.evaluations:
            o = by_point[e.point]
            assert e.objectives == o.objectives and e.result == o.result

    def test_batch_routed_analytic_pass_matches_predict(self):
        from repro.hw.config import default_config

        workload = resolve_workload(self.WORKLOAD)
        evaluator = _BatchEvaluator(
            workload, ("runtime", "dram", "energy", "area"),
            default_config(None), jobs=1, fidelity="analytic")
        pts = [p for p in self._space().points() if p.is_cello][:12]
        batch = evaluator._batch_predict(pts)
        for p in pts:
            ref = evaluator._predict(p)
            got = batch[p]
            assert got.objectives == ref.objectives, p
            assert got.result == ref.result, p
            assert got.fidelity == "analytic"
        # Cache-policy points have no analytic model: absent, not priced.
        assert evaluator._batch_predict(
            [TunePoint(cache_policy="LRU")]) == {}

    def test_hundred_thousand_point_hybrid_front_matches_analytic(self):
        """The acceptance-scale run: a 10^5-point hybrid grid tune prices
        columnar and yields the same frontier as the analytic fidelity on
        the same space (predictions are byte-exact, so re-simulating the
        survivors cannot move the front)."""
        space = TuneSpace(chord_entries=tuple(range(1, 12_501)),
                          sram_bytes=(4 * MIB,), line_bytes=(16,))
        assert len(space) == 100_000
        runner.clear_cache()
        hybrid = tune(self.WORKLOAD, space=space,
                      strategy=make_strategy("grid"),
                      objectives=("runtime", "dram", "area"),
                      fidelity="hybrid")
        runner.clear_cache()
        analytic = tune(self.WORKLOAD, space=space,
                        strategy=make_strategy("grid"),
                        objectives=("runtime", "dram", "area"),
                        fidelity="analytic")
        runner.clear_cache()
        assert [(e.point, e.vector) for e in hybrid.front] \
            == [(e.point, e.vector) for e in analytic.front]
        assert hybrid.n_analytic > 90_000
        assert hybrid.analytic_max_rel_error in (None, 0.0)
        # Only the analytic frontier plus the incumbent get simulated
        # (the incumbent is always priced exactly, even when its vector
        # ties a frontier entry), never the other ~100k points.
        assert hybrid.n_simulations <= len(hybrid.front) + 1
