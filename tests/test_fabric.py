"""End-to-end tests for the sharded simulation fabric: a gateway over
real ``repro serve`` subprocesses, with faults injected by the
:mod:`fabric` chaos harness.

Two layers:

* ``TestGatewayFabric`` — one healthy 3-shard fabric shared by the
  module: byte-identity against the direct engines, cluster-wide
  single-flight, the v4 ``points``/``topology`` ops, predict/tune
  forwarding, and listener fuzzing.
* ``TestChaos`` — one fabric per test, each broken differently: shard
  SIGKILLed mid-stream, connection dropped mid-stream, acks delayed past
  the gateway's read timeout, and a fabric with no live shards at all.
  Every chaos test pins the same three invariants: the job still
  completes with every point, ``requeued`` says so, and the shared store
  holds exactly one record per distinct traffic key (no duplicate
  simulations, ever).
"""

import io
import json
import socket
import threading
import time

import pytest

from fabric import (
    Fabric,
    GatewayThread,
    busiest_proxy,
    distinct_keys,
    duplicate_store_keys,
    fuzz_exchange,
    fuzz_payloads,
    store_record_keys,
)
from repro.baselines.configs import run_config
from repro.hw.config import GB, MIB, AcceleratorConfig
from repro.orchestrator.spec import SweepSpec
from repro.orchestrator.store import ResultStore
from repro.service import JobFailed, RequestLog, ServiceError
from repro.service.protocol import PROTOCOL_VERSION
from repro.workloads.registry import resolve_workload
from test_service import (
    BANDWIDTH_GB,
    CONFIGS,
    DISTINCT_KEYS,
    WORKLOAD,
    _reset_runner,
    expected_results,
)

#: The chaos grid: 4 workloads x 2 configs x 1 bandwidth = 8 points with
#: 8 distinct traffic keys, so every point is its own simulation and a
#: busiest-of-3 victim owns >= 3 of them (pigeonhole).
CHAOS_WORKLOADS = ("cg/fv1/N=1", "bicgstab/fv1/N=1", "gnn/cora",
                   "mg/fv1/N=1")
CHAOS_CONFIGS = ("Flexagon", "CELLO")
CHAOS_BANDWIDTH_GB = 1000.0
CHAOS_POINTS = 8


def chaos_points():
    """The same points the gateway will build from the chaos request —
    used to compute the real ring assignment before picking a victim."""
    return SweepSpec(workloads=CHAOS_WORKLOADS, configs=CHAOS_CONFIGS,
                     bandwidths=(CHAOS_BANDWIDTH_GB * GB,)).points()


def submit_chaos(client):
    return client.submit_sweep(
        list(CHAOS_WORKLOADS), configs=list(CHAOS_CONFIGS),
        bandwidth_gb=[CHAOS_BANDWIDTH_GB])


def fingerprint(outcome):
    """Order-sensitive byte-level identity of a sweep outcome."""
    return [(p.workload, p.config, p.bandwidth_bytes_per_s,
             json.dumps(p.result.to_dict(), sort_keys=True))
            for p in outcome.points]


def wait_until(predicate, timeout_s=15.0, interval_s=0.2):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def fabric3(tmp_path_factory):
    """One healthy 3-shard fabric shared by the non-chaos tests."""
    cache = tmp_path_factory.mktemp("fabric-cache")
    with Fabric(str(cache), n_shards=3) as fab:
        yield fab


class TestGatewayFabric:
    def test_ping_names_the_gateway_and_counts_shards(self, fabric3):
        with fabric3.client() as client:
            pong = client.ping()
        assert pong["type"] == "pong"
        assert pong["protocol"] == PROTOCOL_VERSION
        assert pong["server"] == "repro-gateway"
        assert pong["shards_healthy"] == 3
        assert pong["shards_total"] == 3

    def test_topology_reports_the_ring_and_every_shard(self, fabric3):
        with fabric3.client() as client:
            topo = client.topology()
        assert topo["type"] == "topology"
        assert topo["role"] == "gateway"
        assert topo["protocol"] == PROTOCOL_VERSION
        assert topo["replicas"] == 64
        shards = {s["id"]: s for s in topo["shards"]}
        assert set(shards) == {p.id for p in fabric3.proxies}
        assert all(s["healthy"] and s["protocol"] == PROTOCOL_VERSION
                   for s in shards.values())

    def test_merged_stream_byte_identical_to_direct_engine(self, fabric3):
        """The acceptance bar: a gateway over 3 shards answers the
        standard grid byte-identically to the engines, with exactly one
        simulation per distinct traffic key, and a warm resubmit
        re-simulates nothing."""
        with fabric3.client() as client:
            cold = client.submit_sweep([WORKLOAD], configs=list(CONFIGS),
                                       bandwidth_gb=list(BANDWIDTH_GB))
            warm = client.submit_sweep([WORKLOAD], configs=list(CONFIGS),
                                       bandwidth_gb=list(BANDWIDTH_GB))
        assert cold.simulations == DISTINCT_KEYS
        assert cold.hits == 0 and cold.requeued == 0
        got = [json.dumps(p.result.to_dict(), sort_keys=True)
               for p in cold.points]
        want = [json.dumps(r.to_dict(), sort_keys=True)
                for r in expected_results()]
        assert got == want  # merged stream preserves submission order
        assert warm.simulations == 0
        assert warm.hits == DISTINCT_KEYS
        assert fingerprint(warm) == fingerprint(cold)
        assert duplicate_store_keys(fabric3.results_file()) == []

    def test_concurrent_clients_single_flight_across_the_cluster(
            self, fabric3):
        """Cluster-wide single flight: identical grids from concurrent
        clients route each key to the same shard, where the shard-local
        dedup makes the whole fabric simulate it exactly once."""
        grid = dict(workloads=["mg/fv1/N=1", "gnn/cora"],
                    configs=["Flexagon", "CELLO"],
                    bandwidth_gb=[CHAOS_BANDWIDTH_GB])
        n_keys = 4
        n_clients = 3
        outcomes = [None] * n_clients
        errors = []

        def worker(i):
            try:
                with fabric3.client() as client:
                    outcomes[i] = client.submit_sweep(
                        grid["workloads"], configs=grid["configs"],
                        bandwidth_gb=grid["bandwidth_gb"])
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert all(o is not None for o in outcomes)
        assert sum(o.simulations for o in outcomes) == n_keys
        for o in outcomes:
            assert o.simulations + o.hits + o.coalesced == n_keys
        reference = fingerprint(outcomes[0])
        for o in outcomes[1:]:
            assert fingerprint(o) == reference
        assert duplicate_store_keys(fabric3.results_file()) == []

    def test_points_op_streams_in_submission_order(self, fabric3):
        """An explicit v4 point list through the gateway: results come
        back in the submitted order even though the points scatter
        across shards, and match the direct engines byte for byte."""
        points = SweepSpec(
            workloads=(WORKLOAD,), configs=CONFIGS,
            bandwidths=tuple(bw * GB for bw in BANDWIDTH_GB)).points()
        with fabric3.client() as client:
            outcome = client.submit_points(points)
        assert [(p.workload, p.config, p.bandwidth_bytes_per_s)
                for p in outcome.points] \
            == [(p.workload, p.config, p.cfg.dram_bandwidth_bytes_per_s)
                for p in points]
        got = [json.dumps(p.result.to_dict(), sort_keys=True)
               for p in outcome.points]
        want = [json.dumps(r.to_dict(), sort_keys=True)
                for r in expected_results()]
        assert got == want

    def test_jobs_stats_and_cancel_through_the_gateway(self, fabric3):
        with fabric3.client() as client:
            outcome = client.submit_sweep([WORKLOAD],
                                          configs=list(CONFIGS),
                                          bandwidth_gb=[1000.0])
            jobs = {j["id"]: j for j in client.jobs()}
            stats = client.stats()
            with pytest.raises(ServiceError, match="unknown job"):
                client.cancel("j999")
        assert outcome.job_id in jobs
        assert jobs[outcome.job_id]["state"] == "done"
        assert stats["type"] == "stats"
        assert stats["role"] == "gateway"
        assert stats["shards_healthy"] == 3
        assert stats["points_streamed"] >= len(outcome.points)

    def test_predict_forwarded_to_a_shard(self, fabric3):
        with fabric3.client() as client:
            reply = client.predict(WORKLOAD, "CELLO")
            with pytest.raises(ServiceError, match="no analytic model"):
                client.predict(WORKLOAD, "Flex+LRU")
        assert reply["type"] == "predict"
        assert reply["fidelity"] == "analytic"
        workload = resolve_workload(WORKLOAD)
        direct = run_config("CELLO", workload.build(), AcceleratorConfig(),
                            workload_name=workload.name,
                            cache_granularity=None)
        assert reply["result"]["dram_read_bytes"] == direct.dram_read_bytes
        assert reply["result"]["dram_write_bytes"] == direct.dram_write_bytes

    def test_tune_forwarded_matches_direct_tuner(self, fabric3):
        from repro.tuner import TuneResult, TuneSpace, make_strategy, tune

        with fabric3.client() as client:
            data = client.submit_tune(WORKLOAD, strategy="grid",
                                      sram_mb=(4.0,), entries=(64,))
        via_gateway = TuneResult.from_dict(data)
        _reset_runner()  # the direct run below must not inherit state
        try:
            direct = tune(
                WORKLOAD,
                space=TuneSpace(chord_entries=(64,), sram_bytes=(4 * MIB,)),
                strategy=make_strategy("grid"), jobs=1)
        finally:
            _reset_runner()
        assert via_gateway.workload == direct.workload
        assert len(via_gateway.evaluations) == len(direct.evaluations)
        assert [dict(e.objectives) for e in via_gateway.evaluations] \
            == [dict(e.objectives) for e in direct.evaluations]
        assert via_gateway.incumbent.config == direct.incumbent.config

    def test_gateway_survives_hostile_frames(self, fabric3):
        """Every fuzz frame gets a JSON error (never a crash, never a
        hang), and the gateway still routes real work afterwards."""
        for payload in fuzz_payloads():
            replies = fuzz_exchange(fabric3.gateway.port, payload)
            if any(line.strip() for line in payload.split(b"\n")):
                assert replies, f"no reply to {payload[:40]!r}"
            assert all(r.get("type") == "error" for r in replies), payload
        with fabric3.client() as client:
            pong = client.ping()
        assert pong["shards_healthy"] == 3


class TestChaos:
    """One fabric per test; each test breaks it a different way."""

    def _arm(self, tmp_path, **gateway_kwargs):
        """Build a fabric for the chaos grid and return it with the
        index of the proxy that owns the most points (the victim)."""
        points = chaos_points()
        assert len(points) == CHAOS_POINTS
        assert distinct_keys(points) == CHAOS_POINTS
        gateway_kwargs.setdefault("ping_timeout_s", 2.0)
        gateway_kwargs.setdefault("health_interval_s", 0.5)
        fab = Fabric(str(tmp_path / "cache"), n_shards=3, **gateway_kwargs)
        victim = busiest_proxy(fab.proxies, points)
        return fab, victim, points

    def _check_store_exactly_once(self, fab, points):
        """The no-duplicate-work invariant, from the store's own record:
        exactly one append per distinct traffic key."""
        assert duplicate_store_keys(fab.results_file()) == []
        assert set(store_record_keys(fab.results_file())) \
            == {ResultStore.key_str(p.key()) for p in points}

    def test_killed_shard_mid_sweep_requeues_without_duplicates(
            self, tmp_path):
        """The flagship chaos run: SIGKILL the busiest shard right after
        its first streamed result.  The sweep must still complete with
        all 8 points, report the re-hashed remainder, and a warm
        resubmit must re-run zero simulations."""
        fab, victim, points = self._arm(tmp_path)
        fab.proxies[victim].plan.kill_after_results = 1
        with fab:
            with fab.client() as client:
                out = submit_chaos(client)
                warm = submit_chaos(client)
                topo = client.topology()
        assert not fab.shards[victim].alive
        assert len(out.points) == CHAOS_POINTS
        assert len(set(fingerprint(out))) == CHAOS_POINTS
        # The victim owned >= 3 keys (busiest of 3 shards over 8 keys)
        # and streamed exactly 1 before dying: >= 2 must be re-hashed.
        assert out.requeued >= 2
        assert warm.requeued == 0
        assert warm.simulations == 0  # nothing was simulated twice
        assert warm.hits == CHAOS_POINTS
        assert fingerprint(warm) == fingerprint(out)
        self._check_store_exactly_once(fab, points)
        assert topo["requeued_total"] == out.requeued
        health = {s["id"]: s["healthy"] for s in topo["shards"]}
        assert health[fab.proxies[victim].id] is False
        assert sum(health.values()) == 2

    def test_trace_id_spans_every_hop_including_the_requeue(
            self, tmp_path):
        """One traced submission through a dying fabric: the client's
        trace_id appears on the gateway's sweep record, on the requeue
        record the gateway mints when the victim dies, and in the shard
        processes' own request logs — with parent_span links forming the
        hop tree client → gateway → (shards | requeue → survivors)."""
        shard_log = tmp_path / "shard_logs.jsonl"
        gw_stream = io.StringIO()
        fab, victim, points = self._arm(
            tmp_path, request_log=RequestLog(gw_stream),
            shard_args=["--log-json", str(shard_log)])
        fab.proxies[victim].plan.kill_after_results = 1
        with fab:
            with fab.client(client_id="tracer", trace=True) as client:
                out = submit_chaos(client)
        assert len(out.points) == CHAOS_POINTS
        assert out.requeued >= 2
        assert out.trace_id is not None

        gw_records = [json.loads(line) for line in
                      gw_stream.getvalue().splitlines() if line]
        sweep = next(r for r in gw_records if r["op"] == "sweep")
        assert sweep["trace_id"] == out.trace_id
        assert sweep["outcome"] == "done"
        # the gateway span hangs off the client's root span
        assert sweep["parent_span"]
        requeue = next(r for r in gw_records if r["op"] == "requeue")
        assert requeue["trace_id"] == out.trace_id
        assert requeue["parent_span"] == sweep["span_id"]
        assert requeue["points"] >= 2
        assert f"shard {fab.proxies[victim].id}" in requeue["error"]

        shard_records = [json.loads(line) for line in
                         shard_log.read_text().splitlines() if line]
        hops = [r for r in shard_records
                if r.get("trace_id") == out.trace_id]
        assert hops, "no shard record carried the client's trace id"
        parents = {r["parent_span"] for r in hops}
        # primary partitions hang off the gateway's sweep span; the
        # failover partitions hang off the requeue span it minted
        assert sweep["span_id"] in parents
        assert requeue["span_id"] in parents
        assert all(r["outcome"] == "done" for r in hops)
        self._check_store_exactly_once(fab, points)

    def test_dropped_connection_requeues_and_shard_recovers(
            self, tmp_path):
        """Sever only the streaming connection: the shard process stays
        alive, its unstreamed points are re-hashed onto the survivors,
        and the health loop re-admits it afterwards."""
        fab, victim, points = self._arm(tmp_path)
        fab.proxies[victim].plan.drop_after_results = 1
        with fab:
            with fab.client() as client:
                out = submit_chaos(client)
                warm = submit_chaos(client)
            assert fab.shards[victim].alive
            assert len(out.points) == CHAOS_POINTS
            assert out.requeued >= 2
            assert warm.simulations == 0
            assert fingerprint(warm) == fingerprint(out)
            self._check_store_exactly_once(fab, points)

            # The drop fires once; the next health ping must bring the
            # shard back into the ring.
            def all_healthy():
                with fab.client() as c:
                    return c.ping()["shards_healthy"] == 3

            assert wait_until(all_healthy, timeout_s=15.0)

    def test_delayed_acks_hit_the_read_timeout_and_requeue(self, tmp_path):
        """A sick-but-alive shard whose result lines stall longer than
        the gateway's per-read timeout is treated exactly like a dead
        one: its batch is re-hashed and nothing is simulated twice."""
        fab, victim, points = self._arm(
            tmp_path, shard_read_timeout_s=0.5, ping_timeout_s=5.0)
        fab.proxies[victim].plan.delay_results_s = 2.0
        with fab:
            with fab.client() as client:
                out = submit_chaos(client)
                # Disarm before resubmitting: the victim may have been
                # re-admitted by a health ping (pings are not delayed).
                fab.proxies[victim].plan.delay_results_s = 0.0
                warm = submit_chaos(client)
            assert fab.shards[victim].alive  # sick, not dead
            assert len(out.points) == CHAOS_POINTS
            # No result beat the timeout, so the victim's whole batch
            # (>= 3 points) was re-hashed.
            assert out.requeued >= 3
            assert warm.simulations == 0
            assert fingerprint(warm) == fingerprint(out)
            self._check_store_exactly_once(fab, points)

    def test_shed_bulk_job_retries_through_the_gateway_without_duplicates(
            self, tmp_path):
        """Load shedding end to end across the fabric: a shard with a
        one-slot queue sheds a second tenant's bulk partition with the
        typed ``overloaded`` error, the gateway passes the code through,
        the client backs off and resubmits — and when the dust settles
        nothing was simulated twice.

        Determinism comes from the shard's gather window: with
        ``--max-pending 1`` and a 1 s ``--batch-window-ms`` the first
        tenant's trickle keeps the queue pinned full between batches, so
        the second tenant's admission check during the window always
        sheds (the test polls the shard's live queue depth before
        submitting tenant B).
        """
        from repro.service import Overloaded, ServiceClient

        points = chaos_points()
        fab = Fabric(str(tmp_path / "cache"), n_shards=1,
                     shard_args=["--max-pending", "1",
                                 "--batch-window-ms", "1000"],
                     ping_timeout_s=2.0, health_interval_s=0.5)
        with fab:
            a_done = {}

            def tenant_a():
                with fab.client(client_id="tenant-a") as client:
                    a_done["outcome"] = client.submit_sweep(
                        list(CHAOS_WORKLOADS),
                        configs=list(CHAOS_CONFIGS),
                        bandwidth_gb=[CHAOS_BANDWIDTH_GB],
                        priority="bulk")

            thread = threading.Thread(target=tenant_a)
            thread.start()
            shard_port = fab.proxies[0].port
            with ServiceClient(port=shard_port, timeout=60.0) as probe:
                assert wait_until(
                    lambda: probe.metrics()["queue_depth"] >= 1,
                    timeout_s=30.0, interval_s=0.01)

            retries = []
            with fab.client(client_id="tenant-b") as client:
                out_b = client.submit_sweep(
                    list(CHAOS_WORKLOADS[:2]),
                    configs=list(CHAOS_CONFIGS), sram_mb=[2.0],
                    bandwidth_gb=[CHAOS_BANDWIDTH_GB],
                    priority="bulk", overload_retries=12,
                    on_retry=lambda n, delay, exc:
                        retries.append(exc))
                warm_b = client.submit_sweep(
                    list(CHAOS_WORKLOADS[:2]),
                    configs=list(CHAOS_CONFIGS), sram_mb=[2.0],
                    bandwidth_gb=[CHAOS_BANDWIDTH_GB],
                    priority="bulk", overload_retries=12)
            thread.join(timeout=300)
            assert not thread.is_alive()
            with ServiceClient(port=shard_port, timeout=60.0) as probe:
                shard_metrics = probe.metrics()

            # The shed fired, carried its typed fields through the
            # gateway, and the retry loop absorbed it.
            assert retries, "tenant B was never shed"
            assert all(isinstance(exc, Overloaded) for exc in retries)
            assert all(exc.retry_after_s > 0 for exc in retries)
            assert shard_metrics["shed_total"] >= 1

            # Both tenants' jobs completed in full...
            assert len(a_done["outcome"].points) == CHAOS_POINTS
            assert len(out_b.points) == 4
            assert warm_b.simulations == 0
            assert warm_b.hits == 4
            assert fingerprint(warm_b) == fingerprint(out_b)
            # ...and the shed/retry cycle duplicated zero simulations:
            # the store holds exactly one record per distinct key across
            # both tenants' grids.
            b_points = SweepSpec(workloads=CHAOS_WORKLOADS[:2],
                                 configs=CHAOS_CONFIGS,
                                 sram_bytes=(2 * MIB,),
                                 bandwidths=(CHAOS_BANDWIDTH_GB * GB,)
                                 ).points()
            assert duplicate_store_keys(fab.results_file()) == []
            assert set(store_record_keys(fab.results_file())) == {
                ResultStore.key_str(p.key())
                for p in [*points, *b_points]}

    def test_no_healthy_shards_is_a_clean_error(self, tmp_path):
        """A gateway whose every shard is unreachable must still start,
        answer pings, and fail submissions with actionable errors — not
        hang or crash."""
        placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()
        with GatewayThread([("127.0.0.1", dead_port)],
                           health_interval_s=30.0) as gw:
            with gw.client() as client:
                pong = client.ping()
                assert pong["shards_healthy"] == 0
                assert pong["shards_total"] == 1
                with pytest.raises(JobFailed, match="no healthy shards"):
                    client.submit_sweep([WORKLOAD], configs=["CELLO"])
                with pytest.raises(ServiceError,
                                   match="no healthy shards"):
                    client.submit_tune(WORKLOAD, strategy="grid",
                                       sram_mb=(4.0,), entries=(64,))
                with pytest.raises(ServiceError,
                                   match="no healthy shards"):
                    client.predict(WORKLOAD, "CELLO")
                topo = client.topology()
        assert topo["shards"][0]["healthy"] is False
        assert topo["shards"][0]["error"]
